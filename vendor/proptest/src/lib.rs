//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored
//! crate implements the slice of proptest's API the workspace's
//! property tests use: the [`Strategy`] trait with `prop_map` and
//! `prop_recursive`, range/tuple/`Just`/string-pattern strategies,
//! `prop::collection::vec`, `prop::sample::select`, `option::of`, the
//! `proptest!`, `prop_oneof!` and `prop_assert*!` macros, and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its inputs via the
//!   panic message but is not minimized;
//! * **deterministic seeding** — cases derive from a fixed per-test
//!   seed (the FNV hash of the test name), so runs are reproducible
//!   without a regressions file;
//! * **string strategies** support the character-class pattern subset
//!   `"[class]{lo,hi}"` (plus plain literals), which covers every
//!   pattern in this workspace.

#![forbid(unsafe_code)]

use std::rc::Rc;

/// Deterministic RNG and test configuration.
pub mod test_runner {
    /// SplitMix64: small, fast, and good enough for case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator seeded from `name` (FNV-1a).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }

    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

use test_runner::TestRng;

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy behind a clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }

    /// Builds recursive values: `self` is the leaf strategy, `recurse`
    /// wraps an inner strategy one level deeper. The tree depth is
    /// bounded by `depth`; `_desired_size` and `_expected_branch_size`
    /// are accepted for API compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.clone().boxed();
        for _ in 0..depth {
            let leaf = self.clone().boxed();
            let deeper = recurse(strat).boxed();
            // One level: mostly recurse, sometimes bottom out early.
            strat = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                if rng.below(4) == 0 {
                    leaf.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            }));
        }
        strat
    }
}

/// Clonable type-erased strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union over same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone(), total: self.total }
    }
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof: zero total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick within total")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Strategy for std::ops::Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl Strategy for std::ops::Range<isize> {
    type Value = isize;

    fn generate(&self, rng: &mut TestRng) -> isize {
        assert!(self.start < self.end, "empty range strategy");
        let span = (self.end as i128 - self.start as i128) as u64;
        self.start.wrapping_add(rng.below(span) as isize)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// String strategies from pattern literals.
///
/// Supports `"[class]{lo,hi}"` — a single character class with an
/// exact or bounded repetition — and plain literal strings (generated
/// verbatim). Class syntax: ranges `a-z`, escapes `\n`, `\t`, `\r`,
/// `\\`, `\]`, `\-`, and literal characters.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let bytes: Vec<char> = pattern.chars().collect();
    if bytes.first() != Some(&'[') {
        return pattern.to_owned(); // plain literal
    }
    let close = bytes
        .iter()
        .position(|&c| c == ']')
        .unwrap_or_else(|| panic!("unsupported string pattern `{pattern}`"));
    let mut pool: Vec<char> = Vec::new();
    let mut i = 1;
    while i < close {
        let c = bytes[i];
        if c == '\\' && i + 1 < close {
            pool.push(match bytes[i + 1] {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                other => other,
            });
            i += 2;
        } else if i + 2 < close && bytes[i + 1] == '-' {
            let (lo, hi) = (c as u32, bytes[i + 2] as u32);
            assert!(lo <= hi, "bad class range in `{pattern}`");
            for p in lo..=hi {
                pool.push(char::from_u32(p).expect("valid class char"));
            }
            i += 3;
        } else {
            pool.push(c);
            i += 1;
        }
    }
    assert!(!pool.is_empty(), "empty character class in `{pattern}`");
    let rest: String = bytes[close + 1..].iter().collect();
    let (lo, hi) = parse_repeat(&rest, pattern);
    let len = lo + rng.below((hi - lo + 1) as u64) as usize;
    (0..len).map(|_| pool[rng.below(pool.len() as u64) as usize]).collect()
}

fn parse_repeat(rest: &str, pattern: &str) -> (usize, usize) {
    if rest.is_empty() {
        return (1, 1);
    }
    let inner = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported repetition in `{pattern}`"));
    match inner.split_once(',') {
        Some((lo, hi)) => {
            let lo = lo.trim().parse().expect("repetition lower bound");
            let hi = hi.trim().parse().expect("repetition upper bound");
            assert!(lo <= hi, "bad repetition bounds in `{pattern}`");
            (lo, hi)
        }
        None => {
            let n = inner.trim().parse().expect("repetition count");
            (n, n)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for vectors with lengths drawn from `range`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    /// Generates `Vec`s of `element` values with length in `range`.
    pub fn vec<S: Strategy>(element: S, range: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(range.start < range.end, "empty vec length range");
        VecStrategy { element, lo: range.start, hi: range.end - 1 }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy selecting one element of a fixed set.
    #[derive(Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    /// Picks uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select: empty options");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy generating `None` about a quarter of the time.
    #[derive(Clone)]
    pub struct OptionStrategy<S>(S);

    /// Wraps `inner`'s values in `Some`, mixed with `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// The glob import used by property tests.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{BoxedStrategy, Just, Strategy};

    /// The `prop::` module tree (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Weighted or unweighted choice between strategies with one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

/// Assertion inside a property body (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Defines `#[test]` functions that run a body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    let ($($pat,)+) = (
                        $($crate::Strategy::generate(&($strat), &mut rng),)+
                    );
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($(#[$meta])* fn $name ( $($pat in $strat),+ ) $body)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("t1");
        let s = (0u8..12).prop_map(|v| v as u32 * 2);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v < 24 && v % 2 == 0);
        }
    }

    #[test]
    fn union_respects_value_space() {
        let mut rng = crate::test_runner::TestRng::deterministic("t2");
        let s = prop_oneof![3 => Just(1u8), 1 => Just(2u8)];
        let mut seen = [0u32; 3];
        for _ in 0..400 {
            seen[s.generate(&mut rng) as usize] += 1;
        }
        assert_eq!(seen[0], 0);
        assert!(seen[1] > seen[2]);
    }

    #[test]
    fn string_pattern_subset_works() {
        let mut rng = crate::test_runner::TestRng::deterministic("t3");
        let s = "[ -~\n]{0,300}";
        for _ in 0..50 {
            let text = Strategy::generate(&s, &mut rng);
            assert!(text.len() <= 300);
            assert!(text.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn vec_and_select_and_option() {
        let mut rng = crate::test_runner::TestRng::deterministic("t4");
        let s = prop::collection::vec(prop::sample::select(vec![5u8, 9]), 1..4);
        let o = prop::option::of(0u8..3);
        let mut nones = 0;
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|x| *x == 5 || *x == 9));
            if o.generate(&mut rng).is_none() {
                nones += 1;
            }
        }
        assert!(nones > 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_binds_multiple_inputs(a in 0i64..10, b in 0i64..10) {
            prop_assert!(a + b < 20);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
