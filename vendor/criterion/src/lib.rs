//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so the bench targets
//! link against this minimal harness instead. It implements the API
//! subset the workspace uses — `Criterion::bench_function`,
//! `benchmark_group`, `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple calibrated wall-clock
//! measurement and a one-line report per benchmark.
//!
//! Measurement only happens when the binary is invoked in bench mode
//! (`cargo bench` passes `--bench`); under `cargo test` the harness
//! exits immediately so benches never slow the test suite.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(300);

/// The top-level benchmark driver.
pub struct Criterion {
    enabled: bool,
    filter: Option<String>,
}

impl Criterion {
    /// Builds a driver from the process arguments (bench mode is
    /// enabled by the `--bench` flag cargo passes; an optional
    /// positional argument filters benchmark names by substring).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let enabled = args.iter().any(|a| a == "--bench");
        let filter = args.iter().find(|a| !a.starts_with("--")).cloned();
        Criterion { enabled, filter }
    }

    fn should_run(&self, name: &str) -> bool {
        self.enabled && self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Benchmarks `f` under `name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.should_run(name) {
            run_one(name, None, &mut f);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_owned(), throughput: None }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id` within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        if self.criterion.should_run(&full) {
            run_one(&full, self.throughput, &mut f);
        }
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        if self.criterion.should_run(&full) {
            run_one(&full, self.throughput, &mut |b: &mut Bencher| f(b, input));
        }
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and an input parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id made of an input parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId(name.to_owned())
    }
}

/// Per-iteration work, for derived rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many abstract elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Passed to benchmark closures; runs and times the workload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, running it enough times to fill the target window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: double the batch until it is long
        // enough to time reliably.
        let mut batch = 1u64;
        let mut spent;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            spent = start.elapsed();
            if spent >= Duration::from_millis(20) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let runs = (TARGET.as_nanos() / spent.as_nanos().max(1)).clamp(1, 50) as u64;
        let start = Instant::now();
        for _ in 0..runs * batch {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = runs * batch;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, f: &mut F) {
    let mut b = Bencher { iters: 0, elapsed: Duration::ZERO };
    f(&mut b);
    if b.iters == 0 {
        println!("{name:<48} (no measurement)");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / per_iter)
        }
        Some(Throughput::Bytes(n)) => format!("  {:>12.0} B/s", n as f64 / per_iter),
        None => String::new(),
    };
    println!("{name:<48} {:>12} /iter  ({} iters){rate}", format_ns(per_iter * 1e9), b.iters);
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Groups benchmark functions under one registration function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_driver_never_runs_closures() {
        let mut c = Criterion { enabled: false, filter: None };
        let mut ran = false;
        c.bench_function("x", |_b| ran = true);
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::from_parameter(1), &(), |_b, ()| ran = true);
        g.finish();
        assert!(!ran);
    }

    #[test]
    fn bencher_measures_when_enabled() {
        let mut b = Bencher { iters: 0, elapsed: Duration::ZERO };
        b.iter(|| std::hint::black_box(1 + 1));
        assert!(b.iters > 0);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter("s4").0, "s4");
    }
}
