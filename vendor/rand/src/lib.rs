//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` it actually uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over half-open ranges, and [`Rng::gen_bool`].
//!
//! `SmallRng` is xoshiro256++ seeded through SplitMix64 — the same
//! generator family real `rand 0.8` uses on 64-bit targets — so
//! workload generation stays deterministic, fast, and well mixed.
//! Distribution details (`gen_range` sampling) are a simplified
//! widening-multiply map rather than rand's rejection sampler; every
//! caller in this workspace only needs determinism and uniformity far
//! below the bias floor of one part in 2^64.

#![forbid(unsafe_code)]

use core::ops::Range;

/// Low-level generator interface: a source of random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be created from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it through
    /// SplitMix64 exactly as `rand_core` 0.6 does.
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high)`.
    fn sample_range(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                // Widening multiply maps 64 random bits onto the span
                // with bias < span / 2^64.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (low as $u).wrapping_add(hi as $u) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

impl SampleUniform for f64 {
    fn sample_range(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + (high - low) * unit
    }
}

impl SampleUniform for f32 {
    fn sample_range(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
        f64::sample_range(rng, low as f64, high as f64) as f32
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let b = rng.gen_range(0u8..4);
            assert!(b < 4);
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6_300..7_700).contains(&hits), "{hits}");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same =
            (0..64).filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX)).count();
        assert_eq!(same, 0);
    }
}
