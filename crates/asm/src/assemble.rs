//! The two-pass assembler proper.

use std::collections::BTreeMap;

use hirata_isa::{
    BranchCond, DataSegment, FReg, FpBinOp, FpUnOp, GReg, GSrc, Inst, IntOp, Program, Reg,
    RotationMode,
};

use crate::error::AsmError;
use crate::lexer::{lex, Line, Stmt};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Text,
    Data,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LabelVal {
    Code(u32),
    Data(u64),
    Const(i64),
}

impl LabelVal {
    fn as_i64(self) -> i64 {
        match self {
            LabelVal::Code(a) => a as i64,
            LabelVal::Data(a) => a as i64,
            LabelVal::Const(v) => v,
        }
    }
}

/// Assembles source text into a validated [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] carrying the offending source line for any
/// syntactic or semantic problem (unknown mnemonic, bad operand,
/// duplicate or undefined label, overlapping data, invalid entry).
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    let attach_context = |e: AsmError| {
        // Quote the offending source line in the diagnostic.
        match src.lines().nth(e.line().wrapping_sub(1)) {
            Some(text) if !text.trim().is_empty() => {
                AsmError::new(e.line(), format!("{} in `{}`", e.message(), text.trim()))
            }
            _ => e,
        }
    };
    let lines = lex(src).map_err(attach_context)?;
    let labels = first_pass(&lines).map_err(attach_context)?;
    second_pass(&lines, &labels).map_err(attach_context)
}

/// Pass 1: assign every label an address and check for duplicates.
fn first_pass(lines: &[Line]) -> Result<BTreeMap<String, LabelVal>, AsmError> {
    let mut labels = BTreeMap::new();
    let mut seg = Segment::Text;
    let mut text_cursor: u32 = 0;
    let mut data_cursor: u64 = 0;

    for line in lines {
        for name in &line.labels {
            let val = match seg {
                Segment::Text => LabelVal::Code(text_cursor),
                Segment::Data => LabelVal::Data(data_cursor),
            };
            if labels.insert(name.clone(), val).is_some() {
                return Err(AsmError::new(line.num, format!("duplicate label `{name}`")));
            }
        }
        let Some(stmt) = &line.stmt else { continue };
        match stmt.head.as_str() {
            ".text" => seg = Segment::Text,
            ".data" => seg = Segment::Data,
            ".entry" => {}
            ".equ" => {
                let [name, value] = expect_n::<2>(stmt, line.num)?;
                let resolved = parse_int(value)
                    .or_else(|| labels.get(value.as_str()).copied().map(LabelVal::as_i64))
                    .ok_or_else(|| {
                        AsmError::new(
                            line.num,
                            format!("`.equ` value `{value}` is not an integer or known name"),
                        )
                    })?;
                if !valid_equ_name(name) {
                    return Err(AsmError::new(line.num, format!("invalid .equ name `{name}`")));
                }
                if labels.insert(name.clone(), LabelVal::Const(resolved)).is_some() {
                    return Err(AsmError::new(line.num, format!("duplicate label `{name}`")));
                }
            }
            ".word" | ".float" => {
                require_data(seg, line.num, &stmt.head)?;
                data_cursor += stmt.operands.len() as u64;
            }
            ".space" => {
                require_data(seg, line.num, &stmt.head)?;
                data_cursor += parse_count(stmt, line.num)?;
            }
            ".org" => {
                require_data(seg, line.num, &stmt.head)?;
                data_cursor = parse_count(stmt, line.num)?;
            }
            head if head.starts_with('.') => {
                return Err(AsmError::new(line.num, format!("unknown directive `{head}`")));
            }
            _ => {
                if seg != Segment::Text {
                    return Err(AsmError::new(
                        line.num,
                        "instructions are only allowed in the .text segment",
                    ));
                }
                text_cursor += 1;
            }
        }
    }
    Ok(labels)
}

/// Pass 2: encode instructions and data now that labels are known.
fn second_pass(lines: &[Line], labels: &BTreeMap<String, LabelVal>) -> Result<Program, AsmError> {
    let mut prog = Program::default();
    let mut data_cursor: u64 = 0;
    let mut data_words: Vec<(u64, u64, usize)> = Vec::new(); // (addr, word, line)
    let mut entry: Option<(String, usize)> = None;

    for line in lines {
        let Some(stmt) = &line.stmt else { continue };
        let ctx = Ctx { labels, line: line.num };
        match stmt.head.as_str() {
            // Segment placement was validated in the first pass;
            // `.equ` was fully consumed there.
            ".text" | ".data" | ".equ" => {}
            ".entry" => {
                let [name] = expect_n::<1>(stmt, line.num)?;
                entry = Some((name.clone(), line.num));
            }
            ".word" => {
                for op in &stmt.operands {
                    let v = ctx.int_or_label(op)?;
                    data_words.push((data_cursor, v as u64, line.num));
                    data_cursor += 1;
                }
            }
            ".float" => {
                for op in &stmt.operands {
                    let v: f64 = op.parse().map_err(|_| {
                        AsmError::new(line.num, format!("invalid float literal `{op}`"))
                    })?;
                    data_words.push((data_cursor, v.to_bits(), line.num));
                    data_cursor += 1;
                }
            }
            ".space" => data_cursor += parse_count(stmt, line.num)?,
            ".org" => data_cursor = parse_count(stmt, line.num)?,
            _ => {
                let inst = encode(stmt, &ctx)?;
                prog.insts.push(inst);
            }
        }
    }

    for (name, val) in labels {
        if let LabelVal::Code(addr) = val {
            prog.labels.insert(name.clone(), *addr);
        }
    }

    if let Some((name, line)) = entry {
        match labels.get(&name) {
            Some(LabelVal::Code(addr)) => prog.entry = *addr,
            Some(LabelVal::Data(_)) | Some(LabelVal::Const(_)) => {
                return Err(AsmError::new(line, format!("entry `{name}` is not a code label")))
            }
            None => return Err(AsmError::new(line, format!("undefined entry label `{name}`"))),
        }
    }

    prog.data = coalesce(data_words)?;
    prog.validate().map_err(|e| AsmError::new(0, format!("program validation failed: {e}")))?;
    Ok(prog)
}

/// Groups (addr, word) pairs into contiguous segments, rejecting
/// duplicate definitions of the same address.
fn coalesce(mut words: Vec<(u64, u64, usize)>) -> Result<Vec<DataSegment>, AsmError> {
    words.sort_by_key(|&(addr, _, _)| addr);
    for pair in words.windows(2) {
        if pair[0].0 == pair[1].0 {
            return Err(AsmError::new(pair[1].2, format!("data word {} defined twice", pair[1].0)));
        }
    }
    let mut segs: Vec<DataSegment> = Vec::new();
    for (addr, word, _) in words {
        match segs.last_mut() {
            Some(seg) if seg.end() == addr => seg.words.push(word),
            _ => segs.push(DataSegment { base: addr, words: vec![word] }),
        }
    }
    Ok(segs)
}

fn valid_equ_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn require_data(seg: Segment, line: usize, head: &str) -> Result<(), AsmError> {
    if seg == Segment::Data {
        Ok(())
    } else {
        Err(AsmError::new(line, format!("`{head}` is only allowed in the .data segment")))
    }
}

fn parse_count(stmt: &Stmt, line: usize) -> Result<u64, AsmError> {
    let [text] = expect_n::<1>(stmt, line)?;
    parse_int(text)
        .and_then(|v| u64::try_from(v).ok())
        .ok_or_else(|| AsmError::new(line, format!("invalid count `{text}`")))
}

fn expect_n<const N: usize>(stmt: &Stmt, line: usize) -> Result<&[String; N], AsmError> {
    <&[String; N]>::try_from(stmt.operands.as_slice()).map_err(|_| {
        AsmError::new(
            line,
            format!("`{}` expects {N} operand(s), got {}", stmt.head, stmt.operands.len()),
        )
    })
}

fn parse_int(text: &str) -> Option<i64> {
    let (neg, body) = match text.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, text),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { -value } else { value })
}

/// Shared operand-parsing context for one source line.
struct Ctx<'a> {
    labels: &'a BTreeMap<String, LabelVal>,
    line: usize,
}

impl Ctx<'_> {
    fn err(&self, msg: impl Into<String>) -> AsmError {
        AsmError::new(self.line, msg)
    }

    fn greg(&self, text: &str) -> Result<GReg, AsmError> {
        text.parse().map_err(|e| self.err(format!("{e}")))
    }

    fn freg(&self, text: &str) -> Result<FReg, AsmError> {
        text.parse().map_err(|e| self.err(format!("{e}")))
    }

    fn reg(&self, text: &str) -> Result<Reg, AsmError> {
        text.parse().map_err(|e| self.err(format!("{e}")))
    }

    fn int_or_label(&self, text: &str) -> Result<i64, AsmError> {
        if let Some(v) = parse_int(text) {
            return Ok(v);
        }
        self.labels
            .get(text)
            .map(|v| v.as_i64())
            .ok_or_else(|| self.err(format!("undefined label or bad integer `{text}`")))
    }

    /// `#int`, `#float-label`... an immediate: integer literal or label.
    fn imm(&self, text: &str) -> Result<i64, AsmError> {
        let body = text
            .strip_prefix('#')
            .ok_or_else(|| self.err(format!("expected immediate `#...`, got `{text}`")))?;
        self.int_or_label(body)
    }

    fn fimm(&self, text: &str) -> Result<f64, AsmError> {
        let body = text
            .strip_prefix('#')
            .ok_or_else(|| self.err(format!("expected immediate `#...`, got `{text}`")))?;
        body.parse().map_err(|_| self.err(format!("invalid float literal `{body}`")))
    }

    /// Register or `#imm`.
    fn gsrc(&self, text: &str) -> Result<GSrc, AsmError> {
        if text.starts_with('#') {
            Ok(GSrc::Imm(self.imm(text)?))
        } else {
            Ok(GSrc::Reg(self.greg(text)?))
        }
    }

    /// `off(base)` with `off` an integer or label; bare `(base)` means
    /// offset zero.
    fn memop(&self, text: &str) -> Result<(i64, GReg), AsmError> {
        let open = self.find_paren(text).ok_or_else(|| {
            self.err(format!("expected memory operand `off(base)`, got `{text}`"))
        })?;
        let off_text = text[..open].trim();
        let inner = text[open + 1..]
            .strip_suffix(')')
            .ok_or_else(|| self.err(format!("missing `)` in memory operand `{text}`")))?;
        let off = if off_text.is_empty() { 0 } else { self.int_or_label(off_text)? };
        Ok((off, self.greg(inner.trim())?))
    }

    fn find_paren(&self, text: &str) -> Option<usize> {
        text.find('(')
    }

    /// Branch/jump target: label or `@abs`.
    fn target(&self, text: &str) -> Result<u32, AsmError> {
        if let Some(abs) = text.strip_prefix('@') {
            return abs.parse().map_err(|_| self.err(format!("invalid absolute target `{text}`")));
        }
        match self.labels.get(text) {
            Some(LabelVal::Code(addr)) => Ok(*addr),
            Some(LabelVal::Data(_)) | Some(LabelVal::Const(_)) => {
                Err(self.err(format!("`{text}` is not a code label")))
            }
            None => Err(self.err(format!("undefined label `{text}`"))),
        }
    }
}

fn int_op(head: &str) -> Option<IntOp> {
    IntOp::ALL.into_iter().find(|op| op.mnemonic() == head)
}

fn fp_bin_op(head: &str) -> Option<FpBinOp> {
    FpBinOp::ALL.into_iter().find(|op| op.mnemonic() == head)
}

fn fp_un_op(head: &str) -> Option<FpUnOp> {
    FpUnOp::ALL.into_iter().find(|op| op.mnemonic() == head)
}

fn branch_cond(head: &str) -> Option<BranchCond> {
    BranchCond::ALL.into_iter().find(|c| c.mnemonic() == head)
}

fn fcmp_cond(head: &str) -> Option<BranchCond> {
    let suffix = head.strip_prefix("fcmp")?;
    BranchCond::ALL.into_iter().find(|c| c.suffix() == suffix)
}

fn encode(stmt: &Stmt, ctx: &Ctx<'_>) -> Result<Inst, AsmError> {
    let line = ctx.line;
    let head = stmt.head.as_str();

    if let Some(op) = int_op(head) {
        let [rd, rs, src2] = expect_n::<3>(stmt, line)?;
        return Ok(Inst::IntOp { op, rd: ctx.greg(rd)?, rs: ctx.greg(rs)?, src2: ctx.gsrc(src2)? });
    }
    if let Some(op) = fp_bin_op(head) {
        let [fd, fs, ft] = expect_n::<3>(stmt, line)?;
        return Ok(Inst::FpBin { op, fd: ctx.freg(fd)?, fs: ctx.freg(fs)?, ft: ctx.freg(ft)? });
    }
    if let Some(op) = fp_un_op(head) {
        let [fd, fs] = expect_n::<2>(stmt, line)?;
        return Ok(Inst::FpUn { op, fd: ctx.freg(fd)?, fs: ctx.freg(fs)? });
    }
    if let Some(cond) = fcmp_cond(head) {
        let [rd, fs, ft] = expect_n::<3>(stmt, line)?;
        return Ok(Inst::FpCmp { cond, rd: ctx.greg(rd)?, fs: ctx.freg(fs)?, ft: ctx.freg(ft)? });
    }
    if let Some(cond) = branch_cond(head) {
        let [rs, src2, target] = expect_n::<3>(stmt, line)?;
        return Ok(Inst::Branch {
            cond,
            rs: ctx.greg(rs)?,
            src2: ctx.gsrc(src2)?,
            target: ctx.target(target)?,
        });
    }

    match head {
        "li" => {
            let [rd, imm] = expect_n::<2>(stmt, line)?;
            Ok(Inst::Li { rd: ctx.greg(rd)?, imm: ctx.imm(imm)? })
        }
        "lif" => {
            let [fd, imm] = expect_n::<2>(stmt, line)?;
            Ok(Inst::LiF { fd: ctx.freg(fd)?, imm: ctx.fimm(imm)? })
        }
        "mv" => {
            let [rd, rs] = expect_n::<2>(stmt, line)?;
            Ok(Inst::IntOp {
                op: IntOp::Add,
                rd: ctx.greg(rd)?,
                rs: ctx.greg(rs)?,
                src2: GSrc::Imm(0),
            })
        }
        "cvtif" => {
            let [fd, rs] = expect_n::<2>(stmt, line)?;
            Ok(Inst::CvtIF { fd: ctx.freg(fd)?, rs: ctx.greg(rs)? })
        }
        "cvtfi" => {
            let [rd, fs] = expect_n::<2>(stmt, line)?;
            Ok(Inst::CvtFI { rd: ctx.greg(rd)?, fs: ctx.freg(fs)? })
        }
        "lw" | "lf" => {
            let [dst, mem] = expect_n::<2>(stmt, line)?;
            let dst = if head == "lw" { Reg::G(ctx.greg(dst)?) } else { Reg::F(ctx.freg(dst)?) };
            let (off, base) = ctx.memop(mem)?;
            Ok(Inst::Load { dst, base, off })
        }
        "sw" | "sf" | "swp" | "sfp" => {
            let [src, mem] = expect_n::<2>(stmt, line)?;
            let src = if head.starts_with("sw") {
                Reg::G(ctx.greg(src)?)
            } else {
                Reg::F(ctx.freg(src)?)
            };
            let (off, base) = ctx.memop(mem)?;
            Ok(Inst::Store { src, base, off, gated: head.ends_with('p') })
        }
        "j" => {
            let [target] = expect_n::<1>(stmt, line)?;
            Ok(Inst::Jump { target: ctx.target(target)? })
        }
        "jr" => {
            let [rs] = expect_n::<1>(stmt, line)?;
            Ok(Inst::JumpReg { rs: ctx.greg(rs)? })
        }
        "halt" => expect_n::<0>(stmt, line).map(|_| Inst::Halt),
        "nop" => expect_n::<0>(stmt, line).map(|_| Inst::Nop),
        "fastfork" => expect_n::<0>(stmt, line).map(|_| Inst::FastFork),
        "chgpri" => expect_n::<0>(stmt, line).map(|_| Inst::ChgPri),
        "killothers" => expect_n::<0>(stmt, line).map(|_| Inst::KillOthers),
        "qunmap" => expect_n::<0>(stmt, line).map(|_| Inst::QUnmap),
        "drain" => expect_n::<0>(stmt, line).map(|_| Inst::Drain),
        "qmap" => {
            let [read, write] = expect_n::<2>(stmt, line)?;
            Ok(Inst::QMap { read: ctx.reg(read)?, write: ctx.reg(write)? })
        }
        "lpid" => {
            let [rd] = expect_n::<1>(stmt, line)?;
            Ok(Inst::Lpid { rd: ctx.greg(rd)? })
        }
        "nlp" => {
            let [rd] = expect_n::<1>(stmt, line)?;
            Ok(Inst::Nlp { rd: ctx.greg(rd)? })
        }
        "setrot" => {
            let [spec] = expect_n::<1>(stmt, line)?;
            let mut parts = spec.split_whitespace();
            let mode = match (parts.next(), parts.next(), parts.next()) {
                (Some("explicit"), None, _) => RotationMode::Explicit,
                (Some("implicit"), Some(interval), None) => {
                    let n = ctx.imm(interval)?;
                    let interval = u32::try_from(n)
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| ctx.err(format!("invalid rotation interval `{n}`")))?;
                    RotationMode::Implicit { interval }
                }
                _ => {
                    return Err(ctx.err(format!(
                        "expected `setrot explicit` or `setrot implicit #N`, got `{spec}`"
                    )))
                }
            };
            Ok(Inst::SetRotation { mode })
        }
        _ => Err(AsmError::new(line, format!("unknown mnemonic `{head}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asm(src: &str) -> Program {
        assemble(src).unwrap()
    }

    #[test]
    fn minimal_program() {
        let prog = asm("halt");
        assert_eq!(prog.insts, vec![Inst::Halt]);
        assert_eq!(prog.entry, 0);
    }

    #[test]
    fn arithmetic_forms() {
        let prog = asm("add r1, r2, r3\nsub r4, r5, #-7\nmul r6, r7, r8");
        assert_eq!(
            prog.insts[0],
            Inst::IntOp { op: IntOp::Add, rd: GReg(1), rs: GReg(2), src2: GSrc::Reg(GReg(3)) }
        );
        assert_eq!(
            prog.insts[1],
            Inst::IntOp { op: IntOp::Sub, rd: GReg(4), rs: GReg(5), src2: GSrc::Imm(-7) }
        );
    }

    #[test]
    fn hex_immediates() {
        let prog = asm("li r1, #0x10\nli r2, #-0x2");
        assert_eq!(prog.insts[0], Inst::Li { rd: GReg(1), imm: 16 });
        assert_eq!(prog.insts[1], Inst::Li { rd: GReg(2), imm: -2 });
    }

    #[test]
    fn labels_resolve_forward_and_back() {
        let prog = asm("start: beq r1, #0, end\n j start\nend: halt");
        assert_eq!(
            prog.insts[0],
            Inst::Branch { cond: BranchCond::Eq, rs: GReg(1), src2: GSrc::Imm(0), target: 2 }
        );
        assert_eq!(prog.insts[1], Inst::Jump { target: 0 });
    }

    #[test]
    fn memory_operands() {
        let prog = asm(".data\nv: .word 5\n.text\nlw r1, v(r0)\nlf f1, 4(r2)\nsw r1, (r3)");
        assert_eq!(prog.insts[0], Inst::Load { dst: Reg::G(GReg(1)), base: GReg(0), off: 0 });
        assert_eq!(prog.insts[1], Inst::Load { dst: Reg::F(FReg(1)), base: GReg(2), off: 4 });
        assert_eq!(
            prog.insts[2],
            Inst::Store { src: Reg::G(GReg(1)), base: GReg(3), off: 0, gated: false }
        );
        assert_eq!(prog.data, vec![DataSegment { base: 0, words: vec![5] }]);
    }

    #[test]
    fn data_labels_as_immediates_and_words() {
        let prog = asm(
            ".data\nhead: .word node\nnode: .word 1, 2\n.text\nli r1, #head\nlw r2, 0(r1)\nhalt",
        );
        // head at 0 holds the address of node (1).
        assert_eq!(prog.data[0].base, 0);
        assert_eq!(prog.data[0].words, vec![1, 1, 2]);
        assert_eq!(prog.insts[0], Inst::Li { rd: GReg(1), imm: 0 });
    }

    #[test]
    fn float_data_and_lif() {
        let prog = asm(".data\nc: .float 0.5, -2.0\n.text\nlif f1, #1.25\nhalt");
        assert_eq!(prog.data[0].words, vec![0.5f64.to_bits(), (-2.0f64).to_bits()]);
        assert_eq!(prog.insts[0], Inst::LiF { fd: FReg(1), imm: 1.25 });
    }

    #[test]
    fn space_and_org() {
        let prog = asm(".data\na: .word 1\n.space 3\nb: .word 2\n.org 10\nc: .word 3\n.text\nhalt");
        assert_eq!(prog.data.len(), 3);
        assert_eq!(prog.data[0], DataSegment { base: 0, words: vec![1] });
        assert_eq!(prog.data[1], DataSegment { base: 4, words: vec![2] });
        assert_eq!(prog.data[2], DataSegment { base: 10, words: vec![3] });
    }

    #[test]
    fn entry_directive() {
        let prog = asm("nop\nmain: halt\n.entry main");
        assert_eq!(prog.entry, 1);
    }

    #[test]
    fn special_instructions() {
        let prog = asm(
            "fastfork\nchgpri\nkillothers\nqmap r4, f5\nqunmap\nlpid r9\nsetrot implicit #8\nsetrot explicit\nswp r1, 0(r2)\nsfp f1, 0(r2)",
        );
        assert_eq!(prog.insts[0], Inst::FastFork);
        assert_eq!(prog.insts[3], Inst::QMap { read: Reg::G(GReg(4)), write: Reg::F(FReg(5)) });
        assert_eq!(prog.insts[5], Inst::Lpid { rd: GReg(9) });
        assert_eq!(
            prog.insts[6],
            Inst::SetRotation { mode: RotationMode::Implicit { interval: 8 } }
        );
        assert_eq!(prog.insts[7], Inst::SetRotation { mode: RotationMode::Explicit });
        assert!(matches!(prog.insts[8], Inst::Store { gated: true, .. }));
    }

    #[test]
    fn pseudo_mv() {
        let prog = asm("mv r1, r2");
        assert_eq!(
            prog.insts[0],
            Inst::IntOp { op: IntOp::Add, rd: GReg(1), rs: GReg(2), src2: GSrc::Imm(0) }
        );
    }

    #[test]
    fn absolute_targets() {
        let prog = asm("j @1\nhalt");
        assert_eq!(prog.insts[0], Inst::Jump { target: 1 });
    }

    #[test]
    fn fcmp_family() {
        let prog = asm("fcmplt r1, f2, f3\nfcmpge r4, f5, f6");
        assert_eq!(
            prog.insts[0],
            Inst::FpCmp { cond: BranchCond::Lt, rd: GReg(1), fs: FReg(2), ft: FReg(3) }
        );
        assert_eq!(
            prog.insts[1],
            Inst::FpCmp { cond: BranchCond::Ge, rd: GReg(4), fs: FReg(5), ft: FReg(6) }
        );
    }

    // --- error cases ---

    #[test]
    fn unknown_mnemonic() {
        let err = assemble("frobnicate r1").unwrap_err();
        assert!(err.to_string().contains("unknown mnemonic"));
    }

    #[test]
    fn wrong_operand_count() {
        let err = assemble("add r1, r2").unwrap_err();
        assert!(err.to_string().contains("expects 3 operand(s)"));
    }

    #[test]
    fn undefined_label() {
        let err = assemble("j nowhere").unwrap_err();
        assert!(err.to_string().contains("undefined label"));
    }

    #[test]
    fn duplicate_label() {
        let err = assemble("a: nop\na: halt").unwrap_err();
        assert!(err.to_string().contains("duplicate label"));
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn data_label_not_branch_target() {
        let err = assemble(".data\nv: .word 1\n.text\nj v").unwrap_err();
        assert!(err.to_string().contains("not a code label"));
    }

    #[test]
    fn instructions_outside_text_rejected() {
        let err = assemble(".data\nadd r1, r2, r3").unwrap_err();
        assert!(err.to_string().contains(".text"));
    }

    #[test]
    fn word_outside_data_rejected() {
        let err = assemble(".word 3").unwrap_err();
        assert!(err.to_string().contains(".data"));
    }

    #[test]
    fn duplicate_data_address_rejected() {
        let err = assemble(".data\n.word 1\n.org 0\n.word 2\n.text\nhalt").unwrap_err();
        assert!(err.to_string().contains("defined twice"));
    }

    #[test]
    fn bad_entry_rejected() {
        assert!(assemble("halt\n.entry nowhere").is_err());
        assert!(assemble(".data\nv: .word 1\n.text\nhalt\n.entry v").is_err());
    }

    #[test]
    fn bad_register_reports_line() {
        let err = assemble("nop\nadd r1, r99, r2").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("r99"));
    }

    #[test]
    fn bad_rotation_interval() {
        assert!(assemble("setrot implicit #0").is_err());
        assert!(assemble("setrot sideways").is_err());
    }

    #[test]
    fn float_ops() {
        let prog = asm("fadd f1, f2, f3\nfdiv f4, f5, f6\nfabs f7, f8\nfmov f9, f10");
        assert_eq!(
            prog.insts[0],
            Inst::FpBin { op: FpBinOp::FAdd, fd: FReg(1), fs: FReg(2), ft: FReg(3) }
        );
        assert_eq!(
            prog.insts[1],
            Inst::FpBin { op: FpBinOp::FDiv, fd: FReg(4), fs: FReg(5), ft: FReg(6) }
        );
        assert_eq!(prog.insts[2], Inst::FpUn { op: FpUnOp::FAbs, fd: FReg(7), fs: FReg(8) });
        assert_eq!(prog.insts[3], Inst::FpUn { op: FpUnOp::FMov, fd: FReg(9), fs: FReg(10) });
    }
}

#[cfg(test)]
mod equ_tests {
    use super::*;

    #[test]
    fn equ_defines_immediates_and_offsets() {
        let prog = assemble(
            ".equ N, 64\n.equ BASE, 0x100\nli r1, #N\nlw r2, BASE(r0)\nslt r3, r1, #N\nhalt",
        )
        .unwrap();
        assert_eq!(prog.insts[0], Inst::Li { rd: GReg(1), imm: 64 });
        assert_eq!(prog.insts[1], Inst::Load { dst: Reg::G(GReg(2)), base: GReg(0), off: 256 });
    }

    #[test]
    fn equ_values_can_reference_earlier_names() {
        let prog = assemble(".equ A, 10\n.equ B, A\nli r1, #B\nhalt").unwrap();
        assert_eq!(prog.insts[0], Inst::Li { rd: GReg(1), imm: 10 });
    }

    #[test]
    fn equ_is_not_a_branch_target() {
        let err = assemble(".equ X, 3\nj X").unwrap_err();
        assert!(err.to_string().contains("not a code label"));
    }

    #[test]
    fn equ_rejects_duplicates_and_junk() {
        assert!(assemble(".equ A, 1\n.equ A, 2\nhalt")
            .unwrap_err()
            .to_string()
            .contains("duplicate"));
        assert!(assemble(".equ 9x, 1\nhalt").is_err());
        assert!(assemble(".equ A, nonsense\nhalt").is_err());
        assert!(assemble(".equ A\nhalt").is_err());
    }

    #[test]
    fn equ_works_in_data_directives() {
        let prog = assemble(".equ V, -7\n.data\nd: .word V\n.text\nhalt").unwrap();
        assert_eq!(prog.data[0].words, vec![(-7i64) as u64]);
    }
}
