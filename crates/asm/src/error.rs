//! Assembler error type.

use std::fmt;

/// An assembly error with the 1-based source line it occurred on.
///
/// # Examples
///
/// ```
/// use hirata_asm::assemble;
/// let err = assemble("li r1").unwrap_err();
/// assert_eq!(err.line(), 1);
/// assert!(err.to_string().contains("line 1"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    line: usize,
    message: String,
}

impl AsmError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        AsmError { line, message: message.into() }
    }

    /// The 1-based source line the error occurred on.
    pub fn line(&self) -> usize {
        self.line
    }

    /// The diagnostic message, without the line prefix.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}
