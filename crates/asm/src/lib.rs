//! Two-pass assembler for the Hirata 1992 ISA.
//!
//! The syntax is a conventional RISC assembly with one instruction per
//! line, `;` comments, `label:` definitions, and a small set of
//! directives:
//!
//! ```text
//! .data                   ; switch to the data segment
//! vec:    .word 1, 2, 3   ; initialized integer words
//! coef:   .float 0.5, 2.0 ; initialized floating words
//! buf:    .space 16       ; 16 zeroed words
//!         .org 256        ; move the data cursor
//! .text                   ; switch to the code segment (default)
//! .entry main             ; entry point (defaults to address 0)
//! main:   li   r1, #vec   ; data labels are immediates
//!         lw   r2, 0(r1)
//!         lw   r3, vec(r0)   ; labels may be memory offsets too
//!         add  r4, r2, r3
//!         bne  r4, #0, main
//!         halt
//! ```
//!
//! All of Table 1's operations are available, as are the paper's
//! special instructions (`fastfork`, `chgpri`, `killothers`, `swp`/`sfp`
//! priority-gated stores, `qmap`/`qunmap`, `setrot`, `lpid`). The
//! pseudo-instruction `mv rd, rs` expands to `add rd, rs, #0`.
//!
//! # Examples
//!
//! ```
//! use hirata_asm::assemble;
//!
//! let prog = assemble("
//!     li   r1, #10
//! loop:
//!     sub  r1, r1, #1
//!     bne  r1, #0, loop
//!     halt
//! ")?;
//! assert_eq!(prog.len(), 4);
//! assert_eq!(prog.label("loop"), Some(1));
//! # Ok::<(), hirata_asm::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assemble;
mod error;
mod lexer;

pub use assemble::assemble;
pub use error::AsmError;
