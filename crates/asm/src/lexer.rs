//! Line-level tokenization: comments, labels, mnemonics, operands.

use crate::error::AsmError;

/// One meaningful source line, after comment stripping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Line {
    /// 1-based source line number.
    pub num: usize,
    /// Labels defined at the start of this line (`foo: bar: insn`).
    pub labels: Vec<String>,
    /// The statement, if any.
    pub stmt: Option<Stmt>,
}

/// A directive or instruction with raw operand strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Stmt {
    /// Lower-cased mnemonic or directive (directives keep their `.`).
    pub head: String,
    /// Comma-separated operand texts, trimmed.
    pub operands: Vec<String>,
}

fn valid_label(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Splits source text into [`Line`]s. Blank/comment-only lines are
/// dropped.
pub(crate) fn lex(src: &str) -> Result<Vec<Line>, AsmError> {
    let mut lines = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let num = idx + 1;
        let text = match raw.find(';') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let mut rest = text.trim();
        if rest.is_empty() {
            continue;
        }
        let mut labels = Vec::new();
        // Labels must appear before the statement: `name:`.
        while let Some(colon) = rest.find(':') {
            let candidate = rest[..colon].trim();
            // A colon later in the line (no valid label before it) is
            // not a label separator; e.g. there is no other use of ':'
            // in the grammar, so a malformed label is an error.
            if !valid_label(candidate) {
                return Err(AsmError::new(num, format!("invalid label name `{candidate}`")));
            }
            labels.push(candidate.to_owned());
            rest = rest[colon + 1..].trim_start();
        }
        let stmt = if rest.is_empty() {
            None
        } else {
            let (head, tail) = match rest.find(char::is_whitespace) {
                Some(pos) => (&rest[..pos], rest[pos..].trim()),
                None => (rest, ""),
            };
            let operands = if tail.is_empty() {
                Vec::new()
            } else {
                tail.split(',').map(|s| s.trim().to_owned()).collect()
            };
            if operands.iter().any(String::is_empty) {
                return Err(AsmError::new(num, "empty operand (stray comma?)"));
            }
            Some(Stmt { head: head.to_ascii_lowercase(), operands })
        };
        lines.push(Line { num, labels, stmt });
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(src: &str) -> Line {
        let mut v = lex(src).unwrap();
        assert_eq!(v.len(), 1);
        v.remove(0)
    }

    #[test]
    fn comments_and_blanks_dropped() {
        assert!(lex("; just a comment\n\n   \n").unwrap().is_empty());
    }

    #[test]
    fn label_and_instruction() {
        let line = one("main: li r1, #3 ; init");
        assert_eq!(line.labels, ["main"]);
        let stmt = line.stmt.unwrap();
        assert_eq!(stmt.head, "li");
        assert_eq!(stmt.operands, ["r1", "#3"]);
    }

    #[test]
    fn multiple_labels_one_line() {
        let line = one("a: b: halt");
        assert_eq!(line.labels, ["a", "b"]);
        assert_eq!(line.stmt.unwrap().head, "halt");
    }

    #[test]
    fn bare_label_line() {
        let line = one("start:");
        assert_eq!(line.labels, ["start"]);
        assert!(line.stmt.is_none());
    }

    #[test]
    fn mnemonics_lowercased() {
        assert_eq!(one("HALT").stmt.unwrap().head, "halt");
    }

    #[test]
    fn invalid_label_rejected() {
        assert!(lex("3x: halt").is_err());
        assert!(lex(" : halt").is_err());
    }

    #[test]
    fn stray_comma_rejected() {
        let err = lex("add r1, , r2").unwrap_err();
        assert!(err.to_string().contains("empty operand"));
    }

    #[test]
    fn line_numbers_track_source() {
        let lines = lex("\n\nhalt\n\nnop").unwrap();
        assert_eq!(lines[0].num, 3);
        assert_eq!(lines[1].num, 5);
    }

    #[test]
    fn memory_operand_survives_lexing() {
        let stmt = one("lw r1, 4(r2)").stmt.unwrap();
        assert_eq!(stmt.operands, ["r1", "4(r2)"]);
    }
}
