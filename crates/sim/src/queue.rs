//! Queue registers (§2.3.1): a ring of hardware FIFOs connecting each
//! logical processor to its successor, with full/empty bits acting as
//! scoreboard bits.
//!
//! Link `k` is *read* by logical processor `k` and *written* by its
//! predecessor `(k + S - 1) mod S` (Figure 5). Entries become readable
//! only once the producing instruction's result would have been
//! available (`selected + result latency + 1`), mirroring the register
//! scoreboard timing.

use std::collections::VecDeque;

/// The ring of queue registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct QueueRing {
    links: Vec<VecDeque<(u64, u64)>>, // (available-from cycle, bits)
    capacity: usize,
}

impl QueueRing {
    pub(crate) fn new(slots: usize, capacity: usize) -> Self {
        QueueRing { links: vec![VecDeque::new(); slots], capacity }
    }

    /// The link written by logical processor `lp` (read by the next).
    pub(crate) fn write_link(&self, lp: usize) -> usize {
        (lp + 1) % self.links.len()
    }

    /// The link read by logical processor `lp`.
    pub(crate) fn read_link(&self, lp: usize) -> usize {
        lp
    }

    /// True if a read issued at `now` would find data (empty bit off).
    pub(crate) fn can_read(&self, link: usize, now: u64) -> bool {
        matches!(self.links[link].front(), Some(&(avail, _)) if avail <= now)
    }

    /// Dequeues the front entry. Callers must have checked
    /// [`Self::can_read`].
    ///
    /// # Panics
    ///
    /// Panics if the link is empty (a simulator bug, not a program
    /// error).
    pub(crate) fn read(&mut self, link: usize) -> u64 {
        self.links[link].pop_front().expect("queue read without can_read check").1
    }

    /// First cycle at which a read of `link` could succeed by the
    /// advance of time alone: the front entry's avail time, or
    /// `u64::MAX` when the link is empty (only a push can lift that).
    /// Feeds the head-stall block and the event wheel; only this link's
    /// reader can pop the front, so the bound is stable until a push
    /// or pop event (which clear the block).
    pub(crate) fn readable_at(&self, link: usize) -> u64 {
        self.links[link].front().map_or(u64::MAX, |&(avail, _)| avail)
    }

    /// True if a write can be accepted (full bit off). In-flight
    /// entries count against the capacity.
    pub(crate) fn can_write(&self, link: usize) -> bool {
        self.links[link].len() < self.capacity
    }

    /// Enqueues `bits`, readable from cycle `avail`.
    pub(crate) fn write(&mut self, link: usize, avail: u64, bits: u64) {
        debug_assert!(self.links[link].len() < self.capacity);
        self.links[link].push_back((avail, bits));
    }

    /// Number of entries (including not-yet-readable ones) in a link.
    pub(crate) fn len(&self, link: usize) -> usize {
        self.links[link].len()
    }

    /// Empties every link (done by `killothers` so a later loop starts
    /// from clean queues).
    pub(crate) fn flush(&mut self) {
        for link in &mut self.links {
            link.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_topology_matches_figure_5() {
        let ring = QueueRing::new(4, 2);
        assert_eq!(ring.write_link(0), 1);
        assert_eq!(ring.read_link(1), 1);
        assert_eq!(ring.write_link(3), 0);
        assert_eq!(ring.read_link(0), 0);
    }

    #[test]
    fn entries_become_readable_at_avail_time() {
        let mut ring = QueueRing::new(2, 4);
        ring.write(1, 10, 42);
        assert!(!ring.can_read(1, 9));
        assert!(ring.can_read(1, 10));
        assert_eq!(ring.read(1), 42);
        assert!(!ring.can_read(1, 100));
    }

    #[test]
    fn fifo_order_preserved() {
        let mut ring = QueueRing::new(1, 4);
        ring.write(0, 0, 1);
        ring.write(0, 0, 2);
        assert_eq!(ring.read(0), 1);
        assert_eq!(ring.read(0), 2);
    }

    #[test]
    fn capacity_limits_writes() {
        let mut ring = QueueRing::new(1, 2);
        assert!(ring.can_write(0));
        ring.write(0, 0, 1);
        ring.write(0, 5, 2);
        assert!(!ring.can_write(0));
        assert_eq!(ring.len(0), 2);
        ring.read(0);
        assert!(ring.can_write(0));
    }

    #[test]
    fn readable_at_reports_front_avail_or_never() {
        let mut ring = QueueRing::new(2, 4);
        assert_eq!(ring.readable_at(1), u64::MAX);
        ring.write(1, 10, 42);
        ring.write(1, 3, 7); // younger entry readable earlier: front rules
        assert_eq!(ring.readable_at(1), 10);
        assert!(!ring.can_read(1, 9));
        assert!(ring.can_read(1, ring.readable_at(1)));
        ring.read(1);
        assert_eq!(ring.readable_at(1), 3);
    }

    #[test]
    fn flush_clears_everything() {
        let mut ring = QueueRing::new(3, 2);
        ring.write(0, 0, 1);
        ring.write(2, 0, 3);
        ring.flush();
        for link in 0..3 {
            assert_eq!(ring.len(link), 0);
        }
    }

    #[test]
    fn single_slot_ring_loops_to_itself() {
        let ring = QueueRing::new(1, 2);
        assert_eq!(ring.write_link(0), 0);
        assert_eq!(ring.read_link(0), 0);
    }
}

/// Property tests (found regressions live in
/// `crates/sim/properties.proptest-regressions`).
#[cfg(test)]
mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Under any interleaving of writes and reads the ring behaves
        /// exactly like a per-link FIFO of unique values: nothing is
        /// dropped, duplicated, reordered, or readable before its
        /// avail time, and capacity is never exceeded.
        #[test]
        fn ring_never_drops_or_duplicates(
            slots in 1usize..6,
            capacity in 1usize..9,
            ops in prop::collection::vec((0usize..8, 0u8..2, 0u64..5), 1..128),
        ) {
            let mut ring = QueueRing::new(slots, capacity);
            let mut model: Vec<VecDeque<(u64, u64)>> = vec![VecDeque::new(); slots];
            let mut next_value = 0u64; // unique, so a dup would be caught
            for (now, (lp, op, avail_delta)) in ops.into_iter().enumerate() {
                let now = now as u64;
                let lp = lp % slots;
                if op == 0 {
                    let link = ring.write_link(lp);
                    prop_assert_eq!(ring.can_write(link), model[link].len() < capacity);
                    if ring.can_write(link) {
                        let avail = now + avail_delta;
                        ring.write(link, avail, next_value);
                        model[link].push_back((avail, next_value));
                        next_value += 1;
                    }
                } else {
                    let link = ring.read_link(lp);
                    let readable =
                        matches!(model[link].front(), Some(&(avail, _)) if avail <= now);
                    prop_assert_eq!(ring.can_read(link, now), readable);
                    if readable {
                        let (_, expected) = model[link].pop_front().expect("model front");
                        prop_assert_eq!(ring.read(link), expected);
                    }
                }
                for (link, fifo) in model.iter().enumerate() {
                    prop_assert_eq!(ring.len(link), fifo.len());
                }
            }
            // Drain: far in the future everything becomes readable, in
            // exactly model order — proof nothing was lost on the way.
            for (link, fifo) in model.iter_mut().enumerate() {
                while let Some((_, expected)) = fifo.pop_front() {
                    prop_assert!(ring.can_read(link, u64::MAX));
                    prop_assert_eq!(ring.read(link), expected);
                }
                prop_assert!(!ring.can_read(link, u64::MAX));
            }
        }

        /// `flush` is total: afterwards every link is empty and
        /// writable again, whatever was in flight.
        #[test]
        fn flush_always_empties_every_link(
            slots in 1usize..6,
            capacity in 1usize..5,
            writes in prop::collection::vec((0usize..8, 0u64..10), 0..32),
        ) {
            let mut ring = QueueRing::new(slots, capacity);
            for (lp, avail) in writes {
                let link = ring.write_link(lp % slots);
                if ring.can_write(link) {
                    ring.write(link, avail, 7);
                }
            }
            ring.flush();
            for link in 0..slots {
                prop_assert_eq!(ring.len(link), 0);
                prop_assert!(!ring.can_read(link, u64::MAX));
                prop_assert!(ring.can_write(link));
            }
        }
    }
}
