//! Architectural execution of functional-unit instructions.
//!
//! The machine captures operand *values* at issue time (operands are
//! read in stage S and carried into standby stations, §2.1.1), so
//! execution here is a pure function of the instruction and its
//! captured operand bits.

use hirata_isa::{BranchCond, FpBinOp, FpUnOp, GSrc, Inst, IntOp};

use crate::predecode::DecodedInst;

/// Debug-only check that a predecoded entry still matches a fresh
/// decode of its instruction — the differential guard for the
/// predecode pass. Release builds compile this to nothing.
#[inline]
pub(crate) fn debug_assert_fresh_decode(d: &DecodedInst) {
    debug_assert_eq!(
        *d,
        DecodedInst::of(d.inst),
        "predecoded entry diverged from a fresh decode of `{}`",
        d.inst
    );
}

/// What a functional unit does when it finally executes an
/// instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum FuAction {
    /// Write the given bits to the destination register.
    Write(u64),
    /// Load from data memory into the destination register.
    Load {
        /// Word address.
        addr: u64,
    },
    /// Store to data memory.
    Store {
        /// Word address.
        addr: u64,
        /// Raw bits to store.
        bits: u64,
    },
}

/// Resolves the two operand slots of `inst` to concrete bit patterns.
/// `read` supplies register bits for the registers named by
/// [`Inst::srcs`]; immediates are folded in here.
pub(crate) fn resolve_operands(
    inst: &Inst,
    mut read: impl FnMut(hirata_isa::Reg) -> u64,
) -> [u64; 2] {
    let regs = inst.srcs();
    let mut vals = [0u64; 2];
    for (slot, reg) in regs.iter().enumerate() {
        if let Some(r) = reg {
            vals[slot] = read(*r);
        }
    }
    // Immediate second operands occupy the register-free slot.
    match inst {
        Inst::IntOp { src2: GSrc::Imm(i), .. } | Inst::Branch { src2: GSrc::Imm(i), .. } => {
            vals[1] = *i as u64;
        }
        _ => {}
    }
    vals
}

/// Evaluates a branch condition on integer operand bits.
pub(crate) fn branch_taken(cond: BranchCond, vals: [u64; 2]) -> bool {
    cond.eval(vals[0] as i64, vals[1] as i64)
}

fn int_op(op: IntOp, a: i64, b: i64) -> i64 {
    match op {
        IntOp::Add => a.wrapping_add(b),
        IntOp::Sub => a.wrapping_sub(b),
        IntOp::And => a & b,
        IntOp::Or => a | b,
        IntOp::Xor => a ^ b,
        IntOp::Slt => (a < b) as i64,
        IntOp::Sle => (a <= b) as i64,
        IntOp::Seq => (a == b) as i64,
        IntOp::Sne => (a != b) as i64,
        IntOp::Sll => a.wrapping_shl(b as u32 & 63),
        IntOp::Srl => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
        IntOp::Sra => a.wrapping_shr(b as u32 & 63),
        IntOp::Mul => a.wrapping_mul(b),
        IntOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        IntOp::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
    }
}

fn fp_cmp(cond: BranchCond, a: f64, b: f64) -> bool {
    match cond {
        BranchCond::Eq => a == b,
        BranchCond::Ne => a != b,
        BranchCond::Lt => a < b,
        BranchCond::Le => a <= b,
        BranchCond::Gt => a > b,
        BranchCond::Ge => a >= b,
    }
}

/// Computes the effect of a functional-unit instruction from its
/// captured operand bits. `lpid` and `nlp` feed the `lpid`/`nlp`
/// special reads.
///
/// Returns `None` for decode-unit instructions (those never reach a
/// functional unit); callers surface that as
/// [`crate::MachineError::DecodeAtFu`] so a malformed program becomes
/// a reportable machine check instead of a panic.
pub(crate) fn fu_action(inst: &Inst, vals: [u64; 2], lpid: i64, nlp: i64) -> Option<FuAction> {
    Some(match *inst {
        Inst::IntOp { op, .. } => {
            FuAction::Write(int_op(op, vals[0] as i64, vals[1] as i64) as u64)
        }
        Inst::Li { imm, .. } => FuAction::Write(imm as u64),
        Inst::LiF { imm, .. } => FuAction::Write(imm.to_bits()),
        Inst::FpBin { op, .. } => {
            let (a, b) = (f64::from_bits(vals[0]), f64::from_bits(vals[1]));
            let r = match op {
                FpBinOp::FAdd => a + b,
                FpBinOp::FSub => a - b,
                FpBinOp::FMul => a * b,
                FpBinOp::FDiv => a / b,
            };
            FuAction::Write(r.to_bits())
        }
        Inst::FpUn { op, .. } => {
            let a = f64::from_bits(vals[0]);
            let r = match op {
                FpUnOp::FAbs => a.abs(),
                FpUnOp::FNeg => -a,
                FpUnOp::FMov => a,
            };
            FuAction::Write(r.to_bits())
        }
        Inst::FpCmp { cond, .. } => {
            let (a, b) = (f64::from_bits(vals[0]), f64::from_bits(vals[1]));
            FuAction::Write(fp_cmp(cond, a, b) as u64)
        }
        Inst::CvtIF { .. } => FuAction::Write(((vals[0] as i64) as f64).to_bits()),
        Inst::CvtFI { .. } => FuAction::Write((f64::from_bits(vals[0]) as i64) as u64),
        Inst::Lpid { .. } => FuAction::Write(lpid as u64),
        Inst::Nlp { .. } => FuAction::Write(nlp as u64),
        Inst::Load { off, .. } => {
            FuAction::Load { addr: (vals[0] as i64).wrapping_add(off) as u64 }
        }
        Inst::Store { off, .. } => {
            FuAction::Store { addr: (vals[1] as i64).wrapping_add(off) as u64, bits: vals[0] }
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirata_isa::{FReg, GReg, Reg};

    fn g(n: u8) -> Reg {
        Reg::G(GReg(n))
    }

    #[test]
    fn resolve_folds_immediates() {
        let inst = Inst::IntOp { op: IntOp::Add, rd: GReg(1), rs: GReg(2), src2: GSrc::Imm(-3) };
        let vals = resolve_operands(&inst, |r| {
            assert_eq!(r, g(2));
            10u64
        });
        assert_eq!(vals[0], 10);
        assert_eq!(vals[1] as i64, -3);
    }

    #[test]
    fn integer_semantics() {
        let cases = [
            (IntOp::Add, 3, 4, 7),
            (IntOp::Sub, 3, 4, -1),
            (IntOp::And, 0b1100, 0b1010, 0b1000),
            (IntOp::Or, 0b1100, 0b1010, 0b1110),
            (IntOp::Xor, 0b1100, 0b1010, 0b0110),
            (IntOp::Slt, -1, 0, 1),
            (IntOp::Sle, 5, 5, 1),
            (IntOp::Seq, 5, 6, 0),
            (IntOp::Sne, 5, 6, 1),
            (IntOp::Sll, 1, 4, 16),
            (IntOp::Srl, -1, 60, 15),
            (IntOp::Sra, -16, 2, -4),
            (IntOp::Mul, -3, 7, -21),
            (IntOp::Div, 7, 2, 3),
            (IntOp::Div, 7, 0, 0),
            (IntOp::Rem, 7, 2, 1),
            (IntOp::Rem, 7, 0, 0),
        ];
        for (op, a, b, want) in cases {
            assert_eq!(int_op(op, a, b), want, "{op:?} {a} {b}");
        }
    }

    #[test]
    fn overflow_wraps() {
        assert_eq!(int_op(IntOp::Add, i64::MAX, 1), i64::MIN);
        assert_eq!(int_op(IntOp::Mul, i64::MAX, 2), -2);
        // i64::MIN / -1 would overflow a naive division.
        assert_eq!(int_op(IntOp::Div, i64::MIN, -1), i64::MIN);
    }

    #[test]
    fn fp_semantics() {
        let fadd = Inst::FpBin { op: FpBinOp::FAdd, fd: FReg(0), fs: FReg(1), ft: FReg(2) };
        let vals = [1.5f64.to_bits(), 2.25f64.to_bits()];
        assert_eq!(fu_action(&fadd, vals, 0, 1).unwrap(), FuAction::Write(3.75f64.to_bits()));

        let fdiv = Inst::FpBin { op: FpBinOp::FDiv, fd: FReg(0), fs: FReg(1), ft: FReg(2) };
        let vals = [1.0f64.to_bits(), 0.0f64.to_bits()];
        assert_eq!(fu_action(&fdiv, vals, 0, 1).unwrap(), FuAction::Write(f64::INFINITY.to_bits()));

        let fneg = Inst::FpUn { op: FpUnOp::FNeg, fd: FReg(0), fs: FReg(1) };
        assert_eq!(
            fu_action(&fneg, [2.0f64.to_bits(), 0], 0, 1).unwrap(),
            FuAction::Write((-2.0f64).to_bits())
        );
    }

    #[test]
    fn fp_compare_writes_zero_or_one() {
        let cmp = Inst::FpCmp { cond: BranchCond::Lt, rd: GReg(1), fs: FReg(0), ft: FReg(1) };
        assert_eq!(
            fu_action(&cmp, [1.0f64.to_bits(), 2.0f64.to_bits()], 0, 1).unwrap(),
            FuAction::Write(1)
        );
        assert_eq!(
            fu_action(&cmp, [2.0f64.to_bits(), 1.0f64.to_bits()], 0, 1).unwrap(),
            FuAction::Write(0)
        );
        // NaN compares false.
        assert_eq!(
            fu_action(&cmp, [f64::NAN.to_bits(), 1.0f64.to_bits()], 0, 1).unwrap(),
            FuAction::Write(0)
        );
    }

    #[test]
    fn conversions() {
        let cvtif = Inst::CvtIF { fd: FReg(0), rs: GReg(1) };
        assert_eq!(
            fu_action(&cvtif, [(-7i64) as u64, 0], 0, 1).unwrap(),
            FuAction::Write((-7.0f64).to_bits())
        );
        let cvtfi = Inst::CvtFI { rd: GReg(1), fs: FReg(0) };
        assert_eq!(
            fu_action(&cvtfi, [(-7.9f64).to_bits(), 0], 0, 1).unwrap(),
            FuAction::Write(-7i64 as u64)
        );
    }

    #[test]
    fn load_store_addressing() {
        let load = Inst::Load { dst: g(1), base: GReg(2), off: -4 };
        assert_eq!(fu_action(&load, [100, 0], 0, 1).unwrap(), FuAction::Load { addr: 96 });

        let store = Inst::Store { src: g(1), base: GReg(2), off: 8, gated: false };
        // vals[0] = value, vals[1] = base.
        assert_eq!(
            fu_action(&store, [42, 100], 0, 1).unwrap(),
            FuAction::Store { addr: 108, bits: 42 }
        );
    }

    #[test]
    fn lpid_and_nlp_reads() {
        assert_eq!(
            fu_action(&Inst::Lpid { rd: GReg(1) }, [0, 0], 3, 4).unwrap(),
            FuAction::Write(3)
        );
        assert_eq!(
            fu_action(&Inst::Nlp { rd: GReg(1) }, [0, 0], 3, 4).unwrap(),
            FuAction::Write(4)
        );
    }

    #[test]
    fn branch_taken_on_integers() {
        assert!(branch_taken(BranchCond::Lt, [(-1i64) as u64, 0]));
        assert!(!branch_taken(BranchCond::Gt, [(-1i64) as u64, 0]));
    }

    #[test]
    fn decode_op_is_rejected() {
        assert_eq!(fu_action(&Inst::Halt, [0, 0], 0, 1), None);
        assert_eq!(fu_action(&Inst::Nop, [0, 0], 0, 1), None);
    }
}
