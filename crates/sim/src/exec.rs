//! Architectural execution of functional-unit instructions.
//!
//! The machine captures operand *values* at issue time (operands are
//! read in stage S and carried into standby stations, §2.1.1), so
//! execution here is a pure function of the instruction and its
//! captured operand bits.
//!
//! Execution has two equivalent implementations:
//!
//! * [`fu_action`] — the readable enum-match **oracle**, one nested
//!   `match` over the instruction forms;
//! * [`dispatch`] — the **µop handler table**, an array of function
//!   pointers indexed by the predecoded [`ExecOp`] code, which is what
//!   the machine's hot path calls (one indexed load and an indirect
//!   call, no enum matches).
//!
//! Debug builds cross-check every dispatch against a fresh oracle
//! evaluation, and the `uop` integration test sweeps every instruction
//! form plus seeded random programs through both.

use hirata_isa::{BranchCond, FpBinOp, FpUnOp, GSrc, Inst, IntOp};

use crate::predecode::{DecodedInst, ExecOp, EXEC_OP_COUNT};

/// Debug-only check that a predecoded entry still matches a fresh
/// decode of its instruction — the differential guard for the
/// predecode pass (since the µop extension this covers the `exec_op`
/// code, the capture plan, and the pre-folded immediate too). Release
/// builds compile this to nothing.
#[inline]
pub(crate) fn debug_assert_fresh_decode(d: &DecodedInst) {
    debug_assert_eq!(
        *d,
        DecodedInst::of(d.inst),
        "predecoded entry diverged from a fresh decode of `{}`",
        d.inst
    );
}

/// What a functional unit does when it finally executes an
/// instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FuAction {
    /// Write the given bits to the destination register.
    Write(u64),
    /// Load from data memory into the destination register.
    Load {
        /// Word address.
        addr: u64,
    },
    /// Store to data memory.
    Store {
        /// Word address.
        addr: u64,
        /// Raw bits to store.
        bits: u64,
    },
}

/// Resolves the two operand slots of `inst` to concrete bit patterns.
/// `read` supplies register bits for the registers named by
/// [`Inst::srcs`]; immediates are folded in here.
pub(crate) fn resolve_operands(
    inst: &Inst,
    mut read: impl FnMut(hirata_isa::Reg) -> u64,
) -> [u64; 2] {
    let regs = inst.srcs();
    let mut vals = [0u64; 2];
    for (slot, reg) in regs.iter().enumerate() {
        if let Some(r) = reg {
            vals[slot] = read(*r);
        }
    }
    // Immediate second operands occupy the register-free slot.
    match inst {
        Inst::IntOp { src2: GSrc::Imm(i), .. } | Inst::Branch { src2: GSrc::Imm(i), .. } => {
            vals[1] = *i as u64;
        }
        _ => {}
    }
    vals
}

/// Evaluates a branch condition on integer operand bits.
pub(crate) fn branch_taken(cond: BranchCond, vals: [u64; 2]) -> bool {
    cond.eval(vals[0] as i64, vals[1] as i64)
}

fn int_op(op: IntOp, a: i64, b: i64) -> i64 {
    match op {
        IntOp::Add => a.wrapping_add(b),
        IntOp::Sub => a.wrapping_sub(b),
        IntOp::And => a & b,
        IntOp::Or => a | b,
        IntOp::Xor => a ^ b,
        IntOp::Slt => (a < b) as i64,
        IntOp::Sle => (a <= b) as i64,
        IntOp::Seq => (a == b) as i64,
        IntOp::Sne => (a != b) as i64,
        IntOp::Sll => a.wrapping_shl(b as u32 & 63),
        IntOp::Srl => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
        IntOp::Sra => a.wrapping_shr(b as u32 & 63),
        IntOp::Mul => a.wrapping_mul(b),
        IntOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        IntOp::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
    }
}

fn fp_cmp(cond: BranchCond, a: f64, b: f64) -> bool {
    match cond {
        BranchCond::Eq => a == b,
        BranchCond::Ne => a != b,
        BranchCond::Lt => a < b,
        BranchCond::Le => a <= b,
        BranchCond::Gt => a > b,
        BranchCond::Ge => a >= b,
    }
}

/// Computes the effect of a functional-unit instruction from its
/// captured operand bits — the enum-match oracle the µop handler
/// table ([`dispatch`]) is differentially tested against. `lpid` and
/// `nlp` feed the `lpid`/`nlp` special reads.
///
/// Returns `None` for decode-unit instructions (those never reach a
/// functional unit); callers surface that as
/// [`crate::MachineError::DecodeAtFu`] so a malformed program becomes
/// a reportable machine check instead of a panic.
pub fn fu_action(inst: &Inst, vals: [u64; 2], lpid: i64, nlp: i64) -> Option<FuAction> {
    Some(match *inst {
        Inst::IntOp { op, .. } => {
            FuAction::Write(int_op(op, vals[0] as i64, vals[1] as i64) as u64)
        }
        Inst::Li { imm, .. } => FuAction::Write(imm as u64),
        Inst::LiF { imm, .. } => FuAction::Write(imm.to_bits()),
        Inst::FpBin { op, .. } => {
            let (a, b) = (f64::from_bits(vals[0]), f64::from_bits(vals[1]));
            let r = match op {
                FpBinOp::FAdd => a + b,
                FpBinOp::FSub => a - b,
                FpBinOp::FMul => a * b,
                FpBinOp::FDiv => a / b,
            };
            FuAction::Write(r.to_bits())
        }
        Inst::FpUn { op, .. } => {
            let a = f64::from_bits(vals[0]);
            let r = match op {
                FpUnOp::FAbs => a.abs(),
                FpUnOp::FNeg => -a,
                FpUnOp::FMov => a,
            };
            FuAction::Write(r.to_bits())
        }
        Inst::FpCmp { cond, .. } => {
            let (a, b) = (f64::from_bits(vals[0]), f64::from_bits(vals[1]));
            FuAction::Write(fp_cmp(cond, a, b) as u64)
        }
        Inst::CvtIF { .. } => FuAction::Write(((vals[0] as i64) as f64).to_bits()),
        Inst::CvtFI { .. } => FuAction::Write((f64::from_bits(vals[0]) as i64) as u64),
        Inst::Lpid { .. } => FuAction::Write(lpid as u64),
        Inst::Nlp { .. } => FuAction::Write(nlp as u64),
        Inst::Load { off, .. } => {
            FuAction::Load { addr: (vals[0] as i64).wrapping_add(off) as u64 }
        }
        Inst::Store { off, .. } => {
            FuAction::Store { addr: (vals[1] as i64).wrapping_add(off) as u64, bits: vals[0] }
        }
        _ => return None,
    })
}

// ----------------------------------------------------------------------
// The µop handler table: one function per ExecOp code, dispatched by a
// single indexed load. Each handler computes exactly what the oracle's
// matching arm computes (same wrapping/IEEE operations on the same
// bits), so the two paths are bit-identical — including NaN patterns.
// ----------------------------------------------------------------------

/// A µop handler: captured operand bits, the predecoded immediate,
/// and the `lpid`/`nlp` specials in; the functional-unit effect out
/// (`None` only for the [`ExecOp::DecodeUnit`] sentinel).
type Handler = fn(vals: [u64; 2], imm: u64, lpid: i64, nlp: i64) -> Option<FuAction>;

macro_rules! int_handler {
    ($name:ident, $f:expr) => {
        fn $name(vals: [u64; 2], _imm: u64, _lpid: i64, _nlp: i64) -> Option<FuAction> {
            let f: fn(i64, i64) -> i64 = $f;
            Some(FuAction::Write(f(vals[0] as i64, vals[1] as i64) as u64))
        }
    };
}

macro_rules! fp_bin_handler {
    ($name:ident, $f:expr) => {
        fn $name(vals: [u64; 2], _imm: u64, _lpid: i64, _nlp: i64) -> Option<FuAction> {
            let f: fn(f64, f64) -> f64 = $f;
            Some(FuAction::Write(f(f64::from_bits(vals[0]), f64::from_bits(vals[1])).to_bits()))
        }
    };
}

macro_rules! fp_un_handler {
    ($name:ident, $f:expr) => {
        fn $name(vals: [u64; 2], _imm: u64, _lpid: i64, _nlp: i64) -> Option<FuAction> {
            let f: fn(f64) -> f64 = $f;
            Some(FuAction::Write(f(f64::from_bits(vals[0])).to_bits()))
        }
    };
}

macro_rules! fp_cmp_handler {
    ($name:ident, $f:expr) => {
        fn $name(vals: [u64; 2], _imm: u64, _lpid: i64, _nlp: i64) -> Option<FuAction> {
            let f: fn(f64, f64) -> bool = $f;
            Some(FuAction::Write(f(f64::from_bits(vals[0]), f64::from_bits(vals[1])) as u64))
        }
    };
}

fn h_decode_unit(_vals: [u64; 2], _imm: u64, _lpid: i64, _nlp: i64) -> Option<FuAction> {
    None
}

int_handler!(h_int_add, |a, b| a.wrapping_add(b));
int_handler!(h_int_sub, |a, b| a.wrapping_sub(b));
int_handler!(h_int_and, |a, b| a & b);
int_handler!(h_int_or, |a, b| a | b);
int_handler!(h_int_xor, |a, b| a ^ b);
int_handler!(h_int_slt, |a, b| (a < b) as i64);
int_handler!(h_int_sle, |a, b| (a <= b) as i64);
int_handler!(h_int_seq, |a, b| (a == b) as i64);
int_handler!(h_int_sne, |a, b| (a != b) as i64);
int_handler!(h_int_sll, |a, b| a.wrapping_shl(b as u32 & 63));
int_handler!(h_int_srl, |a, b| ((a as u64).wrapping_shr(b as u32 & 63)) as i64);
int_handler!(h_int_sra, |a, b| a.wrapping_shr(b as u32 & 63));
int_handler!(h_int_mul, |a, b| a.wrapping_mul(b));
int_handler!(h_int_div, |a, b| if b == 0 { 0 } else { a.wrapping_div(b) });
int_handler!(h_int_rem, |a, b| if b == 0 { 0 } else { a.wrapping_rem(b) });

fn h_load_imm(_vals: [u64; 2], imm: u64, _lpid: i64, _nlp: i64) -> Option<FuAction> {
    Some(FuAction::Write(imm))
}

fp_bin_handler!(h_fadd, |a, b| a + b);
fp_bin_handler!(h_fsub, |a, b| a - b);
fp_bin_handler!(h_fmul, |a, b| a * b);
fp_bin_handler!(h_fdiv, |a, b| a / b);

fp_un_handler!(h_fabs, |a| a.abs());
fp_un_handler!(h_fneg, |a| -a);
fp_un_handler!(h_fmov, |a| a);

fp_cmp_handler!(h_fcmp_eq, |a, b| a == b);
fp_cmp_handler!(h_fcmp_ne, |a, b| a != b);
fp_cmp_handler!(h_fcmp_lt, |a, b| a < b);
fp_cmp_handler!(h_fcmp_le, |a, b| a <= b);
fp_cmp_handler!(h_fcmp_gt, |a, b| a > b);
fp_cmp_handler!(h_fcmp_ge, |a, b| a >= b);

fn h_cvt_if(vals: [u64; 2], _imm: u64, _lpid: i64, _nlp: i64) -> Option<FuAction> {
    Some(FuAction::Write(((vals[0] as i64) as f64).to_bits()))
}

fn h_cvt_fi(vals: [u64; 2], _imm: u64, _lpid: i64, _nlp: i64) -> Option<FuAction> {
    Some(FuAction::Write((f64::from_bits(vals[0]) as i64) as u64))
}

fn h_lpid(_vals: [u64; 2], _imm: u64, lpid: i64, _nlp: i64) -> Option<FuAction> {
    Some(FuAction::Write(lpid as u64))
}

fn h_nlp(_vals: [u64; 2], _imm: u64, _lpid: i64, nlp: i64) -> Option<FuAction> {
    Some(FuAction::Write(nlp as u64))
}

fn h_load(vals: [u64; 2], imm: u64, _lpid: i64, _nlp: i64) -> Option<FuAction> {
    Some(FuAction::Load { addr: (vals[0] as i64).wrapping_add(imm as i64) as u64 })
}

fn h_store(vals: [u64; 2], imm: u64, _lpid: i64, _nlp: i64) -> Option<FuAction> {
    Some(FuAction::Store { addr: (vals[1] as i64).wrapping_add(imm as i64) as u64, bits: vals[0] })
}

/// The threaded-dispatch table, indexed by `ExecOp as usize`. Order
/// must match the [`ExecOp`] declaration exactly; `dispatch_order`
/// below and the `uop` integration test prove it against the oracle
/// for every code.
static HANDLERS: [Handler; EXEC_OP_COUNT] = [
    h_decode_unit,
    h_int_add,
    h_int_sub,
    h_int_and,
    h_int_or,
    h_int_xor,
    h_int_slt,
    h_int_sle,
    h_int_seq,
    h_int_sne,
    h_int_sll,
    h_int_srl,
    h_int_sra,
    h_int_mul,
    h_int_div,
    h_int_rem,
    h_load_imm,
    h_fadd,
    h_fsub,
    h_fmul,
    h_fdiv,
    h_fabs,
    h_fneg,
    h_fmov,
    h_fcmp_eq,
    h_fcmp_ne,
    h_fcmp_lt,
    h_fcmp_le,
    h_fcmp_gt,
    h_fcmp_ge,
    h_cvt_if,
    h_cvt_fi,
    h_lpid,
    h_nlp,
    h_load,
    h_store,
];

/// Executes one µop through the handler table: the hot-path
/// equivalent of [`fu_action`], taking the predecoded
/// [`ExecOp`] code and pre-extracted immediate instead of re-matching
/// the instruction enum. Returns `None` only for
/// [`ExecOp::DecodeUnit`].
#[inline]
pub fn dispatch(op: ExecOp, vals: [u64; 2], imm: u64, lpid: i64, nlp: i64) -> Option<FuAction> {
    HANDLERS[op as usize](vals, imm, lpid, nlp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirata_isa::{FReg, GReg, Reg};

    fn g(n: u8) -> Reg {
        Reg::G(GReg(n))
    }

    #[test]
    fn resolve_folds_immediates() {
        let inst = Inst::IntOp { op: IntOp::Add, rd: GReg(1), rs: GReg(2), src2: GSrc::Imm(-3) };
        let vals = resolve_operands(&inst, |r| {
            assert_eq!(r, g(2));
            10u64
        });
        assert_eq!(vals[0], 10);
        assert_eq!(vals[1] as i64, -3);
    }

    #[test]
    fn integer_semantics() {
        let cases = [
            (IntOp::Add, 3, 4, 7),
            (IntOp::Sub, 3, 4, -1),
            (IntOp::And, 0b1100, 0b1010, 0b1000),
            (IntOp::Or, 0b1100, 0b1010, 0b1110),
            (IntOp::Xor, 0b1100, 0b1010, 0b0110),
            (IntOp::Slt, -1, 0, 1),
            (IntOp::Sle, 5, 5, 1),
            (IntOp::Seq, 5, 6, 0),
            (IntOp::Sne, 5, 6, 1),
            (IntOp::Sll, 1, 4, 16),
            (IntOp::Srl, -1, 60, 15),
            (IntOp::Sra, -16, 2, -4),
            (IntOp::Mul, -3, 7, -21),
            (IntOp::Div, 7, 2, 3),
            (IntOp::Div, 7, 0, 0),
            (IntOp::Rem, 7, 2, 1),
            (IntOp::Rem, 7, 0, 0),
        ];
        for (op, a, b, want) in cases {
            assert_eq!(int_op(op, a, b), want, "{op:?} {a} {b}");
        }
    }

    #[test]
    fn overflow_wraps() {
        assert_eq!(int_op(IntOp::Add, i64::MAX, 1), i64::MIN);
        assert_eq!(int_op(IntOp::Mul, i64::MAX, 2), -2);
        // i64::MIN / -1 would overflow a naive division.
        assert_eq!(int_op(IntOp::Div, i64::MIN, -1), i64::MIN);
    }

    #[test]
    fn fp_semantics() {
        let fadd = Inst::FpBin { op: FpBinOp::FAdd, fd: FReg(0), fs: FReg(1), ft: FReg(2) };
        let vals = [1.5f64.to_bits(), 2.25f64.to_bits()];
        assert_eq!(fu_action(&fadd, vals, 0, 1).unwrap(), FuAction::Write(3.75f64.to_bits()));

        let fdiv = Inst::FpBin { op: FpBinOp::FDiv, fd: FReg(0), fs: FReg(1), ft: FReg(2) };
        let vals = [1.0f64.to_bits(), 0.0f64.to_bits()];
        assert_eq!(fu_action(&fdiv, vals, 0, 1).unwrap(), FuAction::Write(f64::INFINITY.to_bits()));

        let fneg = Inst::FpUn { op: FpUnOp::FNeg, fd: FReg(0), fs: FReg(1) };
        assert_eq!(
            fu_action(&fneg, [2.0f64.to_bits(), 0], 0, 1).unwrap(),
            FuAction::Write((-2.0f64).to_bits())
        );
    }

    #[test]
    fn fp_compare_writes_zero_or_one() {
        let cmp = Inst::FpCmp { cond: BranchCond::Lt, rd: GReg(1), fs: FReg(0), ft: FReg(1) };
        assert_eq!(
            fu_action(&cmp, [1.0f64.to_bits(), 2.0f64.to_bits()], 0, 1).unwrap(),
            FuAction::Write(1)
        );
        assert_eq!(
            fu_action(&cmp, [2.0f64.to_bits(), 1.0f64.to_bits()], 0, 1).unwrap(),
            FuAction::Write(0)
        );
        // NaN compares false.
        assert_eq!(
            fu_action(&cmp, [f64::NAN.to_bits(), 1.0f64.to_bits()], 0, 1).unwrap(),
            FuAction::Write(0)
        );
    }

    #[test]
    fn conversions() {
        let cvtif = Inst::CvtIF { fd: FReg(0), rs: GReg(1) };
        assert_eq!(
            fu_action(&cvtif, [(-7i64) as u64, 0], 0, 1).unwrap(),
            FuAction::Write((-7.0f64).to_bits())
        );
        let cvtfi = Inst::CvtFI { rd: GReg(1), fs: FReg(0) };
        assert_eq!(
            fu_action(&cvtfi, [(-7.9f64).to_bits(), 0], 0, 1).unwrap(),
            FuAction::Write(-7i64 as u64)
        );
    }

    #[test]
    fn load_store_addressing() {
        let load = Inst::Load { dst: g(1), base: GReg(2), off: -4 };
        assert_eq!(fu_action(&load, [100, 0], 0, 1).unwrap(), FuAction::Load { addr: 96 });

        let store = Inst::Store { src: g(1), base: GReg(2), off: 8, gated: false };
        // vals[0] = value, vals[1] = base.
        assert_eq!(
            fu_action(&store, [42, 100], 0, 1).unwrap(),
            FuAction::Store { addr: 108, bits: 42 }
        );
    }

    #[test]
    fn lpid_and_nlp_reads() {
        assert_eq!(
            fu_action(&Inst::Lpid { rd: GReg(1) }, [0, 0], 3, 4).unwrap(),
            FuAction::Write(3)
        );
        assert_eq!(
            fu_action(&Inst::Nlp { rd: GReg(1) }, [0, 0], 3, 4).unwrap(),
            FuAction::Write(4)
        );
    }

    #[test]
    fn branch_taken_on_integers() {
        assert!(branch_taken(BranchCond::Lt, [(-1i64) as u64, 0]));
        assert!(!branch_taken(BranchCond::Gt, [(-1i64) as u64, 0]));
    }

    #[test]
    fn decode_op_is_rejected() {
        assert_eq!(fu_action(&Inst::Halt, [0, 0], 0, 1), None);
        assert_eq!(fu_action(&Inst::Nop, [0, 0], 0, 1), None);
    }

    /// Every µop code's handler agrees bit-for-bit with the oracle arm
    /// it replaces, on operand patterns that exercise the interesting
    /// edges (wrapping, zero divisors, NaN, negative offsets).
    #[test]
    fn dispatch_matches_oracle_for_every_code() {
        use hirata_isa::FpBinOp as FB;
        use hirata_isa::FpUnOp as FU;
        let f = |n| Reg::F(FReg(n));
        let int_ops = [
            IntOp::Add,
            IntOp::Sub,
            IntOp::And,
            IntOp::Or,
            IntOp::Xor,
            IntOp::Slt,
            IntOp::Sle,
            IntOp::Seq,
            IntOp::Sne,
            IntOp::Sll,
            IntOp::Srl,
            IntOp::Sra,
            IntOp::Mul,
            IntOp::Div,
            IntOp::Rem,
        ];
        let mut insts: Vec<Inst> = int_ops
            .iter()
            .map(|&op| Inst::IntOp { op, rd: GReg(1), rs: GReg(2), src2: GSrc::Reg(GReg(3)) })
            .collect();
        insts.push(Inst::Li { rd: GReg(1), imm: -99 });
        insts.push(Inst::LiF { fd: FReg(1), imm: 2.5 });
        for op in [FB::FAdd, FB::FSub, FB::FMul, FB::FDiv] {
            insts.push(Inst::FpBin { op, fd: FReg(0), fs: FReg(1), ft: FReg(2) });
        }
        for op in [FU::FAbs, FU::FNeg, FU::FMov] {
            insts.push(Inst::FpUn { op, fd: FReg(0), fs: FReg(1) });
        }
        for cond in [
            BranchCond::Eq,
            BranchCond::Ne,
            BranchCond::Lt,
            BranchCond::Le,
            BranchCond::Gt,
            BranchCond::Ge,
        ] {
            insts.push(Inst::FpCmp { cond, rd: GReg(1), fs: FReg(0), ft: FReg(1) });
        }
        insts.push(Inst::CvtIF { fd: FReg(0), rs: GReg(1) });
        insts.push(Inst::CvtFI { rd: GReg(1), fs: FReg(0) });
        insts.push(Inst::Lpid { rd: GReg(1) });
        insts.push(Inst::Nlp { rd: GReg(1) });
        insts.push(Inst::Load { dst: f(1), base: GReg(2), off: -16 });
        insts.push(Inst::Store { src: g(1), base: GReg(2), off: 24, gated: true });
        // Decode-unit forms map to the sentinel and must dispatch to None.
        insts.push(Inst::Halt);
        insts.push(Inst::Nop);

        let operand_sets: [[u64; 2]; 5] = [
            [0, 0],
            [7, 2],
            [(-1i64) as u64, 60],
            [i64::MAX as u64, 1],
            [f64::NAN.to_bits(), 1.5f64.to_bits()],
        ];
        let mut codes_seen = [false; EXEC_OP_COUNT];
        for inst in &insts {
            let di = DecodedInst::of(*inst);
            codes_seen[di.exec_op as usize] = true;
            for vals in operand_sets {
                assert_eq!(
                    dispatch(di.exec_op, vals, di.imm, 3, 4),
                    fu_action(inst, vals, 3, 4),
                    "µop/oracle divergence for {inst:?} on {vals:?}"
                );
            }
        }
        assert!(codes_seen.iter().all(|&seen| seen), "some ExecOp code never exercised");
    }
}
