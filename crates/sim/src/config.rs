//! Processor configuration.

use hirata_isa::{FuClass, FuConfig, RotationMode};

/// Maximum standby-station depth the machine supports. The stations
/// are fixed-capacity inline arrays (no per-entry heap allocation), so
/// the depth ablation sweep (`1`, `2`, `4`) must fit under this bound;
/// [`Config::validate`] rejects deeper configurations.
pub const MAX_STANDBY_DEPTH: usize = 8;

/// Which instruction pipeline the processor uses (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineKind {
    /// Figure 3(a): `IF1 IF2 D1 D2 S EX.. W` — the multithreaded
    /// logical-processor pipeline (two decode stages plus a schedule
    /// stage; branch shadow of five cycles).
    Multithreaded,
    /// Figure 3(b): `IF1 IF2 D EX.. W` — the baseline superpipelined
    /// RISC (one decode stage; branch shadow of four cycles).
    BaseRisc,
}

impl PipelineKind {
    /// Number of decode stages between a completed fetch and issue.
    pub(crate) fn decode_depth(self) -> u64 {
        match self {
            PipelineKind::Multithreaded => 2,
            PipelineKind::BaseRisc => 1,
        }
    }
}

/// Full static description of a simulated processor.
///
/// Constructors provide the paper's two machines; all fields are
/// public so ablations can deviate from them. [`Config::validate`]
/// checks cross-field invariants and is called by the machine
/// constructor.
///
/// # Examples
///
/// ```
/// use hirata_sim::Config;
/// use hirata_isa::FuConfig;
///
/// // The Table 2 four-slot, two-load/store-unit processor.
/// let cfg = Config::multithreaded(4).with_fu(FuConfig::paper_two_ls());
/// cfg.validate().unwrap();
///
/// // The sequential baseline.
/// let base = Config::base_risc();
/// assert_eq!(base.thread_slots, 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Pipeline structure (selects decode depth and branch shadow).
    pub pipeline: PipelineKind,
    /// Number of thread slots `S` (logical processors).
    pub thread_slots: usize,
    /// Per-slot issue width `D` (instruction-window size). `1` is the
    /// paper's preferred design point (§3.3).
    pub issue_width: usize,
    /// The functional-unit pool.
    pub fu: FuConfig,
    /// Whether standby stations are present (§2.1.1).
    pub standby_stations: bool,
    /// Standby-station depth per (slot, unit class). The paper's
    /// stations are "a simple latch whose depth is one"; deeper
    /// stations are an ablation.
    pub standby_depth: usize,
    /// Re-fetch on *not-taken* conditional branches (the paper's
    /// behaviour: the fetch request goes out at the end of D1 either
    /// way, §2.1.2). Disabling gives a fall-through fast path —
    /// an ablation that mostly helps single-thread execution.
    pub refetch_fallthrough: bool,
    /// Initial priority-rotation mode of the schedule units (§2.2).
    pub rotation: RotationMode,
    /// Give every thread slot a private instruction cache and fetch
    /// unit (§3.2's ablation) instead of the shared one.
    pub private_fetch: bool,
    /// Number of context frames (register banks); must be at least
    /// `thread_slots`. Extra frames enable concurrent multithreading
    /// (§2.1.3).
    pub context_frames: usize,
    /// Cycles to rebind a logical processor to a different context
    /// frame on a context switch.
    pub switch_penalty: u32,
    /// Depth of each queue register between adjacent logical
    /// processors (§2.3.1).
    pub queue_capacity: usize,
    /// Data memory size in words.
    pub mem_words: usize,
    /// Instruction-cache access time `C` in cycles (§2.1.1; the paper
    /// uses 2).
    pub icache_cycles: u32,
    /// Watchdog: abort the run after this many cycles.
    pub max_cycles: u64,
    /// Event-wheel fast-forward: when no slot can issue and no
    /// micro-architectural event is pending, the machine jumps
    /// directly to the next event instead of stepping through the
    /// stalled cycles one by one. Cycle counts, statistics, and trace
    /// streams are byte-identical either way (the skipped stalls are
    /// synthesized from the wake reasons); disable to force the plain
    /// cycle-by-cycle loop when debugging the simulator itself.
    pub fast_forward: bool,
    /// Loop-warp: the event-wheel's sibling for *busy* spans. The
    /// machine fingerprints its timing-relevant state each cycle,
    /// detects when the fingerprint recurs with period `p`, verifies
    /// over recorded periods that the architectural effect is an
    /// affine replayable delta, and then leaps whole periods at once
    /// by applying `k·Δ` to registers/memory/statistics. Cycle counts,
    /// statistics, and trace streams are byte-identical either way
    /// (any verification miss falls back to plain stepping); disable
    /// to force per-cycle issue when debugging the simulator itself.
    pub warp: bool,
}

/// Error from [`Config::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// The paper's multithreaded processor with `slots` thread slots,
    /// seven functional units, standby stations, and the Table 2
    /// rotation interval of eight cycles.
    pub fn multithreaded(slots: usize) -> Self {
        Config {
            pipeline: PipelineKind::Multithreaded,
            thread_slots: slots,
            issue_width: 1,
            fu: FuConfig::paper_one_ls(),
            standby_stations: true,
            standby_depth: 1,
            refetch_fallthrough: true,
            rotation: RotationMode::Implicit { interval: 8 },
            private_fetch: false,
            context_frames: slots,
            switch_penalty: 4,
            queue_capacity: 8,
            mem_words: 1 << 20,
            icache_cycles: 2,
            max_cycles: 500_000_000,
            fast_forward: true,
            warp: true,
        }
    }

    /// The sequential baseline: a single-threaded RISC with the
    /// Figure 3(b) pipeline and the same functional units (§3.1).
    pub fn base_risc() -> Self {
        Config { pipeline: PipelineKind::BaseRisc, ..Config::multithreaded(1) }
    }

    /// A `(D,S)`-processor of §3.3: `slots` thread slots each issuing
    /// up to `width` instructions per cycle. `(D,1)` uses the base
    /// RISC pipeline as in the paper's Table 3 methodology.
    pub fn hybrid(width: usize, slots: usize) -> Self {
        let mut cfg = if slots == 1 { Config::base_risc() } else { Config::multithreaded(slots) };
        cfg.issue_width = width;
        cfg.fu = FuConfig::paper_two_ls();
        cfg
    }

    /// Sets the functional-unit pool.
    pub fn with_fu(mut self, fu: FuConfig) -> Self {
        self.fu = fu;
        self
    }

    /// Disables or enables standby stations.
    pub fn with_standby(mut self, on: bool) -> Self {
        self.standby_stations = on;
        self
    }

    /// Sets the initial rotation mode.
    pub fn with_rotation(mut self, rotation: RotationMode) -> Self {
        self.rotation = rotation;
        self
    }

    /// Enables private per-slot instruction caches and fetch units.
    pub fn with_private_fetch(mut self, on: bool) -> Self {
        self.private_fetch = on;
        self
    }

    /// Enables or disables the event-wheel fast-forward (see
    /// [`Config::fast_forward`]). On by default; purely a simulator
    /// throughput control with no architectural effect.
    pub fn with_fast_forward(mut self, on: bool) -> Self {
        self.fast_forward = on;
        self
    }

    /// Enables or disables the loop-warp steady-state engine (see
    /// [`Config::warp`]). On by default; purely a simulator throughput
    /// control with no architectural effect.
    pub fn with_warp(mut self, on: bool) -> Self {
        self.warp = on;
        self
    }

    /// Sets the number of context frames (for concurrent
    /// multithreading this exceeds `thread_slots`).
    pub fn with_context_frames(mut self, frames: usize) -> Self {
        self.context_frames = frames;
        self
    }

    /// Branch shadow: cycles from a control instruction's issue to the
    /// earliest issue of its successor, with an idle fetch unit
    /// (§2.1.2: four for the base pipeline, five for the multithreaded
    /// one with the paper's two-cycle instruction cache).
    pub fn branch_shadow(&self) -> u64 {
        1 + self.icache_cycles as u64 + self.pipeline.decode_depth()
    }

    /// Instruction-buffer capacity per slot: `B = S x C` words
    /// (§2.1.1), at least one word. For the §3.3 hybrids the fetch
    /// bandwidth scales with the issue width (`D x S` words per
    /// cycle), so the buffer does too.
    pub fn ibuf_words(&self) -> usize {
        (self.thread_slots * self.icache_cycles as usize * self.issue_width).max(1)
    }

    /// Checks cross-field invariants.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the violated invariant.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.thread_slots == 0 {
            return Err(ConfigError("thread_slots must be at least 1".into()));
        }
        if self.issue_width == 0 {
            return Err(ConfigError("issue_width must be at least 1".into()));
        }
        if self.pipeline == PipelineKind::BaseRisc && self.thread_slots != 1 {
            return Err(ConfigError(
                "the base RISC pipeline is single-threaded (thread_slots must be 1)".into(),
            ));
        }
        if self.context_frames < self.thread_slots {
            return Err(ConfigError(format!(
                "context_frames ({}) must be at least thread_slots ({})",
                self.context_frames, self.thread_slots
            )));
        }
        if self.context_frames > self.thread_slots && self.issue_width != 1 {
            return Err(ConfigError(
                "concurrent multithreading (context_frames > thread_slots) requires issue_width 1"
                    .into(),
            ));
        }
        if self.queue_capacity == 0 {
            return Err(ConfigError("queue_capacity must be at least 1".into()));
        }
        if self.standby_depth == 0 {
            return Err(ConfigError("standby_depth must be at least 1".into()));
        }
        if self.standby_depth > MAX_STANDBY_DEPTH {
            return Err(ConfigError(format!(
                "standby_depth ({}) exceeds the supported maximum ({MAX_STANDBY_DEPTH})",
                self.standby_depth
            )));
        }
        if self.icache_cycles == 0 {
            return Err(ConfigError("icache_cycles must be at least 1".into()));
        }
        for class in FuClass::ALL {
            if self.fu.count(class) > 64 {
                return Err(ConfigError(format!(
                    "{class:?} instance count ({}) exceeds the supported maximum (64)",
                    self.fu.count(class)
                )));
            }
        }
        if let RotationMode::Implicit { interval: 0 } = self.rotation {
            return Err(ConfigError("rotation interval must be at least 1".into()));
        }
        if self.mem_words == 0 {
            return Err(ConfigError("mem_words must be at least 1".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirata_isa::FuClass;

    #[test]
    fn paper_shadows() {
        assert_eq!(Config::multithreaded(4).branch_shadow(), 5);
        assert_eq!(Config::base_risc().branch_shadow(), 4);
    }

    #[test]
    fn ibuf_matches_b_equals_s_times_c() {
        assert_eq!(Config::multithreaded(4).ibuf_words(), 8);
        assert_eq!(Config::multithreaded(1).ibuf_words(), 2);
        // Hybrids scale fetch bandwidth with issue width (§3.3).
        assert_eq!(Config::hybrid(4, 2).ibuf_words(), 16);
    }

    #[test]
    fn hybrid_constructor() {
        let cfg = Config::hybrid(2, 4);
        assert_eq!(cfg.issue_width, 2);
        assert_eq!(cfg.thread_slots, 4);
        assert_eq!(cfg.pipeline, PipelineKind::Multithreaded);
        assert_eq!(cfg.fu.count(FuClass::LoadStore), 2);
        cfg.validate().unwrap();

        let wide = Config::hybrid(8, 1);
        assert_eq!(wide.pipeline, PipelineKind::BaseRisc);
        wide.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_configs() {
        assert!(Config::multithreaded(0).validate().is_err());

        let mut cfg = Config::base_risc();
        cfg.thread_slots = 2;
        assert!(cfg.validate().is_err());

        let mut cfg = Config::multithreaded(4);
        cfg.context_frames = 2;
        assert!(cfg.validate().is_err());

        let mut cfg = Config::multithreaded(2);
        cfg.issue_width = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = Config::multithreaded(2);
        cfg.rotation = RotationMode::Implicit { interval: 0 };
        assert!(cfg.validate().is_err());

        let mut cfg = Config::multithreaded(2);
        cfg.context_frames = 4;
        cfg.issue_width = 2;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn defaults_are_valid() {
        for s in [1, 2, 4, 8] {
            Config::multithreaded(s).validate().unwrap();
        }
        Config::base_risc().validate().unwrap();
    }
}
