//! The cycle-level machine: thread slots, decode, schedule units with
//! standby stations, functional-unit pipelines, context frames, and
//! the queue-register ring — the processor of Figure 2.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hirata_isa::{FuClass, GReg, Inst, Program, Reg, FU_CLASS_COUNT};
use hirata_mem::{Access, DataMemModel, IdealCache, MemStats, Memory};

mod fupool;
mod warp;
mod wheel;

pub use warp::{WarpMiss, WarpPeriodInfo, WarpStats};

use crate::config::{Config, MAX_STANDBY_DEPTH};
use crate::error::MachineError;
use crate::exec::{
    branch_taken, debug_assert_fresh_decode, dispatch, fu_action, resolve_operands, FuAction,
};
use crate::fetch::{Delivery, FetchSystem};
use crate::machine::fupool::FuPool;
use crate::predecode::{DecodedInst, PredecodedProgram, CAP_IMM, CAP_NONE};
use crate::priority::Priorities;
use crate::queue::QueueRing;
use crate::regfile::RegBank;
use crate::stats::{RunStats, StallReason};
use crate::trace::{RotationKind, SlotSet, TraceEvent, TraceSink};

/// An issued instruction travelling to (or waiting in a standby
/// station of) a functional unit, with its operand values captured at
/// issue (§2.1.1).
#[derive(Debug, Clone, Copy)]
struct InFlight {
    slot: usize,
    ctx: usize,
    pc: u32,
    di: DecodedInst,
    vals: [u64; 2],
    /// Re-execution from the access requirement buffer: the remote
    /// request already completed, so the memory model is bypassed.
    replayed: bool,
    /// Cycle the instruction issued (distinguishes fresh standby
    /// arrivals from holdovers in the trace).
    issued_at: u64,
}

impl InFlight {
    /// Placeholder filling unused standby-station capacity; never
    /// observable (stations expose only their first `len` entries).
    fn vacant() -> Self {
        InFlight {
            slot: 0,
            ctx: 0,
            pc: 0,
            di: DecodedInst::of(Inst::Nop),
            vals: [0; 2],
            replayed: false,
            issued_at: 0,
        }
    }
}

/// One standby station: a fixed-capacity inline FIFO of issued
/// instructions waiting for their functional unit (§2.1.1 — the
/// paper's depth is one; deeper stations are an ablation, bounded by
/// [`MAX_STANDBY_DEPTH`]). Inline storage keeps the arbitration loop
/// free of heap traffic and pointer chasing.
#[derive(Debug, Clone, Copy)]
struct StandbyStation {
    buf: [InFlight; MAX_STANDBY_DEPTH],
    len: u8,
}

impl StandbyStation {
    fn new() -> Self {
        StandbyStation { buf: [InFlight::vacant(); MAX_STANDBY_DEPTH], len: 0 }
    }

    #[inline]
    fn len(&self) -> usize {
        self.len as usize
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn front(&self) -> Option<&InFlight> {
        if self.len == 0 {
            None
        } else {
            Some(&self.buf[0])
        }
    }

    #[inline]
    fn push_back(&mut self, f: InFlight) {
        assert!(self.len() < MAX_STANDBY_DEPTH, "standby station overflow");
        self.buf[self.len()] = f;
        self.len += 1;
    }

    #[inline]
    fn pop_front(&mut self) -> InFlight {
        debug_assert!(self.len > 0);
        let f = self.buf[0];
        let len = self.len as usize;
        self.buf.copy_within(1..len, 0);
        self.len -= 1;
        f
    }

    #[inline]
    fn clear(&mut self) {
        self.len = 0;
    }

    #[inline]
    fn iter(&self) -> std::slice::Iter<'_, InFlight> {
        self.buf[..self.len()].iter()
    }
}

/// Per-machine scratch buffers reused across cycles so the steady
/// state of [`Machine::step`] performs no heap allocation. Taken out
/// with `mem::take` for the duration of a phase (to sidestep borrow
/// conflicts with `&mut self` calls) and restored afterwards with
/// their capacity intact.
#[derive(Debug, Default)]
struct Scratch {
    /// Snapshot of the priority order for the cycle (stable between
    /// the issue phase and arbitration: explicit rotations are
    /// deferred to cycle end, and forced/implicit ones happen before
    /// issue).
    order: Vec<usize>,
    /// Schedule-unit candidates issued this cycle.
    cands: Vec<InFlight>,
    /// Fetch deliveries surfacing this cycle.
    deliveries: Vec<Delivery>,
    /// Per-slot stall descriptors for an event-wheel jump (indexed by
    /// slot): the reason and blocking PC every skipped cycle records.
    wheel_stalls: Vec<(StallReason, Option<u32>)>,
    /// Per-slot start cycle of the current stall piece within a jump
    /// span (descriptors can change mid-span when the wheel absorbs a
    /// redirect delivery).
    wheel_piece: Vec<u64>,
}

/// A proven slot block (the ready-frontier entry for one slot): the
/// slot provably re-records exactly this stall every cycle strictly
/// before `wake`, unless a clearing event lifts it first. `wake` is
/// `u64::MAX` for blocks only an event can lift. The reason doubles as
/// the block's kind:
///
/// * `NoThread` — no bound context; cleared by a bind
///   (`wake_and_bind`, `fastfork`).
/// * `BranchShadow` — `now < earliest_issue`; `wake` is the shadow
///   expiry, and every event that moves `earliest_issue` (redirect
///   delivery, rebind) clears or rewrites the block.
/// * `Fetch` — empty window with no fetch credits; cleared by any
///   fetch delivery to the slot.
/// * head stalls (`Data`, `QueueEmpty`, `QueueFull`, `FuConflict`) —
///   the memoized single-issue head stall inherited from the old
///   `StallMemo`: created only when the window holds exactly one
///   fresh non-gated head, cleared by register writeback to the bound
///   context, standby pops/clears for the slot, queue pushes/pops on
///   the slot's links, and any rebind/redirect/kill.
///
/// Rotations never flip a block: none of the blockable conditions
/// reads the priority order (priority-gated stalls are deliberately
/// not blockable). See DESIGN.md §8 for the full invariant table.
#[derive(Debug, Clone, Copy)]
struct SlotBlock {
    reason: StallReason,
    pc: Option<u32>,
    wake: u64,
}

/// One entry of a slot's decode window.
#[derive(Debug, Clone, Copy)]
enum WinEntry {
    /// Freshly fetched instruction at this address.
    Fresh(u32),
    /// A replayed memory access from the access requirement buffer
    /// (§2.1.3), with operands captured before the context switch.
    Replay(Inst, [u64; 2]),
}

/// `repr(C)` orders the fields hot-first: the per-cycle issue path
/// reads `ctx`/`block`/`earliest_issue`/`fetch_pc` for every slot, so
/// they pack into the leading bytes; the window's `VecDeque` header
/// (three pointers-worth, touched only when the slot actually decodes)
/// trails.
#[derive(Debug)]
#[repr(C)]
struct Slot {
    ctx: Option<usize>,
    /// The slot's ready-frontier state: `None` whenever no proof of a
    /// stable stall is held (mirrored by the machine's `ready` mask).
    /// Purely an optimization: replaying the block records exactly the
    /// stall a fresh evaluation would.
    block: Option<SlotBlock>,
    earliest_issue: u64,
    fetch_pc: u32,
    window: VecDeque<WinEntry>,
}

impl Slot {
    fn new() -> Self {
        Slot { ctx: None, block: None, earliest_issue: 0, fetch_pc: 0, window: VecDeque::new() }
    }
}

/// Lifecycle of a context frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CtxState {
    /// Unallocated frame.
    Free,
    /// Runnable, waiting for a thread slot.
    Ready,
    /// Bound to a thread slot.
    Running,
    /// Switched out on a data-absence trap until the given cycle.
    Waiting { until: u64 },
    /// Finished (halted or killed).
    Done,
}

/// A context frame (§2.1.3): register sets, saved program counter,
/// queue-register mapping, and the access requirement buffer.
///
/// `repr(C)` splits the frame hot-first: issue and capture touch the
/// register bank, queue mapping, state, and `lpid` every cycle, so
/// those lead; the trap-only resume machinery (`resume_pc`, the replay
/// buffer, `started`) is cold and trails.
#[derive(Debug)]
#[repr(C)]
struct Context {
    regs: RegBank,
    qread: Option<Reg>,
    qwrite: Option<Reg>,
    state: CtxState,
    lpid: i64,
    resume_pc: u32,
    /// False until first bound to a slot (suppresses the context-switch
    /// penalty for a thread's very first dispatch).
    started: bool,
    replay: Vec<(Inst, [u64; 2])>,
}

impl Context {
    fn free() -> Self {
        Context {
            regs: RegBank::new(),
            qread: None,
            qwrite: None,
            state: CtxState::Free,
            lpid: 0,
            resume_pc: 0,
            started: false,
            replay: Vec::new(),
        }
    }
}

/// Why an instruction could not issue this cycle. Stalls carry the
/// first cycle at which the failed condition could pass by the advance
/// of time alone (`u64::MAX` when only an event can lift it), or
/// `None` when the condition is not provably stable — only stalls with
/// a hint are eligible for a head-stall block.
enum IssueBlock {
    Stall(StallReason, Option<u64>),
    Fault(MachineError),
}

/// The simulated processor.
///
/// Construct with [`Machine::new`], run with [`Machine::run`], then
/// inspect [`Machine::stats`], [`Machine::memory`], and the register
/// accessors.
///
/// # Examples
///
/// ```
/// use hirata_sim::{Config, Machine};
/// use hirata_asm::assemble;
///
/// let prog = assemble("li r1, #2\nadd r2, r1, r1\nhalt")?;
/// let mut m = Machine::new(Config::base_risc(), &prog)?;
/// m.run()?;
/// assert_eq!(m.reg_g(0, "r2".parse()?), 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Machine {
    config: Config,
    program: Arc<PredecodedProgram>,
    memory: Memory,
    mem_model: Box<dyn DataMemModelDebug>,
    slots: Vec<Slot>,
    contexts: Vec<Context>,
    /// Standby stations, flattened: the station of slot `s` and FU
    /// class index `ci` lives at `s * FU_CLASS_COUNT + ci`.
    standby: Vec<StandbyStation>,
    /// Per FU class, the slots whose standby station for that class is
    /// non-empty — kept in sync with `standby` at every mutation so
    /// the tracing path reads competitor sets without rescanning the
    /// stations each cycle.
    standby_mask: [SlotSet; FU_CLASS_COUNT],
    /// Occupied standby entries per slot (all classes), for the O(1)
    /// "does this slot have anything standing by" queries in the
    /// decode-blocking, `drain`, rebind, and trap paths.
    standby_slot_count: Vec<u16>,
    /// Occupied standby entries machine-wide, so `is_done` need not
    /// rescan the stations every cycle.
    standby_total: usize,
    /// Contexts that are not `Done`/`Free` — kept in sync at every
    /// state transition so [`Machine::is_done`] is O(1) in the cycle
    /// loop instead of rescanning every frame twice per step.
    live_contexts: usize,
    /// Contexts in `Ready` or `Waiting` state — the population
    /// `wake_and_bind` serves. Kept in sync at the same transitions
    /// as [`Self::live_contexts`] so the per-cycle wake-and-bind scan
    /// exits O(1) when every context is running (the steady state of
    /// fully-bound workloads); a debug assert in `wake_and_bind`
    /// rescans the frames to prove the counter exact.
    idle_contexts: usize,
    fu_pool: FuPool,
    queues: QueueRing,
    fetch: FetchSystem,
    prio: Priorities,
    stats: RunStats,
    cycle: u64,
    /// The ready frontier: slot `s` is set iff `slots[s].block` is
    /// `None` — kept in lockstep by `block_slot`/`unblock` and every
    /// block-clearing event, so "is any slot worth evaluating" and
    /// "are all slots provably stalled" are single mask tests. Debug
    /// builds rescan the slots each issue phase to prove the mirror
    /// exact.
    ready: SlotSet,
    /// A head-issue proof from the event wheel: `(cycle, pc)` means the
    /// wheel's end-of-step probe ran `check_issue` on the head the step
    /// at `cycle` will evaluate and it passed. Single-slot machines
    /// only (nothing between the probe and that evaluation mutates
    /// state `check_issue` reads), and purely an optimization — the
    /// issue path skips its own head check instead of repeating it.
    head_pass: Option<(u64, u32)>,
    /// Earliest cycle at which a multi-slot machine may next attempt a
    /// fast-forward, and the current backoff stride. Probing every
    /// slot on every no-issue cycle is wasted work in phases where
    /// some slot always issues again within a cycle or two; failed
    /// attempts double the stride (capped), a successful jump resets
    /// it. Deterministic, and only delays *attempts* — the cycles a
    /// skipped attempt would have jumped are stepped plainly instead,
    /// producing identical statistics and traces by construction.
    ff_next: u64,
    ff_stride: u32,
    /// The loop-warp engine (see `machine/warp.rs`), present when
    /// [`Config::warp`] is on.
    warp: Option<Box<warp::WarpState>>,
    /// True while the warp engine records a candidate period: the
    /// event wheel is suppressed (identity-safe — the wheel only
    /// skips provably-inert work) so boundaries are reached by plain
    /// stepping, and the issue/stall/branch/store hooks log events.
    warp_recording: bool,
    /// Collect `--warp-debug` period reports; also enables warp
    /// observation (detection-only) under a trace sink.
    warp_debug: bool,
    scratch: Scratch,
    trace: Option<Vec<IssueEvent>>,
    sink: Option<Box<dyn TraceSink>>,
}

/// One issue event, recorded when tracing is enabled with
/// [`Machine::set_trace`]. `cycle` is the instruction's S stage (D2
/// stage on the base pipeline) — the reference point for all the
/// paper's timing statements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueEvent {
    /// Cycle the instruction issued.
    pub cycle: u64,
    /// Thread slot that issued it.
    pub slot: usize,
    /// Context frame it belongs to.
    pub ctx: usize,
    /// Instruction address.
    pub pc: u32,
}

/// Per-phase wall-time breakdown of the cycle loop, accumulated by
/// [`Machine::step_profiled`]. Durations include the profiler's own
/// clock reads (one per phase boundary), so shares are approximate —
/// meaningful for "where does the time go", not for absolute ns.
#[derive(Debug, Default, Clone, Copy)]
pub struct PhaseProfile {
    /// Cycle framing: rotation ticks, empty-slot skipping, fetch
    /// begin/end and delivery application.
    pub fetch: Duration,
    /// Context wake-ups and slot binding.
    pub wake_bind: Duration,
    /// The per-slot issue phase (window fill, hazard checks,
    /// decode-unit execution, stall recording).
    pub issue: Duration,
    /// Schedule-unit arbitration, minus the selected instructions'
    /// execution time.
    pub arbitrate: Duration,
    /// Execution of arbitration winners, including result writeback.
    pub writeback: Duration,
    /// Event-wheel fast-forward attempts and jumps.
    pub wheel: Duration,
    /// Number of [`Machine::step_profiled`] calls accumulated (a wheel
    /// jump can advance many cycles in one step).
    pub steps: u64,
}

impl PhaseProfile {
    /// Sum of all phase durations.
    pub fn total(&self) -> Duration {
        self.fetch + self.wake_bind + self.issue + self.arbitrate + self.writeback + self.wheel
    }
}

/// Phase timer for `step_impl`: compiles to nothing unless `PROF`.
struct Lap(Option<Instant>);

impl Lap {
    #[inline]
    fn start<const PROF: bool>() -> Self {
        Lap(if PROF { Some(Instant::now()) } else { None })
    }

    /// Adds the time since the previous mark to `acc` and re-marks.
    #[inline]
    fn lap<const PROF: bool>(&mut self, acc: &mut Duration) {
        if PROF {
            let now = Instant::now();
            if let Some(t) = self.0.replace(now) {
                *acc += now.duration_since(t);
            }
        }
    }
}

/// A point-in-time view of one thread slot (see
/// [`Machine::slot_view`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotView {
    /// Context frame bound to the slot, if any.
    pub context: Option<usize>,
    /// Logical-processor id of the running thread.
    pub lpid: Option<i64>,
    /// Address of the next fresh instruction the slot will issue.
    pub next_pc: Option<u32>,
    /// Decoded-but-unissued instructions in the window.
    pub window_len: usize,
    /// Instructions parked across this slot's standby stations.
    pub standby_occupancy: usize,
}

/// `DataMemModel` + `Debug`, so the machine itself can derive `Debug`.
trait DataMemModelDebug: DataMemModel + std::fmt::Debug {}
impl<T: DataMemModel + std::fmt::Debug> DataMemModelDebug for T {}

impl Machine {
    /// Builds a machine running `program` with the paper's ideal
    /// (always-hit, two-cycle) data cache.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError`] if the configuration or program is
    /// invalid, or the program's data does not fit in memory.
    pub fn new(config: Config, program: &Program) -> Result<Self, MachineError> {
        Self::with_mem_model(config, program, Box::new(IdealCache::default()))
    }

    /// Builds a machine with a custom data-memory timing model (finite
    /// cache or DSM, see `hirata-mem`).
    ///
    /// # Errors
    ///
    /// As for [`Machine::new`].
    pub fn with_mem_model(
        config: Config,
        program: &Program,
        mem_model: Box<dyn DataMemModel>,
    ) -> Result<Self, MachineError> {
        config.validate()?;
        let program = PredecodedProgram::shared(program)?;
        Self::with_mem_model_predecoded(config, program, mem_model)
    }

    /// Builds a machine from an already-lowered program, sharing the
    /// instruction store instead of cloning it — the cheap way to run
    /// the same program on many configurations (see
    /// [`PredecodedProgram::shared`]).
    ///
    /// # Errors
    ///
    /// As for [`Machine::new`].
    pub fn from_predecoded(
        config: Config,
        program: Arc<PredecodedProgram>,
    ) -> Result<Self, MachineError> {
        Self::with_mem_model_predecoded(config, program, Box::new(IdealCache::default()))
    }

    /// [`Machine::from_predecoded`] with a custom data-memory timing
    /// model.
    ///
    /// # Errors
    ///
    /// As for [`Machine::new`].
    pub fn with_mem_model_predecoded(
        config: Config,
        program: Arc<PredecodedProgram>,
        mem_model: Box<dyn DataMemModel>,
    ) -> Result<Self, MachineError> {
        config.validate()?;
        let mut memory = Memory::new(config.mem_words);
        for seg in program.data() {
            memory.load_block(seg.base, &seg.words).map_err(|source| MachineError::Mem {
                slot: 0,
                pc: 0,
                source,
            })?;
        }
        let s = config.thread_slots;
        let mut contexts: Vec<Context> =
            (0..config.context_frames).map(|_| Context::free()).collect();
        contexts[0].state = CtxState::Ready;
        contexts[0].resume_pc = program.entry();
        let fu_pool = FuPool::new(std::array::from_fn(|i| config.fu.count(FuClass::ALL[i])));
        let mut stats = RunStats { per_slot_issued: vec![0; s], ..RunStats::default() };
        for class in FuClass::ALL {
            stats.fu_instances[class.index()] = config.fu.count(class) as u64;
        }
        // A wrapper because Box<dyn DataMemModel> lacks Debug; rebox.
        struct Wrap(Box<dyn DataMemModel>);
        impl std::fmt::Debug for Wrap {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("DataMemModel")
            }
        }
        impl DataMemModel for Wrap {
            fn access(&mut self, addr: u64, write: bool, now: u64) -> Access {
                self.0.access(addr, write, now)
            }
            fn stats(&self) -> MemStats {
                self.0.stats()
            }
            fn bulk_store_hits(&mut self, count: u64) -> bool {
                self.0.bulk_store_hits(count)
            }
        }
        let warp = config.warp.then(|| Box::new(warp::WarpState::new()));
        Ok(Machine {
            fetch: FetchSystem::new(
                s,
                config.icache_cycles as u64,
                config.ibuf_words(),
                config.private_fetch,
            ),
            prio: Priorities::new(s, config.rotation),
            queues: QueueRing::new(s, config.queue_capacity),
            slots: (0..s).map(|_| Slot::new()).collect(),
            standby: vec![StandbyStation::new(); s * FU_CLASS_COUNT],
            standby_mask: [SlotSet::EMPTY; FU_CLASS_COUNT],
            standby_slot_count: vec![0; s],
            standby_total: 0,
            live_contexts: 1,
            idle_contexts: 1, // contexts[0] starts Ready

            contexts,
            fu_pool,
            memory,
            mem_model: Box::new(Wrap(mem_model)),
            program,
            config,
            stats,
            cycle: 0,
            ready: {
                let mut all = SlotSet::EMPTY;
                for slot in 0..s {
                    all.insert(slot);
                }
                all
            },
            head_pass: None,
            ff_next: 0,
            ff_stride: 1,
            warp,
            warp_recording: false,
            warp_debug: false,
            scratch: Scratch {
                order: Vec::with_capacity(s),
                cands: Vec::with_capacity(s * 2),
                deliveries: Vec::with_capacity(s),
                wheel_stalls: Vec::with_capacity(s),
                wheel_piece: Vec::with_capacity(s),
            },
            trace: None,
            sink: None,
        })
    }

    // ------------------------------------------------------------------
    // Ready-frontier bookkeeping (the `ready` mask mirrors the slots'
    // block descriptors; the issue phase rescans it in debug builds)
    // ------------------------------------------------------------------

    /// Installs a proven block for `s` and drops it from the ready
    /// frontier. Callers must guarantee the [`SlotBlock`] contract: the
    /// slot re-records exactly this stall every cycle before `wake`,
    /// and every event that could change that outcome runs through
    /// [`Machine::unblock`].
    #[inline]
    fn block_slot(&mut self, s: usize, reason: StallReason, pc: Option<u32>, wake: u64) {
        self.slots[s].block = Some(SlotBlock { reason, pc, wake });
        self.ready.remove(s);
    }

    /// Clears `s`'s block (if any) and returns it to the ready
    /// frontier — the universal "something about this slot changed"
    /// notification.
    #[inline]
    fn unblock(&mut self, s: usize) {
        self.slots[s].block = None;
        self.ready.insert(s);
    }

    // ------------------------------------------------------------------
    // Standby-station bookkeeping (occupancy masks and counts are kept
    // in lockstep with the stations; `arbitrate` rescans them in debug
    // builds)
    // ------------------------------------------------------------------

    #[inline]
    fn station(&self, s: usize, ci: usize) -> &StandbyStation {
        &self.standby[s * FU_CLASS_COUNT + ci]
    }

    #[inline]
    fn standby_push(&mut self, s: usize, ci: usize, f: InFlight) {
        self.standby[s * FU_CLASS_COUNT + ci].push_back(f);
        self.standby_mask[ci].insert(s);
        self.standby_slot_count[s] += 1;
        self.standby_total += 1;
    }

    #[inline]
    fn standby_pop(&mut self, s: usize, ci: usize) -> InFlight {
        let st = &mut self.standby[s * FU_CLASS_COUNT + ci];
        let f = st.pop_front();
        if st.is_empty() {
            self.standby_mask[ci].remove(s);
        }
        self.standby_slot_count[s] -= 1;
        self.standby_total -= 1;
        self.unblock(s); // a station drained: FuConflict may lift
        f
    }

    /// Empties one station, fixing up the occupancy bookkeeping;
    /// returns how many entries were dropped.
    fn standby_clear(&mut self, s: usize, ci: usize) -> usize {
        let st = &mut self.standby[s * FU_CLASS_COUNT + ci];
        let n = st.len();
        st.clear();
        self.standby_mask[ci].remove(s);
        self.standby_slot_count[s] -= n as u16;
        self.standby_total -= n;
        self.unblock(s);
        n
    }

    /// True if any of `s`'s standby stations holds an instruction.
    #[inline]
    fn slot_has_standby(&self, s: usize) -> bool {
        self.standby_slot_count[s] > 0
    }

    /// Disjoint `(&contexts[a], &mut contexts[b])` borrows for
    /// parent-to-child copies.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    fn pair_mut(contexts: &mut [Context], a: usize, b: usize) -> (&Context, &mut Context) {
        assert_ne!(a, b);
        if a < b {
            let (lo, hi) = contexts.split_at_mut(b);
            (&lo[a], &mut hi[0])
        } else {
            let (lo, hi) = contexts.split_at_mut(a);
            (&hi[0], &mut lo[b])
        }
    }

    /// Registers an additional thread starting at `pc`, occupying a
    /// free context frame. With more context frames than thread slots
    /// this exercises concurrent multithreading (§2.1.3).
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::NoFreeContext`] if every frame is taken.
    pub fn add_thread(&mut self, pc: u32) -> Result<(), MachineError> {
        let idx = self
            .contexts
            .iter()
            .position(|c| c.state == CtxState::Free)
            .ok_or(MachineError::NoFreeContext { pc: u32::MAX })?;
        let lpid = idx as i64;
        self.live_contexts += 1;
        self.idle_contexts += 1;
        let ctx = &mut self.contexts[idx];
        ctx.state = CtxState::Ready;
        ctx.resume_pc = pc;
        ctx.lpid = lpid;
        Ok(())
    }

    /// Runs to completion (all threads halted or killed) and returns
    /// the accumulated statistics (also available afterwards through
    /// [`Machine::stats`]).
    ///
    /// # Errors
    ///
    /// Propagates any [`MachineError`] raised during simulation,
    /// including the watchdog if `max_cycles` is exceeded.
    pub fn run(&mut self) -> Result<&RunStats, MachineError> {
        // One sink check selects the whole loop's monomorphized
        // kernel; the untraced path then carries no sink tests at all.
        let mut prof = PhaseProfile::default();
        if self.sink.is_some() {
            while !self.step_impl::<false, true>(&mut prof)? {}
        } else {
            while !self.step_impl::<false, false>(&mut prof)? {}
        }
        Ok(&self.stats)
    }

    /// Runs until the machine finishes, `stride` more cycles elapse,
    /// or the ready frontier empties (every slot provably stalled —
    /// the yield condition [`crate::MachineBatch`] uses to hand a
    /// lane's remaining round to its siblings). Returns true once the
    /// machine is finished. The sink dispatch is hoisted out of the
    /// loop, so untraced spans run the sink-free kernel throughout.
    ///
    /// # Errors
    ///
    /// As for [`Machine::run`].
    pub fn run_span(&mut self, stride: u64) -> Result<bool, MachineError> {
        let end = self.cycle.saturating_add(stride.max(1));
        let mut prof = PhaseProfile::default();
        if self.sink.is_some() {
            while self.cycle < end {
                if self.step_impl::<false, true>(&mut prof)? {
                    return Ok(true);
                }
                if self.ready.is_empty() {
                    break;
                }
            }
        } else {
            while self.cycle < end {
                if self.step_impl::<false, false>(&mut prof)? {
                    return Ok(true);
                }
                if self.ready.is_empty() {
                    break;
                }
            }
        }
        Ok(false)
    }

    /// Advances one cycle. Returns true once the machine is finished.
    ///
    /// # Errors
    ///
    /// As for [`Machine::run`].
    pub fn step(&mut self) -> Result<bool, MachineError> {
        if self.sink.is_some() {
            self.step_impl::<false, true>(&mut PhaseProfile::default())
        } else {
            self.step_impl::<false, false>(&mut PhaseProfile::default())
        }
    }

    /// [`Machine::step`] with per-phase wall-time attribution
    /// accumulated into `profile`. Identical simulation semantics; the
    /// only difference is the clock reads at phase boundaries.
    ///
    /// # Errors
    ///
    /// As for [`Machine::run`].
    pub fn step_profiled(&mut self, profile: &mut PhaseProfile) -> Result<bool, MachineError> {
        if self.sink.is_some() {
            self.step_impl::<true, true>(profile)
        } else {
            self.step_impl::<true, false>(profile)
        }
    }

    /// The cycle kernel, monomorphized over phase profiling (`PROF`)
    /// and trace-sink presence (`TRACED`): the common no-sink path
    /// compiles with every sink check statically false, so tracing
    /// costs nothing unless a sink is attached.
    fn step_impl<const PROF: bool, const TRACED: bool>(
        &mut self,
        prof: &mut PhaseProfile,
    ) -> Result<bool, MachineError> {
        if self.is_done() {
            return Ok(true);
        }
        let mut lap = Lap::start::<PROF>();
        if PROF {
            prof.steps += 1;
        }
        let now = self.cycle;
        if now >= self.config.max_cycles {
            return Err(MachineError::Watchdog { cycles: self.config.max_cycles });
        }
        if self.prio.tick(now) {
            self.stats.rotations += 1;
            let highest = self.prio.highest();
            if TRACED {
                if let Some(sink) = self.sink.as_deref_mut() {
                    sink.event(&TraceEvent::Rotation {
                        cycle: now,
                        kind: RotationKind::Implicit,
                        highest,
                    });
                }
            }
        }
        self.skip_empty_priority_slots::<TRACED>(now);
        let depth = self.config.pipeline.decode_depth();
        let mut deliveries = std::mem::take(&mut self.scratch.deliveries);
        deliveries.clear();
        self.fetch.begin_cycle(now, &mut deliveries);
        for d in &deliveries {
            if d.redirect {
                let slot = &mut self.slots[d.slot];
                slot.earliest_issue = slot.earliest_issue.max(now + depth);
                slot.block = None;
                self.ready.insert(d.slot);
            } else if matches!(self.slots[d.slot].block, Some(b) if b.reason == StallReason::Fetch)
            {
                // A refill ends fetch starvation; other blocks are
                // unaffected by a plain delivery (their conditions
                // don't read the credit count).
                self.slots[d.slot].block = None;
                self.ready.insert(d.slot);
            }
            if TRACED {
                if let Some(sink) = self.sink.as_deref_mut() {
                    sink.event(&TraceEvent::Fetch {
                        cycle: now,
                        slot: d.slot,
                        redirect: d.redirect,
                    });
                }
            }
        }
        self.scratch.deliveries = deliveries;
        lap.lap::<PROF>(&mut prof.fetch);
        self.wake_and_bind::<TRACED>(now);
        lap.lap::<PROF>(&mut prof.wake_bind);
        // One priority-order snapshot serves both the issue phase and
        // arbitration: nothing reorders the levels in between (chgpri
        // is deferred to cycle end, implicit/forced rotations happened
        // above).
        let mut order = std::mem::take(&mut self.scratch.order);
        order.clear();
        order.extend_from_slice(self.prio.order());
        let mut cands = std::mem::take(&mut self.scratch.cands);
        cands.clear();
        let issued_before = self.stats.instructions;
        let issue_res = self.issue_phase::<TRACED>(&order, now, &mut cands);
        lap.lap::<PROF>(&mut prof.issue);
        let arb_res = match issue_res {
            Ok(()) => self.arbitrate::<PROF, TRACED>(&order, &mut cands, now),
            Err(e) => Err(e),
        };
        lap.lap::<PROF>(&mut prof.arbitrate);
        self.scratch.order = order;
        self.scratch.cands = cands;
        let wb = arb_res?;
        if PROF {
            // The arbitration lap included the winners' execution,
            // which `arbitrate` timed separately.
            prof.writeback += wb;
            prof.arbitrate = prof.arbitrate.saturating_sub(wb);
        }
        if self.prio.apply_pending(now) {
            self.stats.rotations += 1;
            let highest = self.prio.highest();
            if TRACED {
                if let Some(sink) = self.sink.as_deref_mut() {
                    sink.event(&TraceEvent::Rotation {
                        cycle: now,
                        kind: RotationKind::Explicit,
                        highest,
                    });
                }
            }
        }
        self.fetch.end_cycle(now);
        self.cycle += 1;
        self.stats.cycles = self.cycle;
        lap.lap::<PROF>(&mut prof.fetch);
        if self.is_done() {
            return Ok(true);
        }
        // Loop-warp (see `machine/warp.rs`): watch for a recurring
        // timing fingerprint, record candidate periods, and leap over
        // proven steady-state loops. Under a trace sink the engine
        // only observes (for `--warp-debug` reports) and never leaps.
        // While it records, the event wheel below stays suppressed so
        // period boundaries are reached by plain stepping — an
        // identity-safe throttle, as the wheel only skips
        // provably-inert work.
        if self.warp.is_some() && (!TRACED || self.warp_debug) {
            self.warp_observe(!TRACED);
        }
        // Event-wheel fast-forward (see `machine/wheel.rs`): if every
        // slot is provably stalled past the next cycle — by a live
        // block, a probed window head, a branch shadow, or fetch
        // starvation — jump straight to the earliest wake,
        // synthesizing the skipped cycles' stall accounting. On a
        // single-slot machine it runs after issuing cycles too:
        // single-issue decode drains the window every cycle, so the
        // next head can be probed (and the probe's verdict reused by
        // the next step) without waiting for a step to discover the
        // stall. Multi-slot machines attempt it only after a cycle
        // that issued nothing — with several slots the per-slot probes
        // rarely pay for themselves while any slot is making progress
        // — and back off exponentially while attempts keep failing.
        // An empty ready frontier bypasses the backoff: every slot
        // holds a live block, so the probe is a handful of mask and
        // descriptor reads with no `check_issue` calls.
        if self.config.fast_forward
            && !self.warp_recording
            && (self.slots.len() == 1
                || (self.stats.instructions == issued_before && self.cycle >= self.ff_next))
        {
            self.fast_forward();
            lap.lap::<PROF>(&mut prof.wheel);
        }
        Ok(false)
    }

    /// True when every context has finished and all standby stations
    /// have drained.
    pub fn is_done(&self) -> bool {
        debug_assert_eq!(
            self.live_contexts,
            self.contexts
                .iter()
                .filter(|c| !matches!(c.state, CtxState::Done | CtxState::Free))
                .count(),
            "live-context counter out of sync"
        );
        self.standby_total == 0 && self.live_contexts == 0
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Cycles elapsed.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// The data memory, for inspecting final images.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Data-memory model statistics (hits/misses/absences).
    pub fn mem_stats(&self) -> MemStats {
        self.mem_model.stats()
    }

    /// Reads an integer register of context frame `ctx`.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    pub fn reg_g(&self, ctx: usize, r: GReg) -> i64 {
        self.contexts[ctx].regs.peek_g(r)
    }

    /// Reads a floating register of context frame `ctx`.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    pub fn reg_f(&self, ctx: usize, r: hirata_isa::FReg) -> f64 {
        self.contexts[ctx].regs.peek_f(r)
    }

    /// The raw architectural register image of context frame `ctx`:
    /// the 32 integer registers (two's complement) followed by the 32
    /// floating registers (IEEE-754 bits). Matches the layout of
    /// [`crate::EmuOutcome::regs`] for differential testing.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    pub fn register_image(&self, ctx: usize) -> Vec<u64> {
        self.contexts[ctx].regs.image()
    }

    /// Number of context frames (for iterating [`Self::register_image`]).
    pub fn context_frames(&self) -> usize {
        self.contexts.len()
    }

    /// Seeds an integer register of context frame `ctx` before running.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    pub fn poke_reg_g(&mut self, ctx: usize, r: GReg, value: i64) {
        self.contexts[ctx].regs.poke_g(r, value);
    }

    /// Seeds a floating register of context frame `ctx` before running.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    pub fn poke_reg_f(&mut self, ctx: usize, r: hirata_isa::FReg, value: f64) {
        self.contexts[ctx].regs.poke_f(r, value);
    }

    /// A point-in-time view of one thread slot, for debuggers and
    /// monitoring tools.
    pub fn slot_view(&self, slot: usize) -> SlotView {
        let s = &self.slots[slot];
        SlotView {
            context: s.ctx,
            lpid: s.ctx.map(|c| self.contexts[c].lpid),
            next_pc: s
                .window
                .iter()
                .find_map(|e| match e {
                    WinEntry::Fresh(pc) => Some(*pc),
                    WinEntry::Replay(..) => None,
                })
                .or(Some(s.fetch_pc))
                .filter(|_| s.ctx.is_some()),
            window_len: s.window.len(),
            standby_occupancy: self.standby_slot_count[slot] as usize,
        }
    }

    /// Number of thread slots.
    pub fn thread_slots(&self) -> usize {
        self.slots.len()
    }

    /// The ready frontier: the slots *not* currently holding a proven
    /// stall block. An empty set means every slot is provably stalled
    /// until its block's wake cycle or a machine event — the condition
    /// [`crate::MachineBatch`] uses to yield a lane's remaining round
    /// to its siblings.
    pub fn ready_slots(&self) -> SlotSet {
        self.ready
    }

    /// Current schedule-unit priority order (highest first).
    pub fn priority_order(&self) -> Vec<usize> {
        self.prio.order().to_vec()
    }

    /// Entries currently in each queue-register link (including
    /// in-flight ones not yet readable).
    pub fn queue_depths(&self) -> Vec<usize> {
        (0..self.slots.len()).map(|l| self.queues.len(l)).collect()
    }

    /// Enables or disables issue tracing. Tracing records every issue
    /// as an [`IssueEvent`]; it is intended for tests and debugging.
    pub fn set_trace(&mut self, on: bool) {
        self.trace = if on { Some(Vec::new()) } else { None };
    }

    /// Issue events recorded so far (empty unless tracing is enabled).
    pub fn trace(&self) -> &[IssueEvent] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Attaches a structured-event sink ([`crate::trace`]). The machine
    /// drives it with one [`TraceEvent`] per micro-architectural
    /// occurrence until detached; sinks built on shared handles
    /// ([`crate::RingSink`], [`crate::ChromeSink`], [`crate::TextSink`])
    /// stay inspectable through their clones.
    pub fn attach_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Detaches and returns the structured-event sink, if any.
    pub fn detach_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }

    /// Records one stalled slot-cycle in the stats (aggregate and
    /// per-window) and emits the matching trace event. `pc` is the
    /// blocking instruction's address, when one exists.
    fn record_stall<const TRACED: bool>(
        &mut self,
        now: u64,
        slot: usize,
        reason: StallReason,
        pc: Option<u32>,
    ) {
        self.stats.record_stall(reason, now);
        if self.warp_recording {
            self.warp_note_stall(reason, now);
        }
        if TRACED {
            if let Some(sink) = self.sink.as_deref_mut() {
                sink.event(&TraceEvent::Stall { cycle: now, slot, reason, pc });
            }
        }
    }

    // ------------------------------------------------------------------
    // Cycle phases
    // ------------------------------------------------------------------

    /// An empty thread slot can never execute `chgpri`, so if it holds
    /// the highest priority the rotation token would stop circulating
    /// and every priority-interlocked instruction (`chgpri`,
    /// `killothers`, gated stores) would wedge. The schedule units
    /// therefore skip past slots with no thread and nothing left in
    /// their standby stations.
    fn skip_empty_priority_slots<const TRACED: bool>(&mut self, now: u64) {
        for _ in 0..self.slots.len() {
            let h = self.prio.highest();
            let skippable = self.slots[h].ctx.is_none() && !self.slot_has_standby(h);
            if !skippable {
                break;
            }
            // With no bound slot anywhere the token has nowhere useful
            // to land; leave it parked rather than spinning forever.
            if !self.slots.iter().any(|s| s.ctx.is_some()) {
                break;
            }
            self.prio.force_rotate(now);
            let highest = self.prio.highest();
            if TRACED {
                if let Some(sink) = self.sink.as_deref_mut() {
                    sink.event(&TraceEvent::Rotation {
                        cycle: now,
                        kind: RotationKind::Forced,
                        highest,
                    });
                }
            }
        }
    }

    /// Wakes contexts whose remote access completed and binds ready
    /// contexts to free slots (concurrent multithreading, §2.1.3).
    fn wake_and_bind<const TRACED: bool>(&mut self, now: u64) {
        debug_assert_eq!(
            self.idle_contexts,
            self.contexts
                .iter()
                .filter(|c| matches!(c.state, CtxState::Ready | CtxState::Waiting { .. }))
                .count(),
            "idle-context counter out of sync"
        );
        // With no context Ready or Waiting, both loops below are
        // no-ops: nothing can wake and nothing can bind.
        if self.idle_contexts == 0 {
            return;
        }
        for ctx in &mut self.contexts {
            if let CtxState::Waiting { until } = ctx.state {
                if until <= now {
                    ctx.state = CtxState::Ready;
                }
            }
        }
        for s in 0..self.slots.len() {
            if self.slots[s].ctx.is_some() || self.slot_has_standby(s) {
                continue;
            }
            let Some(c) = self.contexts.iter().position(|c| c.state == CtxState::Ready) else {
                continue;
            };
            let penalty =
                if self.contexts[c].started { self.config.switch_penalty as u64 } else { 0 };
            let ctx = &mut self.contexts[c];
            ctx.state = CtxState::Running;
            ctx.started = true;
            self.idle_contexts -= 1;
            let slot = &mut self.slots[s];
            slot.ctx = Some(c);
            slot.fetch_pc = ctx.resume_pc;
            slot.window.clear();
            slot.block = None;
            for (inst, vals) in ctx.replay.drain(..) {
                slot.window.push_back(WinEntry::Replay(inst, vals));
            }
            slot.earliest_issue = now + penalty;
            let pc = slot.fetch_pc;
            self.ready.insert(s);
            self.fetch.set_active(s, true);
            self.fetch.request_redirect(s, now);
            if TRACED {
                if let Some(sink) = self.sink.as_deref_mut() {
                    sink.event(&TraceEvent::ThreadBind { cycle: now, slot: s, ctx: c, pc });
                }
            }
        }
    }

    /// Lets every slot (in priority order) issue up to `D`
    /// instructions; decode-unit instructions execute immediately,
    /// functional-unit instructions become schedule-unit candidates
    /// (appended to `cands`).
    fn issue_phase<const TRACED: bool>(
        &mut self,
        order: &[usize],
        now: u64,
        cands: &mut Vec<InFlight>,
    ) -> Result<(), MachineError> {
        #[cfg(debug_assertions)]
        for s in 0..self.slots.len() {
            assert_eq!(
                self.ready.contains(s),
                self.slots[s].block.is_none(),
                "ready mask out of sync with slot {s}'s block descriptor"
            );
        }
        for &s in order {
            // A live block short-circuits the whole issue path for its
            // slot: until `wake` (or a clearing event, which re-reads
            // the descriptor as `None` here — mid-phase unblocks, e.g.
            // a queue pop by an earlier slot, take effect in the same
            // cycle, exactly like the full rescan), a fresh evaluation
            // would reach the identical first-failing check.
            if let Some(b) = self.slots[s].block {
                if now < b.wake {
                    #[cfg(debug_assertions)]
                    self.assert_block_matches_fresh_eval(s, &b, now);
                    self.record_stall::<TRACED>(now, s, b.reason, b.pc);
                    continue;
                }
                self.unblock(s);
                // A timed block expiring usually means the event it
                // waited out has arrived (e.g. a scoreboard clear):
                // make the packed busy mask exact once, here, so the
                // fresh evaluation's fast path sees it — amortized
                // over stall episodes instead of per hazard check.
                if let Some(c) = self.slots[s].ctx {
                    self.contexts[c].regs.refresh(now);
                }
            }
            self.issue_slot::<TRACED>(s, now, cands)?;
        }
        Ok(())
    }

    fn issue_slot<const TRACED: bool>(
        &mut self,
        s: usize,
        now: u64,
        cands: &mut Vec<InFlight>,
    ) -> Result<(), MachineError> {
        let Some(ctx_i) = self.slots[s].ctx else {
            self.record_stall::<TRACED>(now, s, StallReason::NoThread, None);
            // Only a bind gives the slot work, and binds unblock.
            self.block_slot(s, StallReason::NoThread, None, u64::MAX);
            return Ok(());
        };
        if now < self.slots[s].earliest_issue {
            // The redirect (or rebind) has been delivered but the
            // decode pipeline is still refilling: the branch-shadow
            // tail, distinct from waiting on the fetch unit itself.
            // Stable until the shadow expires: the window and fetch PC
            // only change through events that unblock (redirect
            // deliveries, rebinds, kills), and the fill loop below is
            // skipped throughout the shadow.
            let pc = self.next_window_pc(s);
            self.record_stall::<TRACED>(now, s, StallReason::BranchShadow, Some(pc));
            self.block_slot(s, StallReason::BranchShadow, Some(pc), self.slots[s].earliest_issue);
            return Ok(());
        }
        // Fill the decode window ("the instruction window is filled
        // every cycle", §3.3).
        let program_len = self.program.len();
        let width = self.config.issue_width;
        while self.slots[s].window.len() < width && self.fetch.credits(s) > 0 {
            let pc = self.slots[s].fetch_pc;
            if (pc as usize) >= program_len {
                break; // fetch-ahead past the end; fault only if issued
            }
            self.slots[s].window.push_back(WinEntry::Fresh(pc));
            self.slots[s].fetch_pc = pc + 1;
            self.fetch.consume(s);
        }
        if self.slots[s].window.is_empty() {
            if self.fetch.credits(s) > 0 && (self.slots[s].fetch_pc as usize) >= program_len {
                return Err(MachineError::PcOutOfRange { slot: s, pc: self.slots[s].fetch_pc });
            }
            // An empty window after the fill implies no credits (with
            // credits, either the fill pushed an entry or the fault
            // above fired), so only a delivery — which unblocks —
            // changes this. A delivered PC past the end faults on that
            // re-evaluation, the same cycle the plain rescan would.
            debug_assert_eq!(self.fetch.credits(s), 0, "starved slot still holds fetch credits");
            let pc = self.slots[s].fetch_pc;
            self.record_stall::<TRACED>(now, s, StallReason::Fetch, Some(pc));
            self.block_slot(s, StallReason::Fetch, Some(pc), u64::MAX);
            return Ok(());
        }
        // Without standby stations, a previously issued instruction
        // that lost arbitration blocks the whole decode unit.
        if !self.config.standby_stations && self.slot_has_standby(s) {
            let base = s * FU_CLASS_COUNT;
            let pc = self.standby[base..base + FU_CLASS_COUNT]
                .iter()
                .find_map(StandbyStation::front)
                .map(|f| f.pc);
            self.record_stall::<TRACED>(now, s, StallReason::FuConflict, pc);
            return Ok(());
        }

        let mut unissued_reads: u64 = 0;
        let mut unissued_writes: u64 = 0;
        let mut unissued_mem = false;
        let mut unissued_store = false;
        let mut class_taken = [false; FU_CLASS_COUNT];
        let mut issued = 0usize;
        let mut head_reason = None;
        let mut head_pc = None;
        let mut head_wake = None;
        let mut head_blockable = false;
        let mut i = 0usize;
        while i < self.slots[s].window.len() && issued < width {
            let entry = self.slots[s].window[i];
            // Fresh entries read the predecoded store; replays (rare —
            // only after a data-absence trap) re-lower their saved
            // instruction so the window entry stays small.
            let (di, preset, pc) = match entry {
                WinEntry::Fresh(pc) => (self.program.insts()[pc as usize], None, pc),
                WinEntry::Replay(inst, vals) => {
                    (DecodedInst::of(inst), Some(vals), self.contexts[ctx_i].resume_pc)
                }
            };
            // The event wheel's end-of-step probe may have already run
            // this exact evaluation (same cycle, same fresh head, same
            // all-clear accumulators) and proven it passes; reuse the
            // proof instead of repeating it. Debug builds repeat it
            // anyway and check agreement.
            let probe_passed = i == 0
                && issued == 0
                && preset.is_none()
                && self.head_pass == Some((now, pc))
                && self.slots.len() == 1;
            let check = if probe_passed {
                #[cfg(debug_assertions)]
                assert!(
                    self.check_issue(
                        s,
                        ctx_i,
                        &di,
                        false,
                        now,
                        0,
                        0,
                        (false, false),
                        &[false; FU_CLASS_COUNT],
                        true,
                    )
                    .is_ok(),
                    "head-issue proof diverged from a fresh evaluation"
                );
                Ok(())
            } else {
                self.check_issue(
                    s,
                    ctx_i,
                    &di,
                    preset.is_some(),
                    now,
                    unissued_reads,
                    unissued_writes,
                    (unissued_mem, unissued_store),
                    &class_taken,
                    i == 0,
                )
            };
            match check {
                Err(IssueBlock::Fault(mut e)) => {
                    if let MachineError::QueueMisuse { pc: epc, .. } = &mut e {
                        *epc = pc;
                    }
                    return Err(e);
                }
                Err(IssueBlock::Stall(reason, wake)) => {
                    if i == 0 {
                        head_reason = Some(reason);
                        head_pc = Some(pc);
                        head_wake = wake;
                        // Replays resume via `wake_and_bind` and
                        // priority-gated ops can unblock on rotation;
                        // neither stall is stable, so never block.
                        head_blockable =
                            matches!(entry, WinEntry::Fresh(_)) && !di.needs_highest_priority();
                    }
                    if di.is_decode_unit() {
                        break; // never bypass an unissued decode-unit op
                    }
                    unissued_reads |= di.src_mask;
                    unissued_writes |= di.dest_mask;
                    if di.is_mem() {
                        unissued_mem = true;
                        if di.is_store() {
                            unissued_store = true;
                        }
                    }
                    i += 1;
                }
                Ok(()) => {
                    self.slots[s].window.remove(i);
                    issued += 1;
                    self.stats.instructions += 1;
                    self.stats.per_slot_issued[s] += 1;
                    if self.warp_recording {
                        self.warp_note_issue(&di, s, ctx_i, pc, now);
                    }
                    if let Some(trace) = &mut self.trace {
                        trace.push(IssueEvent { cycle: now, slot: s, ctx: ctx_i, pc });
                    }
                    if TRACED {
                        if let Some(sink) = self.sink.as_deref_mut() {
                            sink.event(&TraceEvent::Issue { cycle: now, slot: s, ctx: ctx_i, pc });
                        }
                    }
                    if let Some(class) = di.fu {
                        class_taken[class.index()] = true;
                        let fi = self.capture::<TRACED>(s, ctx_i, pc, &di, preset, now);
                        cands.push(fi);
                    } else {
                        let redirected = self.exec_decode::<TRACED>(s, ctx_i, pc, di.inst, now)?;
                        if redirected || self.slots[s].ctx.is_none() {
                            break;
                        }
                    }
                }
            }
        }
        if issued == 0 {
            self.record_stall::<TRACED>(now, s, head_reason.unwrap_or(StallReason::Fetch), head_pc);
            // Block on the head stall when its outcome is provably
            // stable: single-issue decode (the window is exactly this
            // head, so re-evaluation is pure and the fill loop stays a
            // no-op), a fresh non-gated entry, and a wake hint that
            // buys at least one skipped cycle. Register writeback to
            // this context, standby pops/clears for this slot, queue
            // pushes/pops on its links, and any rebind/redirect
            // unblock.
            if self.config.issue_width == 1 && self.slots[s].window.len() == 1 && head_blockable {
                if let (Some(reason), Some(pc), Some(wake)) = (head_reason, head_pc, head_wake) {
                    if wake > now + 1 {
                        self.block_slot(s, reason, Some(pc), wake);
                    }
                }
            }
        }
        Ok(())
    }

    /// Debug-only proof that replaying a block records exactly the
    /// stall a fresh evaluation would (`check_issue` is side-effect
    /// free). Panics on any divergence.
    #[cfg(debug_assertions)]
    fn assert_block_matches_fresh_eval(&self, s: usize, b: &SlotBlock, now: u64) {
        let slot = &self.slots[s];
        match b.reason {
            StallReason::NoThread => {
                assert!(slot.ctx.is_none(), "NoThread block on a bound slot {s}");
                assert_eq!(b.pc, None, "NoThread block carries a pc");
            }
            StallReason::BranchShadow => {
                assert!(slot.ctx.is_some(), "BranchShadow block on an unbound slot {s}");
                assert!(now < slot.earliest_issue, "BranchShadow block past the shadow expiry");
                assert_eq!(
                    b.wake, slot.earliest_issue,
                    "BranchShadow wake drifted from the shadow"
                );
                assert_eq!(b.pc, Some(self.next_window_pc(s)), "BranchShadow pc drifted");
            }
            StallReason::Fetch => {
                assert!(slot.ctx.is_some(), "Fetch block on an unbound slot {s}");
                assert!(now >= slot.earliest_issue, "Fetch block inside a branch shadow");
                assert!(slot.window.is_empty(), "Fetch block with a non-empty window");
                assert_eq!(self.fetch.credits(s), 0, "Fetch block with credits available");
                assert_eq!(b.pc, Some(slot.fetch_pc), "Fetch block pc drifted");
            }
            _ => {
                // A blocked head stall: re-run the full head check.
                let ctx_i = slot.ctx.expect("head block on an unbound slot");
                assert!(now >= slot.earliest_issue, "head block across a redirect");
                let Some(&WinEntry::Fresh(pc)) = slot.window.front() else {
                    panic!("head block without a fresh window head on slot {s}");
                };
                assert!(slot.window.len() == 1 && Some(pc) == b.pc, "head block pc drifted");
                let di = self.program.insts()[pc as usize];
                assert!(
                    matches!(
                        self.check_issue(
                            s,
                            ctx_i,
                            &di,
                            false,
                            now,
                            0,
                            0,
                            (false, false),
                            &[false; FU_CLASS_COUNT],
                            true,
                        ),
                        Err(IssueBlock::Stall(r, _)) if r == b.reason
                    ),
                    "head block diverged from a fresh head evaluation on slot {s}"
                );
            }
        }
    }

    /// Address of the oldest fresh instruction the slot will issue
    /// (falls back to the fetch PC when the window holds no fresh
    /// entries).
    fn next_window_pc(&self, s: usize) -> u32 {
        self.slots[s]
            .window
            .iter()
            .find_map(|e| match e {
                WinEntry::Fresh(pc) => Some(*pc),
                WinEntry::Replay(..) => None,
            })
            .unwrap_or(self.slots[s].fetch_pc)
    }

    /// All the §2.1.1/§2.2 issue conditions for one instruction.
    #[allow(clippy::too_many_arguments)]
    fn check_issue(
        &self,
        s: usize,
        ctx_i: usize,
        di: &DecodedInst,
        is_replay: bool,
        now: u64,
        unissued_reads: u64,
        unissued_writes: u64,
        (unissued_mem, unissued_store): (bool, bool),
        class_taken: &[bool; FU_CLASS_COUNT],
        is_head: bool,
    ) -> Result<(), IssueBlock> {
        use IssueBlock::{Fault, Stall};
        let ctx = &self.contexts[ctx_i];

        // Decode-unit instructions execute in order: they issue only
        // once every older instruction has issued.
        if di.is_decode_unit() && !is_head {
            return Err(Stall(StallReason::Data, None));
        }
        // Memory ordering within the issue window (D > 1): without
        // address disambiguation hardware, a load may not bypass an
        // unissued store and a store may not bypass any unissued
        // memory operation.
        if di.is_mem() {
            let is_store = di.is_store();
            if (is_store && unissued_mem) || (!is_store && unissued_store) {
                return Err(Stall(StallReason::Data, None));
            }
        }
        if di.needs_highest_priority() && self.prio.highest() != s {
            return Err(Stall(StallReason::Priority, None));
        }
        // `drain` is the §2.3.3 consistency fence: it issues only once
        // every previously issued instruction has been performed (the
        // slot's standby stations are empty; in this model selection
        // is completion, so empty stations mean all effects applied).
        if matches!(di.inst, Inst::Drain) && self.slot_has_standby(s) {
            return Err(Stall(StallReason::Data, None));
        }
        // `fastfork` copies the parent's register set into the
        // children's context frames; it waits until every outstanding
        // write has landed so the copy is quiescent (otherwise a load
        // still in flight would leave a child's scoreboard bit set
        // forever and its value stale).
        if matches!(di.inst, Inst::FastFork) && !ctx.regs.all_ready(now) {
            return Err(Stall(StallReason::Data, None));
        }
        // Rotating the priority away while this slot still has an
        // unperformed gated store would strand that store (it is only
        // performed at the highest priority), so `chgpri` waits for it.
        if matches!(di.inst, Inst::ChgPri) {
            let ls = FuClass::LoadStore.index();
            if self.station(s, ls).iter().any(|f| f.di.is_gated_store()) {
                return Err(Stall(StallReason::Priority, None));
            }
        }
        // Packed-scoreboard fast path: for a fresh instruction in a
        // context with no queue registers mapped, every per-register
        // hazard rule below reduces to ANDs of the predecoded operand
        // masks against the context's packed busy mask and this
        // cycle's unissued-operand masks. The busy mask may be stale —
        // it is a conservative superset of the outstanding writes (see
        // `RegBank::busy`) — so an all-clear here is a proof of "no
        // register hazard", while anything else falls back to the
        // exact per-register walk (which also produces the stall
        // reasons, wake hints, and queue-misuse faults).
        //
        // No refresh runs here: stale bits are only dropped by pokes,
        // bank copies, and the block-expiry refresh in `issue_phase` —
        // all amortized over events rather than paid per hazard check
        // (a per-evaluation refresh, and even a sweep on every
        // writeback, measured as net losses on the bench trio).
        let regs_fast = !is_replay
            && ctx.qread.is_none()
            && ctx.qwrite.is_none()
            && (di.src_mask | di.dest_mask) & (ctx.regs.busy() | unissued_writes) == 0
            && di.dest_mask & unissued_reads == 0;
        #[cfg(debug_assertions)]
        if regs_fast {
            for r in di.srcs.into_iter().flatten() {
                assert!(
                    ctx.regs.is_ready(r, now),
                    "busy-mask fast path missed a source hazard on {r}"
                );
            }
            if let Some(d) = di.dest {
                assert!(
                    ctx.regs.is_ready(d, now),
                    "busy-mask fast path missed a WAW hazard on {d}"
                );
            }
        }
        if !is_replay && !regs_fast {
            for r in di.srcs.into_iter().flatten() {
                if unissued_writes & (1u64 << r.dense_index()) != 0 {
                    return Err(Stall(StallReason::Data, None));
                }
                if ctx.qread == Some(r) {
                    let link = self.queues.read_link(s);
                    if !self.queues.can_read(link, now) {
                        // Wake when the front entry matures (`MAX` for
                        // an empty link — only a push lifts that, and
                        // pushes clear the block).
                        return Err(Stall(
                            StallReason::QueueEmpty,
                            Some(self.queues.readable_at(link)),
                        ));
                    }
                } else if ctx.qwrite == Some(r) {
                    return Err(Fault(MachineError::QueueMisuse {
                        slot: s,
                        pc: 0,
                        detail: format!("read of write-mapped queue register {r}"),
                    }));
                } else if !ctx.regs.is_ready(r, now) {
                    return Err(Stall(StallReason::Data, Some(ctx.regs.ready_time(r))));
                }
            }
        }
        if !regs_fast {
            if let Some(d) = di.dest {
                if (unissued_writes | unissued_reads) & di.dest_mask != 0 {
                    return Err(Stall(StallReason::Data, None));
                }
                if ctx.qwrite == Some(d) {
                    if !self.queues.can_write(self.queues.write_link(s)) {
                        // Only the consumer's pop can free a full link,
                        // and pops clear the block.
                        return Err(Stall(StallReason::QueueFull, Some(u64::MAX)));
                    }
                } else if ctx.qread == Some(d) {
                    return Err(Fault(MachineError::QueueMisuse {
                        slot: s,
                        pc: 0,
                        detail: format!("write to read-mapped queue register {d}"),
                    }));
                } else if !is_replay && !ctx.regs.is_ready(d, now) {
                    // WAW interlock
                    return Err(Stall(StallReason::Data, Some(ctx.regs.ready_time(d))));
                }
            }
        }
        if let Some(class) = di.fu {
            if self.station(s, class.index()).len() >= self.config.standby_depth
                || class_taken[class.index()]
            {
                return Err(Stall(StallReason::FuConflict, Some(u64::MAX)));
            }
        }
        Ok(())
    }

    /// Reads operands (stage S; dequeues mapped queue reads), marks the
    /// destination scoreboard bit, and produces the in-flight record.
    fn capture<const TRACED: bool>(
        &mut self,
        s: usize,
        ctx_i: usize,
        pc: u32,
        di: &DecodedInst,
        preset: Option<[u64; 2]>,
        now: u64,
    ) -> InFlight {
        let vals = match preset {
            Some(v) => v,
            // No queue read mapped: capture cannot have side effects,
            // so the predecoded plan applies — per source slot, one
            // indexed register-bank load (or the pre-folded immediate)
            // and zero instruction-enum matches.
            None if self.contexts[ctx_i].qread.is_none() => {
                let regs = &self.contexts[ctx_i].regs;
                let plan = |c: u8| match c {
                    CAP_NONE => 0,
                    CAP_IMM => di.imm,
                    idx => regs.read_dense(idx as usize),
                };
                let vals = [plan(di.cap[0]), plan(di.cap[1])];
                debug_assert_eq!(
                    vals,
                    resolve_operands(&di.inst, |r| regs.read_bits(r)),
                    "capture plan diverged from fresh operand resolution for {:?}",
                    di.inst
                );
                vals
            }
            None => {
                let link = self.queues.read_link(s);
                let qread = self.contexts[ctx_i].qread;
                let mut dequeued: Option<u64> = None;
                let regs = &self.contexts[ctx_i].regs;
                let queues = &mut self.queues;
                let vals = resolve_operands(&di.inst, |r| {
                    if qread == Some(r) {
                        // One dequeue per instruction even if both
                        // operands name the mapped register.
                        *dequeued.get_or_insert_with(|| queues.read(link))
                    } else {
                        regs.read_bits(r)
                    }
                });
                if dequeued.is_some() {
                    // The pop frees a queue entry: the link's writer
                    // (the predecessor slot) may hold a QueueFull
                    // block that now lifts.
                    let writer = (link + self.slots.len() - 1) % self.slots.len();
                    self.slots[writer].block = None;
                    self.ready.insert(writer);
                    if TRACED {
                        let depth = self.queues.len(link);
                        if let Some(sink) = self.sink.as_deref_mut() {
                            sink.event(&TraceEvent::QueuePop { cycle: now, slot: s, link, depth });
                        }
                    }
                }
                vals
            }
        };
        if let Some(d) = di.dest {
            if self.contexts[ctx_i].qwrite != Some(d) {
                self.contexts[ctx_i].regs.mark_busy(d);
            }
        }
        InFlight {
            slot: s,
            ctx: ctx_i,
            pc,
            di: *di,
            vals,
            replayed: preset.is_some(),
            issued_at: now,
        }
    }

    /// Executes a decode-unit instruction at issue time. Returns true
    /// if control was redirected (window flushed).
    fn exec_decode<const TRACED: bool>(
        &mut self,
        s: usize,
        ctx_i: usize,
        pc: u32,
        inst: Inst,
        now: u64,
    ) -> Result<bool, MachineError> {
        match inst {
            Inst::Nop => Ok(false),
            Inst::Branch { cond, .. } => {
                let vals = self.read_decode_operands::<TRACED>(s, ctx_i, &inst, now);
                let target = match inst {
                    Inst::Branch { target, .. } => target,
                    _ => unreachable!(),
                };
                let taken = branch_taken(cond, vals);
                if self.warp_recording {
                    self.warp_note_branch(pc, cond, vals, taken);
                }
                if taken {
                    self.redirect(s, target, now);
                    Ok(true)
                } else if self.config.refetch_fallthrough {
                    // The paper's machine sends the fetch request at
                    // the end of D1 regardless of the outcome, so the
                    // fall-through path also refetches.
                    self.redirect(s, pc + 1, now);
                    Ok(true)
                } else {
                    // Ablation: keep streaming the sequential path.
                    Ok(false)
                }
            }
            Inst::Jump { target } => {
                self.redirect(s, target, now);
                Ok(true)
            }
            Inst::JumpReg { .. } => {
                let vals = self.read_decode_operands::<TRACED>(s, ctx_i, &inst, now);
                self.redirect(s, vals[0] as u32, now);
                Ok(true)
            }
            Inst::Halt => {
                self.contexts[ctx_i].state = CtxState::Done;
                self.live_contexts -= 1;
                self.detach(s);
                Ok(true)
            }
            Inst::FastFork => self.fast_fork(s, ctx_i, pc, now).map(|()| false),
            Inst::ChgPri => {
                self.prio.request_explicit();
                Ok(false)
            }
            Inst::KillOthers => {
                self.kill_others(s);
                Ok(false)
            }
            Inst::SetRotation { mode } => {
                self.prio.set_mode(mode, now);
                Ok(false)
            }
            Inst::QMap { read, write } => {
                if read == write {
                    return Err(MachineError::QueueMisuse {
                        slot: s,
                        pc,
                        detail: format!("qmap maps {read} for both read and write"),
                    });
                }
                let ctx = &mut self.contexts[ctx_i];
                ctx.qread = Some(read);
                ctx.qwrite = Some(write);
                Ok(false)
            }
            Inst::QUnmap => {
                let ctx = &mut self.contexts[ctx_i];
                ctx.qread = None;
                ctx.qwrite = None;
                Ok(false)
            }
            Inst::Drain => Ok(false), // the interlock happened at issue
            other => unreachable!("`{other}` is not a decode-unit instruction"),
        }
    }

    /// Operand read for decode-executed instructions (branches and
    /// indirect jumps); dequeues mapped queue reads like `capture`.
    fn read_decode_operands<const TRACED: bool>(
        &mut self,
        s: usize,
        ctx_i: usize,
        inst: &Inst,
        now: u64,
    ) -> [u64; 2] {
        let link = self.queues.read_link(s);
        let qread = self.contexts[ctx_i].qread;
        let mut dequeued: Option<u64> = None;
        let regs = &self.contexts[ctx_i].regs;
        let queues = &mut self.queues;
        let vals = resolve_operands(inst, |r| {
            if qread == Some(r) {
                *dequeued.get_or_insert_with(|| queues.read(link))
            } else {
                regs.read_bits(r)
            }
        });
        if dequeued.is_some() {
            // As in `capture`: the writer's QueueFull block may lift.
            let writer = (link + self.slots.len() - 1) % self.slots.len();
            self.slots[writer].block = None;
            self.ready.insert(writer);
            if TRACED {
                let depth = self.queues.len(link);
                if let Some(sink) = self.sink.as_deref_mut() {
                    sink.event(&TraceEvent::QueuePop { cycle: now, slot: s, link, depth });
                }
            }
        }
        vals
    }

    fn redirect(&mut self, s: usize, next_pc: u32, now: u64) {
        let slot = &mut self.slots[s];
        slot.fetch_pc = next_pc;
        slot.window.clear();
        slot.block = None;
        self.ready.insert(s);
        self.fetch.request_redirect(s, now);
    }

    fn detach(&mut self, s: usize) {
        self.slots[s].ctx = None;
        self.slots[s].window.clear();
        self.unblock(s);
        self.fetch.set_active(s, false);
    }

    fn fast_fork(&mut self, s: usize, ctx_i: usize, pc: u32, now: u64) -> Result<(), MachineError> {
        self.contexts[ctx_i].lpid = s as i64;
        for j in 0..self.slots.len() {
            if j == s {
                continue;
            }
            if self.slots[j].ctx.is_some() {
                return Err(MachineError::ForkBusy { slot: j, pc });
            }
            let free = self
                .contexts
                .iter()
                .position(|c| c.state == CtxState::Free)
                .ok_or(MachineError::NoFreeContext { pc })?;
            let (qread, qwrite) = (self.contexts[ctx_i].qread, self.contexts[ctx_i].qwrite);
            // `fastfork` issues only against a quiescent parent bank
            // (see `check_issue`), so copying the architectural values
            // and resetting the child's scoreboard is equivalent to a
            // full clone — without the heap traffic of one.
            let (parent, child) = Self::pair_mut(&mut self.contexts, ctx_i, free);
            child.regs.copy_arch_from(&parent.regs);
            self.live_contexts += 1;
            let child = &mut self.contexts[free];
            child.state = CtxState::Running;
            child.lpid = j as i64;
            child.resume_pc = pc + 1;
            child.qread = qread;
            child.qwrite = qwrite;
            child.started = true;
            let slot = &mut self.slots[j];
            slot.ctx = Some(free);
            slot.fetch_pc = pc + 1;
            slot.window.clear();
            slot.block = None;
            slot.earliest_issue = 0;
            self.ready.insert(j);
            self.fetch.set_active(j, true);
            self.fetch.request_redirect(j, now);
        }
        Ok(())
    }

    fn kill_others(&mut self, s: usize) {
        let my_ctx = self.slots[s].ctx;
        for j in 0..self.slots.len() {
            if j == s {
                continue;
            }
            if let Some(c) = self.slots[j].ctx.take() {
                self.contexts[c].state = CtxState::Done;
                self.live_contexts -= 1;
                self.stats.threads_killed += 1;
            }
            self.slots[j].window.clear();
            self.unblock(j);
            for ci in 0..FU_CLASS_COUNT {
                self.standby_clear(j, ci);
            }
            self.fetch.set_active(j, false);
        }
        // Unbound runnable/waiting contexts die too.
        let mut killed = 0usize;
        for (i, ctx) in self.contexts.iter_mut().enumerate() {
            if Some(i) == my_ctx {
                continue;
            }
            if matches!(ctx.state, CtxState::Ready | CtxState::Waiting { .. }) {
                ctx.state = CtxState::Done;
                killed += 1;
                self.stats.threads_killed += 1;
            }
        }
        self.live_contexts -= killed;
        self.idle_contexts -= killed;
        self.queues.flush();
    }

    // ------------------------------------------------------------------
    // Schedule units (stage S arbitration) and execution
    // ------------------------------------------------------------------

    /// Per-class dynamic scheduling with rotating priorities (§2.2):
    /// standby occupants and this cycle's issues compete; winners start
    /// execution, losers (or survivors) sit in standby stations.
    /// Returns the wall time spent executing arbitration winners (zero
    /// unless `PROF`), so the profiled step can split "arbitrate" from
    /// "writeback" without threading a profile reference through the
    /// unprofiled hot path.
    fn arbitrate<const PROF: bool, const TRACED: bool>(
        &mut self,
        order: &[usize],
        cands: &mut Vec<InFlight>,
        now: u64,
    ) -> Result<Duration, MachineError> {
        let mut wb = Duration::ZERO;
        let tracing = TRACED && self.sink.is_some();
        debug_assert!(self.standby_bookkeeping_consistent(), "standby bookkeeping is in sync");
        // Every issue joins the back of its slot's standby queue up
        // front — it is the youngest there, and `class_taken` caps a
        // slot at one issue per class per cycle, so cross-class push
        // order is immaterial. Arbitration is then a pure drain of
        // the per-class occupancy masks: no candidate scans, and the
        // per-class loops visit exactly the slots with work
        // (find-first-set in priority order) instead of walking every
        // slot. The masks are snapshotted before any unit is granted:
        // a mid-drain detach empties the detaching slot's LoadStore
        // station, and the trace's competitor sets must describe the
        // cycle's entrants, not the survivors.
        for f in cands.drain(..) {
            let class = f.di.fu.expect("arbitrated candidates target a functional unit");
            self.standby_push(f.slot, class.index(), f);
        }
        let competing_by_class = self.standby_mask;
        let slots = self.slots.len();
        let highest = self.prio.highest();
        // Make the calendar ring's free masks exact at `now` before
        // any grant decision (frees every instance whose release has
        // passed since the last arbitration or fast-forward landing).
        self.fu_pool.advance(now);
        for class in FuClass::ALL {
            let ci = class.index();
            let competing = competing_by_class[ci];
            if competing.is_empty() {
                continue;
            }
            let mut winner_slots = SlotSet::EMPTY;
            for s in competing.iter_from(highest, slots) {
                while let Some(&front) = self.station(s, ci).front() {
                    // A priority-gated store is performed only by the
                    // highest-priority logical processor (§2.3.3); if
                    // the priority rotated away while it sat in
                    // standby, it keeps waiting there (and younger
                    // same-class work behind it stays ordered).
                    if front.di.needs_highest_priority() && self.prio.highest() != s {
                        break;
                    }
                    let Some(instance) = self.fu_pool.first_free(ci) else {
                        break;
                    };
                    let f = self.standby_pop(s, ci);
                    self.fu_pool.occupy(ci, instance, now + f.di.issue_latency() as u64);
                    if tracing {
                        winner_slots.insert(s);
                        if let Some(sink) = self.sink.as_deref_mut() {
                            sink.event(&TraceEvent::FuWin {
                                cycle: now,
                                slot: s,
                                class,
                                instance,
                                pc: f.pc,
                                busy: f.di.issue_latency() as u64,
                                competitors: competing.without(s),
                            });
                        }
                    }
                    let t = if PROF { Some(Instant::now()) } else { None };
                    self.execute_selected::<TRACED>(f, class, instance, now)?;
                    if let Some(t) = t {
                        wb += t.elapsed();
                    }
                }
            }
            if tracing && !competing.is_empty() {
                // Everything still standing by either lost arbitration
                // (the slot's front runner) or parked behind it. The
                // standby and sink fields borrow disjointly, so losses
                // emit directly without buffering.
                let highest = self.prio.highest();
                let standby = &self.standby;
                if let Some(sink) = self.sink.as_deref_mut() {
                    for &s in order {
                        for (i, f) in standby[s * FU_CLASS_COUNT + ci].iter().enumerate() {
                            if i == 0 {
                                sink.event(&TraceEvent::FuLoss {
                                    cycle: now,
                                    slot: s,
                                    class,
                                    pc: f.pc,
                                    gated: f.di.needs_highest_priority() && highest != s,
                                    winners: winner_slots,
                                });
                            } else if f.issued_at == now {
                                sink.event(&TraceEvent::Park {
                                    cycle: now,
                                    slot: s,
                                    class,
                                    pc: f.pc,
                                });
                            }
                        }
                    }
                }
            }
        }
        debug_assert!(cands.is_empty(), "every candidate must be selected or parked");
        Ok(wb)
    }

    /// Debug-build rescan: the occupancy mask, per-slot counts, and
    /// machine-wide total all agree with the stations themselves.
    /// Allocation-free so the counting-allocator test can run with
    /// debug assertions enabled.
    #[cfg(debug_assertions)]
    fn standby_bookkeeping_consistent(&self) -> bool {
        let mut rescan = [SlotSet::EMPTY; FU_CLASS_COUNT];
        let mut total = 0usize;
        let mut counts_ok = true;
        for s in 0..self.slots.len() {
            let mut slot_count = 0u16;
            for (ci, mask) in rescan.iter_mut().enumerate() {
                let n = self.station(s, ci).len();
                if n > 0 {
                    mask.insert(s);
                }
                slot_count += n as u16;
                total += n;
            }
            counts_ok &= slot_count == self.standby_slot_count[s];
        }
        counts_ok && rescan == self.standby_mask && total == self.standby_total
    }

    #[cfg(not(debug_assertions))]
    #[allow(dead_code)]
    fn standby_bookkeeping_consistent(&self) -> bool {
        true
    }

    fn execute_selected<const TRACED: bool>(
        &mut self,
        f: InFlight,
        class: FuClass,
        instance: usize,
        now: u64,
    ) -> Result<(), MachineError> {
        debug_assert_fresh_decode(&f.di);
        let ci = class.index();
        let lat = f.di.latency;
        self.stats.fu_invocations[ci] += 1;
        self.stats.fu_busy[ci] += lat.issue as u64;
        let nlp = self.slots.len() as i64;
        let lpid = self.contexts[f.ctx].lpid;
        let action = dispatch(f.di.exec_op, f.vals, f.di.imm, lpid, nlp).ok_or_else(|| {
            MachineError::DecodeAtFu { slot: f.slot, pc: f.pc, inst: f.di.inst.to_string() }
        })?;
        debug_assert_eq!(
            Some(action),
            fu_action(&f.di.inst, f.vals, lpid, nlp),
            "µop dispatch diverged from fresh enum-match evaluation for {:?}",
            f.di.inst
        );
        match action {
            FuAction::Write(bits) => {
                self.write_dest::<TRACED>(&f, bits, now, lat.result);
            }
            FuAction::Load { addr } => match self.timed_access(&f, addr, false, now) {
                Access::Hit { latency } => {
                    let bits = self.memory.read(addr).map_err(|source| MachineError::Mem {
                        slot: f.slot,
                        pc: f.pc,
                        source,
                    })?;
                    // Table 1's 4-cycle load result includes the
                    // 2-cycle data cache; slower accesses stretch it.
                    let result = 2 + latency;
                    self.write_dest::<TRACED>(&f, bits, now, result);
                    if latency as u64 > lat.issue as u64 {
                        self.fu_pool.postpone(ci, instance, now + latency as u64);
                    }
                }
                Access::Absent { ready_after } => {
                    self.data_absence_trap::<TRACED>(f, now + ready_after)
                }
            },
            FuAction::Store { addr, bits } => match self.timed_access(&f, addr, true, now) {
                Access::Hit { latency } => {
                    self.memory.write(addr, bits).map_err(|source| MachineError::Mem {
                        slot: f.slot,
                        pc: f.pc,
                        source,
                    })?;
                    if self.warp_recording {
                        self.warp_note_store(addr, bits, now);
                    }
                    if latency as u64 > lat.issue as u64 {
                        self.fu_pool.postpone(ci, instance, now + latency as u64);
                    }
                }
                Access::Absent { ready_after } => {
                    self.data_absence_trap::<TRACED>(f, now + ready_after)
                }
            },
        }
        Ok(())
    }

    /// Consults the memory timing model, except for replayed accesses
    /// whose remote request already completed before the thread was
    /// resumed (§2.1.3).
    fn timed_access(&mut self, f: &InFlight, addr: u64, write: bool, now: u64) -> Access {
        if f.replayed {
            // The data arrived while the thread was switched out; the
            // replay hits the local cache.
            return Access::Hit { latency: 2 };
        }
        self.mem_model.access(addr, write, now)
    }

    /// Writes a result to its destination: the outgoing queue register
    /// if mapped, the context's register bank otherwise.
    fn write_dest<const TRACED: bool>(
        &mut self,
        f: &InFlight,
        bits: u64,
        now: u64,
        result_latency: u32,
    ) {
        let Some(d) = f.di.dest else { return };
        if self.contexts[f.ctx].qwrite == Some(d) {
            let link = self.queues.write_link(f.slot);
            let avail = now + result_latency as u64 + 1;
            self.queues.write(link, avail, bits);
            // The link's reader (slot `link` by the Figure 5 topology)
            // may hold a QueueEmpty block keyed to the old front
            // entry; the push changes what a fresh evaluation would
            // see.
            self.slots[link].block = None;
            self.ready.insert(link);
            if TRACED {
                let depth = self.queues.len(link);
                if let Some(sink) = self.sink.as_deref_mut() {
                    sink.event(&TraceEvent::QueuePush {
                        cycle: now,
                        slot: f.slot,
                        link,
                        avail,
                        depth,
                    });
                }
            }
        } else {
            self.contexts[f.ctx].regs.write(d, bits, now, result_latency);
            // A register just left the busy state: any Data block of
            // the slot this context is bound to (which can differ
            // from `f.slot` after a trap migration) may lift.
            let mut ready = self.ready;
            for (i, sl) in self.slots.iter_mut().enumerate() {
                if sl.ctx == Some(f.ctx) {
                    sl.block = None;
                    ready.insert(i);
                }
            }
            self.ready = ready;
            if TRACED {
                if let Some(sink) = self.sink.as_deref_mut() {
                    sink.event(&TraceEvent::Writeback {
                        cycle: now,
                        slot: f.slot,
                        ctx: f.ctx,
                        pc: f.pc,
                        dest: d,
                        avail: now + result_latency as u64,
                    });
                }
            }
        }
    }

    /// The §2.1.3 data-absence trap: record the access in the context's
    /// access requirement buffer and switch the thread out until the
    /// remote access completes.
    fn data_absence_trap<const TRACED: bool>(&mut self, f: InFlight, ready_at: u64) {
        if self.warp_recording {
            self.warp_note_veto(WarpMiss::Trap);
        }
        let s = f.slot;
        let ls = FuClass::LoadStore.index();
        // Younger memory operations already waiting in the load/store
        // standby queue are flushed into the access requirement buffer
        // too (§2.1.3: outstanding memory requests are saved as part
        // of the context); non-memory standby entries drain normally.
        // The station and the context are disjoint fields, so the
        // flush moves directly without a temporary buffer.
        {
            let station = &self.standby[s * FU_CLASS_COUNT + ls];
            let ctx = &mut self.contexts[f.ctx];
            ctx.replay.push((f.di.inst, f.vals));
            ctx.replay.extend(station.iter().map(|g| (g.di.inst, g.vals)));
        }
        self.standby_clear(s, ls);
        self.idle_contexts += 1;
        let ctx = &mut self.contexts[f.ctx];
        ctx.state = CtxState::Waiting { until: ready_at };
        // Save the restart point: the oldest unissued instruction.
        let resume = self.slots[s]
            .window
            .iter()
            .find_map(|e| match e {
                WinEntry::Fresh(pc) => Some(*pc),
                WinEntry::Replay(..) => None,
            })
            .unwrap_or(self.slots[s].fetch_pc);
        ctx.resume_pc = resume;
        // Earlier replay entries still in the window move back to the
        // buffer so they re-execute on resume.
        let ctx = &mut self.contexts[f.ctx];
        for e in self.slots[s].window.iter() {
            if let WinEntry::Replay(inst, vals) = e {
                ctx.replay.push((*inst, *vals));
            }
        }
        self.detach(s);
        self.stats.context_switches += 1;
        if TRACED {
            if let Some(sink) = self.sink.as_deref_mut() {
                sink.event(&TraceEvent::ContextSwitch {
                    cycle: self.cycle,
                    slot: s,
                    ctx: f.ctx,
                    resume_at: ready_at,
                });
            }
        }
    }
}
