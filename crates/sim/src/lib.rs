//! Cycle-level simulator of the Hirata et al. (ISCA 1992)
//! multithreaded elementary processor.
//!
//! The machine implements the full §2 architecture:
//!
//! * thread slots (instruction queue unit + decode unit) sharing an
//!   instruction fetch unit and cache (Figure 2);
//! * scoreboarded in-order issue per slot with the Figure 3(a)
//!   pipeline timing (or the Figure 3(b) baseline RISC pipeline);
//! * instruction schedule units with multi-level rotating priorities
//!   in implicit- and explicit-rotation modes (§2.2, Figure 4);
//! * depth-one standby stations enabling bounded out-of-order
//!   execution (§2.1.1);
//! * per-context register banks, context frames, the access
//!   requirement buffer and data-absence context switching (§2.1.3);
//! * the queue-register ring for doacross/eager loop execution
//!   (§2.3.1, Figure 5) with `fastfork`, `chgpri`, `killothers` and
//!   priority-gated stores (§2.3.3);
//! * per-slot superscalar issue windows for the §3.3 `(D,S)` hybrids.
//!
//! # Examples
//!
//! Run the paper's baseline and a two-slot multithreaded machine on
//! the same program and compare cycle counts:
//!
//! ```
//! use hirata_asm::assemble;
//! use hirata_sim::{Config, Machine};
//!
//! let prog = assemble("
//!     fastfork
//!     lpid r1
//!     mul  r2, r1, r1
//!     sw   r2, 100(r1)
//!     halt
//! ")?;
//! let mut base = Machine::new(Config::base_risc(), &prog)?;
//! let mut dual = Machine::new(Config::multithreaded(2), &prog)?;
//! base.run()?;
//! dual.run()?;
//! assert_eq!(base.memory().read_i64(100)?, 0);
//! assert_eq!(dual.memory().read_i64(101)?, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod config;
pub mod emu;
mod error;
pub mod exec;
mod fetch;
mod machine;
pub mod predecode;
mod priority;
mod queue;
mod regfile;
mod stats;
pub mod trace;
pub mod trace_driven;

pub use batch::{LaneError, LaneResult, MachineBatch, DEFAULT_STRIDE};
pub use config::{Config, ConfigError, PipelineKind, MAX_STANDBY_DEPTH};
pub use emu::{EmuOutcome, Emulator};
pub use error::MachineError;
pub use machine::{
    IssueEvent, Machine, PhaseProfile, SlotView, WarpMiss, WarpPeriodInfo, WarpStats,
};
pub use predecode::{DecodedInst, ExecOp, PredecodedProgram, EXEC_OP_COUNT};
pub use stats::{
    RunStats, StallBreakdown, StallReason, StallWindow, STALL_REASON_COUNT, STALL_WINDOW_CYCLES,
};
pub use trace::{
    chrome_trace_json, format_event, ChromeSink, NullSink, RingSink, RotationKind, SlotSet,
    TextSink, TraceEvent, TraceSink,
};
pub use trace_driven::{build_trace_program, TraceError};
