//! One register bank (the per-context general-purpose + floating-point
//! register set of §2.1.1) together with its scoreboard.
//!
//! The scoreboard follows §2.1.2: a destination's bit is flagged when
//! the instruction issues (enters its S stage) and cleared at the end
//! of the last EX stage, so a consumer may issue `result latency + 1`
//! cycles after the producer. We record, per register, the earliest
//! cycle at which a reader's S stage may be scheduled.

use hirata_isa::{FReg, GReg, Reg, NUM_FREGS, NUM_GREGS};

/// Sentinel ready-time for "issued but not yet scheduled" — the bit is
/// on but the clearing time is unknown until the schedule unit selects
/// the producer.
const BUSY: u64 = u64::MAX;

/// A register bank: 32 general + 32 floating registers with values and
/// per-register ready times.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RegBank {
    gvals: [i64; NUM_GREGS],
    fvals: [f64; NUM_FREGS],
    ready: [u64; NUM_GREGS + NUM_FREGS],
}

impl RegBank {
    pub(crate) fn new() -> Self {
        RegBank {
            gvals: [0; NUM_GREGS],
            fvals: [0.0; NUM_FREGS],
            ready: [0; NUM_GREGS + NUM_FREGS],
        }
    }

    /// True if `reg` can be read by an instruction issuing at `now`.
    pub(crate) fn is_ready(&self, reg: Reg, now: u64) -> bool {
        if reg == Reg::G(GReg::ZERO) {
            return true;
        }
        self.ready[reg.dense_index()] <= now
    }

    /// The first cycle at which `reg` can be read ([`u64::MAX`] while
    /// the producer awaits selection). Used to bound stall memos.
    pub(crate) fn ready_time(&self, reg: Reg) -> u64 {
        if reg == Reg::G(GReg::ZERO) {
            return 0;
        }
        self.ready[reg.dense_index()]
    }

    /// Marks `reg` busy from issue until the producer is scheduled.
    pub(crate) fn mark_busy(&mut self, reg: Reg) {
        if reg == Reg::G(GReg::ZERO) {
            return;
        }
        self.ready[reg.dense_index()] = BUSY;
    }

    /// Writes `bits` to `reg` and sets its ready time (producer
    /// selected at `selected`, result latency `latency`): readers may
    /// issue from cycle `selected + latency + 1`.
    pub(crate) fn write(&mut self, reg: Reg, bits: u64, selected: u64, latency: u32) {
        match reg {
            Reg::G(GReg(0)) => return, // r0 is hardwired to zero
            Reg::G(GReg(n)) => self.gvals[n as usize] = bits as i64,
            Reg::F(FReg(n)) => self.fvals[n as usize] = f64::from_bits(bits),
        }
        self.ready[reg.dense_index()] = selected + latency as u64 + 1;
    }

    /// True if every register in the bank can be read at `now` — i.e.
    /// no write is outstanding. `fastfork` interlocks on this so the
    /// copied register set is quiescent.
    pub(crate) fn all_ready(&self, now: u64) -> bool {
        self.ready.iter().all(|&r| r <= now)
    }

    /// Reads the raw bit pattern of `reg` (integers as two's
    /// complement, floats as IEEE-754 bits).
    pub(crate) fn read_bits(&self, reg: Reg) -> u64 {
        match reg {
            Reg::G(GReg(n)) => self.gvals[n as usize] as u64,
            Reg::F(FReg(n)) => self.fvals[n as usize].to_bits(),
        }
    }

    /// Directly sets an integer register (used to seed arguments and
    /// by `fastfork`/`lpid` plumbing); leaves it ready immediately.
    pub(crate) fn poke_g(&mut self, reg: GReg, value: i64) {
        if reg != GReg::ZERO {
            self.gvals[reg.0 as usize] = value;
            self.ready[Reg::G(reg).dense_index()] = 0;
        }
    }

    /// Reads an integer register's current value.
    pub(crate) fn peek_g(&self, reg: GReg) -> i64 {
        self.gvals[reg.0 as usize]
    }

    /// Reads a floating register's current value.
    pub(crate) fn peek_f(&self, reg: FReg) -> f64 {
        self.fvals[reg.0 as usize]
    }

    /// Directly sets a floating register (test/setup helper).
    pub(crate) fn poke_f(&mut self, reg: FReg, value: f64) {
        self.fvals[reg.0 as usize] = value;
        self.ready[Reg::F(reg).dense_index()] = 0;
    }

    /// Copies the architectural state (values only) of `src` into this
    /// bank and clears the scoreboard. Used by `fastfork`, which
    /// interlocks until the parent bank is quiescent
    /// ([`Self::all_ready`]), so dropping the parent's ready times
    /// loses nothing — every register is readable immediately in the
    /// child, exactly as a full clone of a quiescent bank would be.
    pub(crate) fn copy_arch_from(&mut self, src: &RegBank) {
        self.gvals = src.gvals;
        self.fvals = src.fvals;
        self.ready = [0; NUM_GREGS + NUM_FREGS];
    }

    /// The raw architectural image of the bank: the 32 integer
    /// registers (two's complement) followed by the 32 floating
    /// registers (IEEE-754 bits). Scoreboard state is excluded, so two
    /// banks holding the same values compare equal regardless of
    /// timing history — the basis of differential testing.
    pub(crate) fn image(&self) -> Vec<u64> {
        self.gvals
            .iter()
            .map(|&v| v as u64)
            .chain(self.fvals.iter().map(|&v| v.to_bits()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_is_immutable_and_always_ready() {
        let mut bank = RegBank::new();
        bank.mark_busy(Reg::G(GReg::ZERO));
        assert!(bank.is_ready(Reg::G(GReg::ZERO), 0));
        bank.write(Reg::G(GReg::ZERO), 99, 0, 2);
        assert_eq!(bank.peek_g(GReg::ZERO), 0);
        assert!(bank.is_ready(Reg::G(GReg::ZERO), 0));
    }

    #[test]
    fn dependent_separation_is_result_latency_plus_one() {
        let mut bank = RegBank::new();
        let r = Reg::G(GReg(5));
        bank.mark_busy(r);
        assert!(!bank.is_ready(r, 1000));
        // Producer selected at cycle 10 with ALU result latency 2.
        bank.write(r, 7, 10, 2);
        assert!(!bank.is_ready(r, 12));
        assert!(bank.is_ready(r, 13)); // 10 + 2 + 1
        assert_eq!(bank.peek_g(GReg(5)), 7);
    }

    #[test]
    fn float_bits_round_trip() {
        let mut bank = RegBank::new();
        let r = Reg::F(FReg(2));
        bank.write(r, (-1.5f64).to_bits(), 0, 4);
        assert_eq!(bank.peek_f(FReg(2)), -1.5);
        assert_eq!(bank.read_bits(r), (-1.5f64).to_bits());
    }

    #[test]
    fn g_and_f_files_are_independent() {
        let mut bank = RegBank::new();
        bank.poke_g(GReg(3), 11);
        bank.poke_f(FReg(3), 2.5);
        assert_eq!(bank.peek_g(GReg(3)), 11);
        assert_eq!(bank.peek_f(FReg(3)), 2.5);
        assert!(bank.is_ready(Reg::G(GReg(3)), 0));
        bank.mark_busy(Reg::F(FReg(3)));
        assert!(bank.is_ready(Reg::G(GReg(3)), 0));
        assert!(!bank.is_ready(Reg::F(FReg(3)), 0));
    }

    #[test]
    fn negative_integers_survive_bit_transport() {
        let mut bank = RegBank::new();
        let r = Reg::G(GReg(1));
        bank.write(r, (-123i64) as u64, 0, 2);
        assert_eq!(bank.peek_g(GReg(1)), -123);
        assert_eq!(bank.read_bits(r) as i64, -123);
    }
}
