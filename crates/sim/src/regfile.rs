//! One register bank (the per-context general-purpose + floating-point
//! register set of §2.1.1) together with its scoreboard.
//!
//! The scoreboard follows §2.1.2: a destination's bit is flagged when
//! the instruction issues (enters its S stage) and cleared at the end
//! of the last EX stage, so a consumer may issue `result latency + 1`
//! cycles after the producer. We record, per register, the earliest
//! cycle at which a reader's S stage may be scheduled.

use hirata_isa::{FReg, GReg, Reg, NUM_FREGS, NUM_GREGS};

/// Sentinel ready-time for "issued but not yet scheduled" — the bit is
/// on but the clearing time is unknown until the schedule unit selects
/// the producer.
const BUSY: u64 = u64::MAX;

/// A register bank: 32 general + 32 floating registers with values and
/// per-register ready times, plus a packed scoreboard summary.
///
/// `repr(C)` fixes the field order hot-first: `check_issue`'s fast
/// path touches only `busy`, operand capture only `gvals`/`fvals`, so
/// those share the leading cache lines while the per-register `ready`
/// times (slow-path and writeback only) trail behind.
#[derive(Debug, Clone)]
#[repr(C)]
pub(crate) struct RegBank {
    /// Packed scoreboard: bit `Reg::dense_index` per register — the 32
    /// G regs in the low word half, the 32 F regs in the high half,
    /// the exact layout of `DecodedInst::{src_mask, dest_mask}`. The
    /// mask is a *conservative superset* of the outstanding writes: a
    /// set bit may be stale (the write has completed but no
    /// [`RegBank::refresh`] ran since), but a clear bit guarantees
    /// `ready[r] <= t` for the cycle `t` at which it was cleared —
    /// and machine time is monotonic, so for every later cycle too.
    /// Bit 0 (r0) is never set: r0 writes are discarded.
    busy: u64,
    gvals: [i64; NUM_GREGS],
    fvals: [f64; NUM_FREGS],
    ready: [u64; NUM_GREGS + NUM_FREGS],
}

/// Equality ignores the packed summary: `busy` is a cache over `ready`
/// whose staleness depends on when `refresh` last ran, not on the
/// architectural or timing state being compared.
impl PartialEq for RegBank {
    fn eq(&self, other: &Self) -> bool {
        self.gvals == other.gvals && self.fvals == other.fvals && self.ready == other.ready
    }
}

impl RegBank {
    pub(crate) fn new() -> Self {
        RegBank {
            busy: 0,
            gvals: [0; NUM_GREGS],
            fvals: [0.0; NUM_FREGS],
            ready: [0; NUM_GREGS + NUM_FREGS],
        }
    }

    /// The packed busy mask (possibly stale — see the field docs; call
    /// [`RegBank::refresh`] first for an exact view at a cycle).
    #[inline]
    pub(crate) fn busy(&self) -> u64 {
        self.busy
    }

    /// Drops every busy bit whose write has completed by `now`, making
    /// the mask exact at `now`: afterwards, bit set ⇔ `ready[r] > now`.
    /// Returns the refreshed mask. `now` must not precede an earlier
    /// refresh (machine time is monotonic, so the cycle loop satisfies
    /// this by construction).
    #[inline]
    pub(crate) fn refresh(&mut self, now: u64) -> u64 {
        let mut pending = self.busy;
        while pending != 0 {
            let i = pending.trailing_zeros() as usize;
            pending &= pending - 1;
            if self.ready[i] <= now {
                self.busy &= !(1u64 << i);
            }
        }
        debug_assert_eq!(
            self.busy,
            self.recompute_busy(now),
            "refreshed busy mask diverged from the per-register ready times"
        );
        self.busy
    }

    /// Debug/test oracle: the exact busy mask at `now`, recomputed
    /// from the per-register ready times.
    pub(crate) fn recompute_busy(&self, now: u64) -> u64 {
        self.ready
            .iter()
            .enumerate()
            .fold(0u64, |m, (i, &r)| if r > now { m | (1u64 << i) } else { m })
    }

    /// True if `reg` can be read by an instruction issuing at `now`.
    pub(crate) fn is_ready(&self, reg: Reg, now: u64) -> bool {
        if reg == Reg::G(GReg::ZERO) {
            return true;
        }
        self.ready[reg.dense_index()] <= now
    }

    /// The first cycle at which `reg` can be read ([`u64::MAX`] while
    /// the producer awaits selection). Used to bound stall blocks.
    pub(crate) fn ready_time(&self, reg: Reg) -> u64 {
        if reg == Reg::G(GReg::ZERO) {
            return 0;
        }
        self.ready[reg.dense_index()]
    }

    /// Marks `reg` busy from issue until the producer is scheduled.
    pub(crate) fn mark_busy(&mut self, reg: Reg) {
        if reg == Reg::G(GReg::ZERO) {
            return;
        }
        self.ready[reg.dense_index()] = BUSY;
        self.busy |= 1u64 << reg.dense_index();
    }

    /// Writes `bits` to `reg` and sets its ready time (producer
    /// selected at `selected`, result latency `latency`): readers may
    /// issue from cycle `selected + latency + 1`.
    pub(crate) fn write(&mut self, reg: Reg, bits: u64, selected: u64, latency: u32) {
        match reg {
            Reg::G(GReg(0)) => return, // r0 is hardwired to zero
            Reg::G(GReg(n)) => self.gvals[n as usize] = bits as i64,
            Reg::F(FReg(n)) => self.fvals[n as usize] = f64::from_bits(bits),
        }
        self.ready[reg.dense_index()] = selected + latency as u64 + 1;
        self.busy |= 1u64 << reg.dense_index();
    }

    /// True if every register in the bank can be read at `now` — i.e.
    /// no write is outstanding. `fastfork` interlocks on this so the
    /// copied register set is quiescent.
    pub(crate) fn all_ready(&self, now: u64) -> bool {
        // An empty (possibly stale-free) busy mask proves quiescence
        // without scanning; a non-empty one may be stale, so fall back
        // to the ready times.
        self.busy == 0 || self.ready.iter().all(|&r| r <= now)
    }

    /// Reads the raw bit pattern of `reg` (integers as two's
    /// complement, floats as IEEE-754 bits).
    pub(crate) fn read_bits(&self, reg: Reg) -> u64 {
        match reg {
            Reg::G(GReg(n)) => self.gvals[n as usize] as u64,
            Reg::F(FReg(n)) => self.fvals[n as usize].to_bits(),
        }
    }

    /// Reads the raw bit pattern of the register at dense index `idx`
    /// (the `Reg::dense_index` layout: G0..G31, then F0..F31). The
    /// µop capture plans store source slots in this form, so issue-time
    /// capture is one bound check and one indexed load. `idx` 0 is r0,
    /// whose slot in `gvals` is never written — no zero special-case
    /// needed.
    #[inline]
    pub(crate) fn read_dense(&self, idx: usize) -> u64 {
        if idx < NUM_GREGS {
            self.gvals[idx] as u64
        } else {
            self.fvals[idx - NUM_GREGS].to_bits()
        }
    }

    /// Directly sets an integer register (used to seed arguments and
    /// by `fastfork`/`lpid` plumbing); leaves it ready immediately.
    pub(crate) fn poke_g(&mut self, reg: GReg, value: i64) {
        if reg != GReg::ZERO {
            self.gvals[reg.0 as usize] = value;
            self.ready[Reg::G(reg).dense_index()] = 0;
            self.busy &= !(1u64 << Reg::G(reg).dense_index());
        }
    }

    /// Reads an integer register's current value.
    pub(crate) fn peek_g(&self, reg: GReg) -> i64 {
        self.gvals[reg.0 as usize]
    }

    /// Reads a floating register's current value.
    pub(crate) fn peek_f(&self, reg: FReg) -> f64 {
        self.fvals[reg.0 as usize]
    }

    /// Directly sets a floating register (test/setup helper).
    pub(crate) fn poke_f(&mut self, reg: FReg, value: f64) {
        self.fvals[reg.0 as usize] = value;
        self.ready[Reg::F(reg).dense_index()] = 0;
        self.busy &= !(1u64 << Reg::F(reg).dense_index());
    }

    /// Copies the architectural state (values only) of `src` into this
    /// bank and clears the scoreboard. Used by `fastfork`, which
    /// interlocks until the parent bank is quiescent
    /// ([`Self::all_ready`]), so dropping the parent's ready times
    /// loses nothing — every register is readable immediately in the
    /// child, exactly as a full clone of a quiescent bank would be.
    pub(crate) fn copy_arch_from(&mut self, src: &RegBank) {
        self.gvals = src.gvals;
        self.fvals = src.fvals;
        self.ready = [0; NUM_GREGS + NUM_FREGS];
        self.busy = 0;
    }

    /// Appends the scoreboard's timing image rebased to `now` to
    /// `out`, for the loop-warp fingerprint: per-register ready times
    /// relative to `now`, with past times clamped to 0 (all "ready
    /// now") and the issued-but-unselected [`BUSY`] sentinel preserved
    /// so it compares equal across period boundaries.
    pub(crate) fn warp_key_into(&self, now: u64, out: &mut Vec<u64>) {
        for &r in &self.ready {
            out.push(if r == BUSY { BUSY } else { r.saturating_sub(now) });
        }
    }

    /// Shifts every in-flight ready time (strictly after `now`)
    /// forward by `delta` cycles — the loop-warp leap. Past ready
    /// times stay: they already prove readiness at every later cycle.
    /// The packed busy mask is untouched; it remains a conservative
    /// superset, exactly as after any other lazy period.
    pub(crate) fn warp_shift(&mut self, delta: u64, now: u64) {
        for r in &mut self.ready {
            if *r != BUSY && *r > now {
                *r += delta;
            }
        }
    }

    /// Adds `k·delta` to every integer register (wrapping, matching
    /// the ALU's own wrapping arithmetic) — the loop-warp `k·Δ`
    /// application. Values only; ready times and the scoreboard are
    /// handled by [`RegBank::warp_shift`].
    pub(crate) fn warp_add_gvals(&mut self, deltas: &[i64; NUM_GREGS], k: i64) {
        for (v, &d) in self.gvals.iter_mut().zip(deltas) {
            *v = v.wrapping_add(d.wrapping_mul(k));
        }
    }

    /// The raw architectural image of the bank: the 32 integer
    /// registers (two's complement) followed by the 32 floating
    /// registers (IEEE-754 bits). Scoreboard state is excluded, so two
    /// banks holding the same values compare equal regardless of
    /// timing history — the basis of differential testing.
    pub(crate) fn image(&self) -> Vec<u64> {
        self.gvals
            .iter()
            .map(|&v| v as u64)
            .chain(self.fvals.iter().map(|&v| v.to_bits()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_dense_matches_read_bits_for_every_register() {
        let mut bank = RegBank::new();
        for n in 1..NUM_GREGS as u8 {
            bank.poke_g(GReg(n), -(n as i64) * 3);
        }
        for n in 0..NUM_FREGS as u8 {
            bank.poke_f(FReg(n), n as f64 * 0.5 - 7.25);
        }
        for n in 0..NUM_GREGS as u8 {
            let r = Reg::G(GReg(n));
            assert_eq!(bank.read_dense(r.dense_index()), bank.read_bits(r), "G{n}");
        }
        for n in 0..NUM_FREGS as u8 {
            let r = Reg::F(FReg(n));
            assert_eq!(bank.read_dense(r.dense_index()), bank.read_bits(r), "F{n}");
        }
    }

    #[test]
    fn zero_register_is_immutable_and_always_ready() {
        let mut bank = RegBank::new();
        bank.mark_busy(Reg::G(GReg::ZERO));
        assert!(bank.is_ready(Reg::G(GReg::ZERO), 0));
        bank.write(Reg::G(GReg::ZERO), 99, 0, 2);
        assert_eq!(bank.peek_g(GReg::ZERO), 0);
        assert!(bank.is_ready(Reg::G(GReg::ZERO), 0));
    }

    #[test]
    fn dependent_separation_is_result_latency_plus_one() {
        let mut bank = RegBank::new();
        let r = Reg::G(GReg(5));
        bank.mark_busy(r);
        assert!(!bank.is_ready(r, 1000));
        // Producer selected at cycle 10 with ALU result latency 2.
        bank.write(r, 7, 10, 2);
        assert!(!bank.is_ready(r, 12));
        assert!(bank.is_ready(r, 13)); // 10 + 2 + 1
        assert_eq!(bank.peek_g(GReg(5)), 7);
    }

    #[test]
    fn float_bits_round_trip() {
        let mut bank = RegBank::new();
        let r = Reg::F(FReg(2));
        bank.write(r, (-1.5f64).to_bits(), 0, 4);
        assert_eq!(bank.peek_f(FReg(2)), -1.5);
        assert_eq!(bank.read_bits(r), (-1.5f64).to_bits());
    }

    #[test]
    fn g_and_f_files_are_independent() {
        let mut bank = RegBank::new();
        bank.poke_g(GReg(3), 11);
        bank.poke_f(FReg(3), 2.5);
        assert_eq!(bank.peek_g(GReg(3)), 11);
        assert_eq!(bank.peek_f(FReg(3)), 2.5);
        assert!(bank.is_ready(Reg::G(GReg(3)), 0));
        bank.mark_busy(Reg::F(FReg(3)));
        assert!(bank.is_ready(Reg::G(GReg(3)), 0));
        assert!(!bank.is_ready(Reg::F(FReg(3)), 0));
    }

    #[test]
    fn negative_integers_survive_bit_transport() {
        let mut bank = RegBank::new();
        let r = Reg::G(GReg(1));
        bank.write(r, (-123i64) as u64, 0, 2);
        assert_eq!(bank.peek_g(GReg(1)), -123);
        assert_eq!(bank.read_bits(r) as i64, -123);
    }

    // ------------------------------------------------------------------
    // Pinned busy-mask regressions: sequences that once looked likely
    // to break the conservative-superset contract, kept as exact
    // replays alongside the property tests below.
    // ------------------------------------------------------------------

    /// A write landing on a register still carrying the issue-time
    /// `BUSY` sentinel must leave the bit set until the new ready time
    /// passes — the mark/write pair is the normal producer lifecycle.
    #[test]
    fn pinned_mark_then_write_keeps_bit_until_ready() {
        let mut bank = RegBank::new();
        let r = Reg::F(FReg(7));
        bank.mark_busy(r);
        assert_ne!(bank.busy() & (1 << r.dense_index()), 0);
        bank.write(r, 1, 10, 3);
        // Still outstanding at the write cycle and through latency.
        for now in 10..14 {
            assert_ne!(bank.refresh(now) & (1 << r.dense_index()), 0, "cycle {now}");
        }
        assert_eq!(bank.refresh(14) & (1 << r.dense_index()), 0);
    }

    /// Zero-latency writes clear on the very next cycle, not the same
    /// one (`selected + 0 + 1`).
    #[test]
    fn pinned_zero_latency_write_is_busy_for_one_cycle() {
        let mut bank = RegBank::new();
        let r = Reg::G(GReg(9));
        bank.write(r, 5, 20, 0);
        assert_ne!(bank.refresh(20), 0);
        assert_eq!(bank.refresh(21), 0);
    }

    /// The trap-flush/`fastfork` path (`copy_arch_from`) resets the
    /// child's scoreboard wholesale: stale busy bits from the child's
    /// previous occupant must not leak through.
    #[test]
    fn pinned_copy_arch_from_clears_stale_bits() {
        let mut parent = RegBank::new();
        parent.poke_g(GReg(4), 44);
        let mut child = RegBank::new();
        child.mark_busy(Reg::G(GReg(17)));
        child.write(Reg::F(FReg(30)), 2, 0, 50);
        child.copy_arch_from(&parent);
        assert_eq!(child.busy(), 0);
        assert_eq!(child.recompute_busy(0), 0);
        assert_eq!(child.peek_g(GReg(4)), 44);
    }

    /// A poke to a register with an outstanding write drops the bit —
    /// pokes model architectural seeding, which makes the value ready
    /// immediately.
    #[test]
    fn pinned_poke_clears_outstanding_bit() {
        let mut bank = RegBank::new();
        bank.write(Reg::G(GReg(3)), 1, 0, 40);
        bank.poke_g(GReg(3), 2);
        assert_eq!(bank.busy(), 0);
        bank.write(Reg::F(FReg(3)), 1, 0, 40);
        bank.poke_f(FReg(3), 2.0);
        assert_eq!(bank.busy(), 0);
    }
}

/// Property tests: the packed busy mask against a naive per-register
/// oracle, under arbitrary op interleavings at monotonic times (found
/// regressions would be pinned in
/// `crates/sim/proptest-regressions/regfile.txt`; none so far).
#[cfg(test)]
mod properties {
    use super::*;
    use proptest::prelude::*;

    /// One randomized driver op. Times advance monotonically outside
    /// the op stream, mirroring the machine's cycle loop.
    #[derive(Debug, Clone)]
    enum Op {
        /// Producer issued (scoreboard bit on, ready time unknown).
        MarkBusy(u8),
        /// Producer selected: writeback at `now` with a result latency.
        Write(u8, u8),
        /// Architectural seed of an integer register.
        PokeG(u8),
        /// Architectural seed of a floating register.
        PokeF(u8),
        /// Trap-flush / `fastfork` child reset from a quiescent bank.
        CopyFresh,
        /// Lazy exact-ification at the current cycle.
        Refresh,
        /// Advance the clock.
        Tick(u8),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u8..64).prop_map(Op::MarkBusy),
            ((0u8..64), (0u8..8)).prop_map(|(r, l)| Op::Write(r, l)),
            (0u8..32).prop_map(Op::PokeG),
            (0u8..32).prop_map(Op::PokeF),
            Just(Op::CopyFresh),
            Just(Op::Refresh),
            (1u8..5).prop_map(Op::Tick),
        ]
    }

    fn reg(dense: u8) -> Reg {
        if (dense as usize) < NUM_GREGS {
            Reg::G(GReg(dense))
        } else {
            Reg::F(FReg(dense - NUM_GREGS as u8))
        }
    }

    proptest! {
        /// Whatever the op interleaving, the packed mask stays a
        /// conservative superset of the outstanding writes (a clear
        /// bit is always a sound "no hazard" proof), `refresh` makes
        /// it exact, and bit 0 (r0) never sets.
        #[test]
        fn busy_mask_is_a_sound_superset(
            ops in prop::collection::vec(op_strategy(), 1..80),
        ) {
            let mut bank = RegBank::new();
            let mut now = 0u64;
            for op in ops {
                match op {
                    Op::MarkBusy(r) => bank.mark_busy(reg(r)),
                    Op::Write(r, lat) => bank.write(reg(r), 7, now, lat as u32),
                    Op::PokeG(r) => bank.poke_g(GReg(r), 3),
                    Op::PokeF(r) => bank.poke_f(FReg(r), 0.5),
                    Op::CopyFresh => bank.copy_arch_from(&RegBank::new()),
                    Op::Refresh => {
                        let refreshed = bank.refresh(now);
                        prop_assert_eq!(refreshed, bank.recompute_busy(now));
                    }
                    Op::Tick(dt) => now += dt as u64,
                }
                // Superset: every truly-outstanding write is flagged.
                let exact = bank.recompute_busy(now);
                prop_assert_eq!(
                    exact & !bank.busy(), 0,
                    "clear busy bit on an outstanding write at {}", now
                );
                // r0 is hardwired: never busy, never written.
                prop_assert_eq!(bank.busy() & 1, 0);
                prop_assert!(bank.is_ready(Reg::G(GReg::ZERO), now));
            }
        }

        /// The `check_issue` fast-path contract, stated directly: if
        /// an operand mask misses the (possibly stale) busy mask, then
        /// every register in it is ready — under any op history.
        #[test]
        fn clear_mask_bits_prove_readiness(
            ops in prop::collection::vec(op_strategy(), 1..60),
            probe in prop::collection::vec(0u8..64, 1..4),
        ) {
            let mut bank = RegBank::new();
            let mut now = 0u64;
            for op in ops {
                match op {
                    Op::MarkBusy(r) => bank.mark_busy(reg(r)),
                    Op::Write(r, lat) => bank.write(reg(r), 7, now, lat as u32),
                    Op::PokeG(r) => bank.poke_g(GReg(r), 3),
                    Op::PokeF(r) => bank.poke_f(FReg(r), 0.5),
                    Op::CopyFresh => bank.copy_arch_from(&RegBank::new()),
                    Op::Refresh => { bank.refresh(now); }
                    Op::Tick(dt) => now += dt as u64,
                }
                let mask: u64 = probe.iter().fold(0u64, |m, &r| m | (1u64 << r));
                if mask & bank.busy() == 0 {
                    for &r in &probe {
                        prop_assert!(
                            bank.is_ready(reg(r), now),
                            "fast path missed a hazard on dense index {} at {}", r, now
                        );
                    }
                }
            }
        }
    }
}
