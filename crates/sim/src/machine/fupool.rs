//! Functional-unit occupancy tracking as a calendar ring.
//!
//! PR 3's `fu_next: [Vec<u64>; FU_CLASS_COUNT]` answered "is an
//! instance of class C free at cycle `now`?" with a linear scan of
//! per-instance release times — once per standby-station drain
//! attempt, every cycle, for every competing class. This module keeps
//! the same information in a shape where both hot questions are O(1):
//!
//! * **acquire**: a per-class `free` bitmask; the lowest free instance
//!   is one `trailing_zeros`. Bit order equals instance order, so the
//!   selected instance is byte-identical to the old
//!   `position(|&t| t <= now)` scan (trace events carry instance
//!   numbers, so this matters for parity).
//! * **completion**: busy instances sit in a calendar ring bucketed by
//!   `release % RING`; [`FuPool::advance`] pops only the buckets whose
//!   cycles elapsed since the last call — O(occupied buckets), not
//!   O(instances) — and frees every entry whose release has passed.
//!
//! Release times remain authoritative in a flat `release` array that
//! is *never cleared*: a free instance keeps its stale past release,
//! exactly like the old `Vec` did, so [`FuPool::min_release`] (the
//! event wheel's standby-front horizon) reproduces the old
//! `fu_next[ci].iter().min()` bit-for-bit.
//!
//! Two wrinkles keep the ring honest without eager maintenance:
//!
//! * **Lazy re-bucketing.** The memory path *postpones* a LoadStore
//!   instance's release after it already entered a bucket (cache-miss
//!   latency exceeding the issue latency). [`FuPool::postpone`] only
//!   rewrites the release time; the stale bucket entry re-buckets
//!   itself when popped (release still in the future ⇒ push to
//!   `release % RING`). Releases further than `RING` cycles out simply
//!   take extra bounded re-bucket hops.
//! * **Capped sweeps.** A fast-forward jump can advance time by far
//!   more than `RING` cycles; draining `min(elapsed, RING)` buckets
//!   visits every bucket at most once and therefore examines every
//!   busy entry against the new `now`.
//!
//! Everything is allocated once at construction (two boxed slices
//! sized by the total instance count); steady-state operation is
//! allocation-free, which `alloc_free.rs` proves under the counting
//! allocator.

use hirata_isa::FU_CLASS_COUNT;

/// Calendar-ring size. Must exceed the largest *issue* latency (2
/// cycles in Table 1) so a fresh occupancy never lands in the bucket
/// being drained; postponed releases beyond the ring wrap and
/// re-bucket lazily.
const RING: usize = 32;

/// Intrusive-list terminator for `next`/`heads`.
const NONE: u32 = u32::MAX;

/// Per-class functional-unit occupancy with O(1) acquire and
/// O(occupied buckets) completion pop. See the module docs for the
/// invariants; the debug builds re-derive the free masks from the
/// release array after every [`FuPool::advance`].
#[derive(Debug, Clone)]
pub(crate) struct FuPool {
    /// Bit `i` set ⇔ instance `i` of the class is free as of the last
    /// [`FuPool::advance`] (exact at that cycle: occupancy clears the
    /// bit immediately, release sets it during the drain).
    free: [u64; FU_CLASS_COUNT],
    /// Flattened-instance offsets: class `ci` owns
    /// `base[ci]..base[ci + 1]`.
    base: [u32; FU_CLASS_COUNT + 1],
    /// Authoritative per-instance release time, *kept stale* once the
    /// instance frees (mirrors the old `fu_next` vectors so
    /// [`FuPool::min_release`] is bit-compatible with their `min()`).
    release: Box<[u64]>,
    /// Intrusive bucket links over flattened instances.
    next: Box<[u32]>,
    /// Bucket heads, indexed by `release % RING`.
    heads: [u32; RING],
    /// The cycle through which buckets have been drained.
    drained: u64,
}

impl FuPool {
    /// Builds a pool with `counts[ci]` instances of class `ci`, all
    /// free with release time 0 (the old vectors' initial state).
    /// `Config::validate` bounds each count at 64 (the free-mask
    /// width).
    pub(crate) fn new(counts: [usize; FU_CLASS_COUNT]) -> Self {
        let mut base = [0u32; FU_CLASS_COUNT + 1];
        for ci in 0..FU_CLASS_COUNT {
            debug_assert!(counts[ci] <= 64, "instance count exceeds the free-mask width");
            base[ci + 1] = base[ci] + counts[ci] as u32;
        }
        let total = base[FU_CLASS_COUNT] as usize;
        let mut free = [0u64; FU_CLASS_COUNT];
        for ci in 0..FU_CLASS_COUNT {
            // Low `count` bits set; count == 64 would overflow `<<`.
            free[ci] = match counts[ci] {
                64 => u64::MAX,
                n => (1u64 << n) - 1,
            };
        }
        FuPool {
            free,
            base,
            release: vec![0; total].into_boxed_slice(),
            next: vec![NONE; total].into_boxed_slice(),
            heads: [NONE; RING],
            drained: 0,
        }
    }

    /// Drains every bucket whose cycle elapsed since the previous
    /// call, freeing instances whose release has passed and lazily
    /// re-bucketing postponed ones. Must run before any
    /// [`FuPool::first_free`] query at `now`; the cycle loop calls it
    /// once at the top of arbitration.
    pub(crate) fn advance(&mut self, now: u64) {
        if now > self.drained {
            // Draining more than RING buckets revisits them; cap the
            // sweep — one full revolution examines every busy entry.
            let span = (now - self.drained).min(RING as u64);
            for t in (now - span + 1)..=now {
                let bucket = (t % RING as u64) as usize;
                let mut cur = self.heads[bucket];
                self.heads[bucket] = NONE;
                while cur != NONE {
                    let idx = cur as usize;
                    let after = self.next[idx];
                    if self.release[idx] <= now {
                        let ci = self.class_of(idx);
                        self.free[ci] |= 1u64 << (idx - self.base[ci] as usize);
                        self.next[idx] = NONE;
                    } else {
                        // Postponed past this bucket's cycle: re-home
                        // it under its current release.
                        let nb = (self.release[idx] % RING as u64) as usize;
                        self.next[idx] = self.heads[nb];
                        self.heads[nb] = cur;
                    }
                    cur = after;
                }
            }
            self.drained = now;
        }
        debug_assert!(self.free_masks_consistent(now), "free masks diverged from release times");
    }

    /// The lowest-numbered free instance of class `ci`, if any —
    /// byte-compatible with the old `position(|&t| t <= now)` scan
    /// (the caller must have [`FuPool::advance`]d to `now` first).
    #[inline]
    pub(crate) fn first_free(&self, ci: usize) -> Option<usize> {
        match self.free[ci] {
            0 => None,
            mask => Some(mask.trailing_zeros() as usize),
        }
    }

    /// Marks `instance` of class `ci` busy until `until` (exclusive of
    /// acquisition: readers at cycles ≥ `until` may reacquire it).
    pub(crate) fn occupy(&mut self, ci: usize, instance: usize, until: u64) {
        debug_assert!(
            until > self.drained,
            "occupancy must release in the future (until {until}, drained {})",
            self.drained
        );
        let idx = self.base[ci] as usize + instance;
        debug_assert_ne!(self.free[ci] & (1u64 << instance), 0, "instance already busy");
        self.free[ci] &= !(1u64 << instance);
        self.release[idx] = until;
        let bucket = (until % RING as u64) as usize;
        self.next[idx] = self.heads[bucket];
        self.heads[bucket] = idx as u32;
    }

    /// Extends a busy instance's release to `until` without touching
    /// its bucket entry (the memory path stretching a LoadStore
    /// occupancy to a cache-miss latency). The stale entry re-buckets
    /// when popped.
    pub(crate) fn postpone(&mut self, ci: usize, instance: usize, until: u64) {
        debug_assert_eq!(self.free[ci] & (1u64 << instance), 0, "postponing a free instance");
        self.release[self.base[ci] as usize + instance] = until;
    }

    /// The earliest release time over *all* instances of class `ci`
    /// (free instances contribute their stale past release), or
    /// [`u64::MAX`] for a class with no instances — exactly the old
    /// `fu_next[ci].iter().min()` the event wheel's standby-front
    /// horizon analysis was built on.
    pub(crate) fn min_release(&self, ci: usize) -> u64 {
        let lo = self.base[ci] as usize;
        let hi = self.base[ci + 1] as usize;
        self.release[lo..hi].iter().copied().min().unwrap_or(u64::MAX)
    }

    /// Appends the pool's timing image rebased to `now` to `out`, for
    /// the loop-warp fingerprint: per-class free masks, the drain
    /// lag, and each *busy* instance's release relative to `now`.
    /// Free instances' stale releases are excluded (encoded as 0):
    /// they are behaviourally inert — the free bit governs
    /// acquisition, and a stale minimum only shortens event-wheel
    /// attempts, which are identity-safe — so images from different
    /// periods compare equal whenever the pools behave identically.
    pub(crate) fn warp_key_into(&self, now: u64, out: &mut Vec<u64>) {
        out.extend_from_slice(&self.free);
        out.push(now.saturating_sub(self.drained));
        for ci in 0..FU_CLASS_COUNT {
            for idx in self.base[ci] as usize..self.base[ci + 1] as usize {
                let i = idx - self.base[ci] as usize;
                let busy = self.free[ci] & (1u64 << i) == 0;
                out.push(if busy { self.release[idx].saturating_sub(now) } else { 0 });
            }
        }
    }

    /// Shifts every busy instance's release forward by `delta` cycles
    /// and rebuilds the calendar ring — the loop-warp leap. Buckets
    /// are keyed by `release % RING`, so a shift that is not a
    /// multiple of `RING` re-homes every entry; a full rebuild from
    /// the free masks is exact (within-bucket order only affects the
    /// order free bits are set during a drain, not behaviour). Free
    /// instances keep their stale past releases, as everywhere else.
    pub(crate) fn warp_shift(&mut self, delta: u64) {
        self.drained += delta;
        self.heads = [NONE; RING];
        self.next.fill(NONE);
        for ci in 0..FU_CLASS_COUNT {
            for idx in self.base[ci] as usize..self.base[ci + 1] as usize {
                let i = idx - self.base[ci] as usize;
                if self.free[ci] & (1u64 << i) == 0 {
                    self.release[idx] += delta;
                    let bucket = (self.release[idx] % RING as u64) as usize;
                    self.next[idx] = self.heads[bucket];
                    self.heads[bucket] = idx as u32;
                }
            }
        }
    }

    /// The class owning flattened instance `idx`.
    fn class_of(&self, idx: usize) -> usize {
        debug_assert!(idx < self.base[FU_CLASS_COUNT] as usize);
        (0..FU_CLASS_COUNT)
            .find(|&ci| idx < self.base[ci + 1] as usize)
            .expect("flattened index within some class")
    }

    /// Debug oracle: every free bit agrees with its release time, and
    /// every busy instance is linked in some bucket. Allocation-free
    /// (per-class bitmasks) so the `alloc_free.rs` proof holds in
    /// debug builds too.
    fn free_masks_consistent(&self, now: u64) -> bool {
        let mut linked = [0u64; FU_CLASS_COUNT];
        for head in self.heads {
            let mut cur = head;
            while cur != NONE {
                let ci = self.class_of(cur as usize);
                linked[ci] |= 1u64 << (cur as usize - self.base[ci] as usize);
                cur = self.next[cur as usize];
            }
        }
        (0..FU_CLASS_COUNT).all(|ci| {
            (self.base[ci]..self.base[ci + 1]).all(|idx| {
                let i = (idx - self.base[ci]) as usize;
                let is_free = self.free[ci] & (1u64 << i) != 0;
                let released = self.release[idx as usize] <= now;
                is_free == released && (is_free || linked[ci] & (1u64 << i) != 0)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(n: usize) -> [usize; FU_CLASS_COUNT] {
        [n; FU_CLASS_COUNT]
    }

    /// The reference model the ring must match: plain per-instance
    /// release vectors scanned linearly (PR 3's representation).
    #[derive(Clone)]
    struct NaivePool {
        next: Vec<Vec<u64>>,
    }

    impl NaivePool {
        fn new(counts: [usize; FU_CLASS_COUNT]) -> Self {
            NaivePool { next: counts.iter().map(|&n| vec![0u64; n]).collect() }
        }

        fn first_free(&self, ci: usize, now: u64) -> Option<usize> {
            self.next[ci].iter().position(|&t| t <= now)
        }

        fn min_release(&self, ci: usize) -> u64 {
            self.next[ci].iter().copied().min().unwrap_or(u64::MAX)
        }
    }

    #[test]
    fn acquire_prefers_lowest_instance_and_respects_release() {
        let mut pool = FuPool::new(counts(2));
        pool.advance(5);
        assert_eq!(pool.first_free(0), Some(0));
        pool.occupy(0, 0, 7);
        assert_eq!(pool.first_free(0), Some(1));
        pool.occupy(0, 1, 6);
        assert_eq!(pool.first_free(0), None);
        pool.advance(6);
        // Instance 1 released at 6; instance 0 still busy until 7.
        assert_eq!(pool.first_free(0), Some(1));
        pool.advance(7);
        assert_eq!(pool.first_free(0), Some(0));
    }

    #[test]
    fn min_release_keeps_stale_values_like_the_old_vectors() {
        let mut pool = FuPool::new(counts(2));
        pool.advance(10);
        pool.occupy(3, 0, 12);
        pool.occupy(3, 1, 40);
        assert_eq!(pool.min_release(3), 12);
        pool.advance(20);
        // Instance 0 freed at 12 but its stale release still anchors
        // the minimum, exactly as `fu_next[ci].iter().min()` did.
        assert_eq!(pool.min_release(3), 12);
    }

    #[test]
    fn postponed_release_survives_ring_wraps() {
        let mut pool = FuPool::new(counts(1));
        pool.advance(1);
        pool.occupy(6, 0, 3);
        // Cache miss stretches the occupancy far past RING.
        pool.postpone(6, 0, 3 + 3 * RING as u64);
        for t in 2..3 + 3 * RING as u64 {
            pool.advance(t);
            assert_eq!(pool.first_free(6), None, "freed early at cycle {t}");
        }
        pool.advance(3 + 3 * RING as u64);
        assert_eq!(pool.first_free(6), Some(0));
    }

    #[test]
    fn fast_forward_jumps_free_everything_due() {
        let mut pool = FuPool::new(counts(3));
        pool.advance(1);
        for i in 0..3 {
            pool.occupy(2, i, 2 + i as u64);
        }
        // Jump far past every release in one advance (several RING
        // revolutions), as the event wheel does.
        pool.advance(1000);
        assert_eq!(pool.first_free(2), Some(0));
        pool.occupy(2, 0, 1001);
        assert_eq!(pool.first_free(2), Some(1));
    }

    #[test]
    fn warp_shift_commutes_with_advancing() {
        // A shifted pool must behave at `t + D` exactly as the
        // original behaves at `t`, for every query the machine makes.
        let mut pool = FuPool::new(counts(2));
        pool.advance(9);
        pool.occupy(0, 0, 11);
        pool.occupy(0, 1, 10);
        pool.occupy(6, 0, 12);
        pool.postpone(6, 0, 9 + 70); // beyond RING
        let mut shifted = pool.clone();
        const D: u64 = 1234; // deliberately not a multiple of RING
        shifted.warp_shift(D);
        let mut a_key = Vec::new();
        let mut b_key = Vec::new();
        for t in 10..10 + 100 {
            pool.advance(t);
            shifted.advance(t + D);
            for ci in 0..FU_CLASS_COUNT {
                assert_eq!(pool.first_free(ci), shifted.first_free(ci), "t={t} ci={ci}");
            }
            a_key.clear();
            b_key.clear();
            pool.warp_key_into(t, &mut a_key);
            shifted.warp_key_into(t + D, &mut b_key);
            assert_eq!(a_key, b_key, "t={t}");
        }
    }

    /// Randomized lockstep against the naive scan: interleaved
    /// advances (including big jumps), acquires, and postpones must
    /// agree on the chosen instance and the class minimum at every
    /// step.
    #[test]
    fn lockstep_with_naive_model() {
        // Deterministic xorshift so the test needs no external crates.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut pool = FuPool::new([3, 1, 2, 1, 1, 1, 2]);
        let mut naive = NaivePool::new([3, 1, 2, 1, 1, 1, 2]);
        let mut now = 0u64;
        for step in 0..2000 {
            now += match rng() % 8 {
                0 => 40 + rng() % 100, // fast-forward jump
                1..=4 => 1,
                _ => 0,
            };
            pool.advance(now);
            let ci = (rng() % FU_CLASS_COUNT as u64) as usize;
            assert_eq!(
                pool.first_free(ci),
                naive.first_free(ci, now),
                "acquire divergence at step {step}, cycle {now}, class {ci}"
            );
            if let Some(i) = pool.first_free(ci) {
                let until = now + 1 + rng() % 2;
                pool.occupy(ci, i, until);
                naive.next[ci][i] = until;
                if ci == 6 && rng() % 4 == 0 {
                    let far = now + 1 + rng() % 90;
                    if far > until {
                        pool.postpone(ci, i, far);
                        naive.next[ci][i] = far;
                    }
                }
            }
            for c in 0..FU_CLASS_COUNT {
                assert_eq!(
                    pool.min_release(c),
                    naive.min_release(c),
                    "min_release divergence at step {step}, class {c}"
                );
            }
        }
    }
}
