//! Loop-warp: periodic steady-state detection and O(1) leaping over
//! *issuing* cycles — the event wheel's sibling for busy spans.
//!
//! The event wheel (`wheel.rs`) skips spans where provably *nothing*
//! issues. Tight loops are its blind spot: every iteration issues, so
//! the machine crawls through millions of near-identical cycles one at
//! a time. The warp engine closes that gap in three phases:
//!
//! 1. **Watch.** At the end of each step, fingerprint the machine's
//!    timing-relevant state — program counters, decode windows,
//!    scoreboard and FU timing rebased to "now", the priority rotation
//!    phase, the fetch pipeline — and never data values. Hold one
//!    *anchor* fingerprint; when it recurs at distance `p`, the
//!    machine's timing is periodic with period `p` (timing in this
//!    machine is data-independent except through branch outcomes,
//!    which the next phase pins down).
//! 2. **Record.** Step plainly for two more periods with the wheel
//!    suppressed, logging every issue, stall, branch outcome, and
//!    store, and capturing the bound contexts' register images at the
//!    three boundaries. Verification demands: the timing fingerprint
//!    recurs at both boundaries, both periods agree event-for-event
//!    (same stall offsets, same issue offsets, same branch outcomes,
//!    same store count), the per-period register deltas agree
//!    (`Δ1 == Δ2`), the float halves are bit-identical, only warp-safe
//!    instructions issued (no traps, forks, priority writes, queue
//!    maps, loads, or multiplies), and the statistics deltas match
//!    exactly with zero context switches and an all-hit store-only
//!    memory profile.
//! 3. **Leap.** The warp-safe instruction set makes the per-period
//!    architectural map affine with a constant integer matrix, exact
//!    modulo 2⁶⁴: `x ↦ Ax + b`. `Δ1 == Δ2` means `AΔ = Δ`, so *every*
//!    future period's delta equals `Δ` — registers extrapolate as
//!    `k·Δ`, store addresses and values advance by constant strides,
//!    and branch operands advance by constant strides. The only
//!    non-affine effects are the branch *outcomes* (signed compares)
//!    and store *bounds* checks, so the trip bound caps `k` with exact
//!    i128 arithmetic: each branch site must keep its recorded
//!    outcome, each branch operand must stay inside i64 (where the
//!    wrapped and exact models agree), and each store address must
//!    stay inside data memory. Within that bound the leap applies
//!    `k·Δ` to registers, replays the strided stores, synthesizes the
//!    skipped periods' stall statistics and trace events exactly as
//!    the per-cycle path would have recorded them, and shifts every
//!    future-dated timer by `k·p` — byte-identical cycles, statistics,
//!    and traces by construction.
//!
//! Any verification miss falls back to plain stepping with exponential
//! backoff; `Config::warp` (CLI `--no-warp`) disables the engine
//! entirely. With a trace sink attached the engine only observes (for
//! `--warp-debug` period reports) and never leaps: sinks receive
//! per-cycle events whose synthesis would cost as much as stepping.
//!
//! ## What the fingerprint deliberately excludes
//!
//! Register and memory *values*, statistics, and the memoization state
//! the wheel maintains (`Slot::block`, the `ready` mirror, and
//! `head_pass`) are all excluded. The memoization exclusions are
//! load-bearing: in steady state every loop iteration lands from a
//! wheel jump (branch-shadow fusion), so anchor fingerprints are taken
//! with wheel-installed blocks present, while Record-phase boundaries
//! are reached by plain stepping with the wheel suppressed and no
//! blocks installed. The `SlotBlock` contract makes the two states
//! behaviorally identical — replaying a block records exactly the
//! stall a fresh evaluation would (debug builds assert this) — so two
//! states differing only in memoization must not compare unequal.
//! After a leap the stale throttles (`ff_next`/`ff_stride`) and the
//! conservative `RegBank::busy` superset may diverge from a no-warp
//! run; both are attempt-scheduling state with no behavioral effect,
//! the same identity-safe set the wheel itself leaves behind.

use hirata_isa::{BranchCond, NUM_GREGS};

use super::*;

/// Longest period (in cycles) the detector considers. Anchors older
/// than this re-arm; real steady-state loops in this machine have
/// periods of a few cycles to a few hundred (bounded by decode window
/// depth × slots × FU latencies).
const MAX_PERIOD: u64 = 512;
/// Smallest number of periods worth leaping; below this the
/// bookkeeping costs more than the stepping it saves.
const MIN_LEAP: u64 = 4;
/// Periods held back from every leap so the machine steps plainly
/// into the loop exit instead of leaping exactly onto the boundary of
/// the proven range.
const SAFETY_PERIODS: u64 = 2;
/// Initial verification-miss backoff, in cycles.
const BACKOFF_BASE: u64 = 256;
/// Backoff ceiling: an unwarpable workload pays one fingerprint build
/// per this many cycles, asymptotically.
const BACKOFF_CAP: u64 = 1 << 16;
/// Hard cap on periods leapt at once; keeps every extrapolation
/// product comfortably inside i128.
const LEAP_CAP: u64 = 1 << 40;
/// Cap on the `--warp-debug` period report list.
const DEBUG_PERIODS_CAP: usize = 64;

/// Why a warp attempt was abandoned. Reported per-reason by
/// [`WarpStats::misses`] so coverage gaps are explainable (e.g. a
/// workload whose loops all contain loads shows `UnsafeOp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpMiss {
    /// A non-warp-safe instruction issued during recording (loads,
    /// multiplies, FP ops, forks, kills, priority/rotation writes…).
    UnsafeOp,
    /// A running context had a queue-register mapping.
    QueueMapped,
    /// A queue link held data.
    QueueDepth,
    /// Standby stations were occupied at a would-be boundary.
    StandbyData,
    /// A context was mid-switch (`Ready`/`Waiting`), or a recorded
    /// period performed a context switch or kill.
    ContextChurn,
    /// A decode window held a replayed access-requirement entry.
    ReplayWindow,
    /// A data-absence trap fired during recording.
    Trap,
    /// The timing fingerprint failed to recur at a period boundary.
    TimingDrift,
    /// Architectural effects were not an affine replayable delta
    /// (register deltas, branch outcomes, store/stat profiles
    /// disagreed between the two recorded periods).
    DeltaDrift,
    /// The loop was periodic and affine but too close to its exit for
    /// a worthwhile leap.
    TripBound,
    /// The memory model could not absorb the leapt stores as hits.
    BulkMem,
}

impl WarpMiss {
    /// Every miss reason, in counter order.
    pub const ALL: [WarpMiss; 11] = [
        WarpMiss::UnsafeOp,
        WarpMiss::QueueMapped,
        WarpMiss::QueueDepth,
        WarpMiss::StandbyData,
        WarpMiss::ContextChurn,
        WarpMiss::ReplayWindow,
        WarpMiss::Trap,
        WarpMiss::TimingDrift,
        WarpMiss::DeltaDrift,
        WarpMiss::TripBound,
        WarpMiss::BulkMem,
    ];

    /// Short stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            WarpMiss::UnsafeOp => "unsafe-op",
            WarpMiss::QueueMapped => "queue-mapped",
            WarpMiss::QueueDepth => "queue-depth",
            WarpMiss::StandbyData => "standby-data",
            WarpMiss::ContextChurn => "context-churn",
            WarpMiss::ReplayWindow => "replay-window",
            WarpMiss::Trap => "trap",
            WarpMiss::TimingDrift => "timing-drift",
            WarpMiss::DeltaDrift => "delta-drift",
            WarpMiss::TripBound => "trip-bound",
            WarpMiss::BulkMem => "bulk-mem",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Counters kept by the warp engine, reported by
/// [`Machine::warp_stats`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct WarpStats {
    /// Fingerprint recurrences observed (Record phases started).
    pub periods_detected: u64,
    /// Successful leaps performed.
    pub leaps: u64,
    /// Periods skipped across all leaps.
    pub periods_leapt: u64,
    /// Cycles covered by leaps (`Σ k·p`).
    pub cycles_warped: u64,
    misses: [u64; 11],
}

impl WarpStats {
    /// Abandoned attempts for one reason.
    pub fn misses(&self, reason: WarpMiss) -> u64 {
        self.misses[reason.index()]
    }

    /// Accumulates another counter set into this one — the
    /// [`crate::batch::MachineBatch`] fleet aggregate.
    pub fn merge(&mut self, other: &WarpStats) {
        self.periods_detected += other.periods_detected;
        self.leaps += other.leaps;
        self.periods_leapt += other.periods_leapt;
        self.cycles_warped += other.cycles_warped;
        for (a, b) in self.misses.iter_mut().zip(&other.misses) {
            *a += b;
        }
    }

    /// Abandoned attempts across all reasons.
    pub fn total_misses(&self) -> u64 {
        self.misses.iter().sum()
    }

    /// Fraction of `cycles` covered by leaps, in `[0, 1]`.
    pub fn coverage(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.cycles_warped as f64 / cycles as f64
        }
    }
}

/// One verified steady-state period, collected when
/// [`Machine::set_warp_debug`] is on (the `trace --warp-debug`
/// report). Consecutive repeats of the same loop fold into one entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpPeriodInfo {
    /// Cycle at which the period was first verified.
    pub start: u64,
    /// Period length in cycles.
    pub period: u64,
    /// Periods leapt from this loop (0 when observed under a trace
    /// sink, which never leaps).
    pub leapt: u64,
    /// Times this loop re-verified (detection-only mode re-detects the
    /// same loop every few periods; leaps re-detect after landing).
    pub repeats: u64,
    /// Distinct instruction addresses issued during one period.
    pub footprint: Vec<u32>,
    /// Non-zero per-period integer register deltas, as
    /// `(context, register, delta)`.
    pub deltas: Vec<(usize, usize, i64)>,
}

/// The timing fingerprint: every field that can influence *when*
/// anything happens, rebased to the cycle it was taken at. Excludes
/// data values, statistics, and wheel memoization (module docs).
#[derive(Debug, Clone, PartialEq)]
struct TimingKey {
    words: Vec<u64>,
    fetch: FetchSystem,
}

/// A branch observation: operand values and the outcome, for the
/// affine outcome extrapolation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BranchObs {
    pc: u32,
    cond: BranchCond,
    lhs: u64,
    rhs: u64,
    taken: bool,
}

/// Everything logged during one recorded period. Offsets are cycles
/// from the period's start boundary (periods are ≤ [`MAX_PERIOD`], so
/// `u32` offsets suffice).
#[derive(Debug, Default, Clone)]
struct PeriodLog {
    /// `(offset, address, bits)` per store, in execution order.
    stores: Vec<(u32, u64, u64)>,
    /// `(offset, reason)` per recorded slot-stall.
    stalls: Vec<(u32, StallReason)>,
    /// Branch issues in order.
    branches: Vec<BranchObs>,
    /// `(offset, slot, ctx, pc)` per issued instruction.
    issues: Vec<(u32, u32, u32, u32)>,
}

impl PeriodLog {
    fn clear(&mut self) {
        self.stores.clear();
        self.stalls.clear();
        self.branches.clear();
        self.issues.clear();
    }
}

/// Snapshot of every statistic a leap must extrapolate (and every one
/// whose per-period delta verification constrains).
#[derive(Debug, Clone, PartialEq, Eq)]
struct StatsMark {
    instructions: u64,
    per_slot: Vec<u64>,
    fu_invocations: [u64; FU_CLASS_COUNT],
    fu_busy: [u64; FU_CLASS_COUNT],
    rotations: u64,
    context_switches: u64,
    threads_killed: u64,
    mem: MemStats,
}

impl StatsMark {
    fn of(m: &Machine) -> StatsMark {
        StatsMark {
            instructions: m.stats.instructions,
            per_slot: m.stats.per_slot_issued.clone(),
            fu_invocations: m.stats.fu_invocations,
            fu_busy: m.stats.fu_busy,
            rotations: m.stats.rotations,
            context_switches: m.stats.context_switches,
            threads_killed: m.stats.threads_killed,
            mem: m.mem_model.stats(),
        }
    }

    /// Field-wise `self − prev`; all counters are monotonic.
    fn delta(&self, prev: &StatsMark) -> StatsMark {
        let mut d = self.clone();
        d.instructions -= prev.instructions;
        for (v, p) in d.per_slot.iter_mut().zip(&prev.per_slot) {
            *v -= p;
        }
        for i in 0..FU_CLASS_COUNT {
            d.fu_invocations[i] -= prev.fu_invocations[i];
            d.fu_busy[i] -= prev.fu_busy[i];
        }
        d.rotations -= prev.rotations;
        d.context_switches -= prev.context_switches;
        d.threads_killed -= prev.threads_killed;
        d.mem.accesses -= prev.mem.accesses;
        d.mem.hits -= prev.mem.hits;
        d.mem.misses -= prev.mem.misses;
        d.mem.absences -= prev.mem.absences;
        d
    }
}

/// An in-progress Record phase.
#[derive(Debug)]
struct Recording {
    period: u64,
    /// First boundary (where the fingerprint recurred).
    start: u64,
    /// Start boundary of the period currently being logged.
    cur_start: u64,
    /// Completed recorded periods (0 or 1).
    done_periods: u32,
    /// The boundary fingerprint every boundary must reproduce.
    key: TimingKey,
    /// Contexts bound to slots at `start`, in slot order.
    ctxs: Vec<usize>,
    /// Register images of `ctxs` at the most recent boundary.
    img_prev: Vec<Vec<u64>>,
    /// First period's per-context integer register deltas.
    delta1: Vec<Vec<i64>>,
    /// Statistics snapshot at the most recent boundary.
    mark_prev: StatsMark,
    /// First period's statistics delta.
    delta_stats: Option<StatsMark>,
    /// Log of the previous (first) period.
    prev: PeriodLog,
    /// Log of the period in progress.
    cur: PeriodLog,
}

/// The anchor fingerprint the Watch phase holds, with two cheap
/// prefilter layers so full key comparisons are rare.
#[derive(Debug)]
struct Anchor {
    cycle: u64,
    tuple: (u32, u32, u32),
    hash: u64,
    key: TimingKey,
}

/// Per-machine warp engine state, boxed off the `Machine` hot path.
#[derive(Debug)]
pub(super) struct WarpState {
    pub(super) stats: WarpStats,
    pub(super) periods: Vec<WarpPeriodInfo>,
    anchor: Option<Anchor>,
    rec: Option<Box<Recording>>,
    /// Sticky veto raised by a record hook, consumed at the next
    /// observe point.
    veto: Option<WarpMiss>,
    /// Cycle before which the Watch phase stays dormant (backoff).
    resume_at: u64,
    backoff: u64,
}

impl WarpState {
    pub(super) fn new() -> Self {
        WarpState {
            stats: WarpStats::default(),
            periods: Vec::new(),
            anchor: None,
            rec: None,
            veto: None,
            resume_at: 0,
            backoff: BACKOFF_BASE,
        }
    }

    /// Abandons the current attempt: counts the reason, drops the
    /// anchor, and backs off exponentially.
    fn miss(&mut self, reason: WarpMiss, now: u64) {
        self.stats.misses[reason.index()] += 1;
        self.anchor = None;
        self.resume_at = now + self.backoff;
        self.backoff = (self.backoff * 2).min(BACKOFF_CAP);
    }
}

fn fnv(h: &mut u64, w: u64) {
    *h = (*h ^ w).wrapping_mul(0x100000001b3);
}

/// Largest `k ≤ LEAP_CAP` such that `d0 + j·dd ≤ 0` for every
/// `j ∈ 1..=k` (0 when even `j = 1` fails).
fn affine_nonpositive(d0: i128, dd: i128) -> u64 {
    if dd <= 0 {
        // Non-increasing: holds for all j iff it holds at j = 1.
        return if d0 + dd <= 0 { LEAP_CAP } else { 0 };
    }
    if d0 + dd > 0 {
        return 0;
    }
    // Increasing: holds while j ≤ ⌊−d0/dd⌋ (both operands positive
    // here, so truncation is the floor).
    cap_u64((-d0) / dd)
}

fn cap_u64(v: i128) -> u64 {
    if v < 0 {
        0
    } else if v > LEAP_CAP as i128 {
        LEAP_CAP
    } else {
        v as u64
    }
}

/// Largest `k` such that the branch `cond` applied to operands
/// advancing as `d_j = d0 + j·dd` (the exact lhs−rhs difference)
/// produces outcome `taken` for every `j ∈ 1..=k`.
fn branch_outcome_bound(cond: BranchCond, taken: bool, d0: i128, dd: i128) -> u64 {
    use BranchCond::*;
    match (cond, taken) {
        // d_j must stay exactly zero: forever when constant at zero,
        // once when the first step lands on zero, never otherwise.
        (Eq, true) | (Ne, false) => {
            if dd == 0 {
                if d0 == 0 {
                    LEAP_CAP
                } else {
                    0
                }
            } else if d0 + dd == 0 {
                1
            } else {
                0
            }
        }
        // d_j must avoid zero: find the unique root, if any.
        (Ne, true) | (Eq, false) => {
            if dd == 0 {
                return if d0 != 0 { LEAP_CAP } else { 0 };
            }
            if (-d0) % dd == 0 {
                let root = (-d0) / dd;
                if root >= 1 {
                    cap_u64(root - 1)
                } else {
                    LEAP_CAP
                }
            } else {
                LEAP_CAP
            }
        }
        // d_j < 0  ⟺  d_j + 1 ≤ 0.
        (Lt, true) | (Ge, false) => affine_nonpositive(d0 + 1, dd),
        (Le, true) | (Gt, false) => affine_nonpositive(d0, dd),
        // d_j > 0  ⟺  −d_j < 0; d_j ≥ 0  ⟺  −d_j ≤ 0.
        (Gt, true) | (Le, false) => affine_nonpositive(1 - d0, -dd),
        (Ge, true) | (Lt, false) => affine_nonpositive(-d0, -dd),
    }
}

/// Largest `k` keeping `v0 + j·d` inside i64 for every `j ∈ 1..=k` —
/// the range on which the exact affine model and the machine's
/// wrapping arithmetic agree for signed comparison operands.
fn operand_range_bound(v0: i64, d: i64) -> u64 {
    if d == 0 {
        return LEAP_CAP;
    }
    let v0 = v0 as i128;
    let d = d as i128;
    let room = if d > 0 { i64::MAX as i128 - v0 } else { v0 - i64::MIN as i128 };
    cap_u64(room / d.abs())
}

/// Largest `k` keeping the extrapolated store address
/// `a0 + j·d ∈ [0, mem_words)` for every `j ∈ 1..=k`.
fn store_addr_bound(a0: u64, d: i64, mem_words: u64) -> u64 {
    if d == 0 {
        return LEAP_CAP;
    }
    let a0 = a0 as i128;
    let d = d as i128;
    if d > 0 {
        cap_u64((mem_words as i128 - 1 - a0) / d)
    } else {
        cap_u64(a0 / (-d))
    }
}

/// First timing disagreement between two period logs, if any.
fn period_log_mismatch(a: &PeriodLog, b: &PeriodLog) -> Option<WarpMiss> {
    if a.stalls != b.stalls || a.issues != b.issues {
        return Some(WarpMiss::TimingDrift);
    }
    if a.branches.len() != b.branches.len() || a.stores.len() != b.stores.len() {
        return Some(WarpMiss::TimingDrift);
    }
    for (x, y) in a.branches.iter().zip(&b.branches) {
        if (x.pc, x.cond, x.taken) != (y.pc, y.cond, y.taken) {
            return Some(WarpMiss::DeltaDrift);
        }
    }
    for (x, y) in a.stores.iter().zip(&b.stores) {
        if x.0 != y.0 {
            return Some(WarpMiss::TimingDrift);
        }
    }
    None
}

impl Machine {
    /// Counters kept by the warp engine (zeroed defaults when warp is
    /// disabled).
    pub fn warp_stats(&self) -> WarpStats {
        self.warp.as_deref().map(|w| w.stats.clone()).unwrap_or_default()
    }

    /// Steady-state periods collected under
    /// [`Machine::set_warp_debug`].
    pub fn warp_periods(&self) -> &[WarpPeriodInfo] {
        self.warp.as_deref().map(|w| w.periods.as_slice()).unwrap_or(&[])
    }

    /// Enables warp-debug period collection: every verified period is
    /// reported via [`Machine::warp_periods`]. Also enables detection
    /// under an attached trace sink (observation only — leaps stay
    /// off there).
    pub fn set_warp_debug(&mut self, on: bool) {
        self.warp_debug = on;
    }

    /// End-of-step warp hook: watches for recurrence, drives the
    /// Record phase, and leaps when a recorded loop verifies.
    /// `leapable` is false under a trace sink (detection only).
    pub(super) fn warp_observe(&mut self, leapable: bool) {
        let Some(mut w) = self.warp.take() else { return };
        self.warp_observe_inner(&mut w, leapable);
        self.warp = Some(w);
    }

    fn warp_observe_inner(&mut self, w: &mut WarpState, leapable: bool) {
        let now = self.cycle;
        if let Some(rec) = w.rec.take() {
            self.warp_record_step(w, rec, leapable, now);
            return;
        }

        // Watch phase.
        if now < w.resume_at {
            return;
        }
        match &w.anchor {
            Some(a) if now - a.cycle <= MAX_PERIOD => {
                if self.warp_tuple() != a.tuple || self.warp_hash(now) != a.hash {
                    return;
                }
                let key = match self.warp_key(now) {
                    Ok(key) => key,
                    Err(miss) => {
                        w.miss(miss, now);
                        return;
                    }
                };
                if key != a.key {
                    return;
                }
                // Recurrence: start recording two periods.
                let period = now - a.cycle;
                w.stats.periods_detected += 1;
                let ctxs: Vec<usize> = self.slots.iter().filter_map(|s| s.ctx).collect();
                let img_prev = self.warp_images(&ctxs);
                w.rec = Some(Box::new(Recording {
                    period,
                    start: now,
                    cur_start: now,
                    done_periods: 0,
                    key,
                    ctxs,
                    img_prev,
                    delta1: Vec::new(),
                    mark_prev: StatsMark::of(self),
                    delta_stats: None,
                    prev: PeriodLog::default(),
                    cur: PeriodLog::default(),
                }));
                w.anchor = None;
                self.warp_recording = true;
            }
            _ => {
                // No anchor, or the anchor aged out: place a new one.
                match self.warp_key(now) {
                    Ok(key) => {
                        w.anchor = Some(Anchor {
                            cycle: now,
                            tuple: self.warp_tuple(),
                            hash: self.warp_hash(now),
                            key,
                        });
                    }
                    Err(miss) => w.miss(miss, now),
                }
            }
        }
    }

    /// One observe tick of the Record phase. `rec` has been taken out
    /// of `w`; every return path either puts it back (recording
    /// continues) or leaves it dropped with `warp_recording` false.
    fn warp_record_step(
        &mut self,
        w: &mut WarpState,
        mut rec: Box<Recording>,
        leapable: bool,
        now: u64,
    ) {
        self.warp_recording = false;
        if let Some(miss) = w.veto.take() {
            w.miss(miss, now);
            return;
        }
        let boundary = rec.cur_start + rec.period;
        if now < boundary {
            w.rec = Some(rec);
            self.warp_recording = true;
            return;
        }
        if now != boundary {
            // An observe tick was skipped (e.g. a sink was attached
            // mid-run); the boundary state is unrecoverable.
            w.miss(WarpMiss::TimingDrift, now);
            return;
        }

        // Boundary: the fingerprint must recur...
        match self.warp_key(now) {
            Err(miss) => {
                w.miss(miss, now);
                return;
            }
            Ok(key) => {
                if key != rec.key {
                    w.miss(WarpMiss::TimingDrift, now);
                    return;
                }
            }
        }
        // ...the float halves must hold still, and the integer deltas
        // must be well-defined...
        let imgs = self.warp_images(&rec.ctxs);
        let mut deltas: Vec<Vec<i64>> = Vec::with_capacity(imgs.len());
        for (prev, cur) in rec.img_prev.iter().zip(&imgs) {
            if prev[NUM_GREGS..] != cur[NUM_GREGS..] {
                w.miss(WarpMiss::DeltaDrift, now);
                return;
            }
            deltas.push((0..NUM_GREGS).map(|r| cur[r].wrapping_sub(prev[r]) as i64).collect());
        }
        // ...and the statistics delta must be a pure all-hit
        // store-only profile with no context churn.
        let mark = StatsMark::of(self);
        let dstats = mark.delta(&rec.mark_prev);
        if dstats.context_switches != 0 || dstats.threads_killed != 0 {
            w.miss(WarpMiss::ContextChurn, now);
            return;
        }
        let stores = rec.cur.stores.len() as u64;
        let expect_mem = MemStats { accesses: stores, hits: stores, misses: 0, absences: 0 };
        if dstats.mem != expect_mem {
            w.miss(WarpMiss::DeltaDrift, now);
            return;
        }

        if rec.done_periods == 0 {
            // First boundary: bank the period and record one more.
            rec.delta1 = deltas;
            rec.delta_stats = Some(dstats);
            rec.img_prev = imgs;
            rec.mark_prev = mark;
            std::mem::swap(&mut rec.prev, &mut rec.cur);
            rec.cur.clear();
            rec.cur_start = now;
            rec.done_periods = 1;
            w.rec = Some(rec);
            self.warp_recording = true;
            return;
        }

        // Second boundary: full verification.
        if deltas != rec.delta1 || Some(&dstats) != rec.delta_stats.as_ref() {
            w.miss(WarpMiss::DeltaDrift, now);
            return;
        }
        if let Some(miss) = period_log_mismatch(&rec.prev, &rec.cur) {
            w.miss(miss, now);
            return;
        }

        let bound = self.warp_trip_bound(&rec, now).saturating_sub(SAFETY_PERIODS);
        let mut leapt = 0;
        if !leapable {
            // Detection-only (trace sink attached): report and move
            // on; re-detection folds into the report's repeat count.
        } else if bound < MIN_LEAP {
            w.miss(WarpMiss::TripBound, now);
        } else if stores != 0 && !self.mem_model.bulk_store_hits(bound * stores) {
            w.miss(WarpMiss::BulkMem, now);
        } else {
            self.warp_apply_leap(&rec, bound);
            leapt = bound;
            w.stats.leaps += 1;
            w.stats.periods_leapt += bound;
            w.stats.cycles_warped += bound * rec.period;
            w.backoff = BACKOFF_BASE;
        }
        if self.warp_debug {
            warp_debug_record(w, &rec, leapt);
        }
    }

    /// Cheapest prefilter: compared against the anchor every cycle.
    fn warp_tuple(&self) -> (u32, u32, u32) {
        (self.slots[0].fetch_pc, self.slots[0].window.len() as u32, self.standby_total as u32)
    }

    /// Second prefilter: an order-of-nanoseconds hash over the
    /// per-slot timing state, only computed when the tuple matches.
    fn warp_hash(&self, now: u64) -> u64 {
        let mut h = 0xcbf29ce484222325;
        for s in &self.slots {
            fnv(&mut h, s.ctx.map_or(0, |c| c as u64 + 1));
            fnv(&mut h, s.fetch_pc as u64);
            fnv(&mut h, s.earliest_issue.saturating_sub(now));
            fnv(&mut h, s.window.len() as u64);
        }
        fnv(&mut h, self.prio.highest() as u64);
        fnv(&mut h, self.standby_total as u64);
        h
    }

    /// Builds the full timing fingerprint rebased to `now`, or the
    /// reason the current state can never anchor a warp.
    fn warp_key(&self, now: u64) -> Result<TimingKey, WarpMiss> {
        if self.standby_total != 0 {
            return Err(WarpMiss::StandbyData);
        }
        let mut words = Vec::with_capacity(32 + 70 * self.contexts.len());
        for s in &self.slots {
            words.push(s.ctx.map_or(0, |c| c as u64 + 1));
            words.push(s.fetch_pc as u64);
            words.push(s.earliest_issue.saturating_sub(now));
            words.push(s.window.len() as u64);
            for e in &s.window {
                match e {
                    WinEntry::Fresh(pc) => words.push(*pc as u64),
                    WinEntry::Replay(..) => return Err(WarpMiss::ReplayWindow),
                }
            }
        }
        for c in &self.contexts {
            match c.state {
                CtxState::Free => words.push(0),
                CtxState::Done => words.push(1),
                CtxState::Running => {
                    if c.qread.is_some() || c.qwrite.is_some() {
                        return Err(WarpMiss::QueueMapped);
                    }
                    if !c.replay.is_empty() {
                        return Err(WarpMiss::ReplayWindow);
                    }
                    words.push(2);
                    words.push(c.lpid as u64);
                    c.regs.warp_key_into(now, &mut words);
                }
                CtxState::Ready | CtxState::Waiting { .. } => {
                    return Err(WarpMiss::ContextChurn);
                }
            }
        }
        for link in 0..self.slots.len() {
            if self.queues.len(link) != 0 {
                return Err(WarpMiss::QueueDepth);
            }
        }
        self.fu_pool.warp_key_into(now, &mut words);
        self.prio.warp_key_into(now, &mut words);
        Ok(TimingKey { words, fetch: self.fetch.warp_rel(now) })
    }

    fn warp_images(&self, ctxs: &[usize]) -> Vec<Vec<u64>> {
        ctxs.iter().map(|&c| self.contexts[c].regs.image()).collect()
    }

    /// Conservative number of periods provably replayable from `now`
    /// (before the safety margin): the watchdog, every branch site's
    /// outcome and operand ranges, and every store's address bounds.
    fn warp_trip_bound(&self, rec: &Recording, now: u64) -> u64 {
        let p = rec.period;
        let mut k = LEAP_CAP.min(self.config.max_cycles.saturating_sub(now) / p);
        for (a, b) in rec.prev.branches.iter().zip(&rec.cur.branches) {
            let dl = b.lhs.wrapping_sub(a.lhs) as i64;
            let dr = b.rhs.wrapping_sub(a.rhs) as i64;
            k = k.min(operand_range_bound(b.lhs as i64, dl));
            k = k.min(operand_range_bound(b.rhs as i64, dr));
            let d0 = b.lhs as i64 as i128 - b.rhs as i64 as i128;
            k = k.min(branch_outcome_bound(b.cond, b.taken, d0, dl as i128 - dr as i128));
        }
        let mem_words = self.config.mem_words as u64;
        for (a, b) in rec.prev.stores.iter().zip(&rec.cur.stores) {
            let da = b.1.wrapping_sub(a.1) as i64;
            k = k.min(store_addr_bound(b.1, da, mem_words));
        }
        k
    }

    /// Applies a verified leap of `k` periods in one step (memory
    /// replay is O(k·stores); everything else is O(state)).
    fn warp_apply_leap(&mut self, rec: &Recording, k: u64) {
        let p = rec.period;
        let now = self.cycle;
        let delta = k * p;

        // Registers: k·Δ on values, uniform shift on in-flight timing.
        for (i, &ctx) in rec.ctxs.iter().enumerate() {
            let d: &[i64; NUM_GREGS] =
                rec.delta1[i].as_slice().try_into().expect("delta vector is NUM_GREGS long");
            let regs = &mut self.contexts[ctx].regs;
            regs.warp_add_gvals(d, k as i64);
            regs.warp_shift(delta, now);
        }

        // Memory: replay the strided stores of the skipped periods
        // (addresses proven in bounds by the trip bound).
        for j in 1..=k {
            for (i, &(_, addr, bits)) in rec.cur.stores.iter().enumerate() {
                let da = addr.wrapping_sub(rec.prev.stores[i].1) as i64;
                let dv = bits.wrapping_sub(rec.prev.stores[i].2);
                let a = (addr as i128 + j as i128 * da as i128) as u64;
                let v = bits.wrapping_add(j.wrapping_mul(dv));
                self.memory.write(a, v).expect("warp-extrapolated store stays in bounds");
            }
        }

        // Statistics: k more copies of the verified per-period delta.
        let d = rec.delta_stats.as_ref().expect("verified recording has a stats delta");
        self.stats.instructions += k * d.instructions;
        for (s, &per) in d.per_slot.iter().enumerate() {
            self.stats.per_slot_issued[s] += k * per;
        }
        for i in 0..FU_CLASS_COUNT {
            self.stats.fu_invocations[i] += k * d.fu_invocations[i];
            self.stats.fu_busy[i] += k * d.fu_busy[i];
        }
        self.stats.rotations += k * d.rotations;
        for &(off, reason) in &rec.cur.stalls {
            self.stats.record_stall_train(reason, now + off as u64, p, k);
        }

        // Trace synthesis: the issue events the skipped periods would
        // have recorded, in order.
        if let Some(trace) = &mut self.trace {
            trace.reserve(k as usize * rec.cur.issues.len());
            for j in 0..k {
                let base = now + j * p;
                for &(off, slot, ctx, pc) in &rec.cur.issues {
                    trace.push(IssueEvent {
                        cycle: base + off as u64,
                        slot: slot as usize,
                        ctx: ctx as usize,
                        pc,
                    });
                }
            }
        }

        // Timers: shift every future-dated time by the leap.
        self.fu_pool.warp_shift(delta);
        self.fetch.warp_shift(delta);
        self.prio.warp_shift(delta);
        for s in &mut self.slots {
            if s.earliest_issue > now {
                s.earliest_issue += delta;
            }
            if let Some(b) = &mut s.block {
                if b.wake != u64::MAX && b.wake > now {
                    b.wake += delta;
                }
            }
        }
        self.head_pass = None;
        self.cycle = now + delta;
        self.stats.cycles = self.cycle;
    }

    // ---- Record-phase hooks (called from the step path only while
    // ---- `warp_recording` is set; the wheel is suppressed then, so
    // ---- every event funnels through the plain per-cycle sites).

    /// Records a slot-stall at its cycle offset within the period.
    #[inline]
    pub(super) fn warp_note_stall(&mut self, reason: StallReason, now: u64) {
        if let Some(rec) = self.warp.as_deref_mut().and_then(|w| w.rec.as_deref_mut()) {
            rec.cur.stalls.push(((now - rec.cur_start) as u32, reason));
        }
    }

    /// Records an issued instruction, or vetoes the attempt if it is
    /// not warp-safe.
    #[inline]
    pub(super) fn warp_note_issue(
        &mut self,
        di: &DecodedInst,
        slot: usize,
        ctx: usize,
        pc: u32,
        now: u64,
    ) {
        if let Some(w) = self.warp.as_deref_mut() {
            if let Some(rec) = w.rec.as_deref_mut() {
                if !di.is_warp_safe() {
                    w.veto.get_or_insert(WarpMiss::UnsafeOp);
                    return;
                }
                rec.cur.issues.push(((now - rec.cur_start) as u32, slot as u32, ctx as u32, pc));
            }
        }
    }

    /// Records a branch decision with its operand values.
    #[inline]
    pub(super) fn warp_note_branch(
        &mut self,
        pc: u32,
        cond: BranchCond,
        vals: [u64; 2],
        taken: bool,
    ) {
        if let Some(rec) = self.warp.as_deref_mut().and_then(|w| w.rec.as_deref_mut()) {
            rec.cur.branches.push(BranchObs { pc, cond, lhs: vals[0], rhs: vals[1], taken });
        }
    }

    /// Records an executed store.
    #[inline]
    pub(super) fn warp_note_store(&mut self, addr: u64, bits: u64, now: u64) {
        if let Some(rec) = self.warp.as_deref_mut().and_then(|w| w.rec.as_deref_mut()) {
            rec.cur.stores.push(((now - rec.cur_start) as u32, addr, bits));
        }
    }

    /// Raises a sticky veto (e.g. a data-absence trap fired while
    /// recording).
    #[inline]
    pub(super) fn warp_note_veto(&mut self, miss: WarpMiss) {
        if let Some(w) = self.warp.as_deref_mut() {
            if w.rec.is_some() {
                w.veto.get_or_insert(miss);
            }
        }
    }
}

/// Folds one verified period into the `--warp-debug` report.
fn warp_debug_record(w: &mut WarpState, rec: &Recording, leapt: u64) {
    let mut footprint: Vec<u32> = rec.cur.issues.iter().map(|&(_, _, _, pc)| pc).collect();
    footprint.sort_unstable();
    footprint.dedup();
    let mut deltas = Vec::new();
    for (i, &ctx) in rec.ctxs.iter().enumerate() {
        for (r, &d) in rec.delta1[i].iter().enumerate() {
            if d != 0 {
                deltas.push((ctx, r, d));
            }
        }
    }
    if let Some(last) = w.periods.last_mut() {
        if last.period == rec.period && last.footprint == footprint && last.deltas == deltas {
            last.repeats += 1;
            last.leapt += leapt;
            return;
        }
    }
    if w.periods.len() < DEBUG_PERIODS_CAP {
        w.periods.push(WarpPeriodInfo {
            start: rec.start,
            period: rec.period,
            leapt,
            repeats: 1,
            footprint,
            deltas,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    /// Brute-force oracle for [`affine_nonpositive`].
    fn nonpositive_oracle(d0: i128, dd: i128, up_to: u64) -> u64 {
        let mut k = 0;
        while k < up_to && d0 + (k as i128 + 1) * dd <= 0 {
            k += 1;
        }
        k
    }

    #[test]
    fn affine_nonpositive_matches_brute_force() {
        for d0 in -12..=12i128 {
            for dd in -4..=4i128 {
                let got = affine_nonpositive(d0, dd).min(100);
                let want = nonpositive_oracle(d0, dd, 100);
                assert_eq!(got, want, "d0={d0} dd={dd}");
            }
        }
    }

    #[test]
    fn branch_outcome_bound_matches_brute_force() {
        use BranchCond::*;
        let eval = |cond: BranchCond, d: i128| match cond {
            Eq => d == 0,
            Ne => d != 0,
            Lt => d < 0,
            Le => d <= 0,
            Gt => d > 0,
            Ge => d >= 0,
        };
        for cond in [Eq, Ne, Lt, Le, Gt, Ge] {
            for taken in [false, true] {
                for d0 in -10..=10i128 {
                    for dd in -3..=3i128 {
                        let got = branch_outcome_bound(cond, taken, d0, dd).min(60);
                        let mut want = 0;
                        while want < 60 && eval(cond, d0 + (want as i128 + 1) * dd) == taken {
                            want += 1;
                        }
                        assert_eq!(got, want, "{cond:?} taken={taken} d0={d0} dd={dd}");
                    }
                }
            }
        }
    }

    #[test]
    fn store_addr_bound_matches_brute_force() {
        for a0 in 0..24u64 {
            for d in -5..=5i64 {
                let got = store_addr_bound(a0, d, 24).min(60);
                let mut want = 0;
                while want < 60 {
                    let a = a0 as i128 + (want as i128 + 1) * d as i128;
                    if !(0..24).contains(&a) {
                        break;
                    }
                    want += 1;
                }
                assert_eq!(got, want, "a0={a0} d={d}");
            }
        }
    }

    #[test]
    fn operand_range_bound_is_exact_at_the_edge() {
        // One step of +d from i64::MAX - d is fine; two overflow.
        assert_eq!(operand_range_bound(i64::MAX - 10, 10), 1);
        assert_eq!(operand_range_bound(i64::MIN + 10, -10), 1);
        assert_eq!(operand_range_bound(i64::MAX, 1), 0);
        assert_eq!(operand_range_bound(0, 0), LEAP_CAP);
    }

    /// A counted loop with a strided store — the warp engine's bread
    /// and butter.
    fn counted_loop(trips: u32, base: u32) -> hirata_isa::Program {
        let src = format!(
            "\
.text
.entry main
main:
  li r1, #{trips}
  li r2, #0
  li r3, #{base}
loop:
  sw r2, 0(r3)
  add r3, r3, #1
  add r2, r2, #3
  sub r1, r1, #1
  bne r1, #0, loop
  halt
"
        );
        hirata_asm::assemble(&src).expect("valid loop assembly")
    }

    fn run_pair(program: &hirata_isa::Program, slots: usize) -> (Machine, Machine) {
        let mut warp = Machine::new(Config::multithreaded(slots), program).unwrap();
        let mut plain =
            Machine::new(Config::multithreaded(slots).with_warp(false), program).unwrap();
        warp.run().unwrap();
        plain.run().unwrap();
        (warp, plain)
    }

    fn assert_identical(warp: &Machine, plain: &Machine, mem_range: std::ops::Range<u64>) {
        assert_eq!(warp.cycles(), plain.cycles());
        assert_eq!(warp.stats(), plain.stats());
        assert_eq!(warp.mem_stats(), plain.mem_stats());
        for ctx in 0..warp.context_frames() {
            assert_eq!(warp.register_image(ctx), plain.register_image(ctx), "ctx {ctx}");
        }
        for addr in mem_range {
            assert_eq!(
                warp.memory().read(addr).unwrap(),
                plain.memory().read(addr).unwrap(),
                "addr {addr}"
            );
        }
    }

    #[test]
    fn warp_leaps_a_long_counted_loop_identically() {
        let program = counted_loop(200_000, 4096);
        let (warp, plain) = run_pair(&program, 1);
        assert_identical(&warp, &plain, 4096..4096 + 200_000);
        let ws = warp.warp_stats();
        assert!(ws.leaps >= 1, "no leap on a 200k-trip loop: {ws:?}");
        assert!(
            ws.coverage(warp.cycles()) > 0.5,
            "warp covered {:.1}% of {} cycles: {ws:?}",
            100.0 * ws.coverage(warp.cycles()),
            warp.cycles(),
        );
    }

    #[test]
    fn short_loops_fall_back_without_divergence() {
        // Trip counts too small for any leap, including 1.
        for trips in [1u32, 2, 3, 5, 8, 13] {
            let program = counted_loop(trips, 512);
            let (warp, plain) = run_pair(&program, 1);
            assert_identical(&warp, &plain, 512..512 + trips as u64);
            assert_eq!(warp.warp_stats().leaps, 0, "trips={trips}");
        }
    }

    #[test]
    fn no_warp_config_keeps_engine_off() {
        let program = counted_loop(50_000, 256);
        let mut m = Machine::new(Config::multithreaded(1).with_warp(false), &program).unwrap();
        m.run().unwrap();
        assert_eq!(m.warp_stats(), WarpStats::default());
        assert!(m.warp_periods().is_empty());
    }

    #[test]
    fn warp_synthesizes_trace_events_across_leaps() {
        let program = counted_loop(30_000, 1024);
        let mut warp = Machine::new(Config::multithreaded(1), &program).unwrap();
        let mut plain = Machine::new(Config::multithreaded(1).with_warp(false), &program).unwrap();
        warp.set_trace(true);
        plain.set_trace(true);
        warp.run().unwrap();
        plain.run().unwrap();
        assert!(warp.warp_stats().leaps >= 1, "{:?}", warp.warp_stats());
        assert_eq!(warp.trace(), plain.trace());
    }

    #[test]
    fn warp_debug_reports_the_loop() {
        let program = counted_loop(30_000, 1024);
        let mut m = Machine::new(Config::multithreaded(1), &program).unwrap();
        m.set_warp_debug(true);
        m.run().unwrap();
        let periods = m.warp_periods();
        assert!(!periods.is_empty());
        let info = &periods[0];
        assert!(info.period > 0 && info.period <= MAX_PERIOD);
        assert!(!info.footprint.is_empty());
        // A detected period may fuse several loop iterations (state
        // recurs at the lcm of the loop and the rotation/fetch
        // phases). Per iteration the counter r1 steps by −1, the
        // value r2 by +3, the pointer r3 by +1 — so the per-period
        // deltas must be (−n, 3n, n) for one trip multiple n ≥ 1.
        let delta_of = |reg: usize| {
            info.deltas
                .iter()
                .find_map(|&(_, r, d)| (r == reg).then_some(d))
                .unwrap_or_else(|| panic!("r{reg} missing from {info:?}"))
        };
        let trips = -delta_of(1);
        assert!(trips >= 1, "{info:?}");
        assert_eq!(delta_of(2), 3 * trips, "{info:?}");
        assert_eq!(delta_of(3), trips, "{info:?}");
        assert!(info.leapt > 0);
    }

    #[test]
    fn multi_slot_counted_loops_stay_identical() {
        // Two slots running the shared program: fastfork-free, both
        // slots iterate the same loop body on their own contexts.
        let program = counted_loop(40_000, 8192);
        let (warp, plain) = run_pair(&program, 2);
        assert_identical(&warp, &plain, 8192..8192 + 40_000);
    }

    #[test]
    fn queue_workloads_fall_back_identically() {
        let src = "\
.text
.entry main
main:
  qmap r10, r11
  fastfork
  lpid r1
  bne r1, #0, consume
  li r5, #0
  li r6, #4000
produce:
  add r11, r5, #0
  add r5, r5, #1
  bne r5, #200, produce
  drain
  halt
consume:
  li r7, #0
  li r8, #0
consume_loop:
  add r8, r10, r8
  add r7, r7, #1
  bne r7, #200, consume_loop
  sw r8, 4000(r0)
  halt
";
        let program = hirata_asm::assemble(src).expect("valid queue program");
        let (warp, plain) = run_pair(&program, 2);
        assert_identical(&warp, &plain, 4000..4001);
    }
}

/// Property tests for the leap arithmetic (found regressions live in
/// `crates/sim/tests/properties.proptest-regressions`).
#[cfg(test)]
mod properties {
    use proptest::prelude::*;

    use super::*;
    use crate::config::Config;

    /// A model affine machine: integer registers and a small word
    /// memory, driven by a fixed per-period op list — the abstract
    /// shape the warp verifier certifies. Running it `k` periods
    /// sequentially is the ground truth the leap must match.
    #[derive(Debug, Clone, PartialEq)]
    struct Model {
        regs: Vec<u64>,
        mem: Vec<u64>,
    }

    /// One op of the model period: `Add(d, a, b)` is `r[d] = r[a] +
    /// r[b]`, `AddImm(d, a, imm)`, and `Store(addr_reg, val_reg)`
    /// writes `r[val]` to `mem[r[addr] % len]`.
    #[derive(Debug, Clone, Copy)]
    enum Op {
        Add(usize, usize, usize),
        AddImm(usize, usize, i64),
        Store(usize, usize),
    }

    impl Model {
        fn step_period(&mut self, ops: &[Op]) -> Vec<(u64, u64)> {
            let mut stores = Vec::new();
            for &op in ops {
                match op {
                    Op::Add(d, a, b) => {
                        if d != 0 {
                            self.regs[d] = self.regs[a].wrapping_add(self.regs[b]);
                        }
                    }
                    Op::AddImm(d, a, imm) => {
                        if d != 0 {
                            self.regs[d] = self.regs[a].wrapping_add(imm as u64);
                        }
                    }
                    Op::Store(addr, val) => {
                        let a = self.regs[addr] % self.mem.len() as u64;
                        self.mem[a as usize] = self.regs[val];
                        stores.push((a, self.regs[val]));
                    }
                }
            }
            stores
        }
    }

    fn op_strategy(regs: usize) -> impl Strategy<Value = Op> {
        prop_oneof![
            (0..regs, 0..regs, 0..regs).prop_map(|(d, a, b)| Op::Add(d, a, b)),
            (0..regs, 0..regs, -8i64..8).prop_map(|(d, a, imm)| Op::AddImm(d, a, imm)),
            (0..regs, 0..regs).prop_map(|(a, v)| Op::Store(a, v)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64 })]

        /// The leap arithmetic (`k·Δ` registers + strided store
        /// replay) equals `k` sequential period replays on the model
        /// machine whenever the verifier's own precondition
        /// (`Δ1 == Δ2` and matching store profiles) holds — including
        /// full 2⁶⁴ wraparound. Cases failing the precondition are
        /// skipped, mirroring the engine's own DeltaDrift fallback.
        #[test]
        fn leap_equals_sequential_replay(
            seed_regs in prop::collection::vec(0u64..u64::MAX, 8..9),
            ops in prop::collection::vec(op_strategy(8), 1..12),
            k in 1u64..24,
        ) {
            let mut m = Model { regs: seed_regs, mem: vec![0; 64] };
            m.regs[0] = 0; // model's zero register

            // Record phase: two periods, verifier-style.
            let img0 = m.regs.clone();
            let stores_a = m.step_period(&ops);
            let img1 = m.regs.clone();
            let stores_b = m.step_period(&ops);
            let img2 = m.regs.clone();
            let d1: Vec<i64> =
                img1.iter().zip(&img0).map(|(c, p)| c.wrapping_sub(*p) as i64).collect();
            let d2: Vec<i64> =
                img2.iter().zip(&img1).map(|(c, p)| c.wrapping_sub(*p) as i64).collect();
            if d1 != d2 || stores_a.len() != stores_b.len() {
                continue;
            }
            // Address strides must replay within the model memory
            // (the real engine bounds k by store_addr_bound instead).
            let strides: Vec<(i64, u64)> = stores_b
                .iter()
                .zip(&stores_a)
                .map(|(b, a)| (b.0.wrapping_sub(a.0) as i64, b.1.wrapping_sub(a.1)))
                .collect();
            let replayable = strides.iter().enumerate().all(|(i, &(da, _))| {
                super::store_addr_bound(stores_b[i].0, da, m.mem.len() as u64) >= k
            });
            if !replayable {
                continue;
            }

            // Ground truth: k more sequential periods.
            let mut seq = m.clone();
            for _ in 0..k {
                seq.step_period(&ops);
            }

            // Leap: k·Δ + strided store replay.
            let mut leap = m;
            for (r, &d) in leap.regs.iter_mut().zip(&d1) {
                *r = r.wrapping_add((d as u64).wrapping_mul(k));
            }
            for j in 1..=k {
                for (i, &(da, dv)) in strides.iter().enumerate() {
                    let a = (stores_b[i].0 as i128 + j as i128 * da as i128) as u64;
                    let v = stores_b[i].1.wrapping_add(j.wrapping_mul(dv));
                    leap.mem[a as usize] = v;
                }
            }
            prop_assert_eq!(leap, seq);
        }

        /// End-to-end: the full machine with warp on reproduces the
        /// warp-off run exactly — cycles, statistics, registers, and
        /// memory — across trip counts straddling every leap boundary.
        #[test]
        fn machine_warp_equals_plain(
            trips in 1u32..400,
            stride in 1u32..4,
            slots in prop::sample::select(vec![1usize, 2]),
        ) {
            let base = 16384;
            let src = format!(
                "\
.text
.entry main
main:
  li r1, #{trips}
  li r2, #7
  li r3, #{base}
loop:
  sw r2, 0(r3)
  add r3, r3, #{stride}
  add r2, r2, #5
  sub r1, r1, #1
  bne r1, #0, loop
  halt
"
            );
            let program = hirata_asm::assemble(&src).expect("valid loop");
            let mut warp = Machine::new(Config::multithreaded(slots), &program).unwrap();
            let mut plain =
                Machine::new(Config::multithreaded(slots).with_warp(false), &program).unwrap();
            warp.run().unwrap();
            plain.run().unwrap();
            prop_assert_eq!(warp.cycles(), plain.cycles());
            prop_assert_eq!(warp.stats(), plain.stats());
            prop_assert_eq!(warp.mem_stats(), plain.mem_stats());
            for ctx in 0..warp.context_frames() {
                prop_assert_eq!(warp.register_image(ctx), plain.register_image(ctx));
            }
            for addr in base..base + (trips as u64) * (stride as u64) {
                prop_assert_eq!(
                    warp.memory().read(addr).unwrap(),
                    plain.memory().read(addr).unwrap()
                );
            }
        }
    }

    /// Pinned replays of the `cc` entries in
    /// `crates/sim/tests/properties.proptest-regressions` (the
    /// vendored proptest does not auto-replay files, so the
    /// regressions run as explicit cases).
    #[test]
    fn regression_store_stride_wraps_value() {
        // cc 51e7aa: a store whose value delta wraps u64 while the
        // address stride stays small — k·Δ must wrap identically.
        let mut m = Model { regs: vec![0, u64::MAX - 3, 5, 0, 0, 0, 0, 0], mem: vec![0; 64] };
        let ops = [Op::AddImm(2, 2, 7), Op::Store(3, 1), Op::AddImm(3, 3, 1), Op::AddImm(1, 1, -9)];
        let img0 = m.regs.clone();
        m.step_period(&ops);
        let img1 = m.regs.clone();
        m.step_period(&ops);
        let d1: Vec<i64> = img1.iter().zip(&img0).map(|(c, p)| c.wrapping_sub(*p) as i64).collect();
        let mut seq = m.clone();
        let k = 9u64;
        for _ in 0..k {
            seq.step_period(&ops);
        }
        let mut leap = m.clone();
        for (r, &d) in leap.regs.iter_mut().zip(&d1) {
            *r = r.wrapping_add((d as u64).wrapping_mul(k));
        }
        // Reconstruct the two recorded store sets for the strides.
        let mut probe = Model { regs: img0, mem: vec![0; 64] };
        let stores_a = probe.step_period(&ops);
        let stores_b = probe.step_period(&ops);
        for j in 1..=k {
            for (i, b) in stores_b.iter().enumerate() {
                let da = b.0.wrapping_sub(stores_a[i].0) as i64;
                let dv = b.1.wrapping_sub(stores_a[i].1);
                let a = (b.0 as i128 + j as i128 * da as i128) as u64;
                leap.mem[a as usize] = b.1.wrapping_add(j.wrapping_mul(dv));
            }
        }
        assert_eq!(leap, seq);
    }

    #[test]
    fn regression_trip_count_exactly_safety_margin() {
        // cc c02d9b: a loop whose remaining trips equal the leap's
        // safety margin — the bound must refuse (TripBound), and the
        // fallback must stay byte-identical.
        let src = "\
.text
.entry main
main:
  li r1, #9
loop:
  sub r1, r1, #1
  bne r1, #0, loop
  halt
";
        let program = hirata_asm::assemble(src).unwrap();
        let mut warp = Machine::new(Config::multithreaded(1), &program).unwrap();
        let mut plain = Machine::new(Config::multithreaded(1).with_warp(false), &program).unwrap();
        warp.run().unwrap();
        plain.run().unwrap();
        assert_eq!(warp.cycles(), plain.cycles());
        assert_eq!(warp.stats(), plain.stats());
        assert_eq!(warp.warp_stats().leaps, 0);
    }
}
