//! The event wheel: fast-forwarding over provably stalled spans.
//!
//! A [`Machine::step`] that issued nothing proves the whole machine is
//! stalled (single-slot machines also probe after issuing steps — the
//! window drains every cycle, so the next head's verdict is knowable a
//! step early, and a passing verdict is itself reusable as a head-issue
//! proof). A stalled machine's future is driven entirely by timed
//! events: standby instructions waking when their functional unit
//! frees, branch shadows expiring, queue-register entries maturing,
//! fetch deliveries, context wake-ups, and priority rotations. When
//! every such event lies strictly after the next cycle, the machine
//! jumps straight to the earliest one and synthesizes the accounting
//! the skipped cycles would have produced — one `Stall` per slot per
//! cycle (from the frozen wake reason), the per-cycle `FuLoss` events
//! for parked standby fronts, and any implicit rotations (which are
//! order-preserving when only one slot exists). Cycle counts,
//! statistics, and trace streams are byte-identical to the plain loop;
//! debug builds re-derive the slots' stall descriptors across the span
//! to prove the jump inert, and the differential suite runs wheel and
//! plain machines in lockstep across jump boundaries.
//!
//! The fetch system keeps working while the machine is stalled, so the
//! wheel *replays* it through the span rather than stopping at its
//! every move ([`FetchSystem::advance_span`] makes the replay
//! `O(fetch events)`, not `O(cycles)`). Two fetch events are more than
//! bookkeeping and get special treatment:
//!
//! * a **redirect delivery** rewrites the slot's `earliest_issue` (the
//!   branch shadow) — the wheel absorbs it mid-span, switching that
//!   slot's synthesized stall from `Fetch` to `BranchShadow` at the
//!   exact delivery cycle, and keeps jumping (this fuses the paper's
//!   whole branch shadow — fetch wait, delivery, decode refill — into
//!   one jump);
//! * a **refill delivery to a fetch-starved slot** re-arms issue — the
//!   wheel stops the span right there, absorbing only the delivery
//!   cycle's start-of-cycle work (rotation tick and fetch events), and
//!   the real step at that cycle issues normally.
//!
//! The per-slot wake reasons come from [`super::SlotBlock`] — the
//! ready-frontier descriptors the issue phase maintains for every
//! provably stalled slot (no bound thread, an unexpired branch shadow,
//! fetch starvation, and blocked head stalls with a wake hint from
//! the scoreboard, the queue ring, or the standby occupancy). Slots
//! still on the ready frontier re-derive the same facts from live
//! state, including a head probe. Any slot in a state whose next
//! change is not provably timed (e.g. a non-blockable head stall)
//! vetoes the jump — correctness never depends on the wheel firing.
//!
//! Two throttles keep the wheel from costing more than it saves, and
//! both are pure attempt-scheduling — the cycles a skipped or vetoed
//! attempt would have jumped are stepped plainly, with identical
//! results: one-cycle jumps are vetoed (the walk's bookkeeping exceeds
//! a blocked-replay step), and multi-slot machines back off exponentially
//! while attempts keep failing (probing every slot on every no-issue
//! cycle is wasted work in phases where some slot soon issues again).

use super::*;

/// What `slot_stall_horizon` proved about a slot at cycle `next`.
enum Horizon {
    /// The slot provably re-records `reason`/`pc` every cycle strictly
    /// before `wake` (`u64::MAX`: until an event absorbed by the span
    /// walk). `fill` flags a probed head still in the fetch buffer —
    /// the span walk replays the window fill at the span's first
    /// cycle. `probed` marks descriptors derived from a fresh
    /// `check_issue` probe (rather than an existing block or a pure
    /// state countdown), which the wheel installs as a block.
    Stall { wake: u64, reason: StallReason, pc: Option<u32>, fill: bool, probed: bool },
    /// The probe proved the head passes `check_issue` at `next`: no
    /// jump, but the proof is reusable — the next step's issue path
    /// can skip its own head evaluation (see `Machine::head_pass`).
    Issues { pc: u32 },
    /// Not provably inert; the jump is vetoed.
    Unknown,
}

impl Machine {
    /// Attempts an event-wheel jump from the current cycle. Called at
    /// the end of a step that issued nothing; a no-op whenever any
    /// slot's progress cannot be bounded or an event is due
    /// immediately.
    pub(super) fn fast_forward(&mut self) {
        let from = self.cycle;
        // The schedule units would force-rotate an empty highest slot
        // at the start of the next step — an event in itself (it can
        // ungate stores and emits a trace event), so never jump over
        // it.
        let h = self.prio.highest();
        if self.slots[h].ctx.is_none()
            && !self.slot_has_standby(h)
            && self.slots.iter().any(|s| s.ctx.is_some())
        {
            return;
        }
        let mut stalls = std::mem::take(&mut self.scratch.wheel_stalls);
        stalls.clear();
        // The watchdog trips at `max_cycles`, so a span may extend to
        // it but never past it (the real step there raises the error,
        // exactly as the plain loop would after stepping through).
        let mut target = self.config.max_cycles;
        let mut jumpable = true;
        let mut fills = 0u64;
        for s in 0..self.slots.len() {
            match self.slot_stall_horizon(s, from) {
                Horizon::Stall { wake, reason, pc, fill, probed } => {
                    target = target.min(wake);
                    stalls.push((reason, pc));
                    if fill {
                        fills |= 1 << s;
                    } else if probed {
                        // The probe satisfied the head block's creation
                        // preconditions (single-issue, the window holds
                        // exactly this fresh non-gated head) — keep its
                        // result, so a landing step short of `wake`
                        // short-circuits instead of re-evaluating.
                        let pc = pc.expect("probed stalls carry the head pc");
                        self.block_slot(s, reason, Some(pc), wake);
                    }
                }
                Horizon::Issues { pc } => {
                    // No jump — but the next step can reuse the proof,
                    // as nothing between here and its head evaluation
                    // mutates state `check_issue` reads (single-slot
                    // only: another slot issuing first would).
                    if self.slots.len() == 1 {
                        self.head_pass = Some((from, pc));
                    }
                    jumpable = false;
                    break;
                }
                Horizon::Unknown => {
                    jumpable = false;
                    break;
                }
            }
        }
        // The slot loop only ever lowers `target`, so a target already
        // at or below `from + 1` is a veto no matter what the
        // context/standby scans below would find — bail before paying
        // for them (the common failure mode in stall-heavy phases:
        // some slot's block wakes next cycle).
        if jumpable && target <= from + 1 {
            jumpable = false;
        }
        if jumpable {
            // An implicit rotation reorders the priorities whenever
            // more than one slot exists; with a single slot it is
            // order-preserving and is synthesized inside the span
            // instead (its statistics and trace event still matter).
            if self.slots.len() > 1 {
                if let Some(r) = self.prio.next_implicit_rotation(from) {
                    target = target.min(r);
                }
            }
            // Context wake-ups matter only if a slot could bind the
            // woken context; otherwise the Ready flip is deferred to
            // the jump boundary, where the plain loop's flips are
            // replayed.
            let bindable = self
                .slots
                .iter()
                .enumerate()
                .any(|(s, slot)| slot.ctx.is_none() && !self.slot_has_standby(s));
            if bindable {
                for ctx in &self.contexts {
                    match ctx.state {
                        CtxState::Ready => jumpable = false, // bind due now
                        CtxState::Waiting { until } => target = target.min(until.max(from)),
                        _ => {}
                    }
                }
            }
            // Parked standby fronts win arbitration as soon as an
            // instance of their class frees — unless gated on the
            // priority, which only a rotation (bounded above) lifts.
            for class in FuClass::ALL {
                let ci = class.index();
                if self.standby_mask[ci].is_empty() {
                    continue;
                }
                let ungated = (0..self.slots.len()).any(|s| {
                    self.standby_mask[ci].contains(s)
                        && self.station(s, ci).front().is_some_and(|f| {
                            !f.di.needs_highest_priority() || self.prio.highest() == s
                        })
                });
                if ungated {
                    let free = self.fu_pool.min_release(ci);
                    // Post-arbitration invariant: an ungated front and
                    // a free instance never coexist at span start.
                    debug_assert!(free >= from, "free FU instance left an ungated front parked");
                    target = target.min(free.max(from));
                }
            }
        }
        // A one-cycle jump is never worth the span-walk bookkeeping —
        // the next real step re-records the same stalls (cheaply, via
        // the blocks the probes just installed) at the same cost.
        let jumped = jumpable && target > from + 1;
        if jumped {
            self.walk_span(from, target, &mut stalls, fills);
        }
        self.scratch.wheel_stalls = stalls;
        if self.slots.len() > 1 {
            if jumped {
                self.ff_stride = 1;
            } else {
                self.ff_next = from + u64::from(self.ff_stride);
                self.ff_stride = (self.ff_stride * 2).min(64);
            }
        }
    }

    /// The earliest cycle (searching from `next`) at which slot `s`
    /// could do anything other than re-record the same stall, with the
    /// stall descriptor every skipped cycle records — see [`Horizon`].
    /// `u64::MAX` marks states only an event (bounded elsewhere or
    /// absorbed by the span walk) can change.
    fn slot_stall_horizon(&self, s: usize, next: u64) -> Horizon {
        let slot = &self.slots[s];
        if let Some(b) = slot.block {
            // A live block is its own horizon: the issue phase proved
            // the descriptor re-records identically until `wake`, and
            // every clearing event is either bounded below by the jump
            // conditions or absorbed by the span walk.
            if b.wake > next {
                return Horizon::Stall {
                    wake: b.wake,
                    reason: b.reason,
                    pc: b.pc,
                    fill: false,
                    probed: false,
                };
            }
            // Expired at the probe cycle: fall through and re-derive
            // from live state, exactly as the next real step would
            // after unblocking.
        }
        if slot.ctx.is_none() {
            // Nothing to issue until a bind (bounded by the context
            // wake-up scan) or a forced rotation (guarded at entry).
            return Horizon::Stall {
                wake: u64::MAX,
                reason: StallReason::NoThread,
                pc: None,
                fill: false,
                probed: false,
            };
        }
        if slot.earliest_issue > next {
            // Branch shadow / rebind penalty: pure cycle countdown.
            return Horizon::Stall {
                wake: slot.earliest_issue,
                reason: StallReason::BranchShadow,
                pc: Some(self.next_window_pc(s)),
                fill: false,
                probed: false,
            };
        }
        if slot.window.is_empty() && self.fetch.credits(s) == 0 {
            // Starved for instructions: only a fetch delivery — which
            // the span walk watches for — changes this.
            return Horizon::Stall {
                wake: u64::MAX,
                reason: StallReason::Fetch,
                pc: Some(slot.fetch_pc),
                fill: false,
                probed: false,
            };
        }
        // No block yet: probe the head the next step would evaluate.
        // Sound under exactly the head block's own preconditions — single-
        // issue decode (the window is at most this head, so the
        // evaluation is pure and nothing issues around it), a fresh
        // non-gated instruction, and a wake hint from `check_issue`.
        // This is what lets an *issuing* cycle start a jump without a
        // discovery step in between.
        if self.config.issue_width != 1 {
            return Horizon::Unknown;
        }
        if !self.config.standby_stations && self.slot_has_standby(s) {
            return Horizon::Unknown; // blocked decode (ablation): wake unknowable
        }
        let (pc, fill) = match slot.window.front() {
            Some(&WinEntry::Fresh(pc)) if slot.window.len() == 1 => (pc, false),
            None if self.fetch.credits(s) > 0 && s < 64 => {
                let pc = slot.fetch_pc;
                if (pc as usize) >= self.program.len() {
                    return Horizon::Unknown; // fetched past the end: real step faults
                }
                (pc, true)
            }
            _ => return Horizon::Unknown,
        };
        let di = self.program.insts()[pc as usize];
        if di.needs_highest_priority() {
            return Horizon::Unknown; // a rotation could ungate it mid-span
        }
        let ctx_i = slot.ctx.expect("slot bound (checked above)");
        match self.check_issue(
            s,
            ctx_i,
            &di,
            false,
            next,
            0,
            0,
            (false, false),
            &[false; FU_CLASS_COUNT],
            true,
        ) {
            Err(IssueBlock::Stall(reason, Some(wake))) if wake > next => {
                Horizon::Stall { wake, reason, pc: Some(pc), fill, probed: true }
            }
            Ok(()) => Horizon::Issues { pc },
            _ => Horizon::Unknown, // faults, or an unbounded stall
        }
    }

    /// Replays the window fill the skipped step would have performed
    /// for a probed-but-unfilled head (see `slot_stall_horizon`).
    fn apply_fill(&mut self, s: usize) {
        let pc = self.slots[s].fetch_pc;
        self.slots[s].window.push_back(WinEntry::Fresh(pc));
        self.slots[s].fetch_pc = pc + 1;
        self.fetch.consume(s);
    }

    /// Walks the span `[from, target)`, replaying the fetch system and
    /// synthesizing the skipped cycles' accounting: per-slot stalls
    /// (stats and, with a sink, `Stall` events in priority order),
    /// per-cycle `FuLoss` events for standby fronts, fetch deliveries,
    /// implicit rotations, and the `Waiting -> Ready` context flips the
    /// plain loop's `wake_and_bind` would have performed. Absorbed
    /// redirect deliveries switch the slot's descriptor to
    /// `BranchShadow` mid-span (and may shorten the span to the shadow
    /// expiry); a refill delivery to a fetch-starved slot ends the span
    /// at the delivery cycle, with that cycle's start (rotation tick
    /// and fetch events) already applied so the real step continues
    /// from the issue phase bit-exactly.
    fn walk_span(
        &mut self,
        from: u64,
        mut target: u64,
        stalls: &mut [(StallReason, Option<u32>)],
        mut fills: u64,
    ) {
        let depth = self.config.pipeline.decode_depth();
        let mut deliveries = std::mem::take(&mut self.scratch.deliveries);
        // The landing cycle: `target`, unless a refill wakes a starved
        // slot first. Cycles in `[from, end)` have their stalls
        // synthesized; the real step runs at `end`.
        let mut end = target;
        if self.sink.is_some() {
            // Event-exact replay: walk every cycle emitting what the
            // plain loop would have emitted, in its order — rotation,
            // fetch deliveries, stalls in priority order, arbitration
            // losses per class.
            let mut order = std::mem::take(&mut self.scratch.order);
            order.clear();
            order.extend_from_slice(self.prio.order());
            let masks = self.standby_mask;
            let mut t = from;
            while t < target {
                if self.prio.tick(t) {
                    // Only reachable with one slot (multi-slot spans
                    // stop before a rotation), where rotating is
                    // order-preserving.
                    self.stats.rotations += 1;
                    let highest = self.prio.highest();
                    if let Some(sink) = self.sink.as_deref_mut() {
                        sink.event(&TraceEvent::Rotation {
                            cycle: t,
                            kind: RotationKind::Implicit,
                            highest,
                        });
                    }
                }
                deliveries.clear();
                self.fetch.begin_cycle(t, &mut deliveries);
                let mut woke = false;
                for &d in &deliveries {
                    if d.redirect {
                        target = target.min(self.absorb_redirect(d.slot, t, depth, stalls));
                    } else if stalls[d.slot].0 == StallReason::Fetch {
                        // The refill re-arms issue: lift the slot's
                        // Fetch block (the step path's delivery loop
                        // would, but this delivery is consumed here)
                        // and end the span at this cycle.
                        self.unblock(d.slot);
                        woke = true;
                    }
                    if let Some(sink) = self.sink.as_deref_mut() {
                        sink.event(&TraceEvent::Fetch {
                            cycle: t,
                            slot: d.slot,
                            redirect: d.redirect,
                        });
                    }
                }
                if woke {
                    end = t;
                    break;
                }
                while fills != 0 {
                    let s = fills.trailing_zeros() as usize;
                    fills &= fills - 1;
                    self.apply_fill(s);
                }
                for &s in order.iter() {
                    let (reason, pc) = stalls[s];
                    #[cfg(debug_assertions)]
                    self.assert_slot_inert(s, t, reason, pc);
                    self.stats.record_stall(reason, t);
                    if let Some(sink) = self.sink.as_deref_mut() {
                        sink.event(&TraceEvent::Stall { cycle: t, slot: s, reason, pc });
                    }
                }
                let highest = self.prio.highest();
                let standby = &self.standby;
                if let Some(sink) = self.sink.as_deref_mut() {
                    for class in FuClass::ALL {
                        let ci = class.index();
                        if masks[ci].is_empty() {
                            continue;
                        }
                        for &s in order.iter() {
                            if !masks[ci].contains(s) {
                                continue;
                            }
                            let f = standby[s * FU_CLASS_COUNT + ci]
                                .front()
                                .expect("standby mask in sync with stations");
                            sink.event(&TraceEvent::FuLoss {
                                cycle: t,
                                slot: s,
                                class,
                                pc: f.pc,
                                gated: f.di.needs_highest_priority() && highest != s,
                                winners: SlotSet::EMPTY,
                            });
                        }
                    }
                }
                self.fetch.end_cycle(t);
                t += 1;
            }
            // An absorbed redirect may have pulled `target` in below
            // the landing cycle chosen at entry. (When the walk
            // stopped on a woken slot, cycle `end`'s tick was already
            // applied above; the real step's own tick will see
            // `last_rotation == end` and do nothing.)
            end = end.min(target);
            self.scratch.order = order;
        } else {
            // Arithmetic fast path (the steady state of untraced runs):
            // batch the rotations and the per-piece stall attribution,
            // visiting only the fetch system's active cycles. The
            // per-slot piece starts are materialized lazily — only an
            // absorbed redirect splits a slot's span into pieces.
            let mut piece = std::mem::take(&mut self.scratch.wheel_piece);
            let mut pieced = false;
            let mut t = from;
            let mut stopped = false;
            // The fetch replay must surface any redirect delivery and
            // any refill to a fetch-starved slot; everything else it
            // absorbs internally. Slots past the mask width stop the
            // replay unconditionally (conservative, never wrong).
            let mut wake_mask = 0u64;
            for (s, &(reason, _)) in stalls.iter().enumerate().take(64) {
                if reason == StallReason::Fetch {
                    wake_mask |= 1 << s;
                }
            }
            // A pending fill consumes a credit at `from`, which can
            // start a refill service that very cycle — so visit `from`
            // by hand before handing the span to the fetch system.
            if fills != 0 {
                deliveries.clear();
                self.fetch.begin_cycle(from, &mut deliveries);
                let mut woke = false;
                for &d in &deliveries {
                    if d.redirect {
                        if !pieced {
                            piece.clear();
                            piece.resize(stalls.len(), from);
                            pieced = true;
                        }
                        self.stats.record_stall_span(stalls[d.slot].0, piece[d.slot], from);
                        piece[d.slot] = from;
                        target = target.min(self.absorb_redirect(d.slot, from, depth, stalls));
                    } else if stalls[d.slot].0 == StallReason::Fetch {
                        self.unblock(d.slot); // as in the traced path
                        woke = true;
                    }
                }
                if woke {
                    end = from;
                    stopped = true;
                } else {
                    while fills != 0 {
                        let s = fills.trailing_zeros() as usize;
                        fills &= fills - 1;
                        self.apply_fill(s);
                    }
                    self.fetch.end_cycle(from);
                    t = from + 1;
                }
            }
            while !stopped && t < target {
                let Some(tc) = self.fetch.advance_span(t, target, wake_mask, &mut deliveries)
                else {
                    break;
                };
                let mut woke = false;
                for &d in &deliveries {
                    if d.redirect {
                        if !pieced {
                            piece.clear();
                            piece.resize(stalls.len(), from);
                            pieced = true;
                        }
                        // Close the slot's current stall piece at the
                        // delivery cycle; the shadow piece starts here.
                        self.stats.record_stall_span(stalls[d.slot].0, piece[d.slot], tc);
                        piece[d.slot] = tc;
                        target = target.min(self.absorb_redirect(d.slot, tc, depth, stalls));
                    } else if stalls[d.slot].0 == StallReason::Fetch {
                        self.unblock(d.slot); // as in the traced path
                        woke = true;
                    }
                }
                if woke {
                    end = tc;
                    stopped = true;
                } else {
                    self.fetch.end_cycle(tc);
                    t = tc + 1;
                }
            }
            end = end.min(target);
            // Rotations: when the span stopped at a woken slot, the
            // stopping cycle's tick belongs to the wheel too (the real
            // step's own tick then no-ops), matching the traced path.
            let tick_end = if stopped { end + 1 } else { end };
            self.stats.rotations += self.prio.fast_forward_ticks(from, tick_end);
            for (s, &(reason, _)) in stalls.iter().enumerate() {
                let start = if pieced { piece[s] } else { from };
                self.stats.record_stall_span(reason, start, end);
            }
            self.scratch.wheel_piece = piece;
        }
        // The plain loop's `wake_and_bind` at each skipped cycle `t`
        // flips `Waiting { until }` contexts with `until <= t` to
        // `Ready`; replay the flips the span's last cycle would have
        // accumulated. Binds need a free slot, which the jump
        // conditions exclude, so a flip is all that happens.
        for ctx in &mut self.contexts {
            if let CtxState::Waiting { until } = ctx.state {
                if until < end {
                    ctx.state = CtxState::Ready;
                }
            }
        }
        self.scratch.deliveries = deliveries;
        self.cycle = end;
        self.stats.cycles = end;
    }

    /// Applies a redirect delivery for `slot` at cycle `t` exactly as
    /// the plain loop's delivery handling would, switches the slot's
    /// synthesized stall to the branch shadow, and returns the new
    /// wake cycle (the shadow expiry).
    fn absorb_redirect(
        &mut self,
        slot: usize,
        t: u64,
        depth: u64,
        stalls: &mut [(StallReason, Option<u32>)],
    ) -> u64 {
        // A redirect lands on a slot that was starved waiting for it
        // (`Fetch`), or — when a rebind's switch penalty outlasts the
        // fetch service — on a slot still inside its shadow, which the
        // delivery then extends to cover the decode refill.
        debug_assert!(
            matches!(stalls[slot].0, StallReason::Fetch | StallReason::BranchShadow),
            "redirect delivered to slot stalled on {:?}",
            stalls[slot].0
        );
        let s = &mut self.slots[slot];
        s.earliest_issue = s.earliest_issue.max(t + depth);
        let wake = s.earliest_issue;
        let pc = self.next_window_pc(slot);
        stalls[slot] = (StallReason::BranchShadow, Some(pc));
        // The step path would unblock on the delivery, re-evaluate,
        // and re-block on the extended shadow; the span fuses that
        // into one block rewrite with identical synthesized stalls.
        self.block_slot(slot, StallReason::BranchShadow, Some(pc), wake);
        wake
    }

    /// Debug-build proof that a synthesized stall is inert: the slot
    /// re-derives exactly the frozen descriptor at cycle `t`, still
    /// stalled past it.
    #[cfg(debug_assertions)]
    fn assert_slot_inert(&self, s: usize, t: u64, reason: StallReason, pc: Option<u32>) {
        let Horizon::Stall { wake, reason: r, pc: p, .. } = self.slot_stall_horizon(s, t) else {
            panic!("slot {s} must stay provably stalled across the span (cycle {t})");
        };
        assert_eq!((r, p), (reason, pc), "slot {s} stall descriptor drifted at cycle {t}");
        assert!(wake > t, "slot {s} woke at {wake}, at or before synthesized cycle {t}");
    }
}
/// Property tests for the wake-time arithmetic (found regressions live
/// in `crates/sim/tests/properties.proptest-regressions`).
#[cfg(test)]
mod properties {
    use proptest::prelude::*;

    use crate::config::Config;
    use crate::machine::Machine;

    /// Assembles a two-phase workload whose stall structure the
    /// generator controls: a float divide chain (long FU latency), a
    /// pointer-chase-like load chain, and a parameterized busy loop —
    /// enough to exercise Data, Fetch, BranchShadow, and FuConflict
    /// wake sources.
    fn stall_program(divs: u32, loads: u32, loop_trips: u32) -> hirata_isa::Program {
        use std::fmt::Write as _;
        let mut src =
            String::from(".data\n.org 0\n.word 7, 9, 11, 13\n.text\n.entry main\nmain:\n");
        src.push_str("  li r1, #100\n  lif f1, #5.0\n  lif f2, #3.0\n");
        for _ in 0..divs {
            src.push_str("  fdiv f1, f1, f2\n");
        }
        src.push_str("  li r3, #0\n");
        for _ in 0..loads {
            src.push_str("  lw r2, 0(r0)\n  add r3, r2, r1\n");
        }
        let _ = writeln!(src, "  li r4, #{loop_trips}");
        src.push_str("loop:\n  sub r4, r4, #1\n  bne r4, #0, loop\n");
        src.push_str("  sw r3, 300(r0)\n  sf f1, 301(r0)\n  halt\n");
        hirata_asm::assemble(&src).expect("generator emits valid assembly")
    }

    fn machines(program: &hirata_isa::Program, slots: usize) -> (Machine, Machine) {
        let wheel = Machine::new(Config::multithreaded(slots), program).unwrap();
        let plain =
            Machine::new(Config::multithreaded(slots).with_fast_forward(false), program).unwrap();
        (wheel, plain)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 24 })]

        /// Next-event monotonicity and never-overshooting, checked by
        /// lockstep: each wheel step lands at a cycle the plain
        /// machine reaches with identical statistics — so every jump
        /// moved strictly forward, and never past an event (an issue
        /// inside a skipped span would desynchronize
        /// `stats.instructions` at the boundary).
        #[test]
        fn jumps_land_exactly_on_plain_loop_cycles(
            divs in 0u32..6,
            loads in 0u32..4,
            trips in 1u32..12,
            slots in prop::sample::select(vec![1usize, 2, 4]),
        ) {
            let program = stall_program(divs, loads, trips);
            let (mut wheel, mut plain) = machines(&program, slots);
            let mut done = false;
            while !done {
                done = wheel.step().unwrap();
                prop_assert!(wheel.cycles() > plain.cycles() || done);
                while plain.cycles() < wheel.cycles() {
                    plain.step().unwrap();
                }
                prop_assert_eq!(wheel.cycles(), plain.cycles());
                prop_assert_eq!(wheel.stats(), plain.stats());
                prop_assert_eq!(wheel.priority_order(), plain.priority_order());
                prop_assert_eq!(wheel.queue_depths(), plain.queue_depths());
            }
            prop_assert!(plain.step().unwrap());
            for ctx in 0..wheel.context_frames() {
                prop_assert_eq!(wheel.register_image(ctx), plain.register_image(ctx));
            }
        }

        /// Idempotence of re-arming: re-running the wheel at a jump
        /// target reaches a fixed point within a few invocations — a
        /// cycle where one more invocation does not move the machine.
        /// A re-arm may legitimately advance again when the first jump
        /// stopped conservatively at a fetch delivery whose delivered
        /// head then probes as stalled — but each landing must stay
        /// byte-identical to the plain loop, and the chain must
        /// terminate.
        #[test]
        fn rearming_at_a_jump_target_is_a_no_op(
            divs in 1u32..6,
            trips in 1u32..8,
        ) {
            let program = stall_program(divs, 2, trips);
            let (mut wheel, mut plain) = machines(&program, 1);
            let mut jumps = 0u32;
            let mut done = false;
            while !done {
                let before = wheel.cycles();
                done = wheel.step().unwrap();
                if wheel.cycles() > before + 1 {
                    jumps += 1;
                    let mut rearms = 0u32;
                    loop {
                        let landed = wheel.cycles();
                        wheel.fast_forward();
                        if wheel.cycles() == landed {
                            break; // fixed point: re-arming is a no-op
                        }
                        rearms += 1;
                        prop_assert!(rearms <= 8, "re-arming never reached a fixed point");
                    }
                }
                while plain.cycles() < wheel.cycles() {
                    plain.step().unwrap();
                }
                prop_assert_eq!(wheel.stats(), plain.stats());
            }
            // The divide chain guarantees the wheel actually fired.
            prop_assert!(jumps > 0);
        }
    }

    /// Pinned replays of the `cc` entries in
    /// `crates/sim/tests/properties.proptest-regressions` (the vendored
    /// proptest does not auto-replay files, so the regressions run as
    /// explicit cases).
    #[test]
    fn regression_single_div_single_trip() {
        // cc 6a1b0f: one fdiv, one loop trip, s=1 — the minimal span
        // where a blocked Data stall and the branch shadow overlap.
        let program = stall_program(1, 0, 1);
        let (mut wheel, mut plain) = machines(&program, 1);
        wheel.run().unwrap();
        plain.run().unwrap();
        assert_eq!(wheel.stats(), plain.stats());
    }

    #[test]
    fn regression_queue_capacity_span() {
        // cc 93c4d2: a producer/consumer pair over the queue ring with
        // the consumer parked on QueueEmpty across a jump.
        let src = "\
.text
.entry main
main:
  qmap r10, r11
  fastfork
  lpid r1
  bne r1, #0, consume
  li r5, #1
  add r11, r5, #4
  add r11, r5, #9
  drain
  halt
consume:
  add r22, r10, #0
  add r22, r10, r22
  sw r22, 320(r0)
  halt
";
        let program = hirata_asm::assemble(src).expect("valid queue program");
        let (mut wheel, mut plain) = machines(&program, 2);
        wheel.run().unwrap();
        plain.run().unwrap();
        assert_eq!(wheel.stats(), plain.stats());
        assert_eq!(wheel.cycles(), plain.cycles());
    }
}
