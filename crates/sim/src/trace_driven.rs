//! Trace-driven simulation — the paper's own methodology (§3.1/§3.2:
//! the ray tracer was compiled, executed, and its "traced instruction
//! sequences were translated to be used for our simulator").
//!
//! [`build_trace_program`] translates per-thread dynamic traces
//! (recorded with [`crate::Emulator::execute_with_traces`]) into a
//! runnable trace program: each thread's trace becomes a straight-line
//! section in which every resolved control transfer is redirected to
//! the next trace element — conditional branches keep their original
//! operands (so the issue-time dependence wait is preserved) but have
//! their taken target aimed at the next element, making both outcomes
//! land there — and a prologue forks one thread per slot and
//! dispatches each to its own section through a jump table.
//!
//! For programs without inter-thread synchronisation, running the
//! trace program on the cycle-level machine takes the same cycles
//! (modulo the small dispatch prologue) as executing the original
//! program directly; `crates/sim/tests/trace_driven.rs` asserts this
//! equivalence on real workloads, validating the execution-driven
//! simulator against the paper's trace-driven methodology.

use std::fmt;

use hirata_isa::{GReg, GSrc, Inst, IntOp, Program};

/// Error from [`build_trace_program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceError {
    /// The traces contain a synchronisation instruction whose timing
    /// depends on other threads (`chgpri`, `killothers`, gated stores,
    /// queue-register traffic): such programs are execution-driven
    /// only, as their instruction sequences are not replayable.
    Unreplayable {
        /// Thread whose trace contains it.
        thread: usize,
    },
    /// No traces were supplied.
    Empty,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Unreplayable { thread } => {
                write!(f, "thread {thread}'s trace contains synchronisation and cannot be replayed")
            }
            TraceError::Empty => f.write_str("no traces supplied"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Word address of the dispatch table the trace program stores its
/// section entry points at. Chosen high to stay clear of workload
/// data.
const DISPATCH_BASE: u64 = 900_000;

/// Builds a runnable trace program from per-thread dynamic traces.
/// `original` supplies the initial data image (the replay touches the
/// same addresses).
///
/// # Errors
///
/// [`TraceError::Unreplayable`] if a trace contains inter-thread
/// synchronisation; [`TraceError::Empty`] for no traces.
pub fn build_trace_program(
    original: &Program,
    traces: &[Vec<Inst>],
) -> Result<Program, TraceError> {
    if traces.is_empty() {
        return Err(TraceError::Empty);
    }
    for (thread, trace) in traces.iter().enumerate() {
        let unreplayable = trace.iter().any(|i| {
            matches!(
                i,
                Inst::ChgPri
                    | Inst::KillOthers
                    | Inst::QMap { .. }
                    | Inst::QUnmap
                    | Inst::Store { gated: true, .. }
            )
        });
        if unreplayable {
            return Err(TraceError::Unreplayable { thread });
        }
    }

    // Prologue: fork, look the section start up by lpid, jump there.
    //   fastfork; lpid r1; li r2, #DISPATCH; add r2, r2, r1;
    //   lw r3, 0(r2); jr r3
    let mut insts = vec![
        Inst::FastFork,
        Inst::Lpid { rd: GReg(1) },
        Inst::Li { rd: GReg(2), imm: DISPATCH_BASE as i64 },
        Inst::IntOp { op: IntOp::Add, rd: GReg(2), rs: GReg(2), src2: GSrc::Reg(GReg(1)) },
        Inst::Load { dst: hirata_isa::Reg::G(GReg(3)), base: GReg(2), off: 0 },
        Inst::JumpReg { rs: GReg(3) },
    ];
    let mut entries = Vec::with_capacity(traces.len());
    for trace in traces {
        entries.push(insts.len() as u64);
        for inst in trace {
            let at = insts.len() as u32;
            let replay = match *inst {
                // A conditional branch keeps its operands — the replay
                // pays the same issue-time dependence wait — but both
                // outcomes now land on the next trace element.
                Inst::Branch { cond, rs, src2, .. } => {
                    Inst::Branch { cond, rs, src2, target: at + 1 }
                }
                // An indirect jump waits on its register; an
                // always-taken compare against itself reproduces that.
                Inst::JumpReg { rs } => Inst::Branch {
                    cond: hirata_isa::BranchCond::Eq,
                    rs,
                    src2: GSrc::Reg(rs),
                    target: at + 1,
                },
                Inst::Jump { .. } => Inst::Jump { target: at + 1 },
                // The prologue already forked; the traced fastfork
                // becomes a plain (decode-unit, 1-cycle) nop.
                Inst::FastFork => Inst::Nop,
                other => other,
            };
            insts.push(replay);
        }
        insts.push(Inst::Halt);
    }

    let mut program = Program { insts, data: original.data.clone(), ..Program::default() };
    program.data.push(hirata_isa::DataSegment { base: DISPATCH_BASE, words: entries });
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emu::Emulator;
    use crate::{Config, Machine};
    use hirata_asm::assemble;

    #[test]
    fn replay_preserves_results_and_dynamic_length() {
        let src = "
            fastfork
            lpid r1
            nlp  r2
            li   r3, #0
            mv   r4, r1
        loop:
            slt  r5, r4, #10
            beq  r5, #0, done
            add  r3, r3, r4
            add  r4, r4, r2
            j    loop
        done:
            sw   r3, 100(r1)
            halt
        ";
        let program = assemble(src).unwrap();
        let out = Emulator::execute_with_traces(&program, 2, 1 << 20, 100_000).unwrap();
        let replay = build_trace_program(&program, &out.traces).unwrap();
        let mut m = Machine::new(Config::multithreaded(2), &replay).unwrap();
        m.run().unwrap();
        for lp in 0..2u64 {
            assert_eq!(
                m.memory().read_i64(100 + lp).unwrap(),
                out.memory.read_i64(100 + lp).unwrap(),
                "thread {lp}"
            );
        }
    }

    #[test]
    fn synchronising_traces_are_rejected() {
        let program = assemble("qmap r10, r11\nli r11, #1\nmv r2, r10\nhalt").unwrap();
        let out = Emulator::execute_with_traces(&program, 1, 1 << 12, 10_000).unwrap();
        assert!(matches!(
            build_trace_program(&program, &out.traces),
            Err(TraceError::Unreplayable { thread: 0 })
        ));
        assert!(matches!(build_trace_program(&program, &[]), Err(TraceError::Empty)));
    }
}
