//! A fast *architectural* emulator — no pipelines, no latencies — used
//! as the golden model for differential testing of the cycle-level
//! machine, and handy for quickly checking programs.
//!
//! Threads execute round-robin, one instruction per turn. Blocking
//! constructs (queue-register reads, `chgpri`/`killothers`/gated
//! stores waiting for the highest priority) simply skip the turn until
//! they can proceed. For programs whose results are
//! timing-independent — which is everything except code that races
//! through shared memory without the §2.3.3 ordering primitives — the
//! final memory image matches [`crate::Machine`]'s exactly, because
//! both use the same operation semantics (the `exec` module).

use std::collections::VecDeque;
use std::sync::Arc;

use hirata_isa::{Inst, Program, Reg};
use hirata_mem::Memory;

use crate::error::MachineError;
use crate::exec::{branch_taken, fu_action, resolve_operands, FuAction};
use crate::predecode::PredecodedProgram;
use crate::regfile::RegBank;

/// Result of an emulator run.
#[derive(Debug)]
pub struct EmuOutcome {
    /// Final data memory.
    pub memory: Memory,
    /// Instructions retired.
    pub instructions: u64,
    /// Threads killed by `killothers`.
    pub threads_killed: u64,
    /// Final architectural register image per logical processor: the
    /// 32 integer registers (two's complement) followed by the 32
    /// floating registers (IEEE-754 bits). Comparable against
    /// [`crate::Machine::register_image`] for differential testing.
    pub regs: Vec<Vec<u64>>,
    /// Per-thread dynamic instruction traces (empty unless recording
    /// was requested with [`Emulator::execute_with_traces`]).
    pub traces: Vec<Vec<Inst>>,
}

#[derive(Debug)]
struct EmuThread {
    regs: RegBank,
    pc: u32,
    lpid: i64,
    alive: bool,
    qread: Option<Reg>,
    qwrite: Option<Reg>,
}

/// The architectural emulator. See the module docs.
#[derive(Debug)]
pub struct Emulator {
    program: Arc<PredecodedProgram>,
    memory: Memory,
    threads: Vec<EmuThread>,
    queues: Vec<VecDeque<u64>>,
    /// Priority ring: `order[0]` is the highest-priority thread index.
    order: Vec<usize>,
    instructions: u64,
    threads_killed: u64,
    traces: Option<Vec<Vec<Inst>>>,
}

impl Emulator {
    /// Creates an emulator for `program` on a logical machine with
    /// `slots` logical processors and `mem_words` of data memory.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError`] if the program is invalid or its data
    /// does not fit.
    pub fn new(program: &Program, slots: usize, mem_words: usize) -> Result<Self, MachineError> {
        Self::from_predecoded(PredecodedProgram::shared(program)?, slots, mem_words)
    }

    /// Creates an emulator from an already-lowered program, sharing
    /// the instruction store with any machines running it (see
    /// [`PredecodedProgram::shared`]).
    ///
    /// # Errors
    ///
    /// Returns [`MachineError`] if the program's data does not fit in
    /// memory.
    pub fn from_predecoded(
        program: Arc<PredecodedProgram>,
        slots: usize,
        mem_words: usize,
    ) -> Result<Self, MachineError> {
        let mut memory = Memory::new(mem_words);
        for seg in program.data() {
            memory.load_block(seg.base, &seg.words).map_err(|source| MachineError::Mem {
                slot: 0,
                pc: 0,
                source,
            })?;
        }
        let mut threads: Vec<EmuThread> = (0..slots)
            .map(|i| EmuThread {
                regs: RegBank::new(),
                pc: 0,
                lpid: i as i64,
                alive: false,
                qread: None,
                qwrite: None,
            })
            .collect();
        threads[0].alive = true;
        threads[0].pc = program.entry();
        Ok(Emulator {
            program,
            memory,
            threads,
            queues: vec![VecDeque::new(); slots],
            order: (0..slots).collect(),
            instructions: 0,
            threads_killed: 0,
            traces: None,
        })
    }

    /// Enables per-thread dynamic-instruction recording (the paper's
    /// §3.1 methodology: "traced instruction sequences were translated
    /// to be used for our simulator").
    pub fn record_traces(&mut self) {
        self.traces = Some(vec![Vec::new(); self.threads.len()]);
    }

    /// Runs to completion (every thread halted/killed).
    ///
    /// # Errors
    ///
    /// Propagates machine checks; `max_steps` bounds the run like the
    /// machine's watchdog.
    pub fn run(mut self, max_steps: u64) -> Result<EmuOutcome, MachineError> {
        let mut steps = 0u64;
        while self.threads.iter().any(|t| t.alive) {
            let mut progressed = false;
            for i in 0..self.threads.len() {
                if !self.threads[i].alive {
                    continue;
                }
                steps += 1;
                if steps > max_steps {
                    return Err(MachineError::Watchdog { cycles: max_steps });
                }
                progressed |= self.step_thread(i)?;
            }
            if !progressed && self.threads.iter().any(|t| t.alive) {
                // Every live thread is blocked: architectural deadlock.
                return Err(MachineError::Watchdog { cycles: steps });
            }
        }
        Ok(EmuOutcome {
            regs: self.threads.iter().map(|t| t.regs.image()).collect(),
            memory: self.memory,
            instructions: self.instructions,
            threads_killed: self.threads_killed,
            traces: self.traces.unwrap_or_default(),
        })
    }

    fn highest_live(&self) -> Option<usize> {
        self.order.iter().copied().find(|&t| self.threads[t].alive)
    }

    /// Executes one instruction on thread `i`; returns false if the
    /// thread is blocked this turn.
    fn step_thread(&mut self, i: usize) -> Result<bool, MachineError> {
        let pc = self.threads[i].pc;
        if pc as usize >= self.program.len() {
            return Err(MachineError::PcOutOfRange { slot: i, pc });
        }
        let di = self.program.insts()[pc as usize];
        let inst = di.inst;

        // Blocking conditions.
        if di.needs_highest_priority() && self.highest_live() != Some(i) {
            return Ok(false);
        }
        let read_link = i;
        let write_link = (i + 1) % self.threads.len();
        let needs_queue_read =
            di.srcs.into_iter().flatten().any(|r| self.threads[i].qread == Some(r));
        if needs_queue_read && self.queues[read_link].is_empty() {
            return Ok(false);
        }

        self.instructions += 1;
        if let Some(traces) = &mut self.traces {
            traces[i].push(inst);
        }
        let mut next_pc = pc + 1;
        match inst {
            Inst::Branch { cond, .. } => {
                let vals = self.read_operands(i, &inst);
                if let Inst::Branch { target, .. } = inst {
                    if branch_taken(cond, vals) {
                        next_pc = target;
                    }
                }
            }
            Inst::Jump { target } => next_pc = target,
            Inst::JumpReg { .. } => {
                let vals = self.read_operands(i, &inst);
                next_pc = vals[0] as u32;
            }
            Inst::Halt => {
                self.threads[i].alive = false;
            }
            Inst::Nop | Inst::Drain => {}
            Inst::FastFork => {
                for j in 0..self.threads.len() {
                    if j == i {
                        continue;
                    }
                    if self.threads[j].alive {
                        return Err(MachineError::ForkBusy { slot: j, pc });
                    }
                    let (qread, qwrite) = (self.threads[i].qread, self.threads[i].qwrite);
                    // Copy only the architectural values; the emulator
                    // never consults scoreboard state (see `RegBank::
                    // copy_arch_from`).
                    let (parent, child) = if i < j {
                        let (lo, hi) = self.threads.split_at_mut(j);
                        (&lo[i], &mut hi[0])
                    } else {
                        let (lo, hi) = self.threads.split_at_mut(i);
                        (&hi[0], &mut lo[j])
                    };
                    child.regs.copy_arch_from(&parent.regs);
                    let t = &mut self.threads[j];
                    t.pc = pc + 1;
                    t.lpid = j as i64;
                    t.alive = true;
                    t.qread = qread;
                    t.qwrite = qwrite;
                }
                self.threads[i].lpid = i as i64;
            }
            Inst::ChgPri => self.order.rotate_left(1),
            Inst::KillOthers => {
                for j in 0..self.threads.len() {
                    if j != i && self.threads[j].alive {
                        self.threads[j].alive = false;
                        self.threads_killed += 1;
                    }
                }
                for q in &mut self.queues {
                    q.clear();
                }
            }
            Inst::SetRotation { .. } => {} // timing-only
            Inst::QMap { read, write } => {
                if read == write {
                    return Err(MachineError::QueueMisuse {
                        slot: i,
                        pc,
                        detail: format!("qmap maps {read} for both read and write"),
                    });
                }
                self.threads[i].qread = Some(read);
                self.threads[i].qwrite = Some(write);
            }
            _ => {
                // Functional-unit instruction: compute and write back.
                let vals = self.read_operands(i, &inst);
                let nlp = self.threads.len() as i64;
                let action =
                    fu_action(&inst, vals, self.threads[i].lpid, nlp).ok_or_else(|| {
                        MachineError::DecodeAtFu { slot: i, pc, inst: inst.to_string() }
                    })?;
                match action {
                    FuAction::Write(bits) => self.write_dest(i, write_link, &inst, bits),
                    FuAction::Load { addr } => {
                        let bits = self.memory.read(addr).map_err(|source| MachineError::Mem {
                            slot: i,
                            pc,
                            source,
                        })?;
                        self.write_dest(i, write_link, &inst, bits);
                    }
                    FuAction::Store { addr, bits } => {
                        self.memory.write(addr, bits).map_err(|source| MachineError::Mem {
                            slot: i,
                            pc,
                            source,
                        })?;
                    }
                }
            }
        }
        if matches!(inst, Inst::QUnmap) {
            self.threads[i].qread = None;
            self.threads[i].qwrite = None;
        }
        self.threads[i].pc = next_pc;
        Ok(true)
    }

    fn read_operands(&mut self, i: usize, inst: &Inst) -> [u64; 2] {
        let qread = self.threads[i].qread;
        let link = i;
        let mut dequeued: Option<u64> = None;
        let queues = &mut self.queues;
        let regs = &self.threads[i].regs;
        resolve_operands(inst, |r| {
            if qread == Some(r) {
                *dequeued
                    .get_or_insert_with(|| queues[link].pop_front().expect("checked non-empty"))
            } else {
                regs.read_bits(r)
            }
        })
    }

    fn write_dest(&mut self, i: usize, write_link: usize, inst: &Inst, bits: u64) {
        let Some(d) = inst.dest() else { return };
        if self.threads[i].qwrite == Some(d) {
            self.queues[write_link].push_back(bits);
        } else {
            self.threads[i].regs.write(d, bits, 0, 0);
        }
    }

    /// Convenience: build and run in one call.
    ///
    /// # Errors
    ///
    /// As for [`Emulator::new`] and [`Emulator::run`].
    pub fn execute(
        program: &Program,
        slots: usize,
        mem_words: usize,
        max_steps: u64,
    ) -> Result<EmuOutcome, MachineError> {
        Emulator::new(program, slots, mem_words)?.run(max_steps)
    }

    /// Like [`Emulator::execute`], with per-thread dynamic traces
    /// recorded into the outcome.
    ///
    /// # Errors
    ///
    /// As for [`Emulator::execute`].
    pub fn execute_with_traces(
        program: &Program,
        slots: usize,
        mem_words: usize,
        max_steps: u64,
    ) -> Result<EmuOutcome, MachineError> {
        let mut emu = Emulator::new(program, slots, mem_words)?;
        emu.record_traces();
        emu.run(max_steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirata_asm::assemble;

    fn run(src: &str, slots: usize) -> EmuOutcome {
        let prog = assemble(src).unwrap();
        Emulator::execute(&prog, slots, 1 << 16, 1_000_000).unwrap()
    }

    #[test]
    fn arithmetic_and_memory() {
        let out = run("li r1, #6\nmul r2, r1, #7\nsw r2, 10(r0)\nhalt", 1);
        assert_eq!(out.memory.read_i64(10).unwrap(), 42);
        assert_eq!(out.instructions, 4);
    }

    #[test]
    fn fork_and_stride() {
        let out = run("fastfork\nlpid r1\nnlp r2\nsw r2, 20(r1)\nhalt", 4);
        for lp in 0..4 {
            assert_eq!(out.memory.read_i64(20 + lp).unwrap(), 4);
        }
    }

    #[test]
    fn queue_ring_and_kill() {
        let out = run(
            "setrot explicit\nqmap r10, r11\nfastfork\nlpid r1\nbne r1, #0, c\nli r11, #5\nkillothers\nhalt\nc: add r3, r10, #1\nsw r3, 30(r0)\nhalt",
            2,
        );
        // Thread 0 kills thread 1; whether the consumer got to store
        // first is a race in the emulator too — but killothers requires
        // the highest priority, which thread 0 holds, so thread 1 dies
        // before its store only if it was still blocked. With
        // round-robin it dequeues on its turn... either way the run
        // terminates and kills at most one thread.
        assert!(out.threads_killed <= 1);
    }

    #[test]
    fn deadlock_is_detected() {
        let prog = assemble("qmap r10, r11\nadd r1, r10, #0\nhalt").unwrap();
        let err = Emulator::execute(&prog, 1, 1 << 12, 10_000).unwrap_err();
        assert!(matches!(err, MachineError::Watchdog { .. }));
    }

    #[test]
    fn pc_overrun_is_detected() {
        let prog = assemble("nop").unwrap();
        let err = Emulator::execute(&prog, 1, 1 << 12, 100).unwrap_err();
        assert!(matches!(err, MachineError::PcOutOfRange { .. }));
    }
}
