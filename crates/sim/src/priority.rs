//! Multi-level rotating thread priorities (§2.2, Figure 4).
//!
//! Every thread slot holds a unique priority level. The instruction
//! schedule units pick candidates in priority order; to avoid
//! starvation the levels rotate — either every *rotation interval*
//! cycles (implicit mode) or under software control via `chgpri`
//! (explicit mode). After a rotation the previously highest slot has
//! the lowest priority.

use hirata_isa::RotationMode;

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Priorities {
    /// `order[0]` is the highest-priority slot.
    order: Vec<usize>,
    mode: RotationMode,
    /// Cycle of the most recent implicit rotation (or mode change).
    last_rotation: u64,
    /// A `chgpri` executed this cycle; rotation applies at cycle end.
    pending_explicit: bool,
}

impl Priorities {
    pub(crate) fn new(slots: usize, mode: RotationMode) -> Self {
        Priorities { order: (0..slots).collect(), mode, last_rotation: 0, pending_explicit: false }
    }

    /// Slots from highest to lowest priority.
    pub(crate) fn order(&self) -> &[usize] {
        &self.order
    }

    /// Priority rank of `slot` (0 = highest).
    #[allow(dead_code)] // used by tests and kept for diagnostics
    pub(crate) fn rank(&self, slot: usize) -> usize {
        self.order.iter().position(|&s| s == slot).expect("slot in priority order")
    }

    /// The highest-priority slot.
    pub(crate) fn highest(&self) -> usize {
        self.order[0]
    }

    /// Current rotation mode.
    #[allow(dead_code)] // used by tests and kept for diagnostics
    pub(crate) fn mode(&self) -> RotationMode {
        self.mode
    }

    /// Switches mode (the privileged `setrot` instruction) and resets
    /// the implicit-rotation timer.
    pub(crate) fn set_mode(&mut self, mode: RotationMode, now: u64) {
        self.mode = mode;
        self.last_rotation = now;
    }

    /// Called at the start of each cycle; performs an implicit rotation
    /// when the interval has elapsed. Returns true if it rotated.
    pub(crate) fn tick(&mut self, now: u64) -> bool {
        if let RotationMode::Implicit { interval } = self.mode {
            if now > 0 && now - self.last_rotation >= interval as u64 {
                self.rotate(now);
                return true;
            }
        }
        false
    }

    /// First cycle `>= from` at which [`Self::tick`] would rotate, or
    /// `None` in explicit mode (only a `chgpri` can rotate then, and
    /// `chgpri` requires an issue — which the event wheel has already
    /// ruled out). Used by the event wheel to bound fast-forward jumps.
    pub(crate) fn next_implicit_rotation(&self, from: u64) -> Option<u64> {
        match self.mode {
            RotationMode::Implicit { interval } => {
                // tick(now) fires when now > 0 && now - last >= interval.
                Some((self.last_rotation + interval as u64).max(from).max(1))
            }
            RotationMode::Explicit => None,
        }
    }

    /// Applies every implicit rotation that [`Self::tick`] would have
    /// performed over the half-open cycle span `[from, to)`, in one
    /// arithmetic step. Returns the number of rotations applied.
    /// Explicit mode never rotates on its own, so the span is a no-op
    /// there. Used by the event wheel's no-trace fast path (with a
    /// trace sink attached the wheel calls `tick` per skipped cycle
    /// instead, to emit the rotation events at their exact cycles).
    pub(crate) fn fast_forward_ticks(&mut self, from: u64, to: u64) -> u64 {
        let RotationMode::Implicit { interval } = self.mode else { return 0 };
        let interval = interval as u64;
        let first = (self.last_rotation + interval).max(from).max(1);
        if first >= to {
            return 0;
        }
        let count = 1 + (to - 1 - first) / interval;
        self.last_rotation = first + (count - 1) * interval;
        let len = self.order.len() as u64;
        self.order.rotate_left((count % len) as usize);
        count
    }

    /// Appends the rotation state rebased to `now` to `out`, for the
    /// loop-warp fingerprint: the priority order, the mode, the cycles
    /// since the last rotation, and any pending explicit request.
    pub(crate) fn warp_key_into(&self, now: u64, out: &mut Vec<u64>) {
        for &s in &self.order {
            out.push(s as u64);
        }
        match self.mode {
            RotationMode::Implicit { interval } => {
                out.push(1);
                out.push(interval as u64);
            }
            RotationMode::Explicit => {
                out.push(2);
                out.push(0);
            }
        }
        out.push(now - self.last_rotation);
        out.push(self.pending_explicit as u64);
    }

    /// Shifts the rotation timer forward by `delta` cycles — the
    /// loop-warp leap.
    pub(crate) fn warp_shift(&mut self, delta: u64) {
        self.last_rotation += delta;
    }

    /// Requests an explicit rotation (`chgpri`), applied at cycle end.
    pub(crate) fn request_explicit(&mut self) {
        self.pending_explicit = true;
    }

    /// Called at the end of each cycle; applies a pending explicit
    /// rotation. Returns true if it rotated.
    pub(crate) fn apply_pending(&mut self, now: u64) -> bool {
        if self.pending_explicit {
            self.pending_explicit = false;
            self.rotate(now);
            true
        } else {
            false
        }
    }

    /// Unconditional rotation, used by the machine to skip slots that
    /// no longer host a thread (an empty slot can never execute
    /// `chgpri`, so leaving it at the highest priority would wedge
    /// every interlocked instruction).
    pub(crate) fn force_rotate(&mut self, now: u64) {
        self.rotate(now);
    }

    fn rotate(&mut self, now: u64) {
        self.order.rotate_left(1);
        self.last_rotation = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_order_is_slot_index() {
        let p = Priorities::new(3, RotationMode::Explicit);
        assert_eq!(p.order(), [0, 1, 2]);
        assert_eq!(p.highest(), 0);
        assert_eq!(p.rank(2), 2);
    }

    #[test]
    fn implicit_rotation_fires_on_interval() {
        let mut p = Priorities::new(3, RotationMode::Implicit { interval: 4 });
        assert!(!p.tick(0));
        assert!(!p.tick(3));
        assert!(p.tick(4));
        assert_eq!(p.order(), [1, 2, 0]);
        assert!(!p.tick(7));
        assert!(p.tick(8));
        assert_eq!(p.order(), [2, 0, 1]);
    }

    #[test]
    fn rotation_demotes_previous_highest_to_lowest() {
        let mut p = Priorities::new(4, RotationMode::Implicit { interval: 1 });
        p.tick(1);
        assert_eq!(p.order(), [1, 2, 3, 0]);
        assert_eq!(p.rank(0), 3);
    }

    #[test]
    fn explicit_rotation_is_deferred_to_cycle_end() {
        let mut p = Priorities::new(2, RotationMode::Explicit);
        p.request_explicit();
        assert_eq!(p.highest(), 0); // not yet applied
        assert!(p.apply_pending(5));
        assert_eq!(p.highest(), 1);
        assert!(!p.apply_pending(6)); // one-shot
    }

    #[test]
    fn explicit_mode_never_rotates_implicitly() {
        let mut p = Priorities::new(2, RotationMode::Explicit);
        for now in 0..100 {
            assert!(!p.tick(now));
        }
        assert_eq!(p.highest(), 0);
    }

    #[test]
    fn set_mode_resets_interval_timer() {
        let mut p = Priorities::new(2, RotationMode::Explicit);
        p.set_mode(RotationMode::Implicit { interval: 8 }, 100);
        assert!(!p.tick(104));
        assert!(p.tick(108));
    }

    #[test]
    fn single_slot_rotation_is_identity() {
        let mut p = Priorities::new(1, RotationMode::Implicit { interval: 1 });
        p.tick(1);
        assert_eq!(p.order(), [0]);
        assert_eq!(p.highest(), 0);
    }
}

/// Property tests (found regressions live in
/// `crates/sim/properties.proptest-regressions`).
#[cfg(test)]
mod properties {
    use super::*;
    use proptest::prelude::*;

    /// Op codes for a random driver sequence: tick, chgpri
    /// (request + cycle-end apply), forced rotation.
    const TICK: u8 = 0;
    const CHGPRI: u8 = 1;

    proptest! {
        /// However the rotation sources interleave, the priority order
        /// stays a permutation of the slots, and its exact value is
        /// the initial order rotated left once per applied rotation —
        /// so no rotation ever loses or duplicates a priority level.
        #[test]
        fn any_rotation_interleaving_is_a_left_rotation(
            slots in 1usize..9,
            interval in 1u32..6,
            ops in prop::collection::vec(0u8..3, 1..64),
        ) {
            let mut p = Priorities::new(slots, RotationMode::Implicit { interval });
            let mut rotations = 0usize;
            for (now, op) in ops.into_iter().enumerate() {
                let now = now as u64 + 1;
                match op {
                    TICK => rotations += usize::from(p.tick(now)),
                    CHGPRI => {
                        p.request_explicit();
                        rotations += usize::from(p.apply_pending(now));
                    }
                    _ => {
                        p.force_rotate(now);
                        rotations += 1;
                    }
                }
                let mut expected: Vec<usize> = (0..slots).collect();
                expected.rotate_left(rotations % slots);
                prop_assert_eq!(p.order(), expected.as_slice());
            }
        }

        /// In explicit mode the implicit timer is dead: no amount of
        /// ticking rotates, while a `chgpri` request always applies at
        /// cycle end — exactly once — whatever ticks surround it.
        #[test]
        fn explicit_chgpri_wins_over_implicit(
            slots in 2usize..9,
            ticks_before in 0u64..40,
            ticks_after in 0u64..40,
        ) {
            let mut p = Priorities::new(slots, RotationMode::Explicit);
            let mut now = 0;
            for _ in 0..ticks_before {
                now += 1;
                prop_assert!(!p.tick(now));
            }
            prop_assert_eq!(p.highest(), 0);

            p.request_explicit();
            for _ in 0..ticks_after {
                now += 1;
                prop_assert!(!p.tick(now)); // still no implicit rotation
                prop_assert_eq!(p.highest(), 0); // deferred to cycle end
            }
            prop_assert!(p.apply_pending(now));
            prop_assert_eq!(p.highest(), 1 % slots);
            prop_assert!(!p.apply_pending(now + 1)); // one-shot
        }

        /// `fast_forward_ticks` over `[from, to)` is exactly a
        /// per-cycle `tick` loop: same final state, same rotation
        /// count, from any reachable starting point.
        #[test]
        fn fast_forward_ticks_equals_tick_loop(
            slots in 1usize..9,
            interval in 1u32..6,
            warmup in 0u64..20,
            from_delta in 0u64..4,
            span in 0u64..40,
        ) {
            let mut p = Priorities::new(slots, RotationMode::Implicit { interval });
            for now in 1..=warmup {
                p.tick(now);
            }
            // `from` may sit past the warmup (cycles where tick was
            // provably a no-op can be skipped without calling it).
            let from = warmup + 1 + from_delta;
            let to = from + span;

            let mut looped = p.clone();
            let mut loop_count = 0u64;
            for now in from..to {
                loop_count += u64::from(looped.tick(now));
            }
            let ff_count = p.fast_forward_ticks(from, to);
            prop_assert_eq!(ff_count, loop_count);
            prop_assert_eq!(p.order(), looped.order());
            prop_assert_eq!(p.highest(), looped.highest());
            // Subsequent ticks agree too: the timer state matches.
            for now in to..to + 2 * interval as u64 {
                prop_assert_eq!(p.tick(now), looped.tick(now));
                prop_assert_eq!(p.order(), looped.order());
            }
        }
    }
}
