//! The instruction fetch unit and per-slot instruction buffers
//! (§2.1.1).
//!
//! Each thread slot owns a buffer of `B = S x C` words. The (shared)
//! fetch unit refills one slot's buffer every `C` cycles in an
//! interleaved, round-robin fashion; a branch redirect preempts the
//! rotation ("that thread can preempt the fetching operation"). With
//! `private` fetch units (the §3.2 ablation) every slot has its own
//! unit and the rotation disappears.
//!
//! Buffers are modelled as word-count *credits*: the machine consumes
//! one credit per issued instruction; the instruction bytes themselves
//! come straight from the program image. Deliveries land at the start
//! of a cycle; after a redirect the pipeline must also re-cover the
//! decode stages, which the machine accounts for via
//! [`Delivery::redirect`].

use std::collections::VecDeque;

/// A refill or redirect completion, surfaced at the start of a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Delivery {
    pub slot: usize,
    /// True if this delivery answers a redirect (branch, fork, or
    /// thread start), meaning the decode pipeline was drained.
    pub redirect: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    at: u64,
    slot: usize,
    redirect: bool,
}

/// The fetch system: one shared unit, or one per slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct FetchSystem {
    c: u64,
    capacity: usize,
    private: bool,
    /// Earliest cycle each unit can begin a new service.
    unit_free: Vec<u64>,
    /// Slot currently being served by each unit, if any.
    serving: Vec<Option<usize>>,
    /// Pending redirect requests: (request cycle, slot), FIFO.
    redirects: VecDeque<(u64, usize)>,
    /// Scheduled deliveries, unordered (scanned per cycle).
    scheduled: Vec<Scheduled>,
    /// Per-slot buffer credits (words available to decode).
    credits: Vec<usize>,
    /// Per-slot: participates in round-robin refill.
    active: Vec<bool>,
    /// Per-slot: a redirect is pending or in flight, so round-robin
    /// refills are suppressed until it lands.
    awaiting_redirect: Vec<bool>,
    /// Round-robin pointer (shared unit only).
    rr: usize,
}

impl FetchSystem {
    pub(crate) fn new(slots: usize, c: u64, capacity: usize, private: bool) -> Self {
        FetchSystem {
            c,
            capacity,
            private,
            unit_free: vec![0; if private { slots } else { 1 }],
            serving: vec![None; if private { slots } else { 1 }],
            redirects: VecDeque::new(),
            scheduled: Vec::new(),
            credits: vec![0; slots],
            active: vec![false; slots],
            awaiting_redirect: vec![false; slots],
            rr: 0,
        }
    }

    /// Credits currently available to `slot`.
    pub(crate) fn credits(&self, slot: usize) -> usize {
        self.credits[slot]
    }

    /// Consumes one credit (an instruction entered decode).
    pub(crate) fn consume(&mut self, slot: usize) {
        debug_assert!(self.credits[slot] > 0);
        self.credits[slot] -= 1;
    }

    /// Marks a slot as having (or not having) a running thread; only
    /// active slots receive round-robin refills.
    pub(crate) fn set_active(&mut self, slot: usize, active: bool) {
        self.active[slot] = active;
        if !active {
            self.credits[slot] = 0;
            self.awaiting_redirect[slot] = false;
            self.redirects.retain(|&(_, s)| s != slot);
            self.scheduled.retain(|d| d.slot != slot);
            for unit in 0..self.unit_free.len() {
                if self.serving[unit] == Some(slot) {
                    self.serving[unit] = None;
                }
            }
        }
    }

    /// Requests a redirect for `slot` at cycle `now` (branch resolved,
    /// thread spawned, or context switched in). Flushes the buffer and
    /// preempts an in-flight fetch for the same slot (§2.1.1: a branch
    /// "can preempt the fetching operation").
    pub(crate) fn request_redirect(&mut self, slot: usize, now: u64) {
        self.credits[slot] = 0;
        // Drop any in-flight refill for this slot: its words are stale.
        self.scheduled.retain(|d| d.slot != slot);
        self.redirects.retain(|&(_, s)| s != slot);
        self.redirects.push_back((now, slot));
        self.awaiting_redirect[slot] = true;
        // Abort the unit mid-service if it is fetching for this slot.
        for unit in 0..self.unit_free.len() {
            if self.serving[unit] == Some(slot) && self.unit_free[unit] > now {
                self.unit_free[unit] = now + 1;
                self.serving[unit] = None;
            }
        }
    }

    /// Start-of-cycle: applies deliveries landing at `now`, appending
    /// them to `out` (a reused scratch buffer — see the machine's
    /// cycle loop).
    pub(crate) fn begin_cycle(&mut self, now: u64, out: &mut Vec<Delivery>) {
        let start = out.len();
        let mut i = 0;
        while i < self.scheduled.len() {
            if self.scheduled[i].at == now {
                let d = self.scheduled.swap_remove(i);
                self.credits[d.slot] = self.capacity;
                if d.redirect {
                    self.awaiting_redirect[d.slot] = false;
                }
                out.push(Delivery { slot: d.slot, redirect: d.redirect });
            } else {
                i += 1;
            }
        }
        // Deterministic order for the machine's bookkeeping. At most
        // one delivery lands per slot per cycle, so slot keys are
        // unique and an unstable sort is exact.
        out[start..].sort_unstable_by_key(|d| d.slot);
    }

    /// End-of-cycle: lets idle units begin their next service. A
    /// service started at cycle `now` occupies `now .. now+C` and its
    /// words become decodable at the start of cycle `now + C`.
    /// Redirect requests made *this* cycle become eligible next cycle
    /// (the fetch request goes out at the end of the branch's D1
    /// stage), which yields the paper's branch shadows exactly.
    pub(crate) fn end_cycle(&mut self, now: u64) {
        let units = self.unit_free.len();
        for unit in 0..units {
            if self.unit_free[unit] > now {
                continue; // mid-service
            }
            self.serving[unit] = None;
            let slot = if self.private {
                self.pick_for_private_unit(unit, now)
            } else {
                self.pick_for_shared_unit(now)
            };
            let Some((slot, redirect)) = slot else { continue };
            self.unit_free[unit] = now + self.c;
            self.serving[unit] = Some(slot);
            self.scheduled.push(Scheduled { at: now + self.c, slot, redirect });
        }
    }

    fn pick_for_private_unit(&mut self, unit: usize, now: u64) -> Option<(usize, bool)> {
        let slot = unit; // one unit per slot
        if let Some(pos) = self.redirects.iter().position(|&(t, s)| s == slot && t < now) {
            self.redirects.remove(pos);
            return Some((slot, true));
        }
        if self.active[slot]
            && !self.awaiting_redirect[slot]
            && self.credits[slot] < self.capacity
            && !self.scheduled.iter().any(|d| d.slot == slot)
        {
            return Some((slot, false));
        }
        None
    }

    /// Earliest cycle `>= from` at which the fetch system does
    /// anything at all: a scheduled delivery lands (`begin_cycle`) or
    /// an idle unit could begin a new service (`end_cycle`). Between
    /// `from` and the returned cycle the system is provably inert as
    /// long as nothing calls `consume`/`request_redirect`/`set_active`
    /// — exactly the event-wheel's situation, where no slot issues.
    /// `u64::MAX` means only an external request can wake it.
    pub(crate) fn next_activity(&self, from: u64) -> u64 {
        let mut next = u64::MAX;
        for d in &self.scheduled {
            next = next.min(d.at.max(from));
        }
        for unit in 0..self.unit_free.len() {
            let free_at = self.unit_free[unit].max(from);
            // A redirect requested at `t` becomes eligible at the end
            // of cycle `t + 1` (see `end_cycle`).
            for &(t, slot) in &self.redirects {
                if !self.private || slot == unit {
                    next = next.min(free_at.max(t + 1));
                }
            }
            // Round-robin refill eligibility is static while no
            // credits are consumed: the unit starts one as soon as it
            // is free.
            for slot in 0..self.credits.len() {
                if (!self.private || slot == unit)
                    && self.active[slot]
                    && !self.awaiting_redirect[slot]
                    && self.credits[slot] < self.capacity
                    && !self.scheduled.iter().any(|d| d.slot == slot)
                {
                    next = next.min(free_at);
                }
            }
        }
        next
    }

    /// Replays the fetch activity of `[t, target)` in one call — the
    /// event wheel's untraced fast path. Internal bookkeeping (service
    /// starts, refill deliveries to slots the caller is not watching)
    /// is applied directly, visiting only event cycles; the call
    /// returns at the first cycle with a delivery the caller must
    /// inspect — any redirect, or a refill to a slot in the `wake`
    /// bitmask — with that cycle's deliveries in `out` (`begin_cycle`
    /// applied, `end_cycle` not, exactly the state a per-cycle replay
    /// stopping there would leave). Returns `None` when the span
    /// completes without such a cycle; either way the final state is
    /// byte-identical to calling `begin_cycle`/`end_cycle` for every
    /// cycle up to the stop point.
    pub(crate) fn advance_span(
        &mut self,
        mut t: u64,
        target: u64,
        wake: u64,
        out: &mut Vec<Delivery>,
    ) -> Option<u64> {
        loop {
            // Earliest scheduled delivery, and earliest cycle a unit
            // could begin a new service (`end_cycle` semantics: unit
            // free, and a redirect past its request cycle or a needy
            // active slot to refill).
            let mut next_del = u64::MAX;
            for d in &self.scheduled {
                debug_assert!(d.at >= t, "delivery from the past left unapplied");
                next_del = next_del.min(d.at);
            }
            let mut next_start = u64::MAX;
            for unit in 0..self.unit_free.len() {
                let f = self.unit_free[unit].max(t);
                for &(rt, slot) in &self.redirects {
                    if !self.private || slot == unit {
                        next_start = next_start.min(f.max(rt + 1));
                    }
                }
                for slot in 0..self.credits.len() {
                    if (!self.private || slot == unit)
                        && self.active[slot]
                        && !self.awaiting_redirect[slot]
                        && self.credits[slot] < self.capacity
                        && !self.scheduled.iter().any(|d| d.slot == slot)
                    {
                        next_start = next_start.min(f);
                    }
                }
            }
            // The skipped cycles are provably inert for the fetch
            // system: cross-check against the per-cycle oracle.
            debug_assert_eq!(
                next_del.min(next_start),
                self.next_activity(t).max(t),
                "advance_span event computation diverged from next_activity"
            );
            if next_del < target && next_del <= next_start {
                // A delivery lands first (ties go to the delivery:
                // `begin_cycle` runs before `end_cycle` in a cycle).
                out.clear();
                self.begin_cycle(next_del, out);
                if out.iter().any(|d| d.redirect || d.slot >= 64 || (wake >> d.slot) & 1 == 1) {
                    // Units that went free on a skipped cycle never
                    // restarted (no eligible pick before this one).
                    for unit in 0..self.unit_free.len() {
                        if self.unit_free[unit] < next_del {
                            self.serving[unit] = None;
                        }
                    }
                    return Some(next_del);
                }
                self.end_cycle(next_del);
                t = next_del + 1;
            } else if next_start < target {
                self.end_cycle(next_start);
                t = next_start + 1;
            } else {
                for unit in 0..self.unit_free.len() {
                    if self.unit_free[unit] < target {
                        self.serving[unit] = None;
                    }
                }
                return None;
            }
        }
    }

    /// Canonical image of the fetch state with every absolute time
    /// rebased to `now` — two of these compare equal exactly when the
    /// two underlying systems behave identically from their respective
    /// `now`s onward. Times already in the past are clamped to their
    /// eligibility threshold (a unit free at cycle 3 and one free at
    /// cycle 7 are indistinguishable at cycle 40: both are "free
    /// now"); redirect request times are rebased to the cycle they
    /// become eligible (`t + 1`, see [`FetchSystem::end_cycle`]); the
    /// unordered `scheduled` list is sorted by slot (at most one entry
    /// per slot exists, so the order carries no behaviour).
    pub(crate) fn warp_rel(&self, now: u64) -> FetchSystem {
        let mut rel = self.clone();
        for f in &mut rel.unit_free {
            *f = f.saturating_sub(now);
        }
        for (t, _) in &mut rel.redirects {
            *t = (*t + 1).saturating_sub(now);
        }
        for d in &mut rel.scheduled {
            d.at = d.at.saturating_sub(now);
        }
        rel.scheduled.sort_unstable_by_key(|d| d.slot);
        rel
    }

    /// Shifts every absolute time forward by `delta` cycles — the
    /// loop-warp leap. Relative to the machine's equally shifted
    /// clock, behaviour is unchanged.
    pub(crate) fn warp_shift(&mut self, delta: u64) {
        for f in &mut self.unit_free {
            *f += delta;
        }
        for (t, _) in &mut self.redirects {
            *t += delta;
        }
        for d in &mut self.scheduled {
            d.at += delta;
        }
    }

    fn pick_for_shared_unit(&mut self, now: u64) -> Option<(usize, bool)> {
        // Redirects first (branch preemption), FIFO.
        if let Some(pos) = self.redirects.iter().position(|&(t, _)| t < now) {
            let (_, slot) = self.redirects.remove(pos).expect("position just found");
            return Some((slot, true));
        }
        // Round-robin refill over active, needy slots.
        let n = self.credits.len();
        for step in 0..n {
            let slot = (self.rr + step) % n;
            if self.active[slot]
                && !self.awaiting_redirect[slot]
                && self.credits[slot] < self.capacity
                && !self.scheduled.iter().any(|d| d.slot == slot)
            {
                self.rr = (slot + 1) % n;
                return Some((slot, false));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs the system forward one cycle, returning deliveries.
    fn cycle(fs: &mut FetchSystem, now: u64) -> Vec<Delivery> {
        let mut d = Vec::new();
        fs.begin_cycle(now, &mut d);
        fs.end_cycle(now);
        d
    }

    #[test]
    fn redirect_delivers_after_c_cycles() {
        // C = 2: request at cycle 0 -> service occupies 1..=2 ->
        // delivery at start of cycle 3.
        let mut fs = FetchSystem::new(1, 2, 2, false);
        fs.set_active(0, true);
        fs.request_redirect(0, 0);
        assert!(cycle(&mut fs, 0).is_empty());
        assert!(cycle(&mut fs, 1).is_empty());
        assert!(cycle(&mut fs, 2).is_empty());
        let d = cycle(&mut fs, 3);
        assert_eq!(d, vec![Delivery { slot: 0, redirect: true }]);
        assert_eq!(fs.credits(0), 2);
    }

    #[test]
    fn steady_state_refill_keeps_single_slot_fed() {
        let mut fs = FetchSystem::new(1, 2, 2, false);
        fs.set_active(0, true);
        fs.request_redirect(0, 0);
        let mut starved = 0;
        for now in 0..100u64 {
            fs.begin_cycle(now, &mut Vec::new());
            if now >= 3 {
                if fs.credits(0) == 0 {
                    starved += 1;
                } else {
                    fs.consume(0); // issue one instruction per cycle
                }
            }
            fs.end_cycle(now);
        }
        assert_eq!(starved, 0, "fetch unit should sustain one issue per cycle");
    }

    #[test]
    fn shared_unit_serializes_concurrent_redirects() {
        let mut fs = FetchSystem::new(2, 2, 4, false);
        fs.set_active(0, true);
        fs.set_active(1, true);
        fs.request_redirect(0, 0);
        fs.request_redirect(1, 0);
        let mut deliveries = Vec::new();
        for now in 0..8 {
            for d in cycle(&mut fs, now) {
                deliveries.push((now, d.slot));
            }
        }
        // Slot 0 served first (FIFO): lands at 3; slot 1 at 5.
        assert_eq!(deliveries, vec![(3, 0), (5, 1)]);
    }

    #[test]
    fn private_units_serve_redirects_in_parallel() {
        let mut fs = FetchSystem::new(2, 2, 4, true);
        fs.set_active(0, true);
        fs.set_active(1, true);
        fs.request_redirect(0, 0);
        fs.request_redirect(1, 0);
        let mut deliveries = Vec::new();
        for now in 0..6 {
            for d in cycle(&mut fs, now) {
                deliveries.push((now, d.slot));
            }
        }
        assert_eq!(deliveries, vec![(3, 0), (3, 1)]);
    }

    #[test]
    fn redirect_preempts_round_robin() {
        let mut fs = FetchSystem::new(2, 2, 4, false);
        fs.set_active(0, true);
        fs.set_active(1, true);
        // Both slots start empty; give slot 0 a refill first.
        cycle(&mut fs, 0); // starts refill for slot 0
        fs.request_redirect(1, 1); // slot 1 branches
        let mut got = Vec::new();
        for now in 1..8 {
            for d in cycle(&mut fs, now) {
                got.push((now, d.slot, d.redirect));
            }
        }
        // Slot 0's refill completes at 2, then the redirect wins the
        // unit over slot 0's next refill turn and lands at 4.
        assert_eq!(got[0], (2, 0, false));
        assert_eq!(got[1], (4, 1, true));
    }

    #[test]
    fn inactive_slots_are_not_refilled() {
        let mut fs = FetchSystem::new(2, 2, 2, false);
        fs.set_active(0, true);
        // Slot 1 inactive.
        for now in 0..20 {
            cycle(&mut fs, now);
        }
        assert_eq!(fs.credits(1), 0);
        assert_eq!(fs.credits(0), 2);
    }

    #[test]
    fn deactivation_cancels_pending_work() {
        let mut fs = FetchSystem::new(1, 2, 2, false);
        fs.set_active(0, true);
        fs.request_redirect(0, 0);
        fs.set_active(0, false);
        for now in 0..6 {
            assert!(cycle(&mut fs, now).is_empty());
        }
        assert_eq!(fs.credits(0), 0);
    }

    /// Reference for `next_activity`: clone the system and run it
    /// forward with no issue activity until it visibly does something
    /// (delivers words or mutates itself by starting a service).
    fn observed_next_activity(fs: &FetchSystem, from: u64, horizon: u64) -> u64 {
        let mut sim = fs.clone();
        for now in from..horizon {
            let mut d = Vec::new();
            sim.begin_cycle(now, &mut d);
            if !d.is_empty() {
                return now;
            }
            let before = sim.clone();
            sim.end_cycle(now);
            if sim != before {
                return now;
            }
        }
        u64::MAX
    }

    #[test]
    fn next_activity_matches_observed_behaviour() {
        // Sweep a few request histories over shared and private units
        // and check the prediction against brute-force simulation at
        // every point in time.
        for private in [false, true] {
            for history in 0u32..32 {
                let mut fs = FetchSystem::new(2, 2, 4, private);
                fs.set_active(0, true);
                fs.set_active(1, history & 1 == 0);
                if history & 2 != 0 {
                    fs.request_redirect(0, 0);
                }
                if history & 4 != 0 {
                    fs.request_redirect(1, 1);
                }
                for now in 0..(history >> 3) as u64 {
                    cycle(&mut fs, now);
                }
                let from = (history >> 3) as u64;
                assert_eq!(
                    fs.next_activity(from),
                    observed_next_activity(&fs, from, from + 64),
                    "private={private} history={history:#b} from={from}"
                );
            }
        }
    }

    #[test]
    fn next_activity_is_never_early() {
        // An idle, inactive system reports MAX: nothing will ever
        // happen without an external request.
        let fs = FetchSystem::new(2, 2, 4, false);
        assert_eq!(fs.next_activity(5), u64::MAX);
    }

    #[test]
    fn warp_shift_commutes_with_stepping() {
        // Shifting all times by D then running from now+D must behave
        // exactly like running from now — deliveries included — and
        // the rebased images must compare equal at every step.
        for private in [false, true] {
            let mut fs = FetchSystem::new(2, 2, 4, private);
            fs.set_active(0, true);
            fs.set_active(1, true);
            fs.request_redirect(0, 0);
            for now in 0..5 {
                cycle(&mut fs, now);
            }
            fs.request_redirect(1, 5);
            let mut shifted = fs.clone();
            const D: u64 = 1_000;
            shifted.warp_shift(D);
            for now in 5..60 {
                assert_eq!(fs.warp_rel(now), shifted.warp_rel(now + D), "private={private}");
                let a = cycle(&mut fs, now);
                let b = cycle(&mut shifted, now + D);
                assert_eq!(a, b, "private={private} now={now}");
            }
        }
    }

    #[test]
    fn warp_rel_clamps_stale_times() {
        // Two systems whose only difference is *how far in the past*
        // their units went free rebase to the same image.
        let mut a = FetchSystem::new(1, 2, 2, false);
        a.set_active(0, true);
        let mut b = a.clone();
        a.unit_free[0] = 3;
        b.unit_free[0] = 7;
        assert_eq!(a.warp_rel(40), b.warp_rel(40));
        // A genuinely future free time is not clamped away.
        b.unit_free[0] = 42;
        assert_ne!(a.warp_rel(40), b.warp_rel(40));
    }

    #[test]
    fn redirect_flushes_credits_and_inflight_refill() {
        let mut fs = FetchSystem::new(1, 2, 2, false);
        fs.set_active(0, true);
        fs.request_redirect(0, 0);
        for now in 0..4 {
            cycle(&mut fs, now);
        }
        assert_eq!(fs.credits(0), 2);
        fs.request_redirect(0, 4);
        assert_eq!(fs.credits(0), 0);
        // The old buffered words never come back; only the redirect
        // delivery refills.
        let mut redirects = 0;
        for now in 4..10 {
            for d in cycle(&mut fs, now) {
                assert!(d.redirect);
                redirects += 1;
            }
        }
        assert_eq!(redirects, 1);
    }
}
