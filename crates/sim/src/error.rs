//! Machine-level errors.

use std::fmt;

use hirata_isa::ProgramError;
use hirata_mem::MemError;

use crate::config::ConfigError;

/// A fatal simulation error (machine check).
///
/// These indicate either an invalid configuration/program or a bug in
/// the simulated software (running off the end of the program,
/// touching unmapped memory, misusing queue registers, forking into a
/// busy slot). They are never silently swallowed: [`crate::Machine::run`]
/// stops and reports the faulting slot and instruction address.
#[derive(Debug, Clone, PartialEq)]
pub enum MachineError {
    /// The configuration failed validation.
    Config(ConfigError),
    /// The program failed validation.
    Program(ProgramError),
    /// The program has no instructions.
    EmptyProgram,
    /// A data access faulted.
    Mem {
        /// Thread slot that executed the access.
        slot: usize,
        /// Instruction address of the access.
        pc: u32,
        /// The underlying fault.
        source: MemError,
    },
    /// A thread ran past the end of instruction memory.
    PcOutOfRange {
        /// Thread slot.
        slot: usize,
        /// The out-of-range instruction address.
        pc: u32,
    },
    /// `fastfork` found another thread already occupying a slot.
    ForkBusy {
        /// The occupied slot.
        slot: usize,
        /// Address of the `fastfork`.
        pc: u32,
    },
    /// `fastfork` or `add_thread` found no free context frame.
    NoFreeContext {
        /// Address of the `fastfork` (or `u32::MAX` for `add_thread`).
        pc: u32,
    },
    /// Illegal use of a mapped queue register (reading the write-mapped
    /// register, writing the read-mapped register, or mapping both
    /// directions onto one register).
    QueueMisuse {
        /// Thread slot.
        slot: usize,
        /// Instruction address.
        pc: u32,
        /// What went wrong.
        detail: String,
    },
    /// A decode-unit instruction reached a functional unit — the
    /// program encodes an instruction mix the pipeline cannot route.
    DecodeAtFu {
        /// Thread slot.
        slot: usize,
        /// Instruction address.
        pc: u32,
        /// Rendering of the offending instruction.
        inst: String,
    },
    /// The run exceeded `max_cycles` — a livelock/deadlock backstop.
    Watchdog {
        /// The cycle limit that was hit.
        cycles: u64,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Config(e) => e.fmt(f),
            MachineError::Program(e) => e.fmt(f),
            MachineError::EmptyProgram => write!(f, "program has no instructions"),
            MachineError::Mem { slot, pc, source } => {
                write!(f, "memory fault at slot {slot}, @{pc}: {source}")
            }
            MachineError::PcOutOfRange { slot, pc } => {
                write!(f, "slot {slot} ran past the end of the program (@{pc})")
            }
            MachineError::ForkBusy { slot, pc } => {
                write!(f, "fastfork at @{pc} found slot {slot} already running a thread")
            }
            MachineError::NoFreeContext { pc } => {
                write!(f, "no free context frame (fastfork/add_thread at @{pc})")
            }
            MachineError::QueueMisuse { slot, pc, detail } => {
                write!(f, "queue register misuse at slot {slot}, @{pc}: {detail}")
            }
            MachineError::DecodeAtFu { slot, pc, inst } => {
                write!(f, "decode-unit instruction `{inst}` reached a functional unit at slot {slot}, @{pc}")
            }
            MachineError::Watchdog { cycles } => {
                write!(f, "watchdog: run exceeded {cycles} cycles (deadlock or runaway loop)")
            }
        }
    }
}

impl std::error::Error for MachineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MachineError::Config(e) => Some(e),
            MachineError::Program(e) => Some(e),
            MachineError::Mem { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<ConfigError> for MachineError {
    fn from(e: ConfigError) -> Self {
        MachineError::Config(e)
    }
}

impl From<ProgramError> for MachineError {
    fn from(e: ProgramError) -> Self {
        MachineError::Program(e)
    }
}
