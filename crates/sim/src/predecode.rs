//! One-time lowering of a [`Program`] into a dense predecoded
//! instruction store.
//!
//! The cycle loop interrogates every window entry several times per
//! cycle — functional-unit class, source and destination registers,
//! memory/priority classification, latencies. Recomputing those from
//! the [`Inst`] enum on every query keeps the simulator correct but
//! slow; [`PredecodedProgram`] computes them once at load time into a
//! flat [`DecodedInst`] array indexed by instruction address, and
//! machines share the store through an [`std::sync::Arc`] instead of
//! cloning the whole program (labels included) per machine.
//!
//! The lowering is pure derivation: every field of a [`DecodedInst`]
//! is a function of its [`Inst`]. Debug builds re-check that
//! invariant on the execution path (see
//! [`crate::exec`]'s `debug_assert_fresh_decode`), and the
//! `predecode` integration test sweeps every instruction form.

use std::sync::Arc;

use hirata_isa::{DataSegment, FuClass, Inst, Latency, Program, Reg};

use crate::error::MachineError;

/// Classification flags precomputed from an instruction (bit set in
/// [`DecodedInst::flags`]).
pub mod flags {
    /// Memory operation (load or store).
    pub const IS_MEM: u8 = 1 << 0;
    /// Store (subset of `IS_MEM`).
    pub const IS_STORE: u8 = 1 << 1;
    /// Interlocks until the issuing slot holds the highest priority
    /// (`chgpri`, `killothers`, gated stores).
    pub const NEEDS_HIGHEST: u8 = 1 << 2;
    /// Redirects control flow (branches and jumps).
    pub const IS_CONTROL: u8 = 1 << 3;
    /// Executed entirely inside the decode unit (no functional-unit
    /// class).
    pub const DECODE_UNIT: u8 = 1 << 4;
}

/// One instruction with every hot-loop-relevant property resolved at
/// load time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodedInst {
    /// The architectural instruction (still needed for execution
    /// semantics and tracing).
    pub inst: Inst,
    /// Functional-unit class, or `None` for decode-unit instructions.
    pub fu: Option<FuClass>,
    /// Source registers read (at most two).
    pub srcs: [Option<Reg>; 2],
    /// Destination register written, if any.
    pub dest: Option<Reg>,
    /// Dense-index bitmask of `srcs` (see [`Reg::dense_index`]).
    pub src_mask: u64,
    /// Dense-index bitmask of `dest`.
    pub dest_mask: u64,
    /// Issue/result latency per Table 1.
    pub latency: Latency,
    /// Classification bits from [`flags`].
    pub flags: u8,
}

impl DecodedInst {
    /// Lowers one instruction. The result is a pure function of
    /// `inst`; see the module docs.
    pub fn of(inst: Inst) -> Self {
        let srcs = inst.srcs();
        let dest = inst.dest();
        let mut src_mask = 0u64;
        for r in srcs.into_iter().flatten() {
            src_mask |= 1u64 << r.dense_index();
        }
        let dest_mask = dest.map_or(0, |d| 1u64 << d.dense_index());
        let fu = inst.fu_class();
        let mut fl = 0u8;
        if inst.is_mem() {
            fl |= flags::IS_MEM;
        }
        if matches!(inst, Inst::Store { .. }) {
            fl |= flags::IS_STORE;
        }
        if inst.needs_highest_priority() {
            fl |= flags::NEEDS_HIGHEST;
        }
        if inst.is_control() {
            fl |= flags::IS_CONTROL;
        }
        if fu.is_none() {
            fl |= flags::DECODE_UNIT;
        }
        DecodedInst {
            inst,
            fu,
            srcs,
            dest,
            src_mask,
            dest_mask,
            latency: inst.latency(),
            flags: fl,
        }
    }

    /// Memory operation?
    #[inline]
    pub fn is_mem(&self) -> bool {
        self.flags & flags::IS_MEM != 0
    }

    /// Store?
    #[inline]
    pub fn is_store(&self) -> bool {
        self.flags & flags::IS_STORE != 0
    }

    /// Priority-gated store (`swp`/`sfp`)?
    #[inline]
    pub fn is_gated_store(&self) -> bool {
        const GATED: u8 = flags::IS_STORE | flags::NEEDS_HIGHEST;
        self.flags & GATED == GATED
    }

    /// Interlocks until the issuing slot holds the highest priority?
    #[inline]
    pub fn needs_highest_priority(&self) -> bool {
        self.flags & flags::NEEDS_HIGHEST != 0
    }

    /// Executed inside the decode unit (no functional-unit class)?
    #[inline]
    pub fn is_decode_unit(&self) -> bool {
        self.flags & flags::DECODE_UNIT != 0
    }

    /// Issue latency (cycles the functional unit is held).
    #[inline]
    pub fn issue_latency(&self) -> u32 {
        self.latency.issue
    }
}

/// A program lowered once into dense [`DecodedInst`] entries, shared
/// between machines by `Arc` (see [`crate::Machine::from_predecoded`]).
///
/// Label metadata is dropped at this point — the machine resolves
/// nothing at run time — which is also why sharing the predecoded form
/// beats cloning the [`Program`] per machine.
#[derive(Debug, Clone, PartialEq)]
pub struct PredecodedProgram {
    insts: Box<[DecodedInst]>,
    data: Vec<DataSegment>,
    entry: u32,
}

impl PredecodedProgram {
    /// Validates and lowers `program`.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError`] if the program fails
    /// [`Program::validate`] or has no instructions.
    pub fn new(program: &Program) -> Result<Self, MachineError> {
        program.validate()?;
        if program.is_empty() {
            return Err(MachineError::EmptyProgram);
        }
        Ok(PredecodedProgram {
            insts: program.insts.iter().map(|&i| DecodedInst::of(i)).collect(),
            data: program.data.clone(),
            entry: program.entry,
        })
    }

    /// Convenience: lower and wrap in an [`Arc`] for sharing across
    /// machines.
    ///
    /// # Errors
    ///
    /// As for [`PredecodedProgram::new`].
    pub fn shared(program: &Program) -> Result<Arc<Self>, MachineError> {
        Self::new(program).map(Arc::new)
    }

    /// The decoded instruction store, indexed by instruction address.
    #[inline]
    pub fn insts(&self) -> &[DecodedInst] {
        &self.insts
    }

    /// Number of instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the program has no instructions (never the case for a
    /// constructed `PredecodedProgram`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Initial data segments.
    pub fn data(&self) -> &[DataSegment] {
        &self.data
    }

    /// Entry address.
    pub fn entry(&self) -> u32 {
        self.entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirata_asm::assemble;
    use hirata_isa::{GReg, GSrc, IntOp};

    #[test]
    fn lowering_matches_accessors() {
        let inst =
            Inst::IntOp { op: IntOp::Mul, rd: GReg(1), rs: GReg(2), src2: GSrc::Reg(GReg(3)) };
        let d = DecodedInst::of(inst);
        assert_eq!(d.fu, inst.fu_class());
        assert_eq!(d.srcs, inst.srcs());
        assert_eq!(d.dest, inst.dest());
        assert_eq!(d.latency, inst.latency());
        assert_eq!(d.src_mask, (1 << 2) | (1 << 3));
        assert_eq!(d.dest_mask, 1 << 1);
        assert!(!d.is_mem() && !d.needs_highest_priority() && !d.is_decode_unit());
    }

    #[test]
    fn gated_store_flags() {
        let d = DecodedInst::of(Inst::Store {
            src: Reg::G(GReg(1)),
            base: GReg(2),
            off: 0,
            gated: true,
        });
        assert!(d.is_mem() && d.is_store() && d.is_gated_store() && d.needs_highest_priority());
        let plain = DecodedInst::of(Inst::Store {
            src: Reg::G(GReg(1)),
            base: GReg(2),
            off: 0,
            gated: false,
        });
        assert!(plain.is_store() && !plain.is_gated_store());
    }

    #[test]
    fn program_lowering_preserves_data_and_entry() {
        let prog = assemble("li r1, #1\nsw r1, 0(r0)\nhalt").unwrap();
        let pre = PredecodedProgram::new(&prog).unwrap();
        assert_eq!(pre.len(), prog.insts.len());
        assert_eq!(pre.entry(), prog.entry);
        assert_eq!(pre.data(), prog.data.as_slice());
        for (d, &i) in pre.insts().iter().zip(&prog.insts) {
            assert_eq!(d.inst, i);
        }
    }

    #[test]
    fn empty_program_is_rejected() {
        let prog = Program::default();
        assert!(matches!(PredecodedProgram::new(&prog), Err(MachineError::EmptyProgram)));
    }
}
