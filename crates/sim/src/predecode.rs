//! One-time lowering of a [`Program`] into a dense predecoded
//! instruction store.
//!
//! The cycle loop interrogates every window entry several times per
//! cycle — functional-unit class, source and destination registers,
//! memory/priority classification, latencies. Recomputing those from
//! the [`Inst`] enum on every query keeps the simulator correct but
//! slow; [`PredecodedProgram`] computes them once at load time into a
//! flat [`DecodedInst`] array indexed by instruction address, and
//! machines share the store through an [`std::sync::Arc`] instead of
//! cloning the whole program (labels included) per machine.
//!
//! The lowering is pure derivation: every field of a [`DecodedInst`]
//! is a function of its [`Inst`]. Debug builds re-check that
//! invariant on the execution path (see
//! [`crate::exec`]'s `debug_assert_fresh_decode`), and the
//! `predecode` integration test sweeps every instruction form.

use std::sync::Arc;

use hirata_isa::{
    BranchCond, DataSegment, FpBinOp, FpUnOp, FuClass, GSrc, Inst, IntOp, Latency, Program, Reg,
};

use crate::error::MachineError;

/// Classification flags precomputed from an instruction (bit set in
/// [`DecodedInst::flags`]).
pub mod flags {
    /// Memory operation (load or store).
    pub const IS_MEM: u8 = 1 << 0;
    /// Store (subset of `IS_MEM`).
    pub const IS_STORE: u8 = 1 << 1;
    /// Interlocks until the issuing slot holds the highest priority
    /// (`chgpri`, `killothers`, gated stores).
    pub const NEEDS_HIGHEST: u8 = 1 << 2;
    /// Redirects control flow (branches and jumps).
    pub const IS_CONTROL: u8 = 1 << 3;
    /// Executed entirely inside the decode unit (no functional-unit
    /// class).
    pub const DECODE_UNIT: u8 = 1 << 4;
    /// Safe for the loop-warp engine (`machine::warp`): the
    /// architectural effect is an *affine constant-coefficient* map on
    /// the integer register file and store stream (`add`/`sub`/`li`/
    /// `lpid`/`nlp`/stores, plus the effect-free `nop` and the
    /// decode-unit branches and direct jumps whose outcomes warp
    /// verifies separately). Everything else — loads, multiplies,
    /// logic/shift ops, floating point, indirect jumps, thread and
    /// queue control — is excluded: two equal consecutive period
    /// deltas through a non-affine op do *not* prove the third period
    /// repeats them, so warp must never leap across one.
    pub const WARP_SAFE: u8 = 1 << 5;
}

/// Dense execution code of one µop: every distinct functional-unit
/// operation gets its own code, so execute-time dispatch is a single
/// indexed load from the [`crate::exec`] handler table instead of the
/// nested `Inst`/`IntOp`/`FpBinOp`/[`BranchCond`] matches it replaced.
///
/// Like every other [`DecodedInst`] field, the code is a pure function
/// of the instruction (see [`ExecOp::of`]); debug builds cross-check
/// each dispatch against a fresh enum-match evaluation
/// (`exec::fu_action`), and the `uop` integration test sweeps every
/// instruction form plus seeded random programs through both paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ExecOp {
    /// Executed inside the decode unit — never dispatched to a
    /// functional unit (the machine surfaces an attempt as
    /// [`MachineError::DecodeAtFu`]).
    DecodeUnit = 0,
    /// `add` — wrapping integer add.
    IntAdd,
    /// `sub` — wrapping integer subtract.
    IntSub,
    /// `and` — bitwise and.
    IntAnd,
    /// `or` — bitwise or.
    IntOr,
    /// `xor` — bitwise exclusive or.
    IntXor,
    /// `slt` — set if less than (signed).
    IntSlt,
    /// `sle` — set if less or equal (signed).
    IntSle,
    /// `seq` — set if equal.
    IntSeq,
    /// `sne` — set if not equal.
    IntSne,
    /// `sll` — shift left logical (shift amount masked to 6 bits).
    IntSll,
    /// `srl` — shift right logical.
    IntSrl,
    /// `sra` — shift right arithmetic.
    IntSra,
    /// `mul` — wrapping integer multiply.
    IntMul,
    /// `div` — wrapping integer divide (0 on a zero divisor).
    IntDiv,
    /// `rem` — wrapping integer remainder (0 on a zero divisor).
    IntRem,
    /// `li` / `lif` — write the pre-extracted immediate bits.
    LoadImm,
    /// `fadd`.
    FAdd,
    /// `fsub`.
    FSub,
    /// `fmul`.
    FMul,
    /// `fdiv` (IEEE semantics; division by zero gives an infinity).
    FDiv,
    /// `fabs`.
    FAbs,
    /// `fneg`.
    FNeg,
    /// `fmov`.
    FMov,
    /// `fcmp.eq` — floating compare, writes 0/1 to an integer register.
    FCmpEq,
    /// `fcmp.ne`.
    FCmpNe,
    /// `fcmp.lt`.
    FCmpLt,
    /// `fcmp.le`.
    FCmpLe,
    /// `fcmp.gt`.
    FCmpGt,
    /// `fcmp.ge`.
    FCmpGe,
    /// `cvtif` — integer to float.
    CvtIF,
    /// `cvtfi` — float to integer (truncating).
    CvtFI,
    /// `lpid` — read the logical-processor id.
    Lpid,
    /// `nlp` — read the number of logical processors.
    Nlp,
    /// `lw` / `lf` — load from `vals[0] + imm`.
    Load,
    /// `sw` / `sf` (and gated variants) — store `vals[0]` to
    /// `vals[1] + imm`.
    Store,
}

/// Number of [`ExecOp`] codes (the handler-table length).
pub const EXEC_OP_COUNT: usize = ExecOp::Store as usize + 1;

impl ExecOp {
    /// Lowers one instruction to its µop code — a pure derivation,
    /// like the rest of the predecode pass.
    pub fn of(inst: &Inst) -> Self {
        match *inst {
            Inst::IntOp { op, .. } => match op {
                IntOp::Add => ExecOp::IntAdd,
                IntOp::Sub => ExecOp::IntSub,
                IntOp::And => ExecOp::IntAnd,
                IntOp::Or => ExecOp::IntOr,
                IntOp::Xor => ExecOp::IntXor,
                IntOp::Slt => ExecOp::IntSlt,
                IntOp::Sle => ExecOp::IntSle,
                IntOp::Seq => ExecOp::IntSeq,
                IntOp::Sne => ExecOp::IntSne,
                IntOp::Sll => ExecOp::IntSll,
                IntOp::Srl => ExecOp::IntSrl,
                IntOp::Sra => ExecOp::IntSra,
                IntOp::Mul => ExecOp::IntMul,
                IntOp::Div => ExecOp::IntDiv,
                IntOp::Rem => ExecOp::IntRem,
            },
            Inst::Li { .. } | Inst::LiF { .. } => ExecOp::LoadImm,
            Inst::FpBin { op, .. } => match op {
                FpBinOp::FAdd => ExecOp::FAdd,
                FpBinOp::FSub => ExecOp::FSub,
                FpBinOp::FMul => ExecOp::FMul,
                FpBinOp::FDiv => ExecOp::FDiv,
            },
            Inst::FpUn { op, .. } => match op {
                FpUnOp::FAbs => ExecOp::FAbs,
                FpUnOp::FNeg => ExecOp::FNeg,
                FpUnOp::FMov => ExecOp::FMov,
            },
            Inst::FpCmp { cond, .. } => match cond {
                BranchCond::Eq => ExecOp::FCmpEq,
                BranchCond::Ne => ExecOp::FCmpNe,
                BranchCond::Lt => ExecOp::FCmpLt,
                BranchCond::Le => ExecOp::FCmpLe,
                BranchCond::Gt => ExecOp::FCmpGt,
                BranchCond::Ge => ExecOp::FCmpGe,
            },
            Inst::CvtIF { .. } => ExecOp::CvtIF,
            Inst::CvtFI { .. } => ExecOp::CvtFI,
            Inst::Lpid { .. } => ExecOp::Lpid,
            Inst::Nlp { .. } => ExecOp::Nlp,
            Inst::Load { .. } => ExecOp::Load,
            Inst::Store { .. } => ExecOp::Store,
            _ => ExecOp::DecodeUnit,
        }
    }
}

/// Operand-capture plan entry: take the pre-folded immediate
/// ([`DecodedInst::imm`]) for this operand slot.
pub const CAP_IMM: u8 = 0xFE;
/// Operand-capture plan entry: the slot is unused (captures 0).
pub const CAP_NONE: u8 = 0xFF;

/// One instruction with every hot-loop-relevant property resolved at
/// load time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodedInst {
    /// The architectural instruction (still needed for execution
    /// semantics and tracing).
    pub inst: Inst,
    /// Functional-unit class, or `None` for decode-unit instructions.
    pub fu: Option<FuClass>,
    /// Source registers read (at most two).
    pub srcs: [Option<Reg>; 2],
    /// Destination register written, if any.
    pub dest: Option<Reg>,
    /// Dense-index bitmask of `srcs` (see [`Reg::dense_index`]).
    pub src_mask: u64,
    /// Dense-index bitmask of `dest`.
    pub dest_mask: u64,
    /// Issue/result latency per Table 1.
    pub latency: Latency,
    /// Classification bits from [`flags`].
    pub flags: u8,
    /// Dense execution code for the [`crate::exec`] handler table.
    pub exec_op: ExecOp,
    /// Operand-capture plan: per operand slot, either a register-bank
    /// dense index (0..63), [`CAP_IMM`] for the pre-folded immediate,
    /// or [`CAP_NONE`] for an unused slot — so issue-time capture is
    /// two indexed loads with zero enum matches (queue-mapped contexts
    /// fall back to the exact resolver, which has pop side effects).
    pub cap: [u8; 2],
    /// Pre-extracted immediate bits: the `li` value / `lif` bit
    /// pattern, the load/store displacement, or the folded second
    /// operand of an immediate-form `IntOp`/`Branch` (the uses never
    /// overlap, so one field serves all three).
    pub imm: u64,
}

impl DecodedInst {
    /// Lowers one instruction. The result is a pure function of
    /// `inst`; see the module docs.
    pub fn of(inst: Inst) -> Self {
        let srcs = inst.srcs();
        let dest = inst.dest();
        let mut src_mask = 0u64;
        for r in srcs.into_iter().flatten() {
            src_mask |= 1u64 << r.dense_index();
        }
        let dest_mask = dest.map_or(0, |d| 1u64 << d.dense_index());
        let fu = inst.fu_class();
        let mut fl = 0u8;
        if inst.is_mem() {
            fl |= flags::IS_MEM;
        }
        if matches!(inst, Inst::Store { .. }) {
            fl |= flags::IS_STORE;
        }
        if inst.needs_highest_priority() {
            fl |= flags::NEEDS_HIGHEST;
        }
        if inst.is_control() {
            fl |= flags::IS_CONTROL;
        }
        if fu.is_none() {
            fl |= flags::DECODE_UNIT;
        }
        let warp_safe = matches!(
            inst,
            Inst::Nop
                | Inst::Jump { .. }
                | Inst::Branch { .. }
                | Inst::Store { .. }
                | Inst::Li { .. }
                | Inst::Lpid { .. }
                | Inst::Nlp { .. }
                | Inst::IntOp { op: IntOp::Add | IntOp::Sub, .. }
        );
        if warp_safe {
            fl |= flags::WARP_SAFE;
        }
        let mut cap = [CAP_NONE; 2];
        for (slot, r) in srcs.iter().enumerate() {
            if let Some(r) = r {
                cap[slot] = r.dense_index() as u8;
            }
        }
        // The immediate second operand occupies the register-free slot
        // (mirroring `exec::resolve_operands`); `li`/`lif` and memory
        // displacements are consumed by the handlers instead.
        let imm = match inst {
            Inst::IntOp { src2: GSrc::Imm(i), .. } | Inst::Branch { src2: GSrc::Imm(i), .. } => {
                cap[1] = CAP_IMM;
                i as u64
            }
            Inst::Li { imm, .. } => imm as u64,
            Inst::LiF { imm, .. } => imm.to_bits(),
            Inst::Load { off, .. } | Inst::Store { off, .. } => off as u64,
            _ => 0,
        };
        DecodedInst {
            inst,
            fu,
            srcs,
            dest,
            src_mask,
            dest_mask,
            latency: inst.latency(),
            flags: fl,
            exec_op: ExecOp::of(&inst),
            cap,
            imm,
        }
    }

    /// Memory operation?
    #[inline]
    pub fn is_mem(&self) -> bool {
        self.flags & flags::IS_MEM != 0
    }

    /// Store?
    #[inline]
    pub fn is_store(&self) -> bool {
        self.flags & flags::IS_STORE != 0
    }

    /// Priority-gated store (`swp`/`sfp`)?
    #[inline]
    pub fn is_gated_store(&self) -> bool {
        const GATED: u8 = flags::IS_STORE | flags::NEEDS_HIGHEST;
        self.flags & GATED == GATED
    }

    /// Interlocks until the issuing slot holds the highest priority?
    #[inline]
    pub fn needs_highest_priority(&self) -> bool {
        self.flags & flags::NEEDS_HIGHEST != 0
    }

    /// Executed inside the decode unit (no functional-unit class)?
    #[inline]
    pub fn is_decode_unit(&self) -> bool {
        self.flags & flags::DECODE_UNIT != 0
    }

    /// Issue latency (cycles the functional unit is held).
    #[inline]
    pub fn issue_latency(&self) -> u32 {
        self.latency.issue
    }

    /// Affine, replayable effect — safe for the loop-warp engine?
    /// (See [`flags::WARP_SAFE`].)
    #[inline]
    pub fn is_warp_safe(&self) -> bool {
        self.flags & flags::WARP_SAFE != 0
    }
}

/// A program lowered once into dense [`DecodedInst`] entries, shared
/// between machines by `Arc` (see [`crate::Machine::from_predecoded`]).
///
/// Label metadata is dropped at this point — the machine resolves
/// nothing at run time — which is also why sharing the predecoded form
/// beats cloning the [`Program`] per machine.
#[derive(Debug, Clone, PartialEq)]
pub struct PredecodedProgram {
    insts: Box<[DecodedInst]>,
    data: Vec<DataSegment>,
    entry: u32,
}

impl PredecodedProgram {
    /// Validates and lowers `program`.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError`] if the program fails
    /// [`Program::validate`] or has no instructions.
    pub fn new(program: &Program) -> Result<Self, MachineError> {
        program.validate()?;
        if program.is_empty() {
            return Err(MachineError::EmptyProgram);
        }
        Ok(PredecodedProgram {
            insts: program.insts.iter().map(|&i| DecodedInst::of(i)).collect(),
            data: program.data.clone(),
            entry: program.entry,
        })
    }

    /// Convenience: lower and wrap in an [`Arc`] for sharing across
    /// machines.
    ///
    /// # Errors
    ///
    /// As for [`PredecodedProgram::new`].
    pub fn shared(program: &Program) -> Result<Arc<Self>, MachineError> {
        Self::new(program).map(Arc::new)
    }

    /// The decoded instruction store, indexed by instruction address.
    #[inline]
    pub fn insts(&self) -> &[DecodedInst] {
        &self.insts
    }

    /// Number of instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the program has no instructions (never the case for a
    /// constructed `PredecodedProgram`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Initial data segments.
    pub fn data(&self) -> &[DataSegment] {
        &self.data
    }

    /// Entry address.
    pub fn entry(&self) -> u32 {
        self.entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirata_asm::assemble;
    use hirata_isa::{GReg, GSrc, IntOp};

    #[test]
    fn lowering_matches_accessors() {
        let inst =
            Inst::IntOp { op: IntOp::Mul, rd: GReg(1), rs: GReg(2), src2: GSrc::Reg(GReg(3)) };
        let d = DecodedInst::of(inst);
        assert_eq!(d.fu, inst.fu_class());
        assert_eq!(d.srcs, inst.srcs());
        assert_eq!(d.dest, inst.dest());
        assert_eq!(d.latency, inst.latency());
        assert_eq!(d.src_mask, (1 << 2) | (1 << 3));
        assert_eq!(d.dest_mask, 1 << 1);
        assert!(!d.is_mem() && !d.needs_highest_priority() && !d.is_decode_unit());
    }

    #[test]
    fn gated_store_flags() {
        let d = DecodedInst::of(Inst::Store {
            src: Reg::G(GReg(1)),
            base: GReg(2),
            off: 0,
            gated: true,
        });
        assert!(d.is_mem() && d.is_store() && d.is_gated_store() && d.needs_highest_priority());
        let plain = DecodedInst::of(Inst::Store {
            src: Reg::G(GReg(1)),
            base: GReg(2),
            off: 0,
            gated: false,
        });
        assert!(plain.is_store() && !plain.is_gated_store());
    }

    #[test]
    fn capture_plans_fold_immediates_and_offsets() {
        // Register form: both slots are dense register indices.
        let rr = DecodedInst::of(Inst::IntOp {
            op: IntOp::Add,
            rd: GReg(1),
            rs: GReg(2),
            src2: GSrc::Reg(GReg(3)),
        });
        assert_eq!(rr.cap, [2, 3]);
        assert_eq!(rr.exec_op, ExecOp::IntAdd);

        // Immediate form: slot 1 takes the pre-folded immediate.
        let ri = DecodedInst::of(Inst::IntOp {
            op: IntOp::Sub,
            rd: GReg(1),
            rs: GReg(2),
            src2: GSrc::Imm(-3),
        });
        assert_eq!(ri.cap, [2, CAP_IMM]);
        assert_eq!(ri.imm as i64, -3);

        // li/lif: no sources, handler consumes the immediate bits.
        let li = DecodedInst::of(Inst::Li { rd: GReg(4), imm: -9 });
        assert_eq!(li.cap, [CAP_NONE, CAP_NONE]);
        assert_eq!((li.exec_op, li.imm as i64), (ExecOp::LoadImm, -9));
        let lif = DecodedInst::of(Inst::LiF { fd: hirata_isa::FReg(1), imm: 2.5 });
        assert_eq!((lif.exec_op, lif.imm), (ExecOp::LoadImm, 2.5f64.to_bits()));

        // Memory displacement rides in `imm`; base registers in `cap`.
        let lw = DecodedInst::of(Inst::Load { dst: Reg::G(GReg(5)), base: GReg(6), off: -4 });
        assert_eq!((lw.exec_op, lw.cap[0], lw.imm as i64), (ExecOp::Load, 6, -4));
        let sw = DecodedInst::of(Inst::Store {
            src: Reg::G(GReg(7)),
            base: GReg(8),
            off: 12,
            gated: false,
        });
        assert_eq!((sw.exec_op, sw.cap, sw.imm as i64), (ExecOp::Store, [7, 8], 12));

        // Decode-unit instructions carry the sentinel code.
        assert_eq!(DecodedInst::of(Inst::Halt).exec_op, ExecOp::DecodeUnit);
        assert_eq!(DecodedInst::of(Inst::Jump { target: 3 }).exec_op, ExecOp::DecodeUnit);
    }

    #[test]
    fn warp_safety_classification() {
        use hirata_isa::BranchCond;
        let safe = [
            Inst::Nop,
            Inst::Jump { target: 0 },
            Inst::Branch { cond: BranchCond::Ne, rs: GReg(1), src2: GSrc::Imm(0), target: 0 },
            Inst::Li { rd: GReg(1), imm: 7 },
            Inst::Lpid { rd: GReg(1) },
            Inst::Nlp { rd: GReg(1) },
            Inst::IntOp { op: IntOp::Add, rd: GReg(1), rs: GReg(2), src2: GSrc::Imm(1) },
            Inst::IntOp { op: IntOp::Sub, rd: GReg(1), rs: GReg(2), src2: GSrc::Reg(GReg(3)) },
            Inst::Store { src: Reg::G(GReg(1)), base: GReg(2), off: 0, gated: false },
            Inst::Store { src: Reg::G(GReg(1)), base: GReg(2), off: 0, gated: true },
        ];
        for inst in safe {
            assert!(DecodedInst::of(inst).is_warp_safe(), "{inst}");
        }
        let unsafe_ = [
            Inst::IntOp { op: IntOp::Mul, rd: GReg(1), rs: GReg(2), src2: GSrc::Imm(3) },
            Inst::IntOp { op: IntOp::And, rd: GReg(1), rs: GReg(2), src2: GSrc::Imm(3) },
            Inst::IntOp { op: IntOp::Sll, rd: GReg(1), rs: GReg(2), src2: GSrc::Imm(3) },
            Inst::Load { dst: Reg::G(GReg(1)), base: GReg(2), off: 0 },
            Inst::LiF { fd: hirata_isa::FReg(1), imm: 1.0 },
            Inst::JumpReg { rs: GReg(1) },
            Inst::Halt,
            Inst::FastFork,
            Inst::ChgPri,
            Inst::KillOthers,
            Inst::QUnmap,
            Inst::Drain,
        ];
        for inst in unsafe_ {
            assert!(!DecodedInst::of(inst).is_warp_safe(), "{inst}");
        }
    }

    #[test]
    fn program_lowering_preserves_data_and_entry() {
        let prog = assemble("li r1, #1\nsw r1, 0(r0)\nhalt").unwrap();
        let pre = PredecodedProgram::new(&prog).unwrap();
        assert_eq!(pre.len(), prog.insts.len());
        assert_eq!(pre.entry(), prog.entry);
        assert_eq!(pre.data(), prog.data.as_slice());
        for (d, &i) in pre.insts().iter().zip(&prog.insts) {
            assert_eq!(d.inst, i);
        }
    }

    #[test]
    fn empty_program_is_rejected() {
        let prog = Program::default();
        assert!(matches!(PredecodedProgram::new(&prog), Err(MachineError::EmptyProgram)));
    }
}
