//! Run statistics: cycle counts, per-unit utilization (the paper's
//! `U = N x L / T` metric from §1), and an issue-stall breakdown.

use std::fmt;

use hirata_isa::{FuClass, FU_CLASS_COUNT};

/// Why a thread slot failed to issue on a given cycle.
///
/// Exactly one reason is recorded per slot per non-issuing cycle (the
/// reason blocking the oldest instruction in the window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallReason {
    /// No thread bound to the slot.
    NoThread,
    /// Instruction buffer empty / waiting on the fetch unit.
    Fetch,
    /// Decode pipeline refilling after a redirect reached the slot —
    /// the tail of the paper's branch shadow (the head, waiting for
    /// the redirected fetch itself, counts as [`StallReason::Fetch`]).
    /// Also covers the context-switch rebind penalty, which flushes
    /// the decode stage the same way.
    BranchShadow,
    /// A source register was not ready (RAW) or the destination was
    /// still busy (WAW).
    Data,
    /// The standby station for the target functional unit was occupied
    /// — or, without standby stations, a previously issued instruction
    /// was still waiting to be selected.
    FuConflict,
    /// Waiting to become the highest-priority logical processor
    /// (`chgpri`, `killothers`, gated stores).
    Priority,
    /// The incoming queue register was empty.
    QueueEmpty,
    /// The outgoing queue register was full.
    QueueFull,
}

impl StallReason {
    /// All reasons, in display order.
    pub const ALL: [StallReason; STALL_REASON_COUNT] = [
        StallReason::NoThread,
        StallReason::Fetch,
        StallReason::BranchShadow,
        StallReason::Data,
        StallReason::FuConflict,
        StallReason::Priority,
        StallReason::QueueEmpty,
        StallReason::QueueFull,
    ];

    /// Position in [`StallReason::ALL`] and in raw counter arrays.
    pub fn index(self) -> usize {
        match self {
            StallReason::NoThread => 0,
            StallReason::Fetch => 1,
            StallReason::BranchShadow => 2,
            StallReason::Data => 3,
            StallReason::FuConflict => 4,
            StallReason::Priority => 5,
            StallReason::QueueEmpty => 6,
            StallReason::QueueFull => 7,
        }
    }

    /// Human-readable label.
    pub fn name(self) -> &'static str {
        match self {
            StallReason::NoThread => "no-thread",
            StallReason::Fetch => "fetch",
            StallReason::BranchShadow => "branch-shadow",
            StallReason::Data => "data-dep",
            StallReason::FuConflict => "fu-conflict",
            StallReason::Priority => "priority",
            StallReason::QueueEmpty => "queue-empty",
            StallReason::QueueFull => "queue-full",
        }
    }
}

/// Number of distinct [`StallReason`] variants.
pub const STALL_REASON_COUNT: usize = 8;

impl fmt::Display for StallReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Slot-cycle counts per stall reason.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StallBreakdown {
    counts: [u64; STALL_REASON_COUNT],
}

impl StallBreakdown {
    /// Records one stalled slot-cycle.
    pub(crate) fn record(&mut self, reason: StallReason) {
        self.counts[reason.index()] += 1;
    }

    /// Records `n` stalled slot-cycles at once (event-wheel jumps).
    pub(crate) fn record_n(&mut self, reason: StallReason, n: u64) {
        self.counts[reason.index()] += n;
    }

    /// Stalled slot-cycles attributed to `reason`.
    pub fn count(&self, reason: StallReason) -> u64 {
        self.counts[reason.index()]
    }

    /// Total stalled slot-cycles.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Raw per-reason counters, indexed like [`StallReason::ALL`].
    pub fn counts(&self) -> [u64; STALL_REASON_COUNT] {
        self.counts
    }

    /// Rebuilds a breakdown from raw counters (the inverse of
    /// [`StallBreakdown::counts`], used when deserializing cached runs).
    pub fn from_counts(counts: [u64; STALL_REASON_COUNT]) -> Self {
        StallBreakdown { counts }
    }
}

/// Slot-cycles of stalling per reason within one window of
/// [`STALL_WINDOW_CYCLES`] machine cycles. Window `w` covers cycles
/// `[w * STALL_WINDOW_CYCLES, (w + 1) * STALL_WINDOW_CYCLES)`.
pub type StallWindow = [u64; STALL_REASON_COUNT];

/// Width of one stall-attribution window in machine cycles.
pub const STALL_WINDOW_CYCLES: u64 = 1_000;

/// Statistics of one completed (or in-progress) run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunStats {
    /// Total machine cycles elapsed.
    pub cycles: u64,
    /// Instructions issued (the machine never speculates, so issued
    /// equals committed).
    pub instructions: u64,
    /// Instructions issued per thread slot.
    pub per_slot_issued: Vec<u64>,
    /// Functional-unit invocations per class (the paper's `N`).
    pub fu_invocations: [u64; FU_CLASS_COUNT],
    /// Busy unit-cycles per class (`N x issue latency`, summed over
    /// instances of the class).
    pub fu_busy: [u64; FU_CLASS_COUNT],
    /// Number of unit instances per class.
    pub fu_instances: [u64; FU_CLASS_COUNT],
    /// Issue-stall breakdown in slot-cycles.
    pub stalls: StallBreakdown,
    /// The same breakdown bucketed by [`STALL_WINDOW_CYCLES`]-cycle
    /// windows, in window order. Summing every window reproduces
    /// `stalls` exactly.
    pub stall_windows: Vec<StallWindow>,
    /// Context switches performed (concurrent multithreading).
    pub context_switches: u64,
    /// Threads killed by `killothers`.
    pub threads_killed: u64,
    /// Priority rotations performed by the schedule units.
    pub rotations: u64,
}

impl RunStats {
    /// Utilization of one functional-unit class as defined in §1:
    /// `U = N x L / (T x instances) x 100` percent, 0 when no cycles
    /// have elapsed.
    pub fn utilization(&self, class: FuClass) -> f64 {
        let i = class.index();
        let denom = self.cycles * self.fu_instances[i];
        if denom == 0 {
            0.0
        } else {
            self.fu_busy[i] as f64 / denom as f64 * 100.0
        }
    }

    /// The busiest class by utilization, with its utilization.
    pub fn busiest_unit(&self) -> (FuClass, f64) {
        FuClass::ALL
            .into_iter()
            .map(|c| (c, self.utilization(c)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("FuClass::ALL is non-empty")
    }

    /// Issued instructions per cycle across the whole machine.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Records one stalled slot-cycle at machine time `now`, updating
    /// both the aggregate breakdown and the per-window attribution.
    pub(crate) fn record_stall(&mut self, reason: StallReason, now: u64) {
        self.stalls.record(reason);
        let window = (now / STALL_WINDOW_CYCLES) as usize;
        self.ensure_windows(window);
        self.stall_windows[window][reason.index()] += 1;
    }

    /// Grows the per-window table through `last`, reserving in
    /// power-of-two window blocks (floor 64) so the growth points are
    /// sparse: a fast-forward jump covering thousands of cycles stays
    /// allocation-free in steady state instead of hitting the vector's
    /// own amortized doubling mid-measurement.
    fn ensure_windows(&mut self, last: usize) {
        if self.stall_windows.len() <= last {
            let cap = (last + 1).max(64).next_power_of_two();
            self.stall_windows.reserve_exact(cap - self.stall_windows.len());
            self.stall_windows.resize(last + 1, [0; STALL_REASON_COUNT]);
        }
    }

    /// Records one stalled slot-cycle for every machine cycle in the
    /// half-open span `[from, to)` — the batched form of
    /// [`RunStats::record_stall`] used when the event wheel skips a
    /// run of provably stalled cycles. Equivalent to calling
    /// `record_stall(reason, t)` for each `t` in the span, including
    /// the per-window attribution.
    pub(crate) fn record_stall_span(&mut self, reason: StallReason, from: u64, to: u64) {
        if from >= to {
            return;
        }
        self.stalls.record_n(reason, to - from);
        let last_window = ((to - 1) / STALL_WINDOW_CYCLES) as usize;
        self.ensure_windows(last_window);
        let mut t = from;
        while t < to {
            let w = t / STALL_WINDOW_CYCLES;
            let end = ((w + 1) * STALL_WINDOW_CYCLES).min(to);
            self.stall_windows[w as usize][reason.index()] += end - t;
            t = end;
        }
    }

    /// Records `count` stalled slot-cycles at the arithmetic
    /// progression of machine times `first, first + stride, ...,
    /// first + (count - 1) * stride` — the loop-warp form of
    /// [`RunStats::record_stall`]: one recorded stall event inside a
    /// detected period recurs once per leapt period, `stride` cycles
    /// apart. Equivalent to calling `record_stall(reason, t)` at each
    /// progression point, including the per-window attribution, but
    /// walks windows instead of cycles.
    pub(crate) fn record_stall_train(
        &mut self,
        reason: StallReason,
        first: u64,
        stride: u64,
        count: u64,
    ) {
        if count == 0 {
            return;
        }
        debug_assert!(stride > 0);
        self.stalls.record_n(reason, count);
        let last = first + (count - 1) * stride;
        self.ensure_windows((last / STALL_WINDOW_CYCLES) as usize);
        let idx = reason.index();
        // Progression points in window `w` are those `i` with
        // `w * W <= first + i * stride < (w + 1) * W`; count them per
        // window by dividing the progression, not by stepping cycles.
        let mut i = 0u64;
        while i < count {
            let t = first + i * stride;
            let w = t / STALL_WINDOW_CYCLES;
            let end = (w + 1) * STALL_WINDOW_CYCLES;
            // Points remaining in this window: ceil((end - t) / stride),
            // capped by the points remaining overall.
            let in_window = ((end - t).div_ceil(stride)).min(count - i);
            self.stall_windows[w as usize][idx] += in_window;
            i += in_window;
        }
    }

    /// Formats a utilization table resembling the analyses in §3.2,
    /// followed by the per-window stall-attribution table when any
    /// stalls were recorded.
    pub fn utilization_report(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ =
            writeln!(out, "{:<12} {:>6} {:>12} {:>10}", "unit", "inst", "invocations", "util %");
        for class in FuClass::ALL {
            let i = class.index();
            if self.fu_instances[i] == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<12} {:>6} {:>12} {:>10.1}",
                class.name(),
                self.fu_instances[i],
                self.fu_invocations[i],
                self.utilization(class)
            );
        }
        if self.stalls.total() > 0 && !self.stall_windows.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "stall attribution per {}-cycle window (slot-cycles)",
                STALL_WINDOW_CYCLES
            );
            let _ = write!(out, "{:<10}", "window");
            for reason in StallReason::ALL {
                let _ = write!(out, " {:>13}", reason.name());
            }
            let _ = writeln!(out);
            // Long runs collapse the tail into one `rest` row so the
            // report stays readable at any cycle count.
            const SHOWN: usize = 12;
            for (w, counts) in self.stall_windows.iter().enumerate().take(SHOWN) {
                let _ = write!(out, "{:<10}", w as u64 * STALL_WINDOW_CYCLES);
                for count in counts {
                    let _ = write!(out, " {:>13}", count);
                }
                let _ = writeln!(out);
            }
            if self.stall_windows.len() > SHOWN {
                let mut rest = [0u64; STALL_REASON_COUNT];
                for counts in &self.stall_windows[SHOWN..] {
                    for (acc, count) in rest.iter_mut().zip(counts) {
                        *acc += count;
                    }
                }
                let _ =
                    write!(out, "{:<10}", format!("rest(+{})", self.stall_windows.len() - SHOWN));
                for count in rest {
                    let _ = write!(out, " {:>13}", count);
                }
                let _ = writeln!(out);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_formula_matches_section_1() {
        let mut stats = RunStats { cycles: 100, ..RunStats::default() };
        let i = FuClass::LoadStore.index();
        stats.fu_instances[i] = 1;
        stats.fu_invocations[i] = 30;
        stats.fu_busy[i] = 60; // N x L = 30 x 2
        assert!((stats.utilization(FuClass::LoadStore) - 60.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_with_two_instances_halves() {
        let mut stats = RunStats { cycles: 100, ..RunStats::default() };
        let i = FuClass::LoadStore.index();
        stats.fu_instances[i] = 2;
        stats.fu_busy[i] = 60;
        assert!((stats.utilization(FuClass::LoadStore) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn busiest_unit_picks_maximum() {
        let mut stats = RunStats { cycles: 10, ..RunStats::default() };
        for class in FuClass::ALL {
            stats.fu_instances[class.index()] = 1;
        }
        stats.fu_busy[FuClass::FpAdd.index()] = 9;
        stats.fu_busy[FuClass::IntAlu.index()] = 4;
        let (class, util) = stats.busiest_unit();
        assert_eq!(class, FuClass::FpAdd);
        assert!((util - 90.0).abs() < 1e-12);
    }

    #[test]
    fn stall_breakdown_counts() {
        let mut b = StallBreakdown::default();
        b.record(StallReason::Data);
        b.record(StallReason::Data);
        b.record(StallReason::Fetch);
        assert_eq!(b.count(StallReason::Data), 2);
        assert_eq!(b.count(StallReason::Fetch), 1);
        assert_eq!(b.count(StallReason::Priority), 0);
        assert_eq!(b.total(), 3);
    }

    #[test]
    fn record_stall_buckets_by_window() {
        let mut stats = RunStats::default();
        stats.record_stall(StallReason::Data, 0);
        stats.record_stall(StallReason::Data, STALL_WINDOW_CYCLES - 1);
        stats.record_stall(StallReason::Fetch, STALL_WINDOW_CYCLES);
        stats.record_stall(StallReason::QueueFull, 5 * STALL_WINDOW_CYCLES + 3);
        assert_eq!(stats.stall_windows.len(), 6);
        assert_eq!(stats.stall_windows[0][StallReason::Data.index()], 2);
        assert_eq!(stats.stall_windows[1][StallReason::Fetch.index()], 1);
        assert_eq!(stats.stall_windows[5][StallReason::QueueFull.index()], 1);
        // The windows sum back to the aggregate breakdown.
        let mut sum = [0u64; STALL_REASON_COUNT];
        for w in &stats.stall_windows {
            for (acc, c) in sum.iter_mut().zip(w) {
                *acc += c;
            }
        }
        assert_eq!(sum, stats.stalls.counts());
    }

    #[test]
    fn record_stall_span_equals_repeated_record_stall() {
        // Spans crossing zero, one, and several window boundaries.
        let w = STALL_WINDOW_CYCLES;
        for (from, to) in
            [(0, 0), (3, 7), (0, w), (w - 1, w + 1), (w / 2, 3 * w + 17), (5 * w, 5 * w + 1)]
        {
            let mut spanned = RunStats::default();
            spanned.record_stall_span(StallReason::QueueEmpty, from, to);
            let mut looped = RunStats::default();
            for t in from..to {
                looped.record_stall(StallReason::QueueEmpty, t);
            }
            assert_eq!(spanned, looped, "span [{from}, {to})");
        }
    }

    #[test]
    fn record_stall_train_equals_repeated_record_stall() {
        let w = STALL_WINDOW_CYCLES;
        // (first, stride, count): strides below, at, and above the
        // window width; trains crossing zero, one, and many windows.
        for (first, stride, count) in [
            (0, 1, 0),
            (0, 1, 1),
            (3, 7, 5),
            (w - 1, 1, 3),
            (w / 2, w, 4),
            (17, w + 3, 6),
            (0, 3 * w, 3),
            (2 * w - 2, 2, 2 * w),
        ] {
            let mut trained = RunStats::default();
            trained.record_stall_train(StallReason::FuConflict, first, stride, count);
            let mut looped = RunStats::default();
            for i in 0..count {
                looped.record_stall(StallReason::FuConflict, first + i * stride);
            }
            assert_eq!(trained, looped, "train ({first}, {stride}, {count})");
        }
    }

    #[test]
    fn report_appends_window_table_only_when_stalled() {
        let mut stats = RunStats { cycles: 10, ..RunStats::default() };
        stats.fu_instances[FuClass::IntAlu.index()] = 1;
        assert!(!stats.utilization_report().contains("stall attribution"));
        stats.record_stall(StallReason::BranchShadow, 4);
        let report = stats.utilization_report();
        assert!(report.contains("stall attribution per 1000-cycle window"));
        assert!(report.contains("branch-shadow"));
    }

    #[test]
    fn report_collapses_window_tail() {
        let mut stats = RunStats { cycles: 10, ..RunStats::default() };
        for w in 0..20 {
            stats.record_stall(StallReason::Data, w * STALL_WINDOW_CYCLES);
        }
        let report = stats.utilization_report();
        assert!(report.contains("rest(+8)"));
    }

    #[test]
    fn empty_stats_are_well_behaved() {
        let stats = RunStats::default();
        assert_eq!(stats.ipc(), 0.0);
        assert_eq!(stats.utilization(FuClass::IntAlu), 0.0);
        let _ = stats.utilization_report();
    }

    #[test]
    fn report_lists_present_units() {
        let mut stats = RunStats { cycles: 10, ..RunStats::default() };
        stats.fu_instances[FuClass::IntAlu.index()] = 1;
        let report = stats.utilization_report();
        assert!(report.contains("int-alu"));
        assert!(!report.contains("fp-div"));
    }
}
