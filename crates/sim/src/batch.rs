//! Batched round-robin stepping of many machines.
//!
//! The paper's pipeline absorbs many concurrent instruction streams;
//! the serving analogue is one worker thread absorbing many concurrent
//! simulations. A [`MachineBatch`] holds independently-configured
//! [`Machine`]s — cheap to mass-construct thanks to the `Arc`-shared
//! predecoded instruction store ([`PredecodedProgram::shared`]) — and
//! steps each of them a bounded stride of cycles per round, so every
//! resident simulation makes steady progress regardless of how many
//! are in flight.
//!
//! Lanes are identified by stable insertion ids, so new machines can
//! join while earlier ones retire (the `hirata serve` daemon feeds
//! lanes from many client requests into one batch). A lane that
//! panics mid-step is captured as [`LaneError::Panicked`] and removed;
//! its siblings keep stepping.
//!
//! Batched stepping is observationally equivalent to running each
//! machine to completion on its own: cycle counts and statistics are
//! byte-identical (enforced by `tests/batch.rs`).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use hirata_isa::Program;

use crate::error::MachineError;
use crate::machine::Machine;
use crate::predecode::PredecodedProgram;
use crate::Config;

/// Default cycles each lane advances per [`MachineBatch::step_round`].
///
/// Large enough that per-round bookkeeping is negligible against
/// simulation work, small enough that a batch of tens of machines
/// visits every lane several times per wall-clock millisecond.
pub const DEFAULT_STRIDE: u64 = 4096;

/// Why a lane stopped without completing.
#[derive(Debug)]
pub enum LaneError {
    /// The machine raised a machine check.
    Machine(MachineError),
    /// The machine panicked mid-step (a simulator bug); the lane was
    /// dropped and its siblings kept running.
    Panicked(String),
}

impl std::fmt::Display for LaneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaneError::Machine(e) => write!(f, "{e}"),
            LaneError::Panicked(msg) => write!(f, "lane panicked: {msg}"),
        }
    }
}

impl std::error::Error for LaneError {}

/// The result of one finished lane: the completed machine (stats and
/// memory intact) or the error that stopped it.
pub type LaneResult = Result<Box<Machine>, LaneError>;

struct Lane {
    id: usize,
    machine: Box<Machine>,
}

/// A set of machines stepped round-robin. See the module docs.
#[derive(Default)]
pub struct MachineBatch {
    lanes: Vec<Lane>,
    next_id: usize,
    finished: Vec<(usize, LaneResult)>,
}

impl MachineBatch {
    /// An empty batch.
    pub fn new() -> Self {
        MachineBatch::default()
    }

    /// Mass-constructs one machine per configuration over a single
    /// program, predecoding it once and sharing the instruction store.
    ///
    /// # Errors
    ///
    /// Returns the first construction error (invalid configuration or
    /// program); no machines are inserted in that case.
    pub fn from_configs(
        program: &Program,
        configs: impl IntoIterator<Item = Config>,
    ) -> Result<Self, MachineError> {
        let shared = PredecodedProgram::shared(program)?;
        let mut batch = MachineBatch::new();
        for config in configs {
            batch.insert(Machine::from_predecoded(config, Arc::clone(&shared))?);
        }
        Ok(batch)
    }

    /// Adds a machine; returns its stable lane id.
    pub fn insert(&mut self, machine: Machine) -> usize {
        let id = self.next_id;
        self.next_id += 1;
        self.lanes.push(Lane { id, machine: Box::new(machine) });
        id
    }

    /// Machines still running.
    pub fn live(&self) -> usize {
        self.lanes.len()
    }

    /// True when no lane is running (finished lanes may still await
    /// [`MachineBatch::drain_finished`]).
    pub fn is_idle(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Removes a still-running lane (e.g. on a client timeout).
    /// Returns its machine, or `None` if the lane already finished or
    /// never existed.
    pub fn remove(&mut self, id: usize) -> Option<Box<Machine>> {
        let at = self.lanes.iter().position(|lane| lane.id == id)?;
        Some(self.lanes.remove(at).machine)
    }

    /// Aggregate loop-warp counters over every resident machine — the
    /// live lanes plus finished lanes not yet drained. Lanes with the
    /// warp engine disabled contribute zeros, so the aggregate is
    /// meaningful for mixed-configuration batches (e.g. the serve
    /// daemon reporting how much simulated time the fleet leapt).
    pub fn warp_stats(&self) -> crate::WarpStats {
        let mut total = crate::WarpStats::default();
        for lane in &self.lanes {
            total.merge(&lane.machine.warp_stats());
        }
        for (_, result) in &self.finished {
            if let Ok(machine) = result {
                total.merge(&machine.warp_stats());
            }
        }
        total
    }

    /// Steps every live lane up to `stride` cycles (or to completion /
    /// error / panic, whichever comes first), then returns the number
    /// of lanes still live. Finished lanes move to the internal queue
    /// until collected with [`MachineBatch::drain_finished`].
    pub fn step_round(&mut self, stride: u64) -> usize {
        let mut keep: Vec<Lane> = Vec::with_capacity(self.lanes.len());
        for mut lane in self.lanes.drain(..) {
            let outcome = catch_unwind(AssertUnwindSafe(|| step_lane(&mut lane.machine, stride)));
            match outcome {
                Ok(Ok(false)) => keep.push(lane),
                Ok(Ok(true)) => self.finished.push((lane.id, Ok(lane.machine))),
                Ok(Err(e)) => self.finished.push((lane.id, Err(LaneError::Machine(e)))),
                Err(payload) => {
                    // The machine's invariants may be torn mid-cycle;
                    // drop it with the lane.
                    self.finished.push((lane.id, Err(LaneError::Panicked(panic_text(&*payload)))));
                }
            }
        }
        self.lanes = keep;
        self.lanes.len()
    }

    /// Takes the lanes that finished since the last drain, as
    /// `(lane id, result)` pairs in completion order.
    pub fn drain_finished(&mut self) -> Vec<(usize, LaneResult)> {
        std::mem::take(&mut self.finished)
    }

    /// Runs every lane to completion and returns results indexed by
    /// lane id (for batches built with [`MachineBatch::from_configs`],
    /// ids are 0..n in configuration order).
    pub fn run_all(mut self, stride: u64) -> Vec<LaneResult> {
        while self.step_round(stride) > 0 {}
        let mut done = self.drain_finished();
        done.sort_by_key(|(id, _)| *id);
        done.into_iter().map(|(_, result)| result).collect()
    }
}

/// Steps one machine up to `stride` cycles; `Ok(true)` means done.
///
/// The stride is measured in simulated cycles, not `step` calls: an
/// event-wheel jump can advance many cycles in one call, and counting
/// calls would let a stalled-but-jumping lane race arbitrarily far
/// ahead of its siblings within a round. Every `step` advances at
/// least one cycle, so the loop is bounded.
///
/// A lane whose ready frontier empties mid-round yields the rest of
/// its stride: every slot is provably stalled, the event wheel has
/// already jumped whatever span it could prove past, and the steps
/// that remain are pure stall replay — better spent on siblings with
/// live work. Pure scheduling, not semantics: each machine's cycles
/// and statistics are independent of where its rounds end.
fn step_lane(machine: &mut Machine, stride: u64) -> Result<bool, MachineError> {
    // `run_span` hoists the trace-sink dispatch out of the loop, so an
    // untraced lane steps the sink-free monomorphized kernel
    // throughout its round.
    machine.run_span(stride)
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}
