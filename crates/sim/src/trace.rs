//! Structured per-cycle event tracing.
//!
//! The machine drives an optional [`TraceSink`] with one [`TraceEvent`]
//! per micro-architectural occurrence: fetch deliveries, issues, stalls
//! (with the blocking instruction's PC), standby-station parks,
//! FU-arbitration wins and losses (with the competing slots), result
//! writebacks, queue-register pushes/pops, priority rotations, thread
//! binds, and context switches. Tracing is zero-cost when disabled:
//! every emission site is guarded by an `Option` check and events are
//! only constructed when a sink is attached.
//!
//! Three sinks ship with the simulator:
//!
//! * [`RingSink`] — a bounded in-memory ring, the backbone of the test
//!   harness (keeps the last N events for post-mortem dumps);
//! * [`ChromeSink`] — records everything and renders Chrome
//!   `trace_event` JSON loadable in `chrome://tracing` or Perfetto,
//!   with one track per thread slot and one per functional unit;
//! * [`TextSink`] — a compact line-per-event text log for the CLI.
//!
//! Sinks use a shared-handle pattern: cloning a sink yields a second
//! handle onto the same buffer, so a caller can hand one clone to the
//! machine (boxed) and keep the other to inspect events after the run.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::rc::Rc;

use hirata_isa::{FuClass, FuConfig, Reg};

use crate::stats::StallReason;

/// A set of thread-slot indices packed into one 64-bit mask, so
/// arbitration events carry their competitor/winner sets without heap
/// allocation on the trace hot path. Slot indices must be below 64 —
/// far above any configuration the simulator accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SlotSet(u64);

impl SlotSet {
    /// The empty set.
    pub const EMPTY: SlotSet = SlotSet(0);

    /// Adds `slot` to the set.
    pub fn insert(&mut self, slot: usize) {
        debug_assert!(slot < 64, "slot index fits the mask");
        self.0 |= 1 << slot;
    }

    /// Removes `slot` from the set.
    pub fn remove(&mut self, slot: usize) {
        debug_assert!(slot < 64, "slot index fits the mask");
        self.0 &= !(1u64 << slot);
    }

    /// The set minus `slot` (a winner excluded from its own
    /// competitor list).
    #[must_use]
    pub fn without(self, slot: usize) -> SlotSet {
        SlotSet(self.0 & !(1u64 << slot))
    }

    /// True when `slot` is in the set.
    pub fn contains(self, slot: usize) -> bool {
        slot < 64 && self.0 & (1 << slot) != 0
    }

    /// True when the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of slots in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Ascending iterator over the member slot indices.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        (0..u64::BITS as usize).filter(move |&s| self.0 & (1 << s) != 0)
    }

    /// Iterator over the member slots starting at `start` and wrapping
    /// modulo `slots` — the rotating-priority visit order, since the
    /// priority vector is always a left-rotation of `0..slots` (the
    /// `any_rotation_interleaving_is_a_left_rotation` property). Every
    /// member must lie below `slots`; cost is one rotate plus a
    /// find-first-set per member, so sparse sets visit only their
    /// members rather than scanning every slot.
    pub fn iter_from(self, start: usize, slots: usize) -> impl Iterator<Item = usize> {
        debug_assert!(slots <= 64 && (start < slots || self.0 == 0), "start within the slot range");
        let mask = if slots >= 64 { u64::MAX } else { (1u64 << slots) - 1 };
        debug_assert_eq!(self.0 & !mask, 0, "members within the slot range");
        let bits = self.0 & mask;
        let mut rot =
            if start == 0 { bits } else { ((bits >> start) | (bits << (slots - start))) & mask };
        std::iter::from_fn(move || {
            if rot == 0 {
                return None;
            }
            let i = rot.trailing_zeros() as usize;
            rot &= rot - 1;
            let s = i + start;
            Some(if s >= slots { s - slots } else { s })
        })
    }
}

impl FromIterator<usize> for SlotSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut set = SlotSet::EMPTY;
        for s in iter {
            set.insert(s);
        }
        set
    }
}

/// One structured machine event. Every variant carries the cycle it
/// occurred on; slot-scoped variants carry the thread slot. The type
/// is `Copy` — no variant owns heap data — so sinks can retain events
/// at a flat per-event cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A fetch packet arrived at the slot's instruction buffer.
    Fetch {
        /// Cycle of delivery.
        cycle: u64,
        /// Receiving thread slot.
        slot: usize,
        /// True when the packet answers a redirect (branch, jump, or
        /// rebind) rather than sequential streaming.
        redirect: bool,
    },
    /// An instruction issued from the slot's decode window.
    Issue {
        /// Issue cycle (the S stage).
        cycle: u64,
        /// Issuing thread slot.
        slot: usize,
        /// Context frame the thread runs in.
        ctx: usize,
        /// Instruction address.
        pc: u32,
    },
    /// The slot failed to issue anything this cycle. Exactly one stall
    /// event is emitted per non-issuing slot per cycle, attributing the
    /// cycle to the reason blocking the oldest instruction.
    Stall {
        /// Stalled cycle.
        cycle: u64,
        /// Stalled thread slot.
        slot: usize,
        /// Attributed reason.
        reason: StallReason,
        /// Address of the blocking instruction, when one exists (a
        /// slot with no thread has none).
        pc: Option<u32>,
    },
    /// A freshly issued instruction entered a standby station and did
    /// not start execution this cycle (the station's front runner gets
    /// a [`TraceEvent::FuLoss`] instead).
    Park {
        /// Cycle the instruction parked.
        cycle: u64,
        /// Owning thread slot.
        slot: usize,
        /// Functional-unit class it waits for.
        class: FuClass,
        /// Instruction address.
        pc: u32,
    },
    /// An instruction won FU arbitration and started execution.
    FuWin {
        /// Selection cycle.
        cycle: u64,
        /// Winning thread slot.
        slot: usize,
        /// Functional-unit class.
        class: FuClass,
        /// Unit instance within the class.
        instance: usize,
        /// Instruction address.
        pc: u32,
        /// Cycles the unit stays busy issuing this instruction.
        busy: u64,
        /// Other slots that competed for this class this cycle.
        competitors: SlotSet,
    },
    /// The slot's oldest waiting instruction for a class competed and
    /// lost this cycle.
    FuLoss {
        /// Arbitration cycle.
        cycle: u64,
        /// Losing thread slot.
        slot: usize,
        /// Functional-unit class.
        class: FuClass,
        /// Instruction address.
        pc: u32,
        /// True when the loss was a priority gate (§2.3.3) rather than
        /// unit exhaustion.
        gated: bool,
        /// Slots that won this class this cycle.
        winners: SlotSet,
    },
    /// A functional unit wrote its result to the register bank.
    Writeback {
        /// Cycle the write was initiated.
        cycle: u64,
        /// Owning thread slot.
        slot: usize,
        /// Context frame written.
        ctx: usize,
        /// Producing instruction's address.
        pc: u32,
        /// Destination register.
        dest: Reg,
        /// Cycle the value becomes readable.
        avail: u64,
    },
    /// A value entered a queue-register link.
    QueuePush {
        /// Cycle of the push.
        cycle: u64,
        /// Producing thread slot.
        slot: usize,
        /// Ring link written.
        link: usize,
        /// Cycle the value becomes readable at the consumer.
        avail: u64,
        /// Link occupancy after the push.
        depth: usize,
    },
    /// A value left a queue-register link (consumed by an issue).
    QueuePop {
        /// Cycle of the pop.
        cycle: u64,
        /// Consuming thread slot.
        slot: usize,
        /// Ring link read.
        link: usize,
        /// Link occupancy after the pop.
        depth: usize,
    },
    /// The schedule units rotated the slot priorities.
    Rotation {
        /// Rotation cycle.
        cycle: u64,
        /// What triggered it.
        kind: RotationKind,
        /// Highest-priority slot after the rotation.
        highest: usize,
    },
    /// A ready context was bound to a free thread slot.
    ThreadBind {
        /// Bind cycle.
        cycle: u64,
        /// Receiving thread slot.
        slot: usize,
        /// Bound context frame.
        ctx: usize,
        /// Resume address.
        pc: u32,
    },
    /// A data-absence trap switched the thread out (§2.1.3).
    ContextSwitch {
        /// Trap cycle.
        cycle: u64,
        /// Vacated thread slot.
        slot: usize,
        /// Switched-out context frame.
        ctx: usize,
        /// Cycle the remote access completes.
        resume_at: u64,
    },
}

/// What triggered a priority rotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RotationKind {
    /// The periodic rotation interval elapsed.
    Implicit,
    /// An issued `chgpri` took effect.
    Explicit,
    /// The schedule units skipped past an empty slot holding the
    /// highest priority.
    Forced,
}

impl RotationKind {
    fn name(self) -> &'static str {
        match self {
            RotationKind::Implicit => "implicit",
            RotationKind::Explicit => "explicit",
            RotationKind::Forced => "forced",
        }
    }
}

impl TraceEvent {
    /// Cycle the event occurred on.
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::Fetch { cycle, .. }
            | TraceEvent::Issue { cycle, .. }
            | TraceEvent::Stall { cycle, .. }
            | TraceEvent::Park { cycle, .. }
            | TraceEvent::FuWin { cycle, .. }
            | TraceEvent::FuLoss { cycle, .. }
            | TraceEvent::Writeback { cycle, .. }
            | TraceEvent::QueuePush { cycle, .. }
            | TraceEvent::QueuePop { cycle, .. }
            | TraceEvent::Rotation { cycle, .. }
            | TraceEvent::ThreadBind { cycle, .. }
            | TraceEvent::ContextSwitch { cycle, .. } => cycle,
        }
    }

    /// Thread slot the event concerns, when slot-scoped (rotations are
    /// machine-global).
    pub fn slot(&self) -> Option<usize> {
        match *self {
            TraceEvent::Fetch { slot, .. }
            | TraceEvent::Issue { slot, .. }
            | TraceEvent::Stall { slot, .. }
            | TraceEvent::Park { slot, .. }
            | TraceEvent::FuWin { slot, .. }
            | TraceEvent::FuLoss { slot, .. }
            | TraceEvent::Writeback { slot, .. }
            | TraceEvent::QueuePush { slot, .. }
            | TraceEvent::QueuePop { slot, .. }
            | TraceEvent::ThreadBind { slot, .. }
            | TraceEvent::ContextSwitch { slot, .. } => Some(slot),
            TraceEvent::Rotation { .. } => None,
        }
    }
}

/// Receiver for machine events. The machine calls [`TraceSink::event`]
/// once per occurrence, in deterministic order within a cycle.
///
/// `Debug` is a supertrait so a boxed sink can live inside the
/// `Debug`-deriving machine.
pub trait TraceSink: std::fmt::Debug {
    /// Consumes one event.
    fn event(&mut self, ev: &TraceEvent);
}

/// A sink that drops every event — the baseline for measuring tracing
/// overhead (event construction + dispatch, no storage).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn event(&mut self, _ev: &TraceEvent) {}
}

/// A bounded in-memory ring keeping the most recent events. Clones
/// share the buffer, so tests hand one handle to the machine and keep
/// another for inspection.
#[derive(Debug, Clone)]
pub struct RingSink {
    shared: Rc<RefCell<Ring>>,
}

#[derive(Debug)]
struct Ring {
    capacity: usize,
    events: VecDeque<TraceEvent>,
}

impl RingSink {
    /// A ring holding at most `capacity` events (older ones fall off).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            shared: Rc::new(RefCell::new(Ring {
                capacity: capacity.max(1),
                events: VecDeque::new(),
            })),
        }
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.shared.borrow().events.iter().cloned().collect()
    }

    /// The last `n` retained events concerning `slot`, oldest first —
    /// the post-mortem dump used by the differential harness.
    pub fn last_for_slot(&self, slot: usize, n: usize) -> Vec<TraceEvent> {
        let ring = self.shared.borrow();
        let mut picked: Vec<TraceEvent> =
            ring.events.iter().rev().filter(|e| e.slot() == Some(slot)).take(n).cloned().collect();
        picked.reverse();
        picked
    }
}

impl TraceSink for RingSink {
    fn event(&mut self, ev: &TraceEvent) {
        let mut ring = self.shared.borrow_mut();
        if ring.events.len() == ring.capacity {
            ring.events.pop_front();
        }
        ring.events.push_back(*ev);
    }
}

/// An unbounded recorder that renders Chrome `trace_event` JSON.
#[derive(Debug, Clone, Default)]
pub struct ChromeSink {
    shared: Rc<RefCell<Vec<TraceEvent>>>,
}

impl ChromeSink {
    /// An empty recorder.
    pub fn new() -> Self {
        ChromeSink::default()
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.shared.borrow().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.shared.borrow().is_empty()
    }

    /// Renders the recorded events as Chrome `trace_event` JSON with
    /// one track per thread slot and one per functional unit. See
    /// [`chrome_trace_json`].
    pub fn render(&self, slots: usize, fu: &FuConfig) -> String {
        chrome_trace_json(&self.shared.borrow(), slots, fu)
    }
}

impl TraceSink for ChromeSink {
    fn event(&mut self, ev: &TraceEvent) {
        self.shared.borrow_mut().push(*ev);
    }
}

/// A compact line-per-event text log.
#[derive(Debug, Clone, Default)]
pub struct TextSink {
    shared: Rc<RefCell<String>>,
}

impl TextSink {
    /// An empty log.
    pub fn new() -> Self {
        TextSink::default()
    }

    /// The log accumulated so far (one line per event).
    pub fn text(&self) -> String {
        self.shared.borrow().clone()
    }
}

impl TraceSink for TextSink {
    fn event(&mut self, ev: &TraceEvent) {
        let mut buf = self.shared.borrow_mut();
        let _ = writeln!(buf, "{}", format_event(ev));
    }
}

/// One-line text rendering of an event, used by [`TextSink`] and the
/// differential harness's divergence dumps.
pub fn format_event(ev: &TraceEvent) -> String {
    let mut line = format!("[{:>8}] ", ev.cycle());
    match ev.slot() {
        Some(s) => {
            let _ = write!(line, "s{s} ");
        }
        None => line.push_str("-- "),
    }
    match ev {
        TraceEvent::Fetch { redirect, .. } => {
            let _ = write!(line, "fetch{}", if *redirect { " redirect" } else { "" });
        }
        TraceEvent::Issue { ctx, pc, .. } => {
            let _ = write!(line, "issue pc={pc:#06x} ctx={ctx}");
        }
        TraceEvent::Stall { reason, pc, .. } => {
            let _ = write!(line, "stall {}", reason.name());
            if let Some(pc) = pc {
                let _ = write!(line, " pc={pc:#06x}");
            }
        }
        TraceEvent::Park { class, pc, .. } => {
            let _ = write!(line, "park {} pc={pc:#06x}", class.name());
        }
        TraceEvent::FuWin { class, instance, pc, busy, competitors, .. } => {
            let _ = write!(line, "fu-win {}.{instance} pc={pc:#06x} busy={busy}", class.name());
            if !competitors.is_empty() {
                let _ = write!(line, " vs={}", join_slots(*competitors));
            }
        }
        TraceEvent::FuLoss { class, pc, gated, winners, .. } => {
            let _ = write!(
                line,
                "fu-loss {} pc={pc:#06x}{}",
                class.name(),
                if *gated { " gated" } else { "" }
            );
            if !winners.is_empty() {
                let _ = write!(line, " to={}", join_slots(*winners));
            }
        }
        TraceEvent::Writeback { ctx, pc, dest, avail, .. } => {
            let _ = write!(line, "writeback {dest} pc={pc:#06x} ctx={ctx} avail={avail}");
        }
        TraceEvent::QueuePush { link, avail, depth, .. } => {
            let _ = write!(line, "q-push link={link} avail={avail} depth={depth}");
        }
        TraceEvent::QueuePop { link, depth, .. } => {
            let _ = write!(line, "q-pop link={link} depth={depth}");
        }
        TraceEvent::Rotation { kind, highest, .. } => {
            let _ = write!(line, "rotate {} highest=s{highest}", kind.name());
        }
        TraceEvent::ThreadBind { ctx, pc, .. } => {
            let _ = write!(line, "bind ctx={ctx} pc={pc:#06x}");
        }
        TraceEvent::ContextSwitch { ctx, resume_at, .. } => {
            let _ = write!(line, "switch-out ctx={ctx} resume_at={resume_at}");
        }
    }
    line
}

fn join_slots(slots: SlotSet) -> String {
    let mut out = String::new();
    for (i, s) in slots.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "s{s}");
    }
    out
}

/// Renders events as Chrome `trace_event` JSON (the "JSON Array
/// Format" inside an object, loadable in `chrome://tracing` and
/// Perfetto).
///
/// Layout: process 1 holds one track per thread slot plus a
/// `scheduler` track for rotations; process 2 holds one track per
/// functional-unit instance (`<class>.<instance>`). One simulated
/// cycle maps to one microsecond of trace time. Issues, stalls, and FU
/// occupancy render as complete (`X`) slices; everything else renders
/// as thread-scoped instants. The output is a pure function of the
/// event list, so identical runs produce byte-identical JSON.
pub fn chrome_trace_json(events: &[TraceEvent], slots: usize, fu: &FuConfig) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, line: String| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };

    // Track metadata: names for both processes and every track.
    push(
        &mut out,
        &mut first,
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"thread slots\"}}"
            .to_owned(),
    );
    for s in 0..slots {
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{s},\
                 \"args\":{{\"name\":\"slot {s}\"}}}}"
            ),
        );
    }
    push(
        &mut out,
        &mut first,
        format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{slots},\
             \"args\":{{\"name\":\"scheduler\"}}}}"
        ),
    );
    push(
        &mut out,
        &mut first,
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\
         \"args\":{\"name\":\"functional units\"}}"
            .to_owned(),
    );
    let mut fu_base = [0usize; hirata_isa::FU_CLASS_COUNT];
    let mut next = 0usize;
    for class in FuClass::ALL {
        fu_base[class.index()] = next;
        for i in 0..fu.count(class) {
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":{},\
                     \"args\":{{\"name\":\"{}.{i}\"}}}}",
                    next + i,
                    class.name()
                ),
            );
        }
        next += fu.count(class);
    }

    for ev in events {
        let line = match ev {
            TraceEvent::Issue { cycle, slot, ctx, pc } => format!(
                "{{\"name\":\"pc {pc:#06x}\",\"ph\":\"X\",\"ts\":{cycle},\"dur\":1,\
                 \"pid\":1,\"tid\":{slot},\"args\":{{\"ctx\":{ctx},\"pc\":{pc}}}}}"
            ),
            TraceEvent::Stall { cycle, slot, reason, pc } => {
                let pc_arg = match pc {
                    Some(pc) => format!(",\"pc\":{pc}"),
                    None => String::new(),
                };
                format!(
                    "{{\"name\":\"stall:{}\",\"ph\":\"X\",\"ts\":{cycle},\"dur\":1,\
                     \"pid\":1,\"tid\":{slot},\"args\":{{\"reason\":\"{}\"{pc_arg}}}}}",
                    reason.name(),
                    reason.name()
                )
            }
            TraceEvent::FuWin { cycle, slot, class, instance, pc, busy, .. } => format!(
                "{{\"name\":\"s{slot} pc {pc:#06x}\",\"ph\":\"X\",\"ts\":{cycle},\"dur\":{},\
                 \"pid\":2,\"tid\":{},\"args\":{{\"slot\":{slot},\"pc\":{pc}}}}}",
                (*busy).max(1),
                fu_base[class.index()] + instance
            ),
            TraceEvent::Fetch { cycle, slot, redirect } => instant(
                *cycle,
                1,
                *slot,
                if *redirect { "fetch:redirect" } else { "fetch" },
                String::new(),
            ),
            TraceEvent::Park { cycle, slot, class, pc } => {
                instant(*cycle, 1, *slot, &format!("park:{}", class.name()), format!("\"pc\":{pc}"))
            }
            TraceEvent::FuLoss { cycle, slot, class, pc, gated, winners } => instant(
                *cycle,
                1,
                *slot,
                &format!("fu-loss:{}{}", class.name(), if *gated { ":gated" } else { "" }),
                format!("\"pc\":{pc},\"winners\":\"{}\"", join_slots(*winners)),
            ),
            TraceEvent::Writeback { cycle, slot, pc, dest, avail, .. } => instant(
                *cycle,
                1,
                *slot,
                &format!("wb:{dest}"),
                format!("\"pc\":{pc},\"avail\":{avail}"),
            ),
            TraceEvent::QueuePush { cycle, slot, link, avail, depth } => instant(
                *cycle,
                1,
                *slot,
                "q-push",
                format!("\"link\":{link},\"avail\":{avail},\"depth\":{depth}"),
            ),
            TraceEvent::QueuePop { cycle, slot, link, depth } => {
                instant(*cycle, 1, *slot, "q-pop", format!("\"link\":{link},\"depth\":{depth}"))
            }
            TraceEvent::Rotation { cycle, kind, highest } => instant(
                *cycle,
                1,
                slots,
                &format!("rotate:{}", kind.name()),
                format!("\"highest\":{highest}"),
            ),
            TraceEvent::ThreadBind { cycle, slot, ctx, pc } => {
                instant(*cycle, 1, *slot, &format!("bind:ctx{ctx}"), format!("\"pc\":{pc}"))
            }
            TraceEvent::ContextSwitch { cycle, slot, ctx, resume_at } => instant(
                *cycle,
                1,
                *slot,
                &format!("switch-out:ctx{ctx}"),
                format!("\"resume_at\":{resume_at}"),
            ),
        };
        push(&mut out, &mut first, line);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// One thread-scoped instant event line.
fn instant(cycle: u64, pid: usize, tid: usize, name: &str, args: String) -> String {
    format!(
        "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{cycle},\
         \"pid\":{pid},\"tid\":{tid},\"args\":{{{args}}}}}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn issue(cycle: u64, slot: usize, pc: u32) -> TraceEvent {
        TraceEvent::Issue { cycle, slot, ctx: 0, pc }
    }

    #[test]
    fn ring_keeps_most_recent() {
        let handle = RingSink::new(3);
        let mut sink = handle.clone();
        for c in 0..5 {
            sink.event(&issue(c, 0, c as u32));
        }
        let events = handle.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].cycle(), 2);
        assert_eq!(events[2].cycle(), 4);
    }

    #[test]
    fn ring_filters_by_slot() {
        let handle = RingSink::new(10);
        let mut sink = handle.clone();
        for c in 0..6 {
            sink.event(&issue(c, (c % 2) as usize, 0));
        }
        let s1 = handle.last_for_slot(1, 2);
        assert_eq!(s1.len(), 2);
        assert!(s1.iter().all(|e| e.slot() == Some(1)));
        assert_eq!(s1[0].cycle(), 3);
        assert_eq!(s1[1].cycle(), 5);
    }

    #[test]
    fn text_sink_emits_one_line_per_event() {
        let handle = TextSink::new();
        let mut sink = handle.clone();
        sink.event(&issue(7, 2, 4));
        sink.event(&TraceEvent::Stall {
            cycle: 8,
            slot: 2,
            reason: StallReason::Data,
            pc: Some(5),
        });
        let text = handle.text();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("issue pc=0x0004"));
        assert!(text.contains("stall data-dep pc=0x0005"));
    }

    #[test]
    fn chrome_json_declares_all_tracks() {
        let fu = FuConfig::paper_one_ls();
        let json = chrome_trace_json(&[], 4, &fu);
        for s in 0..4 {
            assert!(json.contains(&format!("slot {s}")));
        }
        assert!(json.contains("scheduler"));
        for class in FuClass::ALL {
            for i in 0..fu.count(class) {
                assert!(json.contains(&format!("{}.{i}", class.name())));
            }
        }
    }

    #[test]
    fn chrome_json_is_structurally_balanced() {
        let fu = FuConfig::paper_one_ls();
        let events = vec![
            issue(0, 0, 0),
            TraceEvent::FuWin {
                cycle: 0,
                slot: 0,
                class: FuClass::IntAlu,
                instance: 0,
                pc: 0,
                busy: 1,
                competitors: [1, 2].into_iter().collect(),
            },
            TraceEvent::Rotation { cycle: 1, kind: RotationKind::Implicit, highest: 1 },
        ];
        let json = chrome_trace_json(&events, 2, &fu);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn chrome_json_is_deterministic() {
        let fu = FuConfig::paper_two_ls();
        let events: Vec<TraceEvent> =
            (0..50).map(|c| issue(c, (c % 4) as usize, c as u32)).collect();
        assert_eq!(chrome_trace_json(&events, 4, &fu), chrome_trace_json(&events, 4, &fu));
    }
}
