//! The predecoded instruction store is a pure derivation of the
//! program: every [`DecodedInst`] must agree with the raw [`Inst`]
//! accessors the cycle loop used before predecoding existed. These
//! tests sweep every instruction form, the checked-in example
//! programs, the generated workloads, and seeded random programs —
//! and check that machines sharing one predecoded store behave
//! identically to machines that lower the program themselves.

use std::sync::Arc;

use hirata_isa::{
    BranchCond, FReg, FpBinOp, FpUnOp, GReg, GSrc, Inst, IntOp, Program, Reg, RotationMode,
};
use hirata_sim::{Config, DecodedInst, Machine, PredecodedProgram};

/// One representative of every `Inst` variant (and both store
/// flavours), so a new field or flag that breaks the lowering of any
/// form fails here by name.
fn all_instruction_forms() -> Vec<Inst> {
    vec![
        Inst::IntOp { op: IntOp::Add, rd: GReg(1), rs: GReg(2), src2: GSrc::Reg(GReg(3)) },
        Inst::IntOp { op: IntOp::Div, rd: GReg(4), rs: GReg(5), src2: GSrc::Imm(7) },
        Inst::Li { rd: GReg(6), imm: -42 },
        Inst::LiF { fd: FReg(1), imm: 0.5 },
        Inst::FpBin { op: FpBinOp::FMul, fd: FReg(2), fs: FReg(3), ft: FReg(4) },
        Inst::FpUn { op: FpUnOp::FNeg, fd: FReg(5), fs: FReg(6) },
        Inst::FpCmp { cond: BranchCond::Lt, rd: GReg(7), fs: FReg(1), ft: FReg(2) },
        Inst::CvtIF { fd: FReg(3), rs: GReg(1) },
        Inst::CvtFI { rd: GReg(2), fs: FReg(4) },
        Inst::Load { dst: Reg::G(GReg(3)), base: GReg(4), off: 16 },
        Inst::Load { dst: Reg::F(FReg(5)), base: GReg(6), off: -8 },
        Inst::Store { src: Reg::G(GReg(7)), base: GReg(1), off: 0, gated: false },
        Inst::Store { src: Reg::F(FReg(6)), base: GReg(2), off: 4, gated: true },
        Inst::Branch { cond: BranchCond::Ne, rs: GReg(3), src2: GSrc::Imm(0), target: 9 },
        Inst::Jump { target: 0 },
        Inst::JumpReg { rs: GReg(4) },
        Inst::Halt,
        Inst::Nop,
        Inst::FastFork,
        Inst::ChgPri,
        Inst::KillOthers,
        Inst::SetRotation { mode: RotationMode::Explicit },
        Inst::QMap { read: Reg::G(GReg(5)), write: Reg::G(GReg(6)) },
        Inst::QUnmap,
        Inst::Lpid { rd: GReg(7) },
        Inst::Nlp { rd: GReg(1) },
        Inst::Drain,
    ]
}

/// Asserts one decoded entry agrees with the raw accessors on `inst`.
fn assert_lowering_matches(d: &DecodedInst, inst: Inst, what: &str) {
    assert_eq!(d.inst, inst, "{what}: instruction preserved");
    assert_eq!(d.fu, inst.fu_class(), "{what}: functional-unit class");
    assert_eq!(d.srcs, inst.srcs(), "{what}: source registers");
    assert_eq!(d.dest, inst.dest(), "{what}: destination register");
    assert_eq!(d.latency, inst.latency(), "{what}: latency");
    let mut src_mask = 0u64;
    for r in inst.srcs().into_iter().flatten() {
        src_mask |= 1 << r.dense_index();
    }
    assert_eq!(d.src_mask, src_mask, "{what}: source mask");
    assert_eq!(
        d.dest_mask,
        inst.dest().map_or(0, |r| 1 << r.dense_index()),
        "{what}: destination mask"
    );
    assert_eq!(d.is_mem(), inst.is_mem(), "{what}: memory flag");
    assert_eq!(d.is_store(), matches!(inst, Inst::Store { .. }), "{what}: store flag");
    assert_eq!(
        d.needs_highest_priority(),
        inst.needs_highest_priority(),
        "{what}: priority gate flag"
    );
    assert_eq!(
        d.is_gated_store(),
        matches!(inst, Inst::Store { gated: true, .. }),
        "{what}: gated-store flag"
    );
    assert_eq!(d.is_decode_unit(), inst.fu_class().is_none(), "{what}: decode-unit flag");
    assert_eq!(d.issue_latency(), inst.latency().issue, "{what}: issue latency");
}

#[test]
fn every_instruction_form_lowers_consistently() {
    for inst in all_instruction_forms() {
        assert_lowering_matches(&DecodedInst::of(inst), inst, &format!("{inst}"));
    }
}

/// The dense store produced by `PredecodedProgram::new` must be
/// element-for-element the raw lowering of the program text.
fn assert_store_matches_raw(program: &Program, what: &str) {
    let pre = PredecodedProgram::new(program).expect("program predecodes");
    assert_eq!(pre.len(), program.insts.len(), "{what}: store length");
    assert_eq!(pre.entry(), program.entry, "{what}: entry point");
    assert_eq!(pre.data(), program.data.as_slice(), "{what}: data segments");
    for (pc, (&inst, d)) in program.insts.iter().zip(pre.insts()).enumerate() {
        assert_eq!(*d, DecodedInst::of(inst), "{what}: entry at pc {pc}");
        assert_lowering_matches(d, inst, &format!("{what} pc {pc}"));
    }
}

#[test]
fn checked_in_examples_predecode_to_their_raw_lowering() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/asm");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("examples/asm exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "s"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty());
    for path in paths {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&path).expect("example readable");
        let program = hirata_asm::assemble(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_store_matches_raw(&program, &name);
    }
}

#[test]
fn generated_workloads_predecode_to_their_raw_lowering() {
    use hirata_workloads::linked_list::{eager_program, ListShape};
    use hirata_workloads::livermore::kernel1_program;
    use hirata_workloads::raytrace::{raytrace_program, RayTraceParams};

    assert_store_matches_raw(&raytrace_program(&RayTraceParams::default()), "raytrace");
    assert_store_matches_raw(
        &kernel1_program(64, hirata_sched::Strategy::ReservationB { threads: 4 }),
        "livermore-k1",
    );
    assert_store_matches_raw(
        &eager_program(ListShape { nodes: 60, break_at: Some(59) }),
        "fig6-list",
    );
}

/// Deterministic SplitMix64 so the random sweep reproduces exactly.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random instruction drawn across every form the assembler can
/// produce (fields randomized within architectural ranges).
fn random_inst(rng: &mut SplitMix) -> Inst {
    let g = |rng: &mut SplitMix| GReg(1 + rng.below(7) as u8);
    let f = |rng: &mut SplitMix| FReg(1 + rng.below(7) as u8);
    match rng.below(16) {
        0 => Inst::IntOp {
            op: [IntOp::Add, IntOp::Sub, IntOp::Mul, IntOp::Div, IntOp::And, IntOp::Sll]
                [rng.below(6) as usize],
            rd: g(rng),
            rs: g(rng),
            src2: if rng.below(2) == 0 {
                GSrc::Reg(g(rng))
            } else {
                GSrc::Imm(rng.below(100) as i64 - 50)
            },
        },
        1 => Inst::Li { rd: g(rng), imm: rng.below(1000) as i64 - 500 },
        2 => Inst::LiF { fd: f(rng), imm: rng.below(100) as f64 / 8.0 },
        3 => Inst::FpBin {
            op: [FpBinOp::FAdd, FpBinOp::FSub, FpBinOp::FMul, FpBinOp::FDiv][rng.below(4) as usize],
            fd: f(rng),
            fs: f(rng),
            ft: f(rng),
        },
        4 => Inst::FpUn {
            op: [FpUnOp::FAbs, FpUnOp::FNeg, FpUnOp::FMov][rng.below(3) as usize],
            fd: f(rng),
            fs: f(rng),
        },
        5 => Inst::FpCmp { cond: BranchCond::Le, rd: g(rng), fs: f(rng), ft: f(rng) },
        6 => Inst::CvtIF { fd: f(rng), rs: g(rng) },
        7 => Inst::CvtFI { rd: g(rng), fs: f(rng) },
        8 => Inst::Load {
            dst: if rng.below(2) == 0 { Reg::G(g(rng)) } else { Reg::F(f(rng)) },
            base: g(rng),
            off: rng.below(64) as i64,
        },
        9 => Inst::Store {
            src: if rng.below(2) == 0 { Reg::G(g(rng)) } else { Reg::F(f(rng)) },
            base: g(rng),
            off: rng.below(64) as i64,
            gated: rng.below(4) == 0,
        },
        10 => Inst::Branch {
            cond: [BranchCond::Eq, BranchCond::Ne, BranchCond::Lt, BranchCond::Ge]
                [rng.below(4) as usize],
            rs: g(rng),
            src2: GSrc::Imm(0),
            target: rng.below(4) as u32,
        },
        11 => Inst::Jump { target: rng.below(4) as u32 },
        12 => Inst::Lpid { rd: g(rng) },
        13 => Inst::Nlp { rd: g(rng) },
        14 => Inst::Nop,
        _ => Inst::Drain,
    }
}

#[test]
fn seeded_random_programs_predecode_to_their_raw_lowering() {
    for seed in 0..32u64 {
        let mut rng = SplitMix(0xDEC0DE ^ seed.wrapping_mul(0x9E3779B9));
        let mut program = Program::default();
        for _ in 0..64 {
            program.insts.push(random_inst(&mut rng));
        }
        program.insts.push(Inst::Halt);
        assert_store_matches_raw(&program, &format!("random seed {seed}"));
    }
}

/// Machines built from one shared `Arc<PredecodedProgram>` must be
/// indistinguishable from machines that lowered the program privately:
/// identical cycle counts, instruction counts, and final memory.
#[test]
fn shared_store_machines_match_fresh_lowering() {
    use hirata_workloads::linked_list::{eager_program, ListShape};

    let program = eager_program(ListShape { nodes: 60, break_at: Some(59) });
    let shared: Arc<PredecodedProgram> =
        PredecodedProgram::shared(&program).expect("program predecodes");
    for slots in [2usize, 4, 8] {
        let config = Config::multithreaded(slots);
        let mut fresh = Machine::new(config.clone(), &program).expect("fresh machine");
        let mut reused =
            Machine::from_predecoded(config, Arc::clone(&shared)).expect("shared machine");
        fresh.run().expect("fresh run");
        reused.run().expect("shared run");
        assert_eq!(fresh.cycles(), reused.cycles(), "{slots} slots: cycle count");
        assert_eq!(
            fresh.stats().instructions,
            reused.stats().instructions,
            "{slots} slots: instruction count"
        );
        assert_eq!(fresh.memory(), reused.memory(), "{slots} slots: final memory");
    }
    // The store is genuinely shared, not cloned per machine.
    assert_eq!(Arc::strong_count(&shared), 1, "machines dropped their references");
}
