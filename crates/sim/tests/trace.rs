//! Contract tests for the structured trace stream: every non-issuing
//! slot accounts for its cycle with exactly one stall event, stall
//! events carry the blocking PC, and branch-shadow cycles are
//! attributed to their own reason instead of disappearing into the
//! generic fetch bucket.

use std::collections::HashMap;

use hirata_asm::assemble;
use hirata_sim::{Config, Machine, RingSink, StallReason, TraceEvent};

fn run_traced(src: &str, config: Config) -> (Machine, RingSink) {
    let program = assemble(src).expect("program assembles");
    let mut machine = Machine::new(config, &program).expect("machine accepts program");
    let sink = RingSink::new(1 << 20);
    machine.attach_trace_sink(Box::new(sink.clone()));
    machine.run().expect("program runs");
    (machine, sink)
}

/// The paper's slot-cycle accounting, restated on the event stream:
/// with single-issue slots, every (cycle, slot) pair is covered by
/// exactly one Issue or exactly one Stall event — never zero, never
/// both, never two stalls.
#[test]
fn every_slot_cycle_has_exactly_one_issue_or_stall_event() {
    let src = "
.text
.entry main
main:
    fastfork
    lpid r1
    nlp  r2
    mv   r3, r1
loop:
    slt  r4, r3, #40
    beq  r4, #0, done
    sw   r3, 100(r3)
    add  r3, r3, r2
    j    loop
done:
    halt
";
    let slots = 4;
    let (machine, sink) = run_traced(src, Config::multithreaded(slots));
    let stats = machine.stats();

    let mut cover: HashMap<(u64, usize), (u64, u64)> = HashMap::new();
    let (mut issues, mut stalls) = (0u64, 0u64);
    for ev in sink.events() {
        match ev {
            TraceEvent::Issue { cycle, slot, .. } => {
                cover.entry((cycle, slot)).or_default().0 += 1;
                issues += 1;
            }
            TraceEvent::Stall { cycle, slot, .. } => {
                cover.entry((cycle, slot)).or_default().1 += 1;
                stalls += 1;
            }
            _ => {}
        }
    }

    // The event stream reproduces the counters exactly...
    assert_eq!(issues, stats.instructions);
    assert_eq!(stalls, stats.stalls.total());
    assert_eq!(slots as u64 * stats.cycles, issues + stalls);

    // ...and covers the (cycle, slot) grid with multiplicity one.
    for cycle in 0..stats.cycles {
        for slot in 0..slots {
            let (issued, stalled) = cover.get(&(cycle, slot)).copied().unwrap_or((0, 0));
            assert_eq!(
                issued + stalled,
                1,
                "cycle {cycle} slot {slot}: {issued} issue + {stalled} stall events"
            );
        }
    }
}

/// Every stall event except `no-thread` names the program counter of
/// the instruction that could not issue.
#[test]
fn stall_events_carry_the_blocking_pc() {
    let src = "
.text
.entry main
main:
    lw  r1, 50(r0)
    add r2, r1, #1   ; data-dependent on the load
    sw  r2, 51(r0)
    halt
";
    let (_machine, sink) = run_traced(src, Config::multithreaded(1));
    let mut stall_kinds = 0;
    for ev in sink.events() {
        if let TraceEvent::Stall { reason, pc, .. } = ev {
            stall_kinds += 1;
            if reason == StallReason::NoThread {
                assert_eq!(pc, None, "no-thread stalls have no instruction");
            } else {
                assert!(pc.is_some(), "{} stall without a blocking pc", reason.name());
            }
        }
    }
    assert!(stall_kinds > 0, "the dependent sequence must stall at least once");
}

/// Regression: the decode-refill cycles after a taken branch used to
/// be folded into the generic `fetch` bucket. They are attributed to
/// `branch-shadow`, with the shadowed instruction's PC, and the
/// breakdown separates them from genuine fetch (icache) stalls.
#[test]
fn branch_shadow_stalls_are_attributed_separately() {
    let src = "
.text
.entry main
main:
    li   r1, #0
loop:
    add  r1, r1, #1
    slt  r2, r1, #12
    bne  r2, #0, loop    ; taken 11 times: a shadow per redirect
    halt
";
    let (machine, sink) = run_traced(src, Config::multithreaded(1));
    let stats = machine.stats();

    let shadow_cycles = stats.stalls.count(StallReason::BranchShadow);
    assert!(shadow_cycles > 0, "taken branches must charge the branch-shadow bucket");

    let shadow_events: Vec<TraceEvent> = sink
        .events()
        .into_iter()
        .filter(|ev| matches!(ev, TraceEvent::Stall { reason: StallReason::BranchShadow, .. }))
        .collect();
    assert_eq!(shadow_events.len() as u64, shadow_cycles);
    for ev in &shadow_events {
        let TraceEvent::Stall { pc, .. } = ev else { unreachable!() };
        assert!(pc.is_some(), "a branch shadow knows which instruction it delays");
    }
}
