//! Trace-driven versus execution-driven equivalence: the paper's
//! methodology replayed traced instruction sequences; our timing model
//! must give (nearly) identical cycle counts both ways for
//! non-synchronising programs. "Nearly": the replay adds a small
//! dispatch prologue; everything else — instruction mix, dependences,
//! control-transfer shadows — is identical.

use hirata_sim::{build_trace_program, Config, Emulator, Machine};

fn compare(program: &hirata_isa::Program, slots: usize) -> (u64, u64) {
    let mut direct = Machine::new(Config::multithreaded(slots), program).unwrap();
    let direct_cycles = direct.run().unwrap().cycles;

    let out = Emulator::execute_with_traces(program, slots, 1 << 20, 500_000_000).unwrap();
    let replay = build_trace_program(program, &out.traces).unwrap();
    let mut traced = Machine::new(Config::multithreaded(slots), &replay).unwrap();
    let traced_cycles = traced.run().unwrap().cycles;
    (direct_cycles, traced_cycles)
}

#[test]
fn ray_tracer_trace_replay_matches_execution_timing() {
    use hirata_workloads::raytrace::{raytrace_program, RayTraceParams};
    let params = RayTraceParams { width: 8, height: 8, spheres: 4, seed: 3, shadows: true };
    let program = raytrace_program(&params);
    for slots in [1usize, 2, 4] {
        let (direct, traced) = compare(&program, slots);
        let diff = direct.abs_diff(traced) as f64 / direct as f64;
        assert!(diff < 0.02, "{slots} slots: execution-driven {direct} vs trace-driven {traced}");
    }
}

#[test]
fn kernel7_trace_replay_matches_execution_timing_on_average() {
    // Kernel 7 at four slots sits exactly at the load/store-unit
    // saturation knee, where cycle counts are sensitive to the phase
    // between the rotating priority and the loop (both the direct and
    // the replayed run swing ±15% with the rotation interval). The
    // replay must agree in the aggregate, not at any single phase.
    use hirata_isa::RotationMode;
    use hirata_sched::Strategy;
    use hirata_workloads::livermore::kernel7_program;
    let program = kernel7_program(32, Strategy::ListA);
    let out = Emulator::execute_with_traces(&program, 4, 1 << 20, 500_000_000).unwrap();
    let replay = build_trace_program(&program, &out.traces).unwrap();
    let mut direct_sum = 0u64;
    let mut traced_sum = 0u64;
    for interval in [1u32, 2, 4, 8, 16, 32] {
        let cfg = Config::multithreaded(4).with_rotation(RotationMode::Implicit { interval });
        let mut d = Machine::new(cfg.clone(), &program).unwrap();
        direct_sum += d.run().unwrap().cycles;
        let mut t = Machine::new(cfg, &replay).unwrap();
        traced_sum += t.run().unwrap().cycles;
    }
    let diff = direct_sum.abs_diff(traced_sum) as f64 / direct_sum as f64;
    assert!(diff < 0.1, "aggregate execution-driven {direct_sum} vs trace-driven {traced_sum}");
}
