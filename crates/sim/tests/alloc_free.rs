//! Demonstrates the ISSUE's allocation-free cycle loop: once a machine
//! is past its warm-up transient (queue rings at their high-water mark,
//! stall-attribution windows within reserved capacity, every touched
//! memory chunk materialized), [`Machine::step`] performs zero heap
//! allocations.
//!
//! The proof is a counting `#[global_allocator]`: every allocation in
//! the whole test binary bumps an atomic counter, and the steady-state
//! span of steps must not bump it at all. `unsafe` is confined to the
//! thin allocator shim (the simulator crates themselves forbid it).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use hirata_sim::{Config, Machine, RingSink};
use hirata_workloads::linked_list::{eager_program, ListShape};

/// Counts every allocation and reallocation made by the test binary.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to the system allocator; the counter is a
// relaxed atomic increment with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The Figure 6 eager loop is the ideal steady-state probe: it runs
/// for tens of thousands of cycles, exercises queue registers, forks,
/// rotating priorities, and branch redirects every iteration — and
/// performs no data-memory stores until the final break, so no lazily
/// materialized memory chunk can appear mid-span.
///
/// Probed at both 4 and 8 thread slots: the two configurations take
/// different incremental-readiness paths (how often the ready frontier
/// empties, how many block descriptors are live, how the per-class
/// arbitration masks populate), and both must stay allocation-free.
fn assert_steady_state_allocation_free(slots: usize) {
    let shape = ListShape { nodes: 600, break_at: Some(599) };
    let program = eager_program(shape);
    let mut machine = Machine::new(Config::multithreaded(slots), &program).expect("machine builds");

    // Warm-up: 5000 steps puts every ring buffer at its high-water
    // mark and leaves the stall-window vector (one entry per 1000
    // cycles, reserved in power-of-two blocks with a 64-window floor)
    // with capacity through at least cycle 64000 — far past anything
    // the measured span can reach, even with fast-forward jumps
    // covering many cycles per step.
    const WARMUP_CYCLES: u64 = 5000;
    const MEASURED_CYCLES: u64 = 1500;
    for _ in 0..WARMUP_CYCLES {
        assert!(!machine.step().expect("machine runs"), "workload ended during warm-up");
    }

    let before = allocations();
    for _ in 0..MEASURED_CYCLES {
        assert!(!machine.step().expect("machine runs"), "workload ended during measurement");
    }
    let after = allocations();

    assert_eq!(
        after - before,
        0,
        "Machine::step allocated in steady state at {} slots ({} allocations over {} cycles)",
        slots,
        after - before,
        MEASURED_CYCLES
    );

    // The machine still finishes correctly after the probe.
    let stats = machine.run().expect("machine completes");
    assert!(stats.cycles > WARMUP_CYCLES + MEASURED_CYCLES);
}

#[test]
fn step_is_allocation_free_in_steady_state_s4() {
    assert_steady_state_allocation_free(4);
}

#[test]
fn step_is_allocation_free_in_steady_state_s8() {
    assert_steady_state_allocation_free(8);
}

/// Same probe with a [`RingSink`] attached, driving the `TRACED`
/// monomorphization of the cycle kernel: trace events are `Copy`
/// structs pushed into a ring whose `VecDeque` stops growing once it
/// first reaches capacity during warm-up, so a traced machine must be
/// just as allocation-free in steady state as an untraced one. This
/// also pins down that the µop store (operand-capture plans, `ExecOp`
/// codes, pre-folded immediates) and the FU calendar ring are built
/// once at construction — neither path may rebuild or grow anything
/// per cycle, traced or not.
fn assert_traced_steady_state_allocation_free(slots: usize) {
    let shape = ListShape { nodes: 600, break_at: Some(599) };
    let program = eager_program(shape);
    let mut machine = Machine::new(Config::multithreaded(slots), &program).expect("machine builds");
    let sink = RingSink::new(256);
    machine.attach_trace_sink(Box::new(sink.clone()));

    const WARMUP_CYCLES: u64 = 5000;
    const MEASURED_CYCLES: u64 = 1500;
    for _ in 0..WARMUP_CYCLES {
        assert!(!machine.step().expect("machine runs"), "workload ended during warm-up");
    }

    let before = allocations();
    for _ in 0..MEASURED_CYCLES {
        assert!(!machine.step().expect("machine runs"), "workload ended during measurement");
    }
    let after = allocations();

    assert_eq!(
        after - before,
        0,
        "traced Machine::step allocated in steady state at {} slots ({} allocations over {} cycles)",
        slots,
        after - before,
        MEASURED_CYCLES
    );

    // The sink really was live the whole time (the kernel took the
    // traced specialization, not the sink-free one).
    assert_eq!(sink.events().len(), 256, "ring should be at capacity after tens of k events");

    let stats = machine.run().expect("machine completes");
    assert!(stats.cycles > WARMUP_CYCLES + MEASURED_CYCLES);
}

#[test]
fn traced_step_is_allocation_free_in_steady_state_s4() {
    assert_traced_steady_state_allocation_free(4);
}

#[test]
fn traced_step_is_allocation_free_in_steady_state_s8() {
    assert_traced_steady_state_allocation_free(8);
}
