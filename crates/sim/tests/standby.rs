//! The flattened standby stations (fixed-capacity ring per
//! `(slot, unit class)` with occupancy counters and per-class slot
//! masks) must behave exactly like the simple latches of §2.2: park on
//! lost arbitration, drain in order as units free up, and flush into
//! the access requirement buffer on a data-absence trap. Running these
//! scenarios in a debug build also exercises the internal
//! `debug_assert` rescans that compare the occupancy counters and
//! `SlotSet` masks against a from-scratch recount every cycle.

use hirata_mem::DsmMemory;
use hirata_sim::{Config, Machine, MAX_STANDBY_DEPTH};

/// Occupancy of every slot's standby stations, via the public view.
fn occupancies(m: &Machine, slots: usize) -> Vec<usize> {
    (0..slots).map(|s| m.slot_view(s).standby_occupancy).collect()
}

/// Eight threads hammering shared functional units park losers in
/// standby stations; the program must still complete with the right
/// answer and leave every station empty.
#[test]
fn fu_conflict_parks_and_drains() {
    use hirata_workloads::linked_list::{eager_program, reference, ListShape, RESULT_ADDR};

    let shape = ListShape { nodes: 60, break_at: Some(59) };
    let program = eager_program(shape);
    let slots = 8;
    let mut machine = Machine::new(Config::multithreaded(slots), &program).expect("machine");

    let mut max_parked = 0usize;
    while !machine.step().expect("machine runs") {
        let occ = occupancies(&machine, slots);
        max_parked = max_parked.max(occ.iter().sum());
        // Depth-1 stations can hold at most one instruction per unit
        // class per slot.
        for (s, &o) in occ.iter().enumerate() {
            assert!(o <= 7, "slot {s} exceeds one entry per class: {o}");
        }
    }

    assert!(max_parked > 0, "contended run never parked an instruction");
    assert_eq!(occupancies(&machine, slots), vec![0; slots], "stations empty at completion");
    let (_, expected) = reference(shape);
    assert_eq!(
        machine.memory().read_f64(RESULT_ADDR).expect("result readable"),
        expected.expect("shape breaks"),
        "gated break store survived the standby traffic"
    );
}

/// Deeper stations (an ablation) park more and still drain cleanly.
#[test]
fn deep_stations_drain_in_order() {
    use hirata_workloads::livermore::{kernel1_program, kernel1_reference, X_BASE};

    let n = 64;
    let program = kernel1_program(n, hirata_sched::Strategy::ReservationB { threads: 4 });
    let mut config = Config::multithreaded(4);
    config.standby_depth = 4;
    config.validate().expect("depth 4 is supported");
    let mut machine = Machine::new(config, &program).expect("machine");

    let mut max_parked = 0usize;
    while !machine.step().expect("machine runs") {
        max_parked = max_parked.max(occupancies(&machine, 4).iter().sum());
    }
    assert!(max_parked > 0, "kernel never used the deep stations");
    for (k, want) in kernel1_reference(n).iter().enumerate() {
        let got = machine.memory().read_f64(X_BASE as u64 + k as u64).expect("x[k] readable");
        assert_eq!(got, *want, "x[{k}] after deep-station run");
    }
}

/// A remote (DSM) access raises the §2.1.3 data-absence trap while
/// younger memory operations sit in the load/store standby station;
/// those are flushed into the context's access requirement buffer and
/// replayed after the thread resumes, so the final memory image is
/// exactly the architectural one.
#[test]
fn data_absence_trap_flushes_the_load_store_station() {
    let src = "
        .text
        .entry main
        main:
            li   r1, #5
            li   r2, #7
            li   r3, #9
            sw   r1, 100(r0)
            sw   r2, 101(r0)
            sw   r3, 102(r0)
            drain
            lw   r4, 100(r0)
            lw   r5, 101(r0)
            lw   r6, 102(r0)
            add  r7, r4, r5
            add  r7, r7, r6
            sw   r7, 103(r0)
            halt
    ";
    let program = hirata_asm::assemble(src).expect("program assembles");
    let mut config = Config::multithreaded(2);
    // Deep stations let the back-to-back loads queue up behind the
    // trapping one, exercising the station flush (not just the trap).
    config.standby_depth = 4;
    // Every address is remote: each first touch costs a 60-cycle
    // remote access and a context switch.
    let model = DsmMemory::new(0, 2, 60);
    let mut machine = Machine::with_mem_model(config, &program, Box::new(model)).expect("machine");
    machine.run().expect("program completes despite traps");

    assert_eq!(machine.memory().read(103).expect("sum readable"), 21, "replayed sum");
    let stats = machine.stats();
    assert!(
        stats.context_switches > 0,
        "remote accesses must have switched the thread out at least once"
    );
    assert_eq!(occupancies(&machine, 2), vec![0, 0], "stations empty after replay");
}

/// The flat station array has a compile-time capacity; configurations
/// beyond it (or zero) must be rejected up front, not trusted to
/// panic at run time.
#[test]
fn config_rejects_unsupported_station_depths() {
    let mut config = Config::multithreaded(2);
    config.standby_depth = 0;
    assert!(config.validate().is_err(), "depth 0 rejected");
    config.standby_depth = MAX_STANDBY_DEPTH;
    assert!(config.validate().is_ok(), "maximum depth accepted");
    config.standby_depth = MAX_STANDBY_DEPTH + 1;
    assert!(config.validate().is_err(), "over-capacity depth rejected");
}
