//! Architectural-semantics tests: forking, queue registers, priority
//! interlocks, eager-execution primitives, context switching, hybrids,
//! and machine checks.

use hirata_asm::assemble;
use hirata_isa::{GReg, Program};
use hirata_mem::DsmMemory;
use hirata_sim::{Config, Machine, MachineError};

fn run(config: Config, src: &str) -> Machine {
    let prog = assemble(src).expect("test program assembles");
    let mut m = Machine::new(config, &prog).expect("machine builds");
    m.run().expect("program runs");
    m
}

fn g(n: u8) -> GReg {
    GReg(n)
}

#[test]
fn fastfork_spawns_one_thread_per_slot_with_unique_lpids() {
    let m = run(Config::multithreaded(4), "fastfork\nlpid r1\nnlp r2\nsw r1, 100(r1)\nhalt");
    for lp in 0..4 {
        assert_eq!(m.memory().read_i64(100 + lp).unwrap(), lp as i64);
    }
}

#[test]
fn fork_copies_parent_registers() {
    let m = run(
        Config::multithreaded(2),
        "li r5, #77\nnop\nnop\nfastfork\nlpid r1\nsw r5, 200(r1)\nhalt",
    );
    assert_eq!(m.memory().read_i64(200).unwrap(), 77);
    assert_eq!(m.memory().read_i64(201).unwrap(), 77);
}

#[test]
fn nlp_reports_machine_width() {
    for slots in [1usize, 2, 4, 8] {
        let m = run(Config::multithreaded(slots), "nlp r1\nsw r1, 50(r0)\nhalt");
        assert_eq!(m.memory().read_i64(50).unwrap(), slots as i64);
    }
}

#[test]
fn strided_work_partition_matches_sequential_result() {
    // Each thread sums its strided share of 1..=20 into mem[300+lpid];
    // total must equal 210 regardless of machine width.
    let src = "
        fastfork
        lpid r1
        nlp  r2
        li   r3, #0         ; accumulator
        add  r4, r1, #1     ; k = lpid + 1
    loop:
        sle  r5, r4, #20
        beq  r5, #0, done
        add  r3, r3, r4
        add  r4, r4, r2
        j    loop
    done:
        sw   r3, 300(r1)
        halt
    ";
    for slots in [1usize, 2, 4] {
        let m = run(Config::multithreaded(slots), src);
        let total: i64 = (0..slots).map(|lp| m.memory().read_i64(300 + lp as u64).unwrap()).sum();
        assert_eq!(total, 210, "{slots} slots");
    }
}

#[test]
fn queue_registers_pass_values_around_the_ring() {
    // Thread 0 sends 41+1 to thread 1; thread 1 adds 1 and stores.
    let src = "
        qmap r10, r11
        fastfork
        lpid r1
        bne  r1, #0, consumer
        li   r11, #41       ; producer: enqueue 41
        halt
    consumer:
        add  r2, r10, #1    ; dequeue + 1
        sw   r2, 400(r0)
        halt
    ";
    let m = run(Config::multithreaded(2), src);
    assert_eq!(m.memory().read_i64(400).unwrap(), 42);
}

#[test]
fn queue_consumer_blocks_until_data_arrives() {
    // The consumer reaches its dequeue long before the producer
    // enqueues; correctness must not depend on arrival order.
    let src = "
        qmap r10, r11
        fastfork
        lpid r1
        beq  r1, #0, producer
        add  r2, r10, #0
        sw   r2, 410(r0)
        halt
    producer:
        li   r3, #30        ; dawdle before producing
    spin:
        sub  r3, r3, #1
        bne  r3, #0, spin
        li   r11, #7
        halt
    ";
    let m = run(Config::multithreaded(2), src);
    assert_eq!(m.memory().read_i64(410).unwrap(), 7);
}

#[test]
fn queue_fifo_order_is_preserved() {
    let src = "
        qmap r10, r11
        fastfork
        lpid r1
        bne  r1, #0, consumer
        li   r11, #1
        li   r11, #2
        li   r11, #3
        halt
    consumer:
        add  r2, r10, #0
        add  r3, r10, #0
        add  r4, r10, #0
        sw   r2, 420(r0)
        sw   r3, 421(r0)
        sw   r4, 422(r0)
        halt
    ";
    let m = run(Config::multithreaded(2), src);
    assert_eq!(m.memory().read_i64(420).unwrap(), 1);
    assert_eq!(m.memory().read_i64(421).unwrap(), 2);
    assert_eq!(m.memory().read_i64(422).unwrap(), 3);
}

#[test]
fn chgpri_serializes_gated_stores_round_robin() {
    // Gated stores to one location, turns handed over with chgpri:
    // the stores must land in 1, 2, 3, 4 order, so 4 survives.
    let src = "
        setrot explicit
        fastfork
        lpid r1
        bne  r1, #0, second
        li   r2, #1
        swp  r2, 500(r0)
        chgpri
        li   r2, #3
        swp  r2, 500(r0)
        chgpri
        halt
    second:
        li   r2, #2
        swp  r2, 500(r0)
        chgpri
        li   r2, #4
        swp  r2, 500(r0)
        halt
    ";
    let m = run(Config::multithreaded(2), src);
    assert_eq!(m.memory().read_i64(500).unwrap(), 4);
    assert_eq!(m.stats().rotations, 3);
}

#[test]
fn killothers_stops_other_threads() {
    // Thread 0 kills the others before they can store.
    let src = "
        setrot explicit
        fastfork
        lpid r1
        beq  r1, #0, killer
        li   r3, #60         ; victims dawdle, then would store
    spin:
        sub  r3, r3, #1
        bne  r3, #0, spin
        li   r2, #1
        sw   r2, 600(r1)
        halt
    killer:
        killothers
        li   r2, #1
        sw   r2, 600(r0)
        halt
    ";
    let m = run(Config::multithreaded(4), src);
    assert_eq!(m.memory().read_i64(600).unwrap(), 1);
    for lp in 1..4 {
        assert_eq!(m.memory().read_i64(600 + lp).unwrap(), 0, "thread {lp} must die");
    }
    assert_eq!(m.stats().threads_killed, 3);
}

#[test]
fn gated_store_waits_for_highest_priority() {
    // In explicit mode, thread 1's gated store cannot land before
    // thread 0 rotates priority to it; thread 0 stores first.
    let src = "
        setrot explicit
        fastfork
        lpid r1
        bne  r1, #0, second
        li   r2, #10
        swp  r2, 700(r0)     ; highest priority: lands immediately
        chgpri               ; hand over priority
        halt
    second:
        lw   r3, 700(r0)     ; will be 10 only if ordering held...
        li   r2, #20
        swp  r2, 701(r0)     ; interlocked until priority arrives
        halt
    ";
    let m = run(Config::multithreaded(2), src);
    assert_eq!(m.memory().read_i64(701).unwrap(), 20);
    assert_eq!(m.memory().read_i64(700).unwrap(), 10);
}

#[test]
fn concurrent_multithreading_hides_remote_latency() {
    // Two threads each chase remote data; with 2 context frames and 1
    // slot, the data-absence trap lets them overlap.
    let src = "
        lpid r1
        mul  r2, r1, #8
        lw   r3, 5000(r2)    ; remote: traps and switches context
        add  r4, r3, #1
        sw   r4, 800(r1)
        halt
    ";
    let prog = assemble(src).unwrap();
    let mut config = Config::multithreaded(1).with_context_frames(2);
    config.mem_words = 1 << 16;
    let mut m =
        Machine::with_mem_model(config, &prog, Box::new(DsmMemory::new(4096, 2, 200))).unwrap();
    // Seed remote data and add the second thread.
    m.add_thread(0).unwrap();
    m.run().unwrap();
    assert_eq!(m.stats().context_switches, 2);
    assert_eq!(m.memory().read_i64(800).unwrap(), 1); // 0 + 1
    assert_eq!(m.memory().read_i64(801).unwrap(), 1);
    assert!(m.mem_stats().absences >= 2);
}

#[test]
fn context_switch_overlap_beats_serial_waiting() {
    // With one context frame the thread just waits out each remote
    // access; a second frame lets another thread run meanwhile.
    let src = "
        lpid r1
        lw   r3, 5000(r1)
        lw   r4, 5100(r1)
        add  r5, r3, r4
        sw   r5, 810(r1)
        halt
    ";
    let prog = assemble(src).unwrap();
    let mk = |frames: usize, threads: usize| {
        let mut config = Config::multithreaded(1).with_context_frames(frames);
        config.mem_words = 1 << 16;
        let mut m =
            Machine::with_mem_model(config, &prog, Box::new(DsmMemory::new(4096, 2, 300))).unwrap();
        for _ in 1..threads {
            m.add_thread(0).unwrap();
        }
        m.run().unwrap();
        m.stats().cycles
    };
    let serial_two = 2 * mk(1, 1);
    let overlapped_two = mk(2, 2);
    assert!(
        overlapped_two < serial_two * 9 / 10,
        "context switching should overlap remote waits: {overlapped_two} vs {serial_two}"
    );
}

#[test]
fn superscalar_width_issues_independent_ops_together() {
    let src = "
        li r1, #1
        li r2, #2
        li r3, #3
        li r4, #4
        sll r5, r1, #1
        lw  r6, 10(r0)
        halt
    ";
    let narrow = run(Config::hybrid(1, 1), src).stats().cycles;
    let wide = run(Config::hybrid(4, 1), src).stats().cycles;
    assert!(wide < narrow, "4-wide issue must beat 1-wide on independent code");
}

#[test]
fn superscalar_respects_dependences() {
    // A fully serial chain gains nothing from width.
    let src = "
        li r1, #1
        add r1, r1, #1
        add r1, r1, #1
        add r1, r1, #1
        halt
    ";
    let narrow = run(Config::hybrid(1, 1), src);
    let wide = run(Config::hybrid(4, 1), src);
    assert_eq!(narrow.reg_g(0, g(1)), 4);
    assert_eq!(wide.reg_g(0, g(1)), 4);
    // Width cannot shorten the dependence chain itself; at most the
    // final (independent) halt co-issues from the window.
    let (n, w) = (narrow.stats().cycles, wide.stats().cycles);
    assert!(w <= n && n - w <= 1, "serial chain must not speed up: {n} vs {w}");
}

#[test]
fn architectural_results_identical_across_configs() {
    // The same single-thread program produces identical memory and
    // registers on every machine shape (timing differs, results not).
    let src = "
        li   r1, #7
        mul  r2, r1, r1
        cvtif f1, r2
        fadd f2, f1, f1
        lif  f3, #0.5
        fmul f4, f2, f3
        cvtfi r3, f4
        sw   r3, 900(r0)
        sra  r4, r2, #2
        xor  r5, r4, r1
        sw   r5, 901(r0)
        halt
    ";
    let configs = [
        Config::base_risc(),
        Config::multithreaded(1),
        Config::multithreaded(4),
        Config::hybrid(2, 2),
        Config::multithreaded(2).with_standby(false),
        Config::multithreaded(2).with_private_fetch(true),
    ];
    for config in configs {
        let m = run(config.clone(), src);
        assert_eq!(m.memory().read_i64(900).unwrap(), 49, "{config:?}");
        assert_eq!(m.memory().read_i64(901).unwrap(), 12 ^ 7, "{config:?}");
    }
}

#[test]
fn data_image_loads_before_execution() {
    let src = "
        .data
        v: .word 11, 22, 33
        .text
        lw r1, v(r0)
        lw r2, 1(r0)
        add r3, r1, r2
        sw r3, 10(r0)
        halt
    ";
    let m = run(Config::base_risc(), src);
    assert_eq!(m.memory().read_i64(10).unwrap(), 33);
}

// ---------------------------------------------------------------------
// Machine checks
// ---------------------------------------------------------------------

fn run_err(config: Config, src: &str) -> MachineError {
    let prog = assemble(src).unwrap();
    let mut m = Machine::new(config, &prog).unwrap();
    m.run().expect_err("run must fail")
}

#[test]
fn watchdog_catches_infinite_loops() {
    let mut config = Config::base_risc();
    config.max_cycles = 10_000;
    let err = run_err(config, "loop: j loop");
    assert!(matches!(err, MachineError::Watchdog { cycles: 10_000 }));
}

#[test]
fn watchdog_catches_queue_deadlock() {
    // Reading an empty queue with no producer interlocks forever.
    let mut config = Config::multithreaded(2);
    config.max_cycles = 10_000;
    let err = run_err(config, "qmap r10, r11\nadd r1, r10, #0\nhalt");
    assert!(matches!(err, MachineError::Watchdog { .. }));
}

#[test]
fn running_off_the_end_is_a_machine_check() {
    let err = run_err(Config::base_risc(), "nop\nnop");
    assert!(matches!(err, MachineError::PcOutOfRange { .. }), "{err:?}");
}

#[test]
fn memory_fault_reports_pc() {
    let mut config = Config::base_risc();
    config.mem_words = 16;
    let err = run_err(config, "li r1, #1000\nnop\nnop\nlw r2, 0(r1)\nhalt");
    match err {
        MachineError::Mem { pc, .. } => assert_eq!(pc, 3),
        other => panic!("expected Mem error, got {other:?}"),
    }
}

#[test]
fn fork_into_busy_slot_is_an_error() {
    // Fork twice: the second fork finds slots occupied.
    let mut config = Config::multithreaded(2);
    config.context_frames = 4;
    let err = run_err(config, "fastfork\nfastfork\nhalt");
    assert!(matches!(err, MachineError::ForkBusy { .. }), "{err:?}");
}

#[test]
fn queue_misuse_is_detected() {
    let err = run_err(Config::multithreaded(2), "qmap r10, r11\nfastfork\nadd r1, r11, #0\nhalt");
    assert!(matches!(err, MachineError::QueueMisuse { .. }), "{err:?}");

    let err = run_err(Config::multithreaded(2), "qmap r10, r10\nhalt");
    assert!(matches!(err, MachineError::QueueMisuse { .. }), "{err:?}");
}

#[test]
fn empty_program_rejected() {
    let err = Machine::new(Config::base_risc(), &Program::default()).unwrap_err();
    assert!(matches!(err, MachineError::EmptyProgram));
}

#[test]
fn priority_token_skips_halted_slots() {
    // Thread 0 halts without rotating; thread 1 waits at chgpri. The
    // schedule units skip the empty slot so the rotation token keeps
    // circulating and thread 1 completes instead of deadlocking.
    let mut config = Config::multithreaded(2);
    config.max_cycles = 10_000;
    let m = run(
        config,
        "setrot explicit\nfastfork\nlpid r1\nbeq r1, #0, zero\nchgpri\nhalt\nzero: halt",
    );
    assert_eq!(m.stats().instructions, 5 + 4 /* per-thread paths */);
}

#[test]
fn drain_fences_pending_stores() {
    // Two stores contend for the load/store unit; the second sits in a
    // standby station. `drain` must not let the flag store issue until
    // both are performed, so a polling reader on another thread never
    // observes the flag without the data.
    let src = "
        fastfork
        lpid r1
        bne  r1, #0, reader
        li   r2, #41
        sw   r2, 900(r0)     ; data (may linger in standby)
        li   r3, #42
        sw   r3, 901(r0)     ; more data
        drain                ; fence
        li   r4, #1
        sw   r4, 902(r0)     ; flag
        halt
    reader:
        lw   r5, 902(r0)     ; poll the flag
        beq  r5, #0, reader
        lw   r6, 900(r0)
        lw   r7, 901(r0)
        sw   r6, 903(r0)
        sw   r7, 904(r0)
        halt
    ";
    let m = run(Config::multithreaded(2), src);
    assert_eq!(m.memory().read_i64(903).unwrap(), 41);
    assert_eq!(m.memory().read_i64(904).unwrap(), 42);
}
