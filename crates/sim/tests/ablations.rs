//! Tests for the ablation knobs and for regressions found during
//! development.

use hirata_asm::assemble;
use hirata_sim::{Config, Machine};

fn run(config: Config, src: &str) -> Machine {
    let prog = assemble(src).expect("assembles");
    let mut m = Machine::new(config, &prog).expect("builds");
    m.run().expect("runs");
    m
}

#[test]
fn fastfork_waits_for_outstanding_writes() {
    // Regression: a fork issued while a parent's load was still in
    // flight used to clone a permanently-busy scoreboard bit into the
    // children (and a stale value). The fork must interlock until the
    // parent's register set is quiescent.
    let src = "
        .data
        c: .word 7777
        .text
        lw   r5, c(r0)       ; still in flight when fastfork decodes
        fastfork
        lpid r1
        sw   r5, 100(r1)     ; every child must see 7777
        halt
    ";
    let mut config = Config::multithreaded(4);
    config.max_cycles = 100_000;
    let m = run(config, src);
    for lp in 0..4 {
        assert_eq!(m.memory().read_i64(100 + lp).unwrap(), 7777, "thread {lp}");
    }
}

#[test]
fn deeper_standby_stations_never_hurt() {
    // Load-heavy two-thread contention: depth 2 can only help.
    let src = "
        fastfork
        lw r1, 10(r0)
        lw r2, 11(r0)
        lw r3, 12(r0)
        lw r4, 13(r0)
        add r5, r1, r2
        add r6, r3, r4
        halt
    ";
    let cycles = |depth: usize| {
        let mut config = Config::multithreaded(2);
        config.standby_depth = depth;
        run(config, src).stats().cycles
    };
    let (d1, d2, d4) = (cycles(1), cycles(2), cycles(4));
    assert!(d2 <= d1, "depth 2 vs 1: {d2} vs {d1}");
    assert!(d4 <= d2, "depth 4 vs 2: {d4} vs {d2}");
}

#[test]
fn fall_through_fast_path_skips_the_branch_shadow() {
    // A loop whose conditional branch is not taken until the end: with
    // the fast path, the not-taken branch costs one issue slot instead
    // of a full refetch.
    let src = "
        li r1, #30
    loop:
        sub r1, r1, #1
        beq r1, #0, out      ; not taken 29 times
        j loop
    out:
        halt
    ";
    let paper = run(Config::multithreaded(1), src).stats().cycles;
    let mut fast_cfg = Config::multithreaded(1);
    fast_cfg.refetch_fallthrough = false;
    let fast = run(fast_cfg, src).stats().cycles;
    // 29 not-taken branches x (5-cycle shadow - 1 issue slot) saved.
    assert!(
        fast + 4 * 29 <= paper,
        "fast path should save ~4 cycles per not-taken branch: {paper} vs {fast}"
    );
}

#[test]
fn fall_through_fast_path_preserves_results() {
    let src = "
        li r1, #10
        li r2, #0
    loop:
        rem r3, r1, #2
        beq r3, #0, even
        add r2, r2, r1
    even:
        sub r1, r1, #1
        bne r1, #0, loop
        sw r2, 50(r0)
        halt
    ";
    let paper = run(Config::multithreaded(1), src);
    let mut cfg = Config::multithreaded(1);
    cfg.refetch_fallthrough = false;
    let fast = run(cfg, src);
    let want: i64 = (1..=10).filter(|v| v % 2 == 1).sum();
    assert_eq!(paper.memory().read_i64(50).unwrap(), want);
    assert_eq!(fast.memory().read_i64(50).unwrap(), want);
    assert!(fast.stats().cycles < paper.stats().cycles);
}

#[test]
fn trapped_threads_replay_standby_memory_ops() {
    // Two remote loads back to back: the second can be sitting in the
    // load/store standby station when the first traps. Both must land
    // in the access requirement buffer and replay on resume.
    use hirata_mem::DsmMemory;
    let src = "
        lw r1, 5000(r0)
        lw r2, 5001(r0)
        add r3, r1, r2
        sw r3, 100(r0)
        halt
    ";
    let prog = assemble(src).unwrap();
    let mut config = Config::multithreaded(1).with_context_frames(2);
    config.mem_words = 1 << 16;
    let mut m =
        Machine::with_mem_model(config, &prog, Box::new(DsmMemory::new(4096, 2, 100))).unwrap();
    m.run().unwrap();
    assert_eq!(m.memory().read_i64(100).unwrap(), 0); // zeros summed
    assert!(m.stats().context_switches >= 1);
}

#[test]
fn standby_depth_zero_is_rejected() {
    let mut config = Config::multithreaded(1);
    config.standby_depth = 0;
    assert!(config.validate().is_err());
}
