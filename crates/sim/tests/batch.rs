//! Batched-stepping contract: round-robin interleaved execution in a
//! [`MachineBatch`] is observationally identical to running each
//! machine to completion on its own — byte-identical statistics for
//! every lane, whatever the stride — and lane failures stay isolated.

use hirata_asm::assemble;
use hirata_isa::{FuConfig, Program};
use hirata_sim::{Config, LaneError, Machine, MachineBatch, MachineError, RunStats};

/// The Figure 6 pointer-chase while loop, shrunk: a genuinely
/// multi-threaded workload with fork/kill and memory traffic.
fn fig6_like() -> Program {
    assemble(
        "
        fastfork
        lpid r1
        mul  r2, r1, r1
        add  r3, r1, r2
        sw   r2, 100(r1)
        sw   r3, 200(r1)
        lw   r4, 100(r1)
        add  r5, r4, r3
        sw   r5, 300(r1)
        halt
    ",
    )
    .expect("assembles")
}

/// The slots x load/store grid the serving daemon sweeps.
fn grid_configs() -> Vec<Config> {
    let mut configs = Vec::new();
    for ls in [1usize, 2] {
        for slots in [1usize, 2, 4, 8] {
            let fu = if ls == 2 { FuConfig::paper_two_ls() } else { FuConfig::paper_one_ls() };
            configs.push(Config::multithreaded(slots).with_fu(fu));
        }
    }
    configs
}

fn solo_stats(program: &Program, config: Config) -> RunStats {
    let mut m = Machine::new(config, program).expect("builds");
    m.run().expect("runs").clone()
}

#[test]
fn batched_stepping_matches_individual_runs() {
    let program = fig6_like();
    let solo: Vec<RunStats> = grid_configs().into_iter().map(|c| solo_stats(&program, c)).collect();

    // Interleaved execution at several strides, including a stride of
    // one cycle (maximal interleaving) and one larger than any run.
    for stride in [1u64, 7, 4096, u64::MAX / 2] {
        let batch = MachineBatch::from_configs(&program, grid_configs()).expect("constructs");
        let results = batch.run_all(stride);
        assert_eq!(results.len(), solo.len());
        for (i, (result, want)) in results.iter().zip(&solo).enumerate() {
            let machine = result.as_ref().unwrap_or_else(|e| panic!("lane {i}: {e}"));
            assert_eq!(machine.stats(), want, "lane {i} diverged at stride {stride}");
        }
    }
}

#[test]
fn lanes_join_and_retire_independently() {
    let program = fig6_like();
    let mut batch = MachineBatch::new();
    let a = batch.insert(Machine::new(Config::multithreaded(8), &program).expect("builds"));

    // Step a while, then add a second lane mid-flight.
    batch.step_round(16);
    let b = batch.insert(Machine::new(Config::multithreaded(2), &program).expect("builds"));
    assert_ne!(a, b);

    while batch.step_round(16) > 0 {}
    let mut done = batch.drain_finished();
    done.sort_by_key(|(id, _)| *id);
    assert_eq!(done.len(), 2);
    assert_eq!(
        done[0].1.as_ref().expect("lane a").stats(),
        &solo_stats(&program, Config::multithreaded(8))
    );
    assert_eq!(
        done[1].1.as_ref().expect("lane b").stats(),
        &solo_stats(&program, Config::multithreaded(2))
    );
}

#[test]
fn failing_lane_does_not_poison_siblings() {
    let program = fig6_like();
    // A watchdog-limited infinite loop fails; its sibling completes.
    let looping = assemble("loop: j loop").expect("assembles");
    let mut tight = Config::multithreaded(1);
    tight.max_cycles = 50;

    let mut batch = MachineBatch::new();
    let bad = batch.insert(Machine::new(tight, &looping).expect("builds"));
    let good = batch.insert(Machine::new(Config::multithreaded(4), &program).expect("builds"));

    while batch.step_round(8) > 0 {}
    let done = batch.drain_finished();
    assert_eq!(done.len(), 2);
    for (id, result) in done {
        if id == bad {
            match result {
                Err(LaneError::Machine(MachineError::Watchdog { .. })) => {}
                other => panic!("expected watchdog, got {other:?}"),
            }
        } else {
            assert_eq!(id, good);
            assert_eq!(
                result.expect("sibling completes").stats(),
                &solo_stats(&program, Config::multithreaded(4))
            );
        }
    }
}

#[test]
fn removed_lane_stops_stepping() {
    let program = fig6_like();
    let mut batch = MachineBatch::new();
    let a = batch.insert(Machine::new(Config::multithreaded(2), &program).expect("builds"));
    let b = batch.insert(Machine::new(Config::multithreaded(4), &program).expect("builds"));
    batch.step_round(4);
    let removed = batch.remove(a).expect("still live");
    assert!(removed.cycles() > 0);
    assert_eq!(batch.remove(a).map(|_| ()), None);
    while batch.step_round(64) > 0 {}
    let done = batch.drain_finished();
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].0, b);
}

#[test]
fn batch_aggregates_warp_counters() {
    // A long affine counted loop: the loop-warp engine detects it and
    // leaps, so the warp lane contributes non-zero counters.
    let looping = assemble(
        "
        li r1, #20000
        li r2, #0
        li r3, #4096
    loop:
        sw r2, 0(r3)
        add r3, r3, #1
        add r2, r2, #3
        sub r1, r1, #1
        bne r1, #0, loop
        halt
    ",
    )
    .expect("assembles");

    let mut solo = Machine::new(Config::multithreaded(2), &looping).expect("builds");
    solo.run().expect("runs");
    let solo_warp = solo.warp_stats();
    assert!(solo_warp.leaps > 0, "the counted loop should warp");

    let mut batch = MachineBatch::new();
    batch.insert(Machine::new(Config::multithreaded(2), &looping).expect("builds"));
    batch
        .insert(Machine::new(Config::multithreaded(2).with_warp(false), &looping).expect("builds"));
    while batch.step_round(4096) > 0 {}
    // Finished-but-undrained lanes still count: the warp lane's
    // counters plus the warp-off lane's zeros.
    assert_eq!(batch.warp_stats(), solo_warp);
    batch.drain_finished();
    assert_eq!(batch.warp_stats(), Default::default());
}
