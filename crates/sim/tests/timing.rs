//! Pipeline-timing tests: every timing statement §2.1.2 makes is
//! asserted here against the issue trace.

use hirata_asm::assemble;
use hirata_isa::{FuClass, FuConfig, RotationMode};
use hirata_sim::{Config, Machine};

/// Runs `src` on `config` with tracing and returns (machine, issue
/// cycles by pc for slot `slot`'s first visit to each pc).
fn trace_run(config: Config, src: &str) -> Machine {
    let prog = assemble(src).expect("test program assembles");
    let mut m = Machine::new(config, &prog).expect("machine builds");
    m.set_trace(true);
    m.run().expect("program runs");
    m
}

/// Issue cycle of the first issue at instruction address `pc`.
fn issue_cycle(m: &Machine, pc: u32) -> u64 {
    m.trace()
        .iter()
        .find(|e| e.pc == pc)
        .unwrap_or_else(|| panic!("no issue recorded for @{pc}"))
        .cycle
}

#[test]
fn dependent_alu_separation_is_three_cycles_multithreaded() {
    // §2.1.2: "assuming instruction I2 uses the result of instruction
    // I1 as a source, at least three cycles are required between I1
    // and I2" — ALU result latency 2, separation 2 + 1 = 3.
    let m = trace_run(Config::multithreaded(1), "li r1, #5\nadd r2, r1, r1\nhalt");
    assert_eq!(issue_cycle(&m, 1) - issue_cycle(&m, 0), 3);
}

#[test]
fn dependent_alu_separation_is_three_cycles_base_risc() {
    // "The same cycles are also required in the base RISC pipeline."
    let m = trace_run(Config::base_risc(), "li r1, #5\nadd r2, r1, r1\nhalt");
    assert_eq!(issue_cycle(&m, 1) - issue_cycle(&m, 0), 3);
}

#[test]
fn independent_instructions_issue_every_cycle() {
    let m = trace_run(Config::base_risc(), "li r1, #1\nli r2, #2\nli r3, #3\nhalt");
    assert_eq!(issue_cycle(&m, 1) - issue_cycle(&m, 0), 1);
    assert_eq!(issue_cycle(&m, 2) - issue_cycle(&m, 1), 1);
}

#[test]
fn fp_add_consumer_waits_result_latency_plus_one() {
    // FP add result latency 4 -> separation 5.
    let m =
        trace_run(Config::multithreaded(1), "lif f1, #1.0\nfadd f2, f1, f1\nfadd f3, f2, f2\nhalt");
    // lif has result latency 2 (FP move class), fadd 4.
    assert_eq!(issue_cycle(&m, 1) - issue_cycle(&m, 0), 3);
    assert_eq!(issue_cycle(&m, 2) - issue_cycle(&m, 1), 5);
}

#[test]
fn load_use_separation_is_five_cycles() {
    // Load result latency 4 (2-cycle data cache) -> consumer 5 later.
    let m = trace_run(Config::multithreaded(1), "lw r1, 100(r0)\nadd r2, r1, r1\nhalt");
    assert_eq!(issue_cycle(&m, 1) - issue_cycle(&m, 0), 5);
}

#[test]
fn branch_shadow_is_five_cycles_multithreaded_and_four_base() {
    // §2.1.2: delay between a branch I1 and the next executed
    // instruction I3 is 4 cycles on the base pipeline, 5 on the
    // multithreaded pipeline.
    let src = "nop\nj over\nnop\nover: nop\nhalt";
    let m = trace_run(Config::multithreaded(1), src);
    assert_eq!(issue_cycle(&m, 3) - issue_cycle(&m, 1), 5);

    let m = trace_run(Config::base_risc(), src);
    assert_eq!(issue_cycle(&m, 3) - issue_cycle(&m, 1), 4);
}

#[test]
fn not_taken_branch_pays_the_same_shadow() {
    // The fetch request goes out at the end of D1 regardless of the
    // outcome (§2.1.2), so both directions refetch.
    let src = "nop\nbeq r0, #1, away\nnop\naway: halt";
    let m = trace_run(Config::multithreaded(1), src);
    assert_eq!(issue_cycle(&m, 2) - issue_cycle(&m, 1), 5);
}

#[test]
fn loads_on_one_unit_issue_every_two_cycles() {
    // Issue latency 2 on the load/store unit (2-cycle cache).
    let m = trace_run(
        Config::multithreaded(1),
        "lw r1, 10(r0)\nlw r2, 11(r0)\nlw r3, 12(r0)\nlw r4, 13(r0)\nhalt",
    );
    let start = issue_cycle(&m, 0);
    // Loads are *selected* every 2 cycles; the fourth load cannot have
    // been selected before start + 6, so the whole run reflects the
    // 2-cycle cadence. The run is ~2 cycles per load.
    let stats = m.stats();
    assert_eq!(stats.fu_invocations[FuClass::LoadStore.index()], 4);
    // Issue of the last load must be at least 2*(4-1)-1 after the first
    // (standby stations allow issue one cycle ahead of selection).
    assert!(issue_cycle(&m, 3) - start >= 5, "loads must be rate-limited by issue latency");
}

#[test]
fn two_load_store_units_double_load_throughput() {
    let body: String = (0..16).map(|i| format!("lw r{}, {}(r0)\n", (i % 8) + 1, 10 + i)).collect();
    let src = format!("{body}halt");
    let one = trace_run(Config::multithreaded(1), &src);
    let two = trace_run(Config::multithreaded(1).with_fu(FuConfig::paper_two_ls()), &src);
    let c1 = one.stats().cycles;
    let c2 = two.stats().cycles;
    assert!(
        c1 > c2 && (c1 - c2) as f64 >= 0.5 * 16.0,
        "two units should save roughly one cycle per load: {c1} vs {c2}"
    );
}

#[test]
fn standby_station_lets_a_younger_alu_op_proceed() {
    // §2.1.1's example: while a shift stays in a standby station, a
    // succeeding add from the same thread is sent to the ALU.
    // Construct a shifter conflict across threads: both threads shift
    // at once, the loser's next add should not be delayed (with
    // standby) but is delayed without.
    let src = "
        fastfork
        sll r1, r31, #1
        sll r2, r31, #2
        add r3, r31, #3
        add r4, r31, #4
        halt
    ";
    let with = trace_run(Config::multithreaded(2), src);
    let without = trace_run(Config::multithreaded(2).with_standby(false), src);
    assert!(
        with.stats().cycles <= without.stats().cycles,
        "standby stations must never slow a run ({} vs {})",
        with.stats().cycles,
        without.stats().cycles
    );
}

#[test]
fn rotation_interval_counts_rotations() {
    let src = "li r1, #1\nli r2, #2\nli r3, #3\nli r4, #4\nhalt";
    let m = trace_run(
        Config::multithreaded(2).with_rotation(RotationMode::Implicit { interval: 4 }),
        src,
    );
    let cycles = m.stats().cycles;
    assert_eq!(m.stats().rotations, cycles / 4, "one rotation every 4 cycles");
}

#[test]
fn utilization_accounts_invocations_times_latency() {
    let m = trace_run(Config::multithreaded(1), "lw r1, 10(r0)\nlw r2, 11(r0)\nhalt");
    let stats = m.stats();
    let i = FuClass::LoadStore.index();
    assert_eq!(stats.fu_invocations[i], 2);
    assert_eq!(stats.fu_busy[i], 4); // 2 invocations x issue latency 2
    let util = stats.utilization(FuClass::LoadStore);
    assert!((util - 400.0 / stats.cycles as f64).abs() < 1e-9);
}

#[test]
fn single_thread_on_multithreaded_pipeline_is_slower_than_base() {
    // The extra pipeline stage (branch shadow 5 vs 4) damages single
    // thread performance (§2.1.2), visible on branchy code.
    let src = "
        li r1, #20
    loop:
        sub r1, r1, #1
        bne r1, #0, loop
        halt
    ";
    let base = trace_run(Config::base_risc(), src);
    let multi = trace_run(Config::multithreaded(1), src);
    assert!(
        multi.stats().cycles > base.stats().cycles,
        "multithreaded pipeline must pay for its extra stage on one thread"
    );
}

#[test]
fn private_fetch_never_hurts() {
    let src = "
        fastfork
        li r2, #10
    loop:
        sub r2, r2, #1
        bne r2, #0, loop
        halt
    ";
    for slots in [2, 4] {
        let shared = trace_run(Config::multithreaded(slots), src);
        let private = trace_run(Config::multithreaded(slots).with_private_fetch(true), src);
        assert!(
            private.stats().cycles <= shared.stats().cycles,
            "private fetch units must not be slower ({slots} slots)"
        );
    }
}

#[test]
fn fetch_contention_can_extend_the_branch_shadow() {
    // "it could become more than five if some threads encounter
    // branches at the same time" — with several threads branching
    // simultaneously the shared fetch unit serializes redirects.
    let src = "
        fastfork
        nop
        j tail
        nop
    tail:
        halt
    ";
    let m = trace_run(Config::multithreaded(4), src);
    // The jump is at pc 2, target at pc 4; find per-slot shadows.
    let mut shadows = Vec::new();
    for slot in 0..4 {
        let jmp = m.trace().iter().find(|e| e.slot == slot && e.pc == 2).unwrap().cycle;
        let tgt = m.trace().iter().find(|e| e.slot == slot && e.pc == 4).unwrap().cycle;
        shadows.push(tgt - jmp);
    }
    assert!(shadows.iter().all(|&s| s >= 5));
    assert!(shadows.iter().any(|&s| s > 5), "some slot must see an extended shadow: {shadows:?}");
}

#[test]
fn waw_interlocks_until_the_first_writer_completes() {
    // Two writes to r1 with nothing between them: the second issues
    // only after the first's scoreboard bit clears (WAW), i.e. mul's
    // result latency 6 + 1 cycles later.
    let m = trace_run(Config::multithreaded(1), "mul r1, r31, #3\nli r1, #9\nhalt");
    assert_eq!(issue_cycle(&m, 1) - issue_cycle(&m, 0), 7);
}

#[test]
fn queue_values_carry_the_producer_result_latency() {
    // Producer enqueues via an ALU op (result latency 2); the consumer
    // dequeues no earlier than selection + 3 — observable as the gap
    // between the producer's enqueue issue and the consumer's dequeue
    // issue when the consumer is already waiting.
    let src = "
        qmap r10, r11
        fastfork
        lpid r1
        beq  r1, #0, producer
        mv   r2, r10         ; waits for the queue
        halt
    producer:
        li   r3, #40         ; give the consumer time to park
    spin:
        sub  r3, r3, #1
        bne  r3, #0, spin
        add  r11, r31, #5    ; enqueue
        halt
    ";
    let m = trace_run(Config::multithreaded(2), src);
    let enqueue_pc = 9; // `add r11, r31, #5`
    let dequeue_pc = 4; // `mv r2, r10`
    let enq = m.trace().iter().find(|e| e.pc == enqueue_pc).unwrap().cycle;
    let deq = m.trace().iter().find(|e| e.pc == dequeue_pc).unwrap().cycle;
    assert_eq!(deq - enq, 3, "queue entries become readable at result latency + 1");
}

#[test]
fn frozen_priority_starves_the_contender() {
    // With an enormous rotation interval, slot 0 keeps the highest
    // priority; under load/store contention slot 0 must finish first.
    let body: String = (0..12).map(|i| format!("lw r{}, {}(r0)\n", (i % 6) + 2, i)).collect();
    let src = format!("fastfork\n{body}halt");
    let m = trace_run(
        Config::multithreaded(2).with_rotation(RotationMode::Implicit { interval: 100_000 }),
        &src,
    );
    let halt_pc = 13;
    let halt0 = m.trace().iter().find(|e| e.slot == 0 && e.pc == halt_pc).unwrap().cycle;
    let halt1 = m.trace().iter().find(|e| e.slot == 1 && e.pc == halt_pc).unwrap().cycle;
    assert!(halt0 < halt1, "the permanently-highest slot must win contention: {halt0} vs {halt1}");
}

#[test]
fn context_switch_penalty_is_visible() {
    use hirata_mem::DsmMemory;
    let prog = assemble("lpid r1\nlw r2, 5000(r1)\nsw r2, 100(r1)\nhalt").unwrap();
    let cycles = |penalty: u32| {
        let mut config = Config::multithreaded(1).with_context_frames(2);
        config.switch_penalty = penalty;
        config.mem_words = 1 << 16;
        let mut m =
            Machine::with_mem_model(config, &prog, Box::new(DsmMemory::new(4096, 2, 50))).unwrap();
        m.add_thread(0).unwrap();
        m.run().unwrap().cycles
    };
    let (fast, slow) = (cycles(0), cycles(20));
    assert!(slow > fast, "a larger rebind penalty must cost cycles: {fast} vs {slow}");
}
