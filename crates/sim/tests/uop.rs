//! Differential proof for the µop execution path: every instruction
//! form — and seeded random instructions across all forms — must
//! produce bit-identical functional-unit effects whether executed
//! through the threaded-dispatch handler table
//! ([`hirata_sim::exec::dispatch`] on the predecoded
//! [`hirata_sim::ExecOp`] code and pre-folded immediate) or the
//! enum-match oracle ([`hirata_sim::exec::fu_action`] re-matching the
//! raw `Inst`). Same shape as `predecode.rs`'s raw-decode cross-check:
//! the hot path is only trusted because the oracle agrees on
//! everything, including NaN bit patterns, wrapping arithmetic, and
//! zero divisors.

use hirata_isa::{
    BranchCond, FReg, FpBinOp, FpUnOp, GReg, GSrc, Inst, IntOp, Reg, RotationMode, NUM_FREGS,
    NUM_GREGS,
};
use hirata_sim::exec::{dispatch, fu_action};
use hirata_sim::{DecodedInst, ExecOp, EXEC_OP_COUNT};

/// Deterministic SplitMix64 so the random sweep reproduces exactly.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Operand bit patterns that exercise the interesting edges of every
/// handler: zeros (divisors!), small values, sign boundaries, shift
/// counts past the 6-bit mask, IEEE specials, and subnormals.
fn edge_operands() -> Vec<u64> {
    vec![
        0,
        1,
        7,
        63,
        64,
        100,
        (-1i64) as u64,
        (-50i64) as u64,
        i64::MAX as u64,
        i64::MIN as u64,
        1.5f64.to_bits(),
        (-2.25f64).to_bits(),
        0.0f64.to_bits(),
        (-0.0f64).to_bits(),
        f64::NAN.to_bits(),
        f64::INFINITY.to_bits(),
        f64::NEG_INFINITY.to_bits(),
        f64::MIN_POSITIVE.to_bits() >> 1, // subnormal
    ]
}

/// Asserts handler-table/oracle agreement for `inst` across an
/// operand grid. The µop code and immediate come from the predecoded
/// store exactly as the machine's hot path reads them.
fn assert_dispatch_matches_oracle(inst: Inst, vals_grid: &[[u64; 2]], what: &str) {
    let di = DecodedInst::of(inst);
    for &vals in vals_grid {
        for (lpid, nlp) in [(0i64, 1i64), (3, 8), (7, 4)] {
            let table = dispatch(di.exec_op, vals, di.imm, lpid, nlp);
            let oracle = fu_action(&inst, vals, lpid, nlp);
            assert_eq!(
                table, oracle,
                "µop table diverged from the enum-match oracle for {what} \
                 ({inst:?}, vals {vals:?}, lpid {lpid}, nlp {nlp})"
            );
        }
    }
}

/// The full operand grid: every pair drawn from the edge patterns.
fn full_grid() -> Vec<[u64; 2]> {
    let edges = edge_operands();
    let mut grid = Vec::new();
    for &a in &edges {
        for &b in &edges {
            grid.push([a, b]);
        }
    }
    grid
}

/// Every instruction form the ISA can produce, including all operator
/// and condition variants — one exemplar per µop code plus the
/// decode-unit sentinel forms.
fn all_forms() -> Vec<Inst> {
    let mut forms = Vec::new();
    for op in [
        IntOp::Add,
        IntOp::Sub,
        IntOp::And,
        IntOp::Or,
        IntOp::Xor,
        IntOp::Slt,
        IntOp::Sle,
        IntOp::Seq,
        IntOp::Sne,
        IntOp::Sll,
        IntOp::Srl,
        IntOp::Sra,
        IntOp::Mul,
        IntOp::Div,
        IntOp::Rem,
    ] {
        forms.push(Inst::IntOp { op, rd: GReg(1), rs: GReg(2), src2: GSrc::Reg(GReg(3)) });
        forms.push(Inst::IntOp { op, rd: GReg(1), rs: GReg(2), src2: GSrc::Imm(-37) });
    }
    forms.push(Inst::Li { rd: GReg(4), imm: -123456789 });
    forms.push(Inst::Li { rd: GReg(4), imm: i64::MIN });
    forms.push(Inst::LiF { fd: FReg(4), imm: -0.0 });
    forms.push(Inst::LiF { fd: FReg(4), imm: f64::NAN });
    for op in [FpBinOp::FAdd, FpBinOp::FSub, FpBinOp::FMul, FpBinOp::FDiv] {
        forms.push(Inst::FpBin { op, fd: FReg(1), fs: FReg(2), ft: FReg(3) });
    }
    for op in [FpUnOp::FAbs, FpUnOp::FNeg, FpUnOp::FMov] {
        forms.push(Inst::FpUn { op, fd: FReg(1), fs: FReg(2) });
    }
    for cond in [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Le,
        BranchCond::Gt,
        BranchCond::Ge,
    ] {
        forms.push(Inst::FpCmp { cond, rd: GReg(5), fs: FReg(1), ft: FReg(2) });
    }
    forms.push(Inst::CvtIF { fd: FReg(1), rs: GReg(2) });
    forms.push(Inst::CvtFI { rd: GReg(2), fs: FReg(1) });
    forms.push(Inst::Lpid { rd: GReg(6) });
    forms.push(Inst::Nlp { rd: GReg(6) });
    forms.push(Inst::Load { dst: Reg::G(GReg(1)), base: GReg(2), off: -8 });
    forms.push(Inst::Load { dst: Reg::F(FReg(1)), base: GReg(2), off: 48 });
    forms.push(Inst::Store { src: Reg::G(GReg(1)), base: GReg(2), off: 16, gated: false });
    forms.push(Inst::Store { src: Reg::F(FReg(1)), base: GReg(2), off: 0, gated: true });
    // Decode-unit forms: lowered to the sentinel, both paths say None.
    forms.push(Inst::Branch { cond: BranchCond::Eq, rs: GReg(1), src2: GSrc::Imm(0), target: 2 });
    forms.push(Inst::Jump { target: 1 });
    forms.push(Inst::JumpReg { rs: GReg(1) });
    forms.push(Inst::Halt);
    forms.push(Inst::Nop);
    forms.push(Inst::FastFork);
    forms.push(Inst::ChgPri);
    forms.push(Inst::KillOthers);
    forms.push(Inst::SetRotation { mode: RotationMode::Implicit { interval: 8 } });
    forms.push(Inst::QMap { read: Reg::G(GReg(9)), write: Reg::G(GReg(10)) });
    forms.push(Inst::QUnmap);
    forms.push(Inst::Drain);
    forms
}

#[test]
fn every_inst_form_dispatches_identically_to_the_oracle() {
    let grid = full_grid();
    let mut codes_seen = [false; EXEC_OP_COUNT];
    for inst in all_forms() {
        codes_seen[DecodedInst::of(inst).exec_op as usize] = true;
        assert_dispatch_matches_oracle(inst, &grid, "form sweep");
    }
    assert!(
        codes_seen.iter().all(|&seen| seen),
        "the form sweep failed to exercise some ExecOp code: {codes_seen:?}"
    );
}

#[test]
fn decode_unit_forms_lower_to_the_sentinel() {
    for inst in all_forms() {
        let di = DecodedInst::of(inst);
        assert_eq!(
            di.exec_op == ExecOp::DecodeUnit,
            di.fu.is_none(),
            "µop sentinel out of sync with the FU class for {inst:?}"
        );
    }
}

/// A random instruction across every executable form, with fields
/// randomized over their full architectural ranges (all 32 G and 32 F
/// registers, full-range immediates and offsets).
fn random_inst(rng: &mut SplitMix) -> Inst {
    let g = |rng: &mut SplitMix| GReg(rng.below(NUM_GREGS as u64) as u8);
    let f = |rng: &mut SplitMix| FReg(rng.below(NUM_FREGS as u64) as u8);
    let int_ops = [
        IntOp::Add,
        IntOp::Sub,
        IntOp::And,
        IntOp::Or,
        IntOp::Xor,
        IntOp::Slt,
        IntOp::Sle,
        IntOp::Seq,
        IntOp::Sne,
        IntOp::Sll,
        IntOp::Srl,
        IntOp::Sra,
        IntOp::Mul,
        IntOp::Div,
        IntOp::Rem,
    ];
    match rng.below(12) {
        0 | 1 => Inst::IntOp {
            op: int_ops[rng.below(int_ops.len() as u64) as usize],
            rd: g(rng),
            rs: g(rng),
            src2: if rng.below(2) == 0 {
                GSrc::Reg(g(rng))
            } else {
                GSrc::Imm(rng.next() as i64 >> rng.below(40))
            },
        },
        2 => Inst::Li { rd: g(rng), imm: rng.next() as i64 },
        3 => Inst::LiF { fd: f(rng), imm: f64::from_bits(rng.next()) },
        4 => Inst::FpBin {
            op: [FpBinOp::FAdd, FpBinOp::FSub, FpBinOp::FMul, FpBinOp::FDiv][rng.below(4) as usize],
            fd: f(rng),
            fs: f(rng),
            ft: f(rng),
        },
        5 => Inst::FpUn {
            op: [FpUnOp::FAbs, FpUnOp::FNeg, FpUnOp::FMov][rng.below(3) as usize],
            fd: f(rng),
            fs: f(rng),
        },
        6 => Inst::FpCmp {
            cond: [
                BranchCond::Eq,
                BranchCond::Ne,
                BranchCond::Lt,
                BranchCond::Le,
                BranchCond::Gt,
                BranchCond::Ge,
            ][rng.below(6) as usize],
            rd: g(rng),
            fs: f(rng),
            ft: f(rng),
        },
        7 => Inst::CvtIF { fd: f(rng), rs: g(rng) },
        8 => Inst::CvtFI { rd: g(rng), fs: f(rng) },
        9 => Inst::Load {
            dst: if rng.below(2) == 0 { Reg::G(g(rng)) } else { Reg::F(f(rng)) },
            base: g(rng),
            off: rng.next() as i64 >> rng.below(40),
        },
        10 => Inst::Store {
            src: if rng.below(2) == 0 { Reg::G(g(rng)) } else { Reg::F(f(rng)) },
            base: g(rng),
            off: rng.next() as i64 >> rng.below(40),
            gated: rng.below(4) == 0,
        },
        _ => [Inst::Lpid { rd: g(rng) }, Inst::Nlp { rd: g(rng) }][rng.below(2) as usize],
    }
}

/// Seeded random sweep: 64 seeds × 64 instructions × random operand
/// pairs (raw 64-bit patterns, so integer and float interpretations
/// both get hostile inputs).
#[test]
fn seeded_random_programs_dispatch_identically_to_the_oracle() {
    for seed in 0..64u64 {
        let mut rng = SplitMix(0x00b00b5 ^ seed.wrapping_mul(0x9E3779B9));
        for _ in 0..64 {
            let inst = random_inst(&mut rng);
            let vals = [[rng.next(), rng.next()], [rng.next(), 0], [0, rng.next()]];
            assert_dispatch_matches_oracle(inst, &vals, &format!("random seed {seed}"));
        }
    }
}
