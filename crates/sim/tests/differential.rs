//! Differential lockstep testing: every program runs through both the
//! architectural [`Emulator`] (the golden model — no pipelines, no
//! latencies) and the cycle-level [`Machine`], and the two must agree
//! on the final architectural state.
//!
//! Coverage comes from three directions: the checked-in
//! `examples/asm/` programs (which exercise fork/kill/queue-ring/
//! priority semantics), generated straight-line programs (which sweep
//! arithmetic, float, and memory operations without control flow),
//! and a seeded fuzz campaign of structured random programs —
//! branches, counted loops, fig6-style eager queue-ring loops with
//! `chgpri`, gated stores, data-absence traps through the DSM
//! memory model, and long affine counted loops sized to bait the
//! loop-warp engine. Fuzzed programs run **four ways**: the emulator,
//! the plain cycle-level machine, the machine with the event-wheel
//! fast-forward, and the machine with fast-forward *and* loop-warp;
//! the machines must agree byte-for-byte on cycle counts, statistics,
//! issue-event streams (and, for the two traced runs, the full trace
//! event stream), and all must agree with the emulator on final
//! architectural state. A fuzz
//! failure is shrunk (greedy line removal preserving the failure
//! category) and the minimal program saved under
//! `target/diff-failures/` for replay. On divergence the lockstep
//! tests dump the last 50 trace events of the offending slot so the
//! failure is diagnosable from the report alone.

use hirata_isa::{Inst, Program};
use hirata_mem::DsmMemory;
use hirata_sim::{format_event, Config, Emulator, Machine, RingSink, TextSink};

/// Trace ring capacity: deep enough to hold the full tail of any slot.
const RING: usize = 1 << 16;

/// Runs `program` through emulator and machine on `slots` logical
/// processors and compares final memory — and, unless the program can
/// kill threads (a killed thread's registers depend on exactly where
/// the kill landed, which is timing), final register images too.
fn assert_lockstep(name: &str, program: &Program, slots: usize) {
    let config = Config::multithreaded(slots);
    let mem_words = config.mem_words;
    let max_cycles = config.max_cycles;

    let golden = Emulator::execute(program, slots, mem_words, max_cycles)
        .unwrap_or_else(|e| panic!("{name}/{slots} slots: emulator failed: {e}"));

    let mut machine = Machine::new(config, program)
        .unwrap_or_else(|e| panic!("{name}/{slots} slots: machine rejected program: {e}"));
    let sink = RingSink::new(RING);
    machine.attach_trace_sink(Box::new(sink.clone()));
    machine.run().unwrap_or_else(|e| panic!("{name}/{slots} slots: machine failed: {e}"));

    if golden.memory != *machine.memory() {
        let mismatch = first_memory_mismatch(&golden.memory, machine.memory());
        panic!(
            "{name}/{slots} slots: final memory diverges at word {mismatch:?}\n{}",
            dump_all_slots(&sink, slots)
        );
    }

    let kills = program.insts.iter().any(|i| matches!(i, Inst::KillOthers));
    if kills {
        return; // register state of killed threads is timing-dependent
    }
    for ctx in 0..slots {
        let machine_image = machine.register_image(ctx);
        if golden.regs[ctx] != machine_image {
            let reg = golden.regs[ctx]
                .iter()
                .zip(&machine_image)
                .position(|(a, b)| a != b)
                .expect("images differ");
            panic!(
                "{name}/{slots} slots: context {ctx} register {reg} diverges \
                 (emulator {:#x}, machine {:#x})\n{}",
                golden.regs[ctx][reg],
                machine_image[reg],
                dump_slot(&sink, ctx)
            );
        }
    }
}

fn first_memory_mismatch(a: &hirata_mem::Memory, b: &hirata_mem::Memory) -> Option<u64> {
    (0..a.size()).find(|&addr| a.read(addr).ok() != b.read(addr).ok())
}

fn dump_slot(sink: &RingSink, slot: usize) -> String {
    let tail: Vec<String> = sink.last_for_slot(slot, 50).iter().map(format_event).collect();
    format!("last {} trace events of slot {slot}:\n{}", tail.len(), tail.join("\n"))
}

fn dump_all_slots(sink: &RingSink, slots: usize) -> String {
    (0..slots).map(|s| dump_slot(sink, s)).collect::<Vec<_>>().join("\n")
}

// ---------------------------------------------------------------- examples

/// Every checked-in example program, against every slot count its
/// header advertises (they all self-adapt via `nlp`).
#[test]
fn examples_match_the_golden_model() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/asm");
    let mut names: Vec<_> = std::fs::read_dir(dir)
        .expect("examples/asm exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "s"))
        .collect();
    names.sort();
    assert!(names.len() >= 4, "expected the full example set, found {names:?}");
    for path in names {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&path).expect("example is readable");
        let program =
            hirata_asm::assemble(&src).unwrap_or_else(|e| panic!("{name} assembles: {e}"));
        for slots in [1, 2, 4] {
            assert_lockstep(&name, &program, slots);
        }
    }
}

/// Every example also runs four-way (emulator, plain machine, wheel
/// machine, warp machine): the event wheel and the loop-warp engine
/// must be invisible on real control-flow-heavy programs, not just
/// generated ones.
#[test]
fn examples_four_way_warp_parity() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/asm");
    for entry in std::fs::read_dir(dir).expect("examples/asm exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|x| x != "s") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&path).expect("example is readable");
        for slots in [1, 2, 4] {
            let case = FuzzCase { src: src.clone(), slots, remote_base: None };
            four_way(&case, &src)
                .unwrap_or_else(|e| panic!("{name} at {slots} slots diverges: {e}"));
        }
    }
}

// ------------------------------------------------- generated straight-line

/// Deterministic 64-bit generator (SplitMix64) so the generated
/// programs are identical on every run — no time or OS entropy.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random straight-line program: seed a few registers, then a run of
/// arithmetic / float / load / store instructions with no control
/// flow, finishing with stores of every live register and `halt`.
fn straight_line_program(seed: u64, len: usize) -> String {
    let mut rng = SplitMix(seed);
    let mut src = String::from(".text\n.entry main\nmain:\n");
    for r in 1..=6 {
        src.push_str(&format!("    li r{r}, #{}\n", rng.below(2000) as i64 - 1000));
    }
    for f in 1..=4 {
        src.push_str(&format!("    lif f{f}, #{}.{}\n", rng.below(40), rng.below(100)));
    }
    for _ in 0..len {
        let (d, a, b) = (1 + rng.below(6), 1 + rng.below(6), 1 + rng.below(6));
        let (fd, fa, fb) = (1 + rng.below(4), 1 + rng.below(4), 1 + rng.below(4));
        let addr = rng.below(64);
        match rng.below(10) {
            0 => src.push_str(&format!("    add r{d}, r{a}, r{b}\n")),
            1 => src.push_str(&format!("    sub r{d}, r{a}, r{b}\n")),
            2 => src.push_str(&format!("    mul r{d}, r{a}, r{b}\n")),
            3 => src.push_str(&format!("    add r{d}, r{a}, #{}\n", rng.below(100))),
            4 => src.push_str(&format!("    sw r{a}, {addr}(r0)\n")),
            5 => src.push_str(&format!("    lw r{d}, {addr}(r0)\n")),
            6 => src.push_str(&format!("    fadd f{fd}, f{fa}, f{fb}\n")),
            7 => src.push_str(&format!("    fmul f{fd}, f{fa}, f{fb}\n")),
            8 => src.push_str(&format!("    sf f{fa}, {}(r0)\n", 64 + addr)),
            _ => src.push_str(&format!("    lf f{fd}, {}(r0)\n", 64 + addr)),
        }
    }
    for r in 1..=6 {
        src.push_str(&format!("    sw r{r}, {}(r0)\n", 200 + r));
    }
    for f in 1..=4 {
        src.push_str(&format!("    sf f{f}, {}(r0)\n", 210 + f));
    }
    src.push_str("    halt\n");
    src
}

#[test]
fn generated_straight_line_programs_match_the_golden_model() {
    for seed in 0..24u64 {
        let len = 8 + (seed as usize % 5) * 16; // 8..=72 instructions
        let src = straight_line_program(0xC0FFEE ^ (seed.wrapping_mul(0x9E3779B9)), len);
        let program = hirata_asm::assemble(&src)
            .unwrap_or_else(|e| panic!("seed {seed} assembles: {e}\n{src}"));
        for slots in [1, 4] {
            assert_lockstep(&format!("straight-line seed {seed}"), &program, slots);
        }
    }
}

// ----------------------------------------------------- four-way fuzz

/// Seeds in the default campaign; `DIFF_FUZZ_SEEDS` overrides (CI runs
/// a larger budgeted campaign, `DIFF_FUZZ_SEEDS=50` gives a quick
/// smoke pass).
const DEFAULT_FUZZ_SEEDS: u64 = 500;

/// Cycle watchdog for fuzzed programs: generated programs finish in a
/// few thousand cycles, so anything longer is a hang (e.g. a shrink
/// attempt that unbalanced the queue ring) and should fail fast.
const FUZZ_MAX_CYCLES: u64 = 50_000;

/// One generated fuzz case: the program source plus the machine shape
/// it runs under.
struct FuzzCase {
    src: String,
    slots: usize,
    /// `Some(base)`: run the machines on a DSM memory model where
    /// accesses at or above `base` raise data-absence traps.
    remote_base: Option<u64>,
}

/// Runs one machine configuration. Every run records issue events
/// (`set_trace`); `sink` additionally attaches a [`TextSink`] — the
/// warp run stays sink-free because a trace sink pins the engine to
/// detection-only mode (synthesised sink events are out of scope), so
/// the leap path would never be exercised.
fn run_machine(
    program: &Program,
    slots: usize,
    fast_forward: bool,
    warp: bool,
    sink: bool,
    remote_base: Option<u64>,
) -> Result<(Machine, String), String> {
    let mut config = Config::multithreaded(slots).with_fast_forward(fast_forward).with_warp(warp);
    config.max_cycles = FUZZ_MAX_CYCLES;
    let mut machine = match remote_base {
        Some(base) => {
            Machine::with_mem_model(config, program, Box::new(DsmMemory::new(base, 2, 40)))
        }
        None => Machine::new(config, program),
    }
    .map_err(|e| format!("[build] machine rejected program: {e}"))?;
    machine.set_trace(true);
    let text_sink = sink.then(TextSink::new);
    if let Some(s) = &text_sink {
        machine.attach_trace_sink(Box::new(s.clone()));
    }
    machine.run().map_err(|e| {
        format!("[machine-error] run (fast_forward={fast_forward}, warp={warp}) failed: {e}")
    })?;
    Ok((machine, text_sink.map(|s| s.text()).unwrap_or_default()))
}

/// The fuzz oracle. Errors carry a stable `[category]` prefix so the
/// shrinker can insist on preserving the original failure mode.
fn four_way(case: &FuzzCase, src: &str) -> Result<(), String> {
    let program =
        hirata_asm::assemble(src).map_err(|e| format!("[assemble] program rejected: {e}"))?;
    let slots = case.slots;
    let golden = Emulator::execute(&program, slots, 1 << 20, 1_000_000)
        .map_err(|e| format!("[emulator] failed: {e}"))?;
    let (plain, plain_text) = run_machine(&program, slots, false, false, true, case.remote_base)?;
    let (wheel, wheel_text) = run_machine(&program, slots, true, false, true, case.remote_base)?;
    let (warp, _) = run_machine(&program, slots, true, true, false, case.remote_base)?;

    // Wheel vs plain: the event wheel must be invisible — identical
    // cycle counts, statistics tables, and trace event streams.
    if plain.cycles() != wheel.cycles() {
        return Err(format!("[cycles] plain {} vs wheel {}", plain.cycles(), wheel.cycles()));
    }
    if plain.stats() != wheel.stats() {
        return Err(format!(
            "[stats] diverge:\nplain: {:?}\nwheel: {:?}",
            plain.stats(),
            wheel.stats()
        ));
    }
    if plain_text != wheel_text {
        let diff = plain_text
            .lines()
            .zip(wheel_text.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(i, (a, b))| format!("line {i}:\nplain: {a}\nwheel: {b}"))
            .unwrap_or_else(|| {
                format!(
                    "lengths differ: plain {} lines, wheel {} lines",
                    plain_text.lines().count(),
                    wheel_text.lines().count()
                )
            });
        return Err(format!("[trace] event streams diverge at {diff}"));
    }
    for ctx in 0..slots {
        if plain.register_image(ctx) != wheel.register_image(ctx) {
            return Err(format!("[regs-wheel] context {ctx} register images diverge"));
        }
    }
    if *plain.memory() != *wheel.memory() {
        let at = first_memory_mismatch(plain.memory(), wheel.memory());
        return Err(format!("[memory-wheel] plain and wheel memories diverge at word {at:?}"));
    }

    // Warp vs plain: the loop-warp engine must be invisible too —
    // identical cycle counts, statistics, issue-event streams (leapt
    // periods synthesise theirs), registers, and memory.
    if plain.cycles() != warp.cycles() {
        return Err(format!("[cycles-warp] plain {} vs warp {}", plain.cycles(), warp.cycles()));
    }
    if plain.stats() != warp.stats() {
        return Err(format!(
            "[stats-warp] diverge:\nplain: {:?}\nwarp: {:?}",
            plain.stats(),
            warp.stats()
        ));
    }
    if plain.trace() != warp.trace() {
        let at = plain
            .trace()
            .iter()
            .zip(warp.trace())
            .position(|(a, b)| a != b)
            .map(|i| {
                format!("event {i}:\nplain: {:?}\nwarp: {:?}", plain.trace()[i], warp.trace()[i])
            })
            .unwrap_or_else(|| {
                format!(
                    "lengths differ: plain {} events, warp {} events",
                    plain.trace().len(),
                    warp.trace().len()
                )
            });
        return Err(format!("[issue-warp] issue-event streams diverge at {at}"));
    }
    for ctx in 0..slots {
        if plain.register_image(ctx) != warp.register_image(ctx) {
            return Err(format!("[regs-warp] context {ctx} register images diverge"));
        }
    }
    if *plain.memory() != *warp.memory() {
        let at = first_memory_mismatch(plain.memory(), warp.memory());
        return Err(format!("[memory-warp] plain and warp memories diverge at word {at:?}"));
    }

    // Plain vs the golden model: final architectural state.
    if golden.memory != *plain.memory() {
        let at = first_memory_mismatch(&golden.memory, plain.memory());
        return Err(format!("[memory] emulator and machine memories diverge at word {at:?}"));
    }
    if !program.insts.iter().any(|i| matches!(i, Inst::KillOthers)) {
        for ctx in 0..slots {
            let machine_image = plain.register_image(ctx);
            if let Some(reg) = golden.regs[ctx].iter().zip(&machine_image).position(|(a, b)| a != b)
            {
                return Err(format!(
                    "[regs] context {ctx} register {reg}: emulator {:#x}, machine {:#x}",
                    golden.regs[ctx][reg], machine_image[reg]
                ));
            }
        }
    }
    Ok(())
}

/// Generates one structured random program. Four families, all
/// terminating by construction:
///
/// * **branchy straight-line** — SPMD over shared addresses (every
///   slot computes identical values, so store order cannot matter),
///   with forward if/else diamonds;
/// * **counted loop** — per-LP private memory banks (`lpid * 64`),
///   data-dependent early break, random arithmetic/memory body;
/// * **eager ring loop** — the fig6 shape: explicit rotation, queue
///   registers mapped over the ring, each trip writes the successor
///   *before* reading the predecessor (so the ring never deadlocks),
///   `chgpri` per trip, optional priority-gated stores to the private
///   bank;
/// * **warp bait** — long affine counted loops (strided stores,
///   constant register increments, optional nesting and `fastfork`)
///   sized so the loop-warp engine detects a period and leaps, with
///   trip counts straddling the leap boundary.
///
/// The straight-line and counted-loop families may additionally
/// address the remote region (word 4096 up) to exercise data-absence
/// traps when the case runs on the DSM model. The ring and warp-bait
/// families never do: a trap unbinds the context and `wake_and_bind` may rebind it
/// to a *different* slot, while the queue links form a ring between
/// slots — so a migrated thread legitimately orphans in-flight ring
/// data and deadlocks. The paper uses queue registers under parallel
/// multithreading (§2.3) and data-absence switching under concurrent
/// multithreading (§2.1.3), never both at once, so the combination is
/// out of scope for the differential contract.
/// Slot counts the fuzzer draws from. `DIFF_FUZZ_SLOTS` (comma-
/// separated) overrides the default `1,2,4` — CI's quick tier pins
/// `2,8` so every push exercises both the two-slot interleavings and
/// the widest ready-frontier/arbitration-mask configuration without
/// waiting for the big seeded campaign.
fn slot_choices() -> &'static [usize] {
    static CHOICES: std::sync::OnceLock<Vec<usize>> = std::sync::OnceLock::new();
    CHOICES.get_or_init(|| match std::env::var("DIFF_FUZZ_SLOTS") {
        Ok(v) => v
            .split(',')
            .map(|s| s.trim().parse().expect("DIFF_FUZZ_SLOTS holds slot counts"))
            .collect(),
        Err(_) => vec![1, 2, 4],
    })
}

fn fuzz_case(seed: u64) -> FuzzCase {
    let mut rng = SplitMix(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1FF_CA5E);
    let family = rng.below(4);
    let choices = slot_choices();
    let slots = choices[rng.below(choices.len() as u64) as usize];
    // Traps in a third of the trap-safe cases; remote words live at
    // 4096+. The warp-bait family (D) stays local: its banks sit above
    // the remote boundary by construction.
    let remote_base = (family < 2 && rng.below(3) == 0).then_some(4096);
    let remote = remote_base.is_some();
    let mut src = String::from(".text\n.entry main\nmain:\n");

    // A deterministic register seeding shared by all families.
    for r in 1..=6 {
        src.push_str(&format!("    li r{r}, #{}\n", rng.below(512) as i64 - 256));
    }
    for f in 1..=3 {
        src.push_str(&format!("    lif f{f}, #{}.{}\n", rng.below(20), rng.below(100)));
    }

    // One random body instruction. `bank`: base register holding the
    // LP-private bank address (families B/C) or r0 with shared
    // addresses (family A, SPMD-safe).
    let body_op = |rng: &mut SplitMix, src: &mut String, bank: &str, gated_ok: bool| {
        let (d, a, b) = (2 + rng.below(5), 2 + rng.below(5), 2 + rng.below(5));
        let (fd, fa, fb) = (1 + rng.below(3), 1 + rng.below(3), 1 + rng.below(3));
        let off = rng.below(48);
        match rng.below(14) {
            0 => src.push_str(&format!("    add r{d}, r{a}, r{b}\n")),
            1 => src.push_str(&format!("    sub r{d}, r{a}, r{b}\n")),
            2 => src.push_str(&format!("    mul r{d}, r{a}, r{b}\n")),
            3 => src.push_str(&format!("    add r{d}, r{a}, #{}\n", rng.below(64))),
            4 => src.push_str(&format!("    sw r{a}, {off}({bank})\n")),
            5 => src.push_str(&format!("    lw r{d}, {off}({bank})\n")),
            6 => src.push_str(&format!("    fadd f{fd}, f{fa}, f{fb}\n")),
            7 => src.push_str(&format!("    fmul f{fd}, f{fa}, f{fb}\n")),
            8 => src.push_str(&format!("    sf f{fa}, {}({bank})\n", 48 + rng.below(8))),
            9 => src.push_str(&format!("    lf f{fd}, {}({bank})\n", 48 + rng.below(8))),
            10 => src.push_str(&format!("    cvtif f{fd}, r{a}\n")),
            11 => src.push_str(&format!("    fcmplt r{d}, f{fa}, f{fb}\n")),
            12 if remote => {
                // A remote access: a trap on the DSM model, an
                // ordinary (identical-value or private) word otherwise.
                if rng.below(2) == 0 {
                    src.push_str(&format!("    lw r{d}, {}({bank})\n", 4096 + off));
                } else {
                    src.push_str(&format!("    sw r{a}, {}({bank})\n", 4096 + off));
                }
            }
            13 if gated_ok => src.push_str(&format!("    swp r{a}, {off}({bank})\n")),
            _ => src.push_str(&format!("    add r{d}, r{a}, #1\n")),
        }
    };

    match family {
        // Family A: branchy straight-line, SPMD over shared memory.
        0 => {
            let diamonds = 1 + rng.below(3);
            for i in 0..diamonds {
                for _ in 0..rng.below(4) {
                    body_op(&mut rng, &mut src, "r0", false);
                }
                let (r, k) = (2 + rng.below(5), rng.below(8) as i64 - 4);
                let cond = if rng.below(2) == 0 { "beq" } else { "bne" };
                src.push_str(&format!("    {cond} r{r}, #{k}, else{i}\n"));
                for _ in 0..1 + rng.below(3) {
                    body_op(&mut rng, &mut src, "r0", false);
                }
                src.push_str(&format!("    j join{i}\nelse{i}:\n"));
                for _ in 0..1 + rng.below(3) {
                    body_op(&mut rng, &mut src, "r0", false);
                }
                src.push_str(&format!("join{i}:\n"));
            }
        }
        // Family B: fastfork + per-LP counted loop over a private bank.
        1 => {
            src.push_str("    fastfork\n    lpid r1\n    mul r9, r1, #64\n");
            src.push_str(&format!("    li r8, #{}\n", 2 + rng.below(4)));
            src.push_str("loop:\n");
            for _ in 0..2 + rng.below(6) {
                body_op(&mut rng, &mut src, "r9", false);
            }
            if rng.below(2) == 0 {
                let (r, k) = (2 + rng.below(5), rng.below(8) as i64 - 4);
                src.push_str(&format!("    beq r{r}, #{k}, done\n"));
            }
            src.push_str("    sub r8, r8, #1\n    bne r8, #0, loop\ndone:\n");
        }
        // Family C: the fig6 eager shape over the queue ring.
        2 => {
            let rot = if rng.below(2) == 0 {
                "    setrot explicit\n".to_string()
            } else {
                format!("    setrot implicit #{}\n", 1 << rng.below(4))
            };
            src.push_str(&rot);
            src.push_str("    qmap r10, r11\n    fastfork\n    lpid r1\n    mul r9, r1, #64\n");
            src.push_str(&format!("    li r8, #{}\n", 2 + rng.below(4)));
            src.push_str("loop:\n");
            // Write the successor first — the ring stays supplied
            // however the trips interleave.
            src.push_str(&format!("    add r11, r8, #{}\n", rng.below(16)));
            for _ in 0..1 + rng.below(5) {
                body_op(&mut rng, &mut src, "r9", true);
            }
            src.push_str("    chgpri\n");
            src.push_str("    mv r4, r10\n    add r5, r5, r4\n");
            src.push_str("    sub r8, r8, #1\n    bne r8, #0, loop\n");
        }
        // Family D: warp bait — affine counted loops (optionally
        // nested, optionally forked per LP) built from warp-safe
        // instructions only, with trip counts straddling the leap
        // boundary: 0, 1, a few, and long runs T with a ±1 jitter so
        // every remainder size (p−1, p, p+1 iterations left after the
        // leap) comes up across the campaign. A quarter of the cases
        // plant a load in the body — not warp-safe — pinning the
        // fallback path to plain stepping.
        _ => {
            let multi = rng.below(2) == 0;
            if multi {
                src.push_str("    fastfork\n    lpid r1\n");
                src.push_str("    mul r9, r1, #16384\n    add r9, r9, #16384\n");
            } else {
                src.push_str("    li r9, #16384\n");
            }
            let nested = rng.below(3) == 0;
            let outer = if nested { 2 + rng.below(2) } else { 1 };
            // Keep the plain run under the cycle watchdog: per-trip
            // latency grows with slot contention on the shared fetch
            // unit, so wide machines get shorter loops (they cannot
            // leap anyway — standby stations stay occupied at ≥4
            // slots — so nothing is lost).
            let max_total = 3200 / outer / (slots as u64).clamp(1, 4);
            let trips = (match rng.below(6) {
                0 => 0,
                1 => 1,
                2 => 2 + rng.below(6),
                _ => max_total / 2 + rng.below(max_total / 2),
            } as i64
                + (rng.below(3) as i64 - 1))
                .max(0);
            let stride = 1 + rng.below(4);
            let inc = rng.below(16) as i64 - 8;
            let impure = rng.below(4) == 0;
            src.push_str(&format!("    li r6, #{outer}\nouter:\n"));
            src.push_str(&format!("    li r8, #{trips}\n    li r7, #0\n    mv r5, r9\n"));
            src.push_str("    beq r8, #0, next\ninner:\n");
            src.push_str(&format!("    sw r7, 0(r5)\n    add r5, r5, #{stride}\n"));
            src.push_str(&format!("    add r7, r7, #{inc}\n"));
            if impure {
                src.push_str("    lw r4, 0(r9)\n");
            }
            src.push_str("    sub r8, r8, #1\n    bne r8, #0, inner\nnext:\n");
            src.push_str("    sub r6, r6, #1\n    bne r6, #0, outer\n");
        }
    }

    // Epilogue: store every live register so divergences in any of
    // them surface as memory divergences too. Private banks where LPs
    // differ, shared (identical-value) words in family A.
    let bank = if family == 0 { "r0" } else { "r9" };
    for r in 2..=6 {
        src.push_str(&format!("    sw r{r}, {}({bank})\n", 56 + r - 2));
    }
    src.push_str(&format!("    sf f1, {}({bank})\n", 61));
    src.push_str(&format!("    sf f2, {}({bank})\n", 62));
    src.push_str("    halt\n");
    FuzzCase { src, slots, remote_base }
}

/// The `[category]` prefix of a fuzz-oracle error.
fn failure_tag(err: &str) -> &str {
    err.split(']').next().unwrap_or("[?")
}

/// Greedy line-removal shrinker: repeatedly drop any single
/// non-structural line whose removal keeps the program failing with
/// the same category, to a fixed point. Labels and `halt` stay (so
/// the program always assembles and terminates the shrink quickly).
fn shrink(case: &FuzzCase, tag: &str) -> String {
    let removable = |line: &str| {
        let t = line.trim();
        !t.is_empty() && !t.ends_with(':') && t != "halt"
    };
    let mut lines: Vec<String> = case.src.lines().map(String::from).collect();
    loop {
        let mut removed = false;
        let mut i = 0;
        while i < lines.len() {
            if removable(&lines[i]) {
                let mut cand = lines.clone();
                cand.remove(i);
                let cand_src = cand.join("\n");
                let still_fails =
                    matches!(four_way(case, &cand_src), Err(e) if failure_tag(&e) == tag);
                if still_fails {
                    lines = cand;
                    removed = true;
                    continue;
                }
            }
            i += 1;
        }
        if !removed {
            return lines.join("\n");
        }
    }
}

#[test]
fn fuzzed_programs_four_way_match() {
    let seeds: u64 = std::env::var("DIFF_FUZZ_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_FUZZ_SEEDS);
    let out_dir = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
        .join("target/diff-failures");
    let mut failures = Vec::new();
    for seed in 0..seeds {
        let case = fuzz_case(seed);
        if let Err(err) = four_way(&case, &case.src) {
            let minimal = shrink(&case, failure_tag(&err));
            std::fs::create_dir_all(&out_dir).expect("create target/diff-failures");
            let path = out_dir.join(format!("seed-{seed}.s"));
            let header = format!(
                "; fuzz seed {seed}: {} slots, remote_base {:?}\n; {}\n",
                case.slots,
                case.remote_base,
                err.replace('\n', "\n; ")
            );
            std::fs::write(&path, format!("{header}{minimal}\n")).expect("write minimal repro");
            failures.push(format!("seed {seed}: {} (minimized to {})", err, path.display()));
            if failures.len() >= 3 {
                break; // enough divergences to diagnose — stop fuzzing
            }
        }
    }
    assert!(failures.is_empty(), "{} fuzz divergence(s):\n{}", failures.len(), failures.join("\n"));
}
