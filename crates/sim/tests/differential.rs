//! Differential lockstep testing: every program runs through both the
//! architectural [`Emulator`] (the golden model — no pipelines, no
//! latencies) and the cycle-level [`Machine`], and the two must agree
//! on the final architectural state.
//!
//! Coverage comes from two directions: the checked-in `examples/asm/`
//! programs (which exercise fork/kill/queue-ring/priority semantics)
//! and generated straight-line programs (which sweep arithmetic,
//! float, and memory operations without control flow). On divergence
//! the test dumps the last 50 trace events of the offending slot so
//! the failure is diagnosable from the report alone.

use hirata_isa::{Inst, Program};
use hirata_sim::{format_event, Config, Emulator, Machine, RingSink};

/// Trace ring capacity: deep enough to hold the full tail of any slot.
const RING: usize = 1 << 16;

/// Runs `program` through emulator and machine on `slots` logical
/// processors and compares final memory — and, unless the program can
/// kill threads (a killed thread's registers depend on exactly where
/// the kill landed, which is timing), final register images too.
fn assert_lockstep(name: &str, program: &Program, slots: usize) {
    let config = Config::multithreaded(slots);
    let mem_words = config.mem_words;
    let max_cycles = config.max_cycles;

    let golden = Emulator::execute(program, slots, mem_words, max_cycles)
        .unwrap_or_else(|e| panic!("{name}/{slots} slots: emulator failed: {e}"));

    let mut machine = Machine::new(config, program)
        .unwrap_or_else(|e| panic!("{name}/{slots} slots: machine rejected program: {e}"));
    let sink = RingSink::new(RING);
    machine.attach_trace_sink(Box::new(sink.clone()));
    machine.run().unwrap_or_else(|e| panic!("{name}/{slots} slots: machine failed: {e}"));

    if golden.memory != *machine.memory() {
        let mismatch = first_memory_mismatch(&golden.memory, machine.memory());
        panic!(
            "{name}/{slots} slots: final memory diverges at word {mismatch:?}\n{}",
            dump_all_slots(&sink, slots)
        );
    }

    let kills = program.insts.iter().any(|i| matches!(i, Inst::KillOthers));
    if kills {
        return; // register state of killed threads is timing-dependent
    }
    for ctx in 0..slots {
        let machine_image = machine.register_image(ctx);
        if golden.regs[ctx] != machine_image {
            let reg = golden.regs[ctx]
                .iter()
                .zip(&machine_image)
                .position(|(a, b)| a != b)
                .expect("images differ");
            panic!(
                "{name}/{slots} slots: context {ctx} register {reg} diverges \
                 (emulator {:#x}, machine {:#x})\n{}",
                golden.regs[ctx][reg],
                machine_image[reg],
                dump_slot(&sink, ctx)
            );
        }
    }
}

fn first_memory_mismatch(a: &hirata_mem::Memory, b: &hirata_mem::Memory) -> Option<u64> {
    (0..a.size()).find(|&addr| a.read(addr).ok() != b.read(addr).ok())
}

fn dump_slot(sink: &RingSink, slot: usize) -> String {
    let tail: Vec<String> = sink.last_for_slot(slot, 50).iter().map(format_event).collect();
    format!("last {} trace events of slot {slot}:\n{}", tail.len(), tail.join("\n"))
}

fn dump_all_slots(sink: &RingSink, slots: usize) -> String {
    (0..slots).map(|s| dump_slot(sink, s)).collect::<Vec<_>>().join("\n")
}

// ---------------------------------------------------------------- examples

/// Every checked-in example program, against every slot count its
/// header advertises (they all self-adapt via `nlp`).
#[test]
fn examples_match_the_golden_model() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/asm");
    let mut names: Vec<_> = std::fs::read_dir(dir)
        .expect("examples/asm exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "s"))
        .collect();
    names.sort();
    assert!(names.len() >= 4, "expected the full example set, found {names:?}");
    for path in names {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&path).expect("example is readable");
        let program =
            hirata_asm::assemble(&src).unwrap_or_else(|e| panic!("{name} assembles: {e}"));
        for slots in [1, 2, 4] {
            assert_lockstep(&name, &program, slots);
        }
    }
}

// ------------------------------------------------- generated straight-line

/// Deterministic 64-bit generator (SplitMix64) so the generated
/// programs are identical on every run — no time or OS entropy.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random straight-line program: seed a few registers, then a run of
/// arithmetic / float / load / store instructions with no control
/// flow, finishing with stores of every live register and `halt`.
fn straight_line_program(seed: u64, len: usize) -> String {
    let mut rng = SplitMix(seed);
    let mut src = String::from(".text\n.entry main\nmain:\n");
    for r in 1..=6 {
        src.push_str(&format!("    li r{r}, #{}\n", rng.below(2000) as i64 - 1000));
    }
    for f in 1..=4 {
        src.push_str(&format!("    lif f{f}, #{}.{}\n", rng.below(40), rng.below(100)));
    }
    for _ in 0..len {
        let (d, a, b) = (1 + rng.below(6), 1 + rng.below(6), 1 + rng.below(6));
        let (fd, fa, fb) = (1 + rng.below(4), 1 + rng.below(4), 1 + rng.below(4));
        let addr = rng.below(64);
        match rng.below(10) {
            0 => src.push_str(&format!("    add r{d}, r{a}, r{b}\n")),
            1 => src.push_str(&format!("    sub r{d}, r{a}, r{b}\n")),
            2 => src.push_str(&format!("    mul r{d}, r{a}, r{b}\n")),
            3 => src.push_str(&format!("    add r{d}, r{a}, #{}\n", rng.below(100))),
            4 => src.push_str(&format!("    sw r{a}, {addr}(r0)\n")),
            5 => src.push_str(&format!("    lw r{d}, {addr}(r0)\n")),
            6 => src.push_str(&format!("    fadd f{fd}, f{fa}, f{fb}\n")),
            7 => src.push_str(&format!("    fmul f{fd}, f{fa}, f{fb}\n")),
            8 => src.push_str(&format!("    sf f{fa}, {}(r0)\n", 64 + addr)),
            _ => src.push_str(&format!("    lf f{fd}, {}(r0)\n", 64 + addr)),
        }
    }
    for r in 1..=6 {
        src.push_str(&format!("    sw r{r}, {}(r0)\n", 200 + r));
    }
    for f in 1..=4 {
        src.push_str(&format!("    sf f{f}, {}(r0)\n", 210 + f));
    }
    src.push_str("    halt\n");
    src
}

#[test]
fn generated_straight_line_programs_match_the_golden_model() {
    for seed in 0..24u64 {
        let len = 8 + (seed as usize % 5) * 16; // 8..=72 instructions
        let src = straight_line_program(0xC0FFEE ^ (seed.wrapping_mul(0x9E3779B9)), len);
        let program = hirata_asm::assemble(&src)
            .unwrap_or_else(|e| panic!("seed {seed} assembles: {e}\n{src}"));
        for slots in [1, 4] {
            assert_lockstep(&format!("straight-line seed {seed}"), &program, slots);
        }
    }
}
