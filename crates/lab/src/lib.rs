//! Parallel experiment-execution engine for the Hirata reproduction.
//!
//! The §3 experiments of the paper are grids of independent
//! simulations: the same workload swept over thread-slot counts,
//! functional-unit pools, rotation intervals, issue widths, and memory
//! models. This crate turns each point of such a grid into a [`Job`]
//! and runs batches of jobs through a work-stealing thread pool with a
//! content-addressed on-disk result cache:
//!
//! - a [`Job`] bundles a simulator [`Config`](hirata_sim::Config), a
//!   [`Program`](hirata_isa::Program), and a memory-model spec, and has
//!   a stable [content hash](Job::content_hash) derived from exactly
//!   the inputs that determine the simulation outcome;
//! - [`Lab::run_batch`] executes a batch on `std::thread` workers
//!   (work stealing between per-worker deques), consulting a
//!   [`DiskCache`] keyed by job hash first, so re-running a sweep only
//!   simulates the points that changed;
//! - each job runs under a wall-clock timeout and panic isolation: a
//!   crashed or runaway job reports a [`JobError`] in the batch while
//!   its siblings complete.
//!
//! Cached entries carry a schema tag ([`CACHE_SCHEMA_TAG`]); bumping
//! the tag (on any change to the serialized form or to simulator
//! semantics) invalidates stale entries automatically.
//!
//! The engine never prints to stdout — progress and the end-of-batch
//! report go to stderr — so table output produced from batch results
//! stays byte-identical to a serial run, cached or not.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod job;
mod pool;

pub use cache::{default_cache_dir, valid_key, CacheStats, DiskCache, CACHE_SCHEMA_TAG};
pub use job::{execute, Job, JobError, JobOutput, JobResult, MemModelSpec, DEFAULT_TIMEOUT};
pub use pool::{Batch, BatchReport, JobSummary, Lab};
