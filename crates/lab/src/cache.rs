//! Content-addressed on-disk result cache.
//!
//! Each successfully simulated job is stored as a small text file
//! named by the job's content hash. The first line of every entry is
//! the cache schema tag; entries written under a different tag (an
//! older serialization, or results from before a simulator-semantics
//! change) fail the header check and read as misses, so stale entries
//! self-invalidate without any explicit migration.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use hirata_mem::MemStats;
use hirata_sim::{RunStats, StallBreakdown, StallWindow};

use crate::job::JobOutput;

/// Schema tag of the on-disk format. Bump on any change to the
/// serialized fields *or* to simulator semantics that alters results
/// for unchanged inputs.
///
/// v2: the stall breakdown gained the `branch-shadow` reason (eight
/// counters instead of seven) and entries carry the per-window stall
/// attribution (`stall_windows=`).
pub const CACHE_SCHEMA_TAG: &str = "hirata-lab-cache-v2";

/// Default cache directory: `$HIRATA_LAB_CACHE` if set, else
/// `target/lab-cache` under the current directory.
pub fn default_cache_dir() -> PathBuf {
    match std::env::var_os("HIRATA_LAB_CACHE") {
        Some(dir) => PathBuf::from(dir),
        None => PathBuf::from("target").join("lab-cache"),
    }
}

/// A directory of cached job outputs keyed by content hash.
#[derive(Debug, Clone)]
pub struct DiskCache {
    dir: PathBuf,
    tag: String,
}

impl DiskCache {
    /// Opens (creating if needed) the cache at `dir` under the current
    /// schema tag.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        Self::open_with_tag(dir, CACHE_SCHEMA_TAG)
    }

    /// Opens a cache with an explicit schema tag (exposed so tests can
    /// demonstrate tag-bump invalidation).
    pub fn open_with_tag(dir: impl Into<PathBuf>, tag: &str) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(DiskCache { dir, tag: tag.to_owned() })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Looks up a job output by content hash. Any missing file,
    /// header mismatch, or parse failure reads as a miss.
    pub fn load(&self, key: &str) -> Option<JobOutput> {
        let text = fs::read_to_string(self.entry_path(key)).ok()?;
        let mut lines = text.lines();
        if lines.next()? != self.tag {
            return None;
        }
        parse_entry(lines)
    }

    /// Stores a job output under its content hash. The write is
    /// atomic (temp file + rename) so concurrent readers never see a
    /// torn entry.
    pub fn store(&self, key: &str, out: &JobOutput) -> io::Result<()> {
        let tmp = self.dir.join(format!(".tmp-{key}-{}", std::process::id()));
        fs::write(&tmp, render_entry(&self.tag, out))?;
        fs::rename(&tmp, self.entry_path(key))
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(key)
    }
}

fn render_u64s(values: impl IntoIterator<Item = u64>) -> String {
    values.into_iter().map(|v| v.to_string()).collect::<Vec<_>>().join(",")
}

fn render_entry(tag: &str, out: &JobOutput) -> String {
    let s = &out.stats;
    let m = &out.mem;
    format!(
        "{tag}\n\
         cycles={}\n\
         instructions={}\n\
         per_slot_issued={}\n\
         fu_invocations={}\n\
         fu_busy={}\n\
         fu_instances={}\n\
         stalls={}\n\
         stall_windows={}\n\
         context_switches={}\n\
         threads_killed={}\n\
         rotations={}\n\
         mem_accesses={}\n\
         mem_hits={}\n\
         mem_misses={}\n\
         mem_absences={}\n",
        s.cycles,
        s.instructions,
        render_u64s(s.per_slot_issued.iter().copied()),
        render_u64s(s.fu_invocations),
        render_u64s(s.fu_busy),
        render_u64s(s.fu_instances),
        render_u64s(s.stalls.counts()),
        render_windows(&s.stall_windows),
        s.context_switches,
        s.threads_killed,
        s.rotations,
        m.accesses,
        m.hits,
        m.misses,
        m.absences,
    )
}

fn parse_entry<'a>(lines: impl Iterator<Item = &'a str>) -> Option<JobOutput> {
    let mut stats = RunStats::default();
    let mut mem = MemStats::default();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (key, value) = line.split_once('=')?;
        match key {
            "cycles" => stats.cycles = value.parse().ok()?,
            "instructions" => stats.instructions = value.parse().ok()?,
            "per_slot_issued" => stats.per_slot_issued = parse_u64s(value)?,
            "fu_invocations" => stats.fu_invocations = parse_array(value)?,
            "fu_busy" => stats.fu_busy = parse_array(value)?,
            "fu_instances" => stats.fu_instances = parse_array(value)?,
            "stalls" => stats.stalls = StallBreakdown::from_counts(parse_array(value)?),
            "stall_windows" => stats.stall_windows = parse_windows(value)?,
            "context_switches" => stats.context_switches = value.parse().ok()?,
            "threads_killed" => stats.threads_killed = value.parse().ok()?,
            "rotations" => stats.rotations = value.parse().ok()?,
            "mem_accesses" => mem.accesses = value.parse().ok()?,
            "mem_hits" => mem.hits = value.parse().ok()?,
            "mem_misses" => mem.misses = value.parse().ok()?,
            "mem_absences" => mem.absences = value.parse().ok()?,
            _ => return None, // unknown field: treat as corrupt
        }
    }
    Some(JobOutput { stats, mem })
}

fn parse_u64s(value: &str) -> Option<Vec<u64>> {
    if value.is_empty() {
        return Some(Vec::new());
    }
    value.split(',').map(|v| v.parse().ok()).collect()
}

fn parse_array<const N: usize>(value: &str) -> Option<[u64; N]> {
    parse_u64s(value)?.try_into().ok()
}

/// Windows render as semicolon-separated groups of comma-separated
/// counters, one group per 1k-cycle window.
fn render_windows(windows: &[StallWindow]) -> String {
    windows.iter().map(|w| render_u64s(w.iter().copied())).collect::<Vec<_>>().join(";")
}

fn parse_windows(value: &str) -> Option<Vec<StallWindow>> {
    if value.is_empty() {
        return Some(Vec::new());
    }
    value.split(';').map(parse_array).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobOutput {
        let mut out = JobOutput::default();
        out.stats.cycles = 12345;
        out.stats.instructions = 678;
        out.stats.per_slot_issued = vec![100, 200, 378];
        out.stats.fu_invocations = [1, 2, 3, 4, 5, 6, 7];
        out.stats.fu_busy = [2, 4, 6, 8, 10, 12, 14];
        out.stats.fu_instances = [1, 1, 1, 1, 1, 1, 2];
        out.stats.stalls = StallBreakdown::from_counts([9, 8, 7, 6, 5, 4, 3, 2]);
        out.stats.stall_windows = vec![[4, 4, 3, 3, 2, 2, 1, 1], [5, 4, 4, 3, 3, 2, 2, 1]];
        out.stats.context_switches = 11;
        out.stats.threads_killed = 2;
        out.stats.rotations = 40;
        out.mem = MemStats { accesses: 50, hits: 48, misses: 2, absences: 0 };
        out
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hirata-lab-cache-test-{name}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_is_identity() {
        let cache = DiskCache::open(tmp_dir("roundtrip")).expect("open");
        let out = sample();
        cache.store("k1", &out).expect("store");
        assert_eq!(cache.load("k1"), Some(out));
    }

    #[test]
    fn missing_key_is_a_miss() {
        let cache = DiskCache::open(tmp_dir("missing")).expect("open");
        assert_eq!(cache.load("absent"), None);
    }

    #[test]
    fn tag_mismatch_is_a_miss() {
        let dir = tmp_dir("tags");
        let old = DiskCache::open_with_tag(&dir, "hirata-lab-cache-v0").expect("open");
        old.store("k", &sample()).expect("store");
        let new = DiskCache::open(&dir).expect("open");
        assert_eq!(new.load("k"), None);
        // Re-storing under the current tag makes it visible again.
        new.store("k", &sample()).expect("store");
        assert_eq!(new.load("k"), Some(sample()));
    }

    #[test]
    fn corrupt_entries_are_misses() {
        let cache = DiskCache::open(tmp_dir("corrupt")).expect("open");
        let path = cache.dir().join("bad");
        fs::write(&path, format!("{CACHE_SCHEMA_TAG}\ncycles=notanumber\n")).expect("write");
        assert_eq!(cache.load("bad"), None);
        fs::write(&path, format!("{CACHE_SCHEMA_TAG}\nunknown_field=1\n")).expect("write");
        assert_eq!(cache.load("bad"), None);
    }
}
