//! Content-addressed on-disk result cache / shared artifact store.
//!
//! Each successfully simulated job is stored as a small text file
//! named by the job's content hash. The first line of every entry is
//! the cache schema tag; entries written under a different tag (an
//! older serialization, or results from before a simulator-semantics
//! change) fail the header check and read as misses, so stale entries
//! self-invalidate without any explicit migration.
//!
//! A [`DiskCache`] handle is a cheap [`Arc`]-shared reference to one
//! store, safe to clone across threads: the `hirata serve` daemon
//! shares a single store between its HTTP workers, the batch engine,
//! and the artifact endpoints. Concurrency safety comes from two
//! layers:
//!
//! - **writes are atomic** — every store goes to a process+sequence
//!   unique temp file and is renamed into place, so a concurrent
//!   reader (same process or another one) never observes a torn entry;
//! - **the in-process index is lock-guarded** — eviction decisions,
//!   byte accounting, and the hit/miss/eviction counters live behind
//!   one mutex.
//!
//! With a byte budget set ([`DiskCache::with_byte_budget`]) the store
//! evicts least-recently-used entries after each write until it fits.
//! Counters are per-process and surfaced by [`DiskCache::stats`] (the
//! daemon's `/stats` endpoint).

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::SystemTime;

use hirata_mem::MemStats;
use hirata_sim::{RunStats, StallBreakdown, StallWindow};

use crate::job::JobOutput;

/// Schema tag of the on-disk format. Bump on any change to the
/// serialized fields *or* to simulator semantics that alters results
/// for unchanged inputs.
///
/// v2: the stall breakdown gained the `branch-shadow` reason (eight
/// counters instead of seven) and entries carry the per-window stall
/// attribution (`stall_windows=`).
pub const CACHE_SCHEMA_TAG: &str = "hirata-lab-cache-v2";

/// Default cache directory: `$HIRATA_LAB_CACHE` if set, else
/// `target/lab-cache` under the current directory.
pub fn default_cache_dir() -> PathBuf {
    match std::env::var_os("HIRATA_LAB_CACHE") {
        Some(dir) => PathBuf::from(dir),
        None => PathBuf::from("target").join("lab-cache"),
    }
}

/// Per-process observability counters of a [`DiskCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that found no (valid) entry.
    pub misses: u64,
    /// Entries written.
    pub stores: u64,
    /// Entries removed to satisfy the byte budget.
    pub evictions: u64,
    /// Bytes currently indexed.
    pub bytes: u64,
    /// Entries currently indexed.
    pub entries: u64,
}

/// One indexed entry: its size and its last-use stamp (monotonic
/// per-process sequence; seeded from file modification times when an
/// existing directory is opened).
#[derive(Debug, Clone, Copy)]
struct Entry {
    size: u64,
    last_use: u64,
}

#[derive(Debug, Default)]
struct Index {
    entries: HashMap<String, Entry>,
    budget: Option<u64>,
    bytes: u64,
    clock: u64,
    hits: u64,
    misses: u64,
    stores: u64,
    evictions: u64,
}

impl Index {
    fn touch(&mut self, key: &str, size: u64) {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.get_mut(key) {
            Some(entry) => {
                self.bytes = self.bytes - entry.size + size;
                entry.size = size;
                entry.last_use = clock;
            }
            None => {
                self.entries.insert(key.to_owned(), Entry { size, last_use: clock });
                self.bytes += size;
            }
        }
    }

    fn forget(&mut self, key: &str) {
        if let Some(entry) = self.entries.remove(key) {
            self.bytes -= entry.size;
        }
    }

    /// The least-recently-used key, excluding `keep`.
    fn lru_victim(&self, keep: &str) -> Option<String> {
        self.entries
            .iter()
            .filter(|(key, _)| key.as_str() != keep)
            .min_by_key(|(key, entry)| (entry.last_use, key.as_str().to_owned()))
            .map(|(key, _)| key.clone())
    }
}

#[derive(Debug)]
struct Shared {
    dir: PathBuf,
    tag: String,
    index: Mutex<Index>,
    tmp_seq: AtomicU64,
}

/// A directory of cached job outputs keyed by content hash; a handle
/// is an `Arc`-shared reference to one store (clones share the index,
/// budget, and counters).
#[derive(Debug, Clone)]
pub struct DiskCache {
    shared: Arc<Shared>,
}

impl DiskCache {
    /// Opens (creating if needed) the cache at `dir` under the current
    /// schema tag.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        Self::open_with_tag(dir, CACHE_SCHEMA_TAG)
    }

    /// Opens a cache with an explicit schema tag (exposed so tests can
    /// demonstrate tag-bump invalidation).
    pub fn open_with_tag(dir: impl Into<PathBuf>, tag: &str) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut index = Index::default();
        seed_index(&dir, &mut index);
        Ok(DiskCache {
            shared: Arc::new(Shared {
                dir,
                tag: tag.to_owned(),
                index: Mutex::new(index),
                tmp_seq: AtomicU64::new(0),
            }),
        })
    }

    /// Caps the store at `bytes` of entries: after every write the
    /// least-recently-used entries are deleted until the total fits.
    /// The entry just written is evicted only if it alone exceeds the
    /// budget. Existing over-budget contents shrink on the next store.
    #[must_use]
    pub fn with_byte_budget(self, bytes: u64) -> Self {
        self.shared.index.lock().expect("cache index").budget = Some(bytes);
        self
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.shared.dir
    }

    /// The configured byte budget, if any.
    pub fn byte_budget(&self) -> Option<u64> {
        self.shared.index.lock().expect("cache index").budget
    }

    /// A snapshot of the per-process counters.
    pub fn stats(&self) -> CacheStats {
        let index = self.shared.index.lock().expect("cache index");
        CacheStats {
            hits: index.hits,
            misses: index.misses,
            stores: index.stores,
            evictions: index.evictions,
            bytes: index.bytes,
            entries: index.entries.len() as u64,
        }
    }

    /// Looks up a job output by content hash. Any missing file,
    /// header mismatch, or parse failure reads as a miss.
    pub fn load(&self, key: &str) -> Option<JobOutput> {
        let out = self.load_uncounted(key);
        let mut index = self.shared.index.lock().expect("cache index");
        match &out {
            // The filesystem is the source of truth (another process
            // may have written the entry); mirror it into the index.
            Some(_) => {
                index.hits += 1;
                let size = fs::metadata(self.entry_path(key)).map(|m| m.len()).unwrap_or(0);
                index.touch(key, size);
            }
            None => {
                index.misses += 1;
                if !self.entry_path(key).exists() {
                    index.forget(key);
                }
            }
        }
        out
    }

    /// [`DiskCache::load`] without touching the LRU order or counters
    /// (used by artifact endpoints that must not perturb eviction
    /// accounting, and internally).
    pub fn peek(&self, key: &str) -> Option<JobOutput> {
        self.load_uncounted(key)
    }

    fn load_uncounted(&self, key: &str) -> Option<JobOutput> {
        if !valid_key(key) {
            return None;
        }
        let text = fs::read_to_string(self.entry_path(key)).ok()?;
        let mut lines = text.lines();
        if lines.next()? != self.shared.tag {
            return None;
        }
        parse_entry(lines)
    }

    /// Stores a job output under its content hash. The write is
    /// atomic (unique temp file + rename) so concurrent readers and
    /// writers — in this process or another sharing the directory —
    /// never see a torn entry. With a byte budget set,
    /// least-recently-used entries are evicted afterwards until the
    /// store fits.
    pub fn store(&self, key: &str, out: &JobOutput) -> io::Result<()> {
        if !valid_key(key) {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, format!("bad key `{key}`")));
        }
        let body = render_entry(&self.shared.tag, out);
        // The sequence number makes the temp name unique even for two
        // threads of one process storing the same key concurrently.
        let seq = self.shared.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = self.shared.dir.join(format!(".tmp-{key}-{}-{seq}", std::process::id()));
        fs::write(&tmp, &body)?;
        fs::rename(&tmp, self.entry_path(key))?;

        let mut index = self.shared.index.lock().expect("cache index");
        index.stores += 1;
        index.touch(key, body.len() as u64);
        if let Some(budget) = index.budget {
            while index.bytes > budget {
                // Evict others first; the just-written entry goes only
                // if it alone is over budget.
                let Some(victim) = index.lru_victim(key) else { break };
                let _ = fs::remove_file(self.entry_path(&victim));
                index.forget(&victim);
                index.evictions += 1;
            }
            if index.bytes > budget {
                let _ = fs::remove_file(self.entry_path(key));
                index.forget(key);
                index.evictions += 1;
            }
        }
        Ok(())
    }

    /// True if a valid entry for `key` is on disk (does not count as a
    /// hit or miss and does not touch the LRU order).
    pub fn contains(&self, key: &str) -> bool {
        self.load_uncounted(key).is_some()
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.shared.dir.join(key)
    }
}

/// Keys are content hashes: lowercase hex only. Rejecting anything
/// else keeps entry paths inside the cache directory even when the key
/// arrives over the network (`/result/<key>`).
pub fn valid_key(key: &str) -> bool {
    !key.is_empty()
        && key.len() <= 64
        && key.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

/// Seeds the index from an existing directory: entry sizes plus an
/// LRU order derived from file modification times.
fn seed_index(dir: &Path, index: &mut Index) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    let mut found: Vec<(String, u64, SystemTime)> = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !valid_key(name) {
            // Leftover temp files from a crashed process are garbage;
            // reclaim them on open.
            if name.starts_with(".tmp-") {
                let _ = fs::remove_file(entry.path());
            }
            continue;
        }
        let Ok(meta) = entry.metadata() else { continue };
        let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
        found.push((name.to_owned(), meta.len(), mtime));
    }
    found.sort_by(|a, b| (a.2, a.0.as_str()).cmp(&(b.2, b.0.as_str())));
    for (key, size, _) in found {
        index.touch(&key, size);
    }
}

fn render_u64s(values: impl IntoIterator<Item = u64>) -> String {
    values.into_iter().map(|v| v.to_string()).collect::<Vec<_>>().join(",")
}

fn render_entry(tag: &str, out: &JobOutput) -> String {
    let s = &out.stats;
    let m = &out.mem;
    format!(
        "{tag}\n\
         cycles={}\n\
         instructions={}\n\
         per_slot_issued={}\n\
         fu_invocations={}\n\
         fu_busy={}\n\
         fu_instances={}\n\
         stalls={}\n\
         stall_windows={}\n\
         context_switches={}\n\
         threads_killed={}\n\
         rotations={}\n\
         mem_accesses={}\n\
         mem_hits={}\n\
         mem_misses={}\n\
         mem_absences={}\n",
        s.cycles,
        s.instructions,
        render_u64s(s.per_slot_issued.iter().copied()),
        render_u64s(s.fu_invocations),
        render_u64s(s.fu_busy),
        render_u64s(s.fu_instances),
        render_u64s(s.stalls.counts()),
        render_windows(&s.stall_windows),
        s.context_switches,
        s.threads_killed,
        s.rotations,
        m.accesses,
        m.hits,
        m.misses,
        m.absences,
    )
}

fn parse_entry<'a>(lines: impl Iterator<Item = &'a str>) -> Option<JobOutput> {
    let mut stats = RunStats::default();
    let mut mem = MemStats::default();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (key, value) = line.split_once('=')?;
        match key {
            "cycles" => stats.cycles = value.parse().ok()?,
            "instructions" => stats.instructions = value.parse().ok()?,
            "per_slot_issued" => stats.per_slot_issued = parse_u64s(value)?,
            "fu_invocations" => stats.fu_invocations = parse_array(value)?,
            "fu_busy" => stats.fu_busy = parse_array(value)?,
            "fu_instances" => stats.fu_instances = parse_array(value)?,
            "stalls" => stats.stalls = StallBreakdown::from_counts(parse_array(value)?),
            "stall_windows" => stats.stall_windows = parse_windows(value)?,
            "context_switches" => stats.context_switches = value.parse().ok()?,
            "threads_killed" => stats.threads_killed = value.parse().ok()?,
            "rotations" => stats.rotations = value.parse().ok()?,
            "mem_accesses" => mem.accesses = value.parse().ok()?,
            "mem_hits" => mem.hits = value.parse().ok()?,
            "mem_misses" => mem.misses = value.parse().ok()?,
            "mem_absences" => mem.absences = value.parse().ok()?,
            _ => return None, // unknown field: treat as corrupt
        }
    }
    Some(JobOutput { stats, mem })
}

fn parse_u64s(value: &str) -> Option<Vec<u64>> {
    if value.is_empty() {
        return Some(Vec::new());
    }
    value.split(',').map(|v| v.parse().ok()).collect()
}

fn parse_array<const N: usize>(value: &str) -> Option<[u64; N]> {
    parse_u64s(value)?.try_into().ok()
}

/// Windows render as semicolon-separated groups of comma-separated
/// counters, one group per 1k-cycle window.
fn render_windows(windows: &[StallWindow]) -> String {
    windows.iter().map(|w| render_u64s(w.iter().copied())).collect::<Vec<_>>().join(";")
}

fn parse_windows(value: &str) -> Option<Vec<StallWindow>> {
    if value.is_empty() {
        return Some(Vec::new());
    }
    value.split(';').map(parse_array).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobOutput {
        let mut out = JobOutput::default();
        out.stats.cycles = 12345;
        out.stats.instructions = 678;
        out.stats.per_slot_issued = vec![100, 200, 378];
        out.stats.fu_invocations = [1, 2, 3, 4, 5, 6, 7];
        out.stats.fu_busy = [2, 4, 6, 8, 10, 12, 14];
        out.stats.fu_instances = [1, 1, 1, 1, 1, 1, 2];
        out.stats.stalls = StallBreakdown::from_counts([9, 8, 7, 6, 5, 4, 3, 2]);
        out.stats.stall_windows = vec![[4, 4, 3, 3, 2, 2, 1, 1], [5, 4, 4, 3, 3, 2, 2, 1]];
        out.stats.context_switches = 11;
        out.stats.threads_killed = 2;
        out.stats.rotations = 40;
        out.mem = MemStats { accesses: 50, hits: 48, misses: 2, absences: 0 };
        out
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hirata-lab-cache-test-{name}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_is_identity() {
        let cache = DiskCache::open(tmp_dir("roundtrip")).expect("open");
        let out = sample();
        cache.store("1a", &out).expect("store");
        assert_eq!(cache.load("1a"), Some(out));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.stores), (1, 0, 1));
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > 0);
    }

    #[test]
    fn missing_key_is_a_miss() {
        let cache = DiskCache::open(tmp_dir("missing")).expect("open");
        assert_eq!(cache.load("ab5e7"), None);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn tag_mismatch_is_a_miss() {
        let dir = tmp_dir("tags");
        let old = DiskCache::open_with_tag(&dir, "hirata-lab-cache-v0").expect("open");
        old.store("ab", &sample()).expect("store");
        let new = DiskCache::open(&dir).expect("open");
        assert_eq!(new.load("ab"), None);
        // Re-storing under the current tag makes it visible again.
        new.store("ab", &sample()).expect("store");
        assert_eq!(new.load("ab"), Some(sample()));
    }

    #[test]
    fn corrupt_entries_are_misses() {
        let cache = DiskCache::open(tmp_dir("corrupt")).expect("open");
        let path = cache.dir().join("bad1");
        fs::write(&path, format!("{CACHE_SCHEMA_TAG}\ncycles=notanumber\n")).expect("write");
        assert_eq!(cache.load("bad1"), None);
        fs::write(&path, format!("{CACHE_SCHEMA_TAG}\nunknown_field=1\n")).expect("write");
        assert_eq!(cache.load("bad1"), None);
    }

    #[test]
    fn traversal_keys_are_rejected() {
        let cache = DiskCache::open(tmp_dir("traversal")).expect("open");
        for bad in ["../etc/passwd", "a/b", "", "UPPER", ".tmp-x", &"f".repeat(65)] {
            assert_eq!(cache.load(bad), None, "{bad:?}");
            assert!(cache.store(bad, &sample()).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn clones_share_index_and_counters() {
        let cache = DiskCache::open(tmp_dir("clones")).expect("open");
        let other = cache.clone();
        other.store("cafe", &sample()).expect("store");
        assert_eq!(cache.load("cafe"), Some(sample()));
        let stats = cache.stats();
        assert_eq!((stats.stores, stats.hits), (1, 1));
        assert_eq!(other.stats(), stats);
    }

    #[test]
    fn reopen_seeds_index_from_disk() {
        let dir = tmp_dir("reopen");
        let cache = DiskCache::open(&dir).expect("open");
        cache.store("aa", &sample()).expect("store");
        cache.store("bb", &sample()).expect("store");
        drop(cache);
        let cache = DiskCache::open(&dir).expect("reopen");
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert!(stats.bytes > 0);
        assert_eq!(cache.load("aa"), Some(sample()));
    }
}
