//! Jobs: one simulation point of an experiment grid, with a stable
//! content hash.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use hirata_isa::{encode_program, Program};
use hirata_mem::{DataMemModel, DsmMemory, FiniteCache, IdealCache, MemStats};
use hirata_sim::{ChromeSink, Config, Machine, MachineError, RunStats};

use crate::cache::CACHE_SCHEMA_TAG;

/// Default per-job wall-clock timeout.
///
/// Generous: individual experiment points complete in milliseconds to
/// a few seconds; the timeout exists to stop a hung batch, not to race
/// healthy jobs.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(120);

/// Which data-memory timing model a job simulates under.
///
/// This is a *description* rather than a boxed model so that jobs stay
/// cloneable, hashable, and serializable; [`MemModelSpec::build`]
/// instantiates the live model at execution time.
#[derive(Debug, Clone, PartialEq)]
pub enum MemModelSpec {
    /// Ideal cache with the paper's 2-cycle access (§2.1, Table 1).
    Ideal,
    /// Ideal cache with an explicit access latency.
    IdealLatency {
        /// Access latency in cycles.
        latency: u32,
    },
    /// Finite direct-mapped cache.
    Finite {
        /// Number of cache lines.
        lines: usize,
        /// Words per line.
        line_words: u64,
        /// Hit latency in cycles.
        hit_latency: u32,
        /// Miss (memory) latency in cycles.
        miss_latency: u32,
    },
    /// Distributed shared memory: addresses at or above `remote_base`
    /// raise data-absence traps with the given round-trip latency.
    Dsm {
        /// First remote word address.
        remote_base: u64,
        /// Local access latency in cycles.
        local_latency: u32,
        /// Remote round-trip latency in cycles.
        remote_latency: u64,
    },
}

impl MemModelSpec {
    /// Instantiates the live memory-timing model.
    pub fn build(&self) -> Box<dyn DataMemModel> {
        match *self {
            MemModelSpec::Ideal => Box::new(IdealCache::default()),
            MemModelSpec::IdealLatency { latency } => Box::new(IdealCache::new(latency)),
            MemModelSpec::Finite { lines, line_words, hit_latency, miss_latency } => {
                Box::new(FiniteCache::new(lines, line_words, hit_latency, miss_latency))
            }
            MemModelSpec::Dsm { remote_base, local_latency, remote_latency } => {
                Box::new(DsmMemory::new(remote_base, local_latency, remote_latency))
            }
        }
    }
}

/// One simulation to run: a configuration, a program, and a memory
/// model, plus engine-side controls (display name, timeout).
///
/// The [content hash](Job::content_hash) covers exactly the fields
/// that determine the simulation outcome: configuration, program
/// (instructions, data segments, entry point), memory-model spec, and
/// extra resident threads. `name` and `timeout` are engine-side only
/// and deliberately excluded.
#[derive(Debug, Clone)]
pub struct Job {
    /// Display name for progress and error reporting.
    pub name: String,
    /// Simulator configuration.
    pub config: Config,
    /// The program to run (shared; batches sweep many configs over
    /// one program).
    pub program: Arc<Program>,
    /// Data-memory timing model.
    pub mem: MemModelSpec,
    /// Instruction addresses of extra threads resident at start
    /// (beyond the initial thread at the program entry), as used by
    /// the concurrent-multithreading experiments.
    pub extra_threads: Vec<u32>,
    /// Wall-clock timeout for this job.
    pub timeout: Duration,
    /// When set, [`execute`] records a Chrome `trace_event` JSON
    /// artifact of the run at `<dir>/<content_hash>.json`. Engine-side
    /// only: like `name` and `timeout`, excluded from the content hash
    /// (tracing never changes the simulation outcome).
    pub trace_dir: Option<PathBuf>,
}

impl Job {
    /// A job with the default memory model, no extra threads, and the
    /// default timeout.
    pub fn new(name: impl Into<String>, config: Config, program: Arc<Program>) -> Self {
        Job {
            name: name.into(),
            config,
            program,
            mem: MemModelSpec::Ideal,
            extra_threads: Vec::new(),
            timeout: DEFAULT_TIMEOUT,
            trace_dir: None,
        }
    }

    /// Replaces the memory-model spec.
    pub fn with_mem(mut self, mem: MemModelSpec) -> Self {
        self.mem = mem;
        self
    }

    /// Adds extra resident threads starting at the given addresses.
    pub fn with_extra_threads(mut self, pcs: Vec<u32>) -> Self {
        self.extra_threads = pcs;
        self
    }

    /// Replaces the wall-clock timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Records a Chrome trace artifact of the run under `dir`, keyed
    /// by the job's content hash.
    pub fn with_trace_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.trace_dir = Some(dir.into());
        self
    }

    /// Path of the trace artifact this job would write, if tracing.
    pub fn trace_path(&self) -> Option<PathBuf> {
        self.trace_dir.as_ref().map(|dir| dir.join(format!("{}.json", self.content_hash())))
    }

    /// Stable 128-bit content hash of the job under the current cache
    /// schema ([`CACHE_SCHEMA_TAG`]), as 32 hex digits.
    pub fn content_hash(&self) -> String {
        self.content_hash_with_tag(CACHE_SCHEMA_TAG)
    }

    /// Content hash under an explicit schema tag (exposed so tests can
    /// demonstrate that a tag bump changes every key).
    pub fn content_hash_with_tag(&self, tag: &str) -> String {
        let bytes = self.fingerprint(tag);
        // Two independent FNV-1a passes give a 128-bit key; the second
        // prepends a domain-separation byte so the halves differ.
        let lo = fnv1a(&bytes, FNV_OFFSET);
        let hi = fnv1a(&bytes, fnv1a(&[0x9d], FNV_OFFSET));
        format!("{hi:016x}{lo:016x}")
    }

    /// Serializes the outcome-determining fields to a byte stream.
    fn fingerprint(&self, tag: &str) -> Vec<u8> {
        let mut out = Vec::with_capacity(4096);
        let mut field = |label: &str, body: &[u8]| {
            out.extend_from_slice(label.as_bytes());
            out.extend_from_slice(&(body.len() as u64).to_le_bytes());
            out.extend_from_slice(body);
        };
        field("tag", tag.as_bytes());
        // Config derives Debug over plain data; its rendering is a
        // complete, stable description of every field.
        field("config", format!("{:?}", self.config).as_bytes());
        match encode_program(&self.program.insts) {
            Ok(words) => field("insts", &words_to_bytes(&words)),
            // Unencodable instructions (none today) fall back to the
            // textual listing, which is equally outcome-determining.
            Err(_) => field("insts-text", format!("{:?}", self.program.insts).as_bytes()),
        }
        for seg in &self.program.data {
            field("seg-base", &seg.base.to_le_bytes());
            field("seg-words", &words_to_bytes(&seg.words));
        }
        field("entry", &self.program.entry.to_le_bytes());
        field("mem", format!("{:?}", self.mem).as_bytes());
        let pcs: Vec<u64> = self.extra_threads.iter().map(|&pc| pc as u64).collect();
        field("extra-threads", &words_to_bytes(&pcs));
        out
    }
}

fn words_to_bytes(words: &[u64]) -> Vec<u8> {
    let mut v = Vec::with_capacity(words.len() * 8);
    for w in words {
        v.extend_from_slice(&w.to_le_bytes());
    }
    v
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The outcome of one successfully simulated job.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JobOutput {
    /// Run statistics from the machine.
    pub stats: RunStats,
    /// Data-memory access statistics.
    pub mem: MemStats,
}

/// Why a job failed.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// The simulator reported a machine check (bad configuration,
    /// malformed program, memory fault, watchdog, ...).
    Sim(MachineError),
    /// The job panicked; the worker caught the panic and the rest of
    /// the batch completed normally.
    Panicked(String),
    /// The job exceeded its wall-clock timeout.
    Timeout(Duration),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Sim(e) => write!(f, "simulation failed: {e}"),
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
            JobError::Timeout(t) => write!(f, "job timed out after {:.1}s", t.as_secs_f64()),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MachineError> for JobError {
    fn from(e: MachineError) -> Self {
        JobError::Sim(e)
    }
}

/// The result of one job in a batch.
pub type JobResult = Result<JobOutput, JobError>;

/// Runs one job to completion on the calling thread (no cache, no
/// timeout — the engine wraps this with both).
pub fn execute(job: &Job) -> Result<JobOutput, MachineError> {
    let mut m = Machine::with_mem_model(job.config.clone(), &job.program, job.mem.build())?;
    for &pc in &job.extra_threads {
        m.add_thread(pc)?;
    }
    let sink = job.trace_dir.as_ref().map(|_| {
        let sink = ChromeSink::new();
        m.attach_trace_sink(Box::new(sink.clone()));
        sink
    });
    let stats = m.run()?.clone();
    let mem = m.mem_stats();
    if let (Some(dir), Some(sink)) = (&job.trace_dir, sink) {
        let json = sink.render(job.config.thread_slots, &job.config.fu);
        write_trace(dir, &job.content_hash(), &json);
    }
    Ok(JobOutput { stats, mem })
}

/// Writes one trace artifact atomically (temp file + rename), so a
/// concurrent reader never sees a torn trace. Failure to write is a
/// warning, not a job failure: the simulation result stands.
fn write_trace(dir: &Path, key: &str, json: &str) {
    let path = dir.join(format!("{key}.json"));
    let tmp = dir.join(format!(".tmp-{key}-{}", std::process::id()));
    let ok = std::fs::create_dir_all(dir).is_ok()
        && std::fs::write(&tmp, json).is_ok()
        && std::fs::rename(&tmp, &path).is_ok();
    if !ok {
        eprintln!("[lab] could not write trace artifact {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program() -> Arc<Program> {
        Arc::new(Program::from_insts(vec![hirata_isa::Inst::Halt]))
    }

    fn job() -> Job {
        Job::new("j", Config::base_risc(), program())
    }

    #[test]
    fn hash_is_stable_across_clones() {
        let a = job();
        let b = a.clone();
        assert_eq!(a.content_hash(), b.content_hash());
        assert_eq!(a.content_hash().len(), 32);
    }

    #[test]
    fn name_and_timeout_do_not_affect_hash() {
        let a = job();
        let mut b = a.clone();
        b.name = "other".into();
        b.timeout = Duration::from_secs(1);
        assert_eq!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn config_program_and_mem_affect_hash() {
        let a = job();
        let b = Job { config: Config::multithreaded(2), ..a.clone() };
        assert_ne!(a.content_hash(), b.content_hash());

        let c = a.clone().with_mem(MemModelSpec::IdealLatency { latency: 3 });
        assert_ne!(a.content_hash(), c.content_hash());

        let d = a.clone().with_extra_threads(vec![0]);
        assert_ne!(a.content_hash(), d.content_hash());
    }

    #[test]
    fn schema_tag_changes_every_key() {
        let a = job();
        assert_ne!(a.content_hash_with_tag("v1"), a.content_hash_with_tag("v2"));
    }

    #[test]
    fn execute_runs_a_trivial_program() {
        let out = execute(&job()).expect("runs");
        assert!(out.stats.cycles > 0);
    }
}
