//! The work-stealing batch engine.
//!
//! `run_batch` resolves cache hits up front, then distributes the
//! remaining jobs round-robin over per-worker deques. Workers pop
//! from the front of their own deque and steal from the back of their
//! neighbours' when empty, so an uneven mix of fast and slow jobs
//! still keeps every worker busy. Each job runs on its own thread so
//! the worker can enforce a wall-clock timeout with `recv_timeout`,
//! and panics are caught inside the job thread so one crash never
//! takes down the batch.

use std::collections::VecDeque;
use std::io::{IsTerminal, Write as _};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use hirata_sim::MachineError;

use crate::cache::{default_cache_dir, DiskCache};
use crate::job::{execute, Job, JobError, JobOutput, JobResult};

/// A function that simulates one job; the default is [`execute`].
/// Injectable so tests can exercise the panic and timeout paths.
type Runner = dyn Fn(&Job) -> Result<JobOutput, MachineError> + Send + Sync;

/// A queued unit of work: submission index, cache key, and the job.
type QueuedJob = (usize, String, Arc<Job>);

/// The experiment-execution engine: a worker count plus an optional
/// result cache.
pub struct Lab {
    workers: usize,
    cache: Option<DiskCache>,
    progress: bool,
    report: bool,
    trace_dir: Option<std::path::PathBuf>,
}

impl Lab {
    /// An engine with one worker per available CPU and the default
    /// on-disk cache (`$HIRATA_LAB_CACHE` or `target/lab-cache`).
    ///
    /// Cache-directory creation failure (read-only filesystem, ...)
    /// degrades to running without a cache rather than failing the
    /// batch.
    pub fn new() -> Self {
        let workers = thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Lab {
            workers,
            cache: DiskCache::open(default_cache_dir()).ok(),
            progress: std::io::stderr().is_terminal(),
            report: true,
            trace_dir: None,
        }
    }

    /// Overrides the worker count (the `--jobs N` flag). Clamped to
    /// at least one.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Disables the result cache (every job simulates).
    pub fn without_cache(mut self) -> Self {
        self.cache = None;
        self
    }

    /// Uses a cache in the given directory instead of the default.
    pub fn with_cache_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.cache = DiskCache::open(dir).ok();
        self
    }

    /// Uses an existing cache handle. This is how the `hirata serve`
    /// daemon shares one artifact store between the engine and its
    /// result endpoints ([`DiskCache`] handles are `Arc`-shared).
    pub fn with_cache(mut self, cache: DiskCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The engine's cache handle, if caching is enabled.
    pub fn cache(&self) -> Option<&DiskCache> {
        self.cache.as_ref()
    }

    /// Emits a Chrome trace artifact per executed job under `dir`,
    /// keyed by content hash. With tracing on, a cached result only
    /// counts as a hit when its trace artifact already exists —
    /// otherwise the job re-simulates to regenerate the trace, so a
    /// batch always leaves a complete artifact set behind.
    pub fn with_trace_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        let dir = dir.into();
        let _ = std::fs::create_dir_all(&dir);
        self.trace_dir = Some(dir);
        self
    }

    /// Silences the live progress line and the end-of-batch report
    /// (for tests and benchmarks that run many batches).
    pub fn quiet(mut self) -> Self {
        self.progress = false;
        self.report = false;
        self
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs a batch of jobs and returns per-job results in submission
    /// order plus a batch report. See [`Lab::run_batch_with`].
    pub fn run_batch(&self, jobs: Vec<Job>) -> Batch {
        self.run_batch_inner(jobs, Arc::new(execute), None)
    }

    /// Runs a batch with an explicit runner function in place of
    /// [`execute`].
    ///
    /// Results come back in submission order. A job that fails —
    /// simulator error, panic, or timeout — yields `Err(JobError)` in
    /// its slot while the rest of the batch completes.
    pub fn run_batch_with<F>(&self, jobs: Vec<Job>, runner: F) -> Batch
    where
        F: Fn(&Job) -> Result<JobOutput, MachineError> + Send + Sync + 'static,
    {
        self.run_batch_inner(jobs, Arc::new(runner), None)
    }

    /// Runs a batch, invoking `on_job_done` on the calling thread as
    /// each job finishes — cache hits first (in submission order),
    /// then executed jobs in completion order. This is the live
    /// progress feed: `hirata lab` prints `k/n` lines from it and the
    /// `hirata serve` daemon streams it to clients as chunked events.
    pub fn run_batch_observed(
        &self,
        jobs: Vec<Job>,
        on_job_done: &mut dyn FnMut(&JobSummary),
    ) -> Batch {
        self.run_batch_inner(jobs, Arc::new(execute), Some(on_job_done))
    }

    fn run_batch_inner(
        &self,
        jobs: Vec<Job>,
        runner: Arc<Runner>,
        mut on_job_done: Option<&mut dyn FnMut(&JobSummary)>,
    ) -> Batch {
        let start = Instant::now();
        let total = jobs.len();
        let mut results: Vec<Option<JobResult>> = Vec::with_capacity(total);
        let mut report = BatchReport { total, ..BatchReport::default() };

        // Resolve cache hits up front; only misses go to the pool.
        // The content hash is computed once here and travels with the
        // job so the collector can store fresh results under it.
        let mut pending: Vec<(usize, String, Job)> = Vec::new();
        let mut finished = 0usize;
        for (index, mut job) in jobs.into_iter().enumerate() {
            if let Some(dir) = &self.trace_dir {
                job.trace_dir = Some(dir.clone());
            }
            let key = job.content_hash();
            // With tracing on, a hit additionally requires the trace
            // artifact on disk; a cached result without one
            // re-simulates so the artifact set comes out complete.
            let trace_present = match job.trace_path() {
                Some(path) => path.exists(),
                None => true,
            };
            match self.cache.as_ref().and_then(|c| c.load(&key)).filter(|_| trace_present) {
                Some(out) => {
                    report.cache_hits += 1;
                    finished += 1;
                    let result = Ok(out);
                    if let Some(hook) = on_job_done.as_deref_mut() {
                        hook(&JobSummary {
                            index,
                            name: &job.name,
                            key: &key,
                            cached: true,
                            result: &result,
                            finished,
                            total,
                        });
                    }
                    results.push(Some(result));
                }
                None => {
                    results.push(None);
                    pending.push((index, key, job));
                }
            }
        }

        if !pending.is_empty() {
            self.run_pending(
                pending,
                &mut results,
                &mut report,
                runner,
                start,
                finished,
                &mut on_job_done,
            );
        }

        report.wall = start.elapsed();
        self.print_report(&report);
        let results =
            results.into_iter().map(|r| r.expect("every job produced a result")).collect();
        Batch { results, report }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_pending(
        &self,
        pending: Vec<(usize, String, Job)>,
        results: &mut [Option<JobResult>],
        report: &mut BatchReport,
        runner: Arc<Runner>,
        start: Instant,
        already_finished: usize,
        on_job_done: &mut Option<&mut dyn FnMut(&JobSummary)>,
    ) {
        let workers = self.workers.min(pending.len());
        let count = pending.len();
        let total = already_finished + count;

        // Striped round-robin assignment over per-worker deques.
        let mut queues: Vec<VecDeque<QueuedJob>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (n, (index, key, job)) in pending.into_iter().enumerate() {
            queues[n % workers].push_back((index, key, Arc::new(job)));
        }
        let queues: Arc<Vec<Mutex<VecDeque<QueuedJob>>>> =
            Arc::new(queues.into_iter().map(Mutex::new).collect());

        let (tx, rx) = mpsc::channel::<(usize, String, String, JobResult)>();
        let mut handles = Vec::with_capacity(workers);
        for me in 0..workers {
            let queues = Arc::clone(&queues);
            let runner = Arc::clone(&runner);
            let tx = tx.clone();
            handles.push(thread::spawn(move || {
                while let Some((index, key, job)) = take_job(&queues, me) {
                    let result = run_with_timeout(&job, &runner);
                    if tx.send((index, key, job.name.clone(), result)).is_err() {
                        break;
                    }
                }
            }));
        }
        drop(tx);

        let mut finished = 0;
        for (index, key, name, result) in rx.iter() {
            match &result {
                Ok(out) => {
                    report.simulated_cycles += out.stats.cycles;
                    if let Some(cache) = &self.cache {
                        // Only successful runs are cached; a store
                        // failure just means a future miss.
                        let _ = cache.store(&key, out);
                    }
                }
                Err(err) => {
                    report.failed += 1;
                    eprintln!("[lab] job `{name}` failed: {err}");
                }
            }
            report.executed += 1;
            finished += 1;
            if let Some(hook) = on_job_done.as_deref_mut() {
                hook(&JobSummary {
                    index,
                    name: &name,
                    key: &key,
                    cached: false,
                    result: &result,
                    finished: already_finished + finished,
                    total,
                });
            }
            results[index] = Some(result);
            self.print_progress(report, finished, count, start);
        }

        for handle in handles {
            // Workers catch job panics themselves; a panic here is an
            // engine bug and worth propagating.
            handle.join().expect("lab worker thread");
        }
    }

    fn print_progress(&self, report: &BatchReport, finished: usize, count: usize, start: Instant) {
        if !self.progress {
            return;
        }
        let mut err = std::io::stderr().lock();
        let _ = write!(
            err,
            "\r[lab] {finished}/{count} simulated ({} cached, {} failed, {:.1}s)\x1b[K",
            report.cache_hits,
            report.failed,
            start.elapsed().as_secs_f64(),
        );
        if finished == count {
            let _ = writeln!(err);
        }
        let _ = err.flush();
    }

    fn print_report(&self, report: &BatchReport) {
        if self.report {
            eprintln!("[lab] {report}");
        }
    }
}

impl Default for Lab {
    fn default() -> Self {
        Lab::new()
    }
}

/// Pops a job from `me`'s own deque, stealing from the back of other
/// workers' deques when it is empty.
fn take_job(queues: &[Mutex<VecDeque<QueuedJob>>], me: usize) -> Option<QueuedJob> {
    if let Some(job) = queues[me].lock().expect("queue lock").pop_front() {
        return Some(job);
    }
    for offset in 1..queues.len() {
        let victim = (me + offset) % queues.len();
        if let Some(job) = queues[victim].lock().expect("queue lock").pop_back() {
            return Some(job);
        }
    }
    None
}

/// Runs one job on a dedicated thread, enforcing its wall-clock
/// timeout and converting panics into [`JobError::Panicked`].
fn run_with_timeout(job: &Arc<Job>, runner: &Arc<Runner>) -> JobResult {
    let (tx, rx) = mpsc::channel();
    let thread_job = Arc::clone(job);
    let thread_runner = Arc::clone(runner);
    thread::spawn(move || {
        let outcome = catch_unwind(AssertUnwindSafe(|| thread_runner(&thread_job)));
        let result = match outcome {
            Ok(Ok(out)) => Ok(out),
            Ok(Err(e)) => Err(JobError::Sim(e)),
            Err(payload) => Err(JobError::Panicked(panic_message(&*payload))),
        };
        // The receiver disappears on timeout; nothing to report then.
        let _ = tx.send(result);
    });
    match rx.recv_timeout(job.timeout) {
        Ok(result) => result,
        // The runaway thread keeps running detached until the
        // simulator watchdog (`Config::max_cycles`) reaps it; the
        // batch does not wait.
        Err(RecvTimeoutError::Timeout) => Err(JobError::Timeout(job.timeout)),
        Err(RecvTimeoutError::Disconnected) => {
            Err(JobError::Panicked("job thread died without reporting".into()))
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// A finished job as seen by the [`Lab::run_batch_observed`] progress
/// hook: identity, provenance, outcome, and batch position.
#[derive(Debug)]
pub struct JobSummary<'a> {
    /// Submission index of the job within the batch.
    pub index: usize,
    /// The job's display name.
    pub name: &'a str,
    /// The job's content hash (its cache / artifact key).
    pub key: &'a str,
    /// True when the result came from the cache instead of simulating.
    pub cached: bool,
    /// The job's outcome.
    pub result: &'a JobResult,
    /// Jobs finished so far, including this one.
    pub finished: usize,
    /// Total jobs in the batch.
    pub total: usize,
}

/// A completed batch: per-job results in submission order plus the
/// summary report.
#[derive(Debug)]
pub struct Batch {
    /// One result per submitted job, in submission order.
    pub results: Vec<JobResult>,
    /// Batch summary.
    pub report: BatchReport,
}

/// End-of-batch summary counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchReport {
    /// Jobs submitted.
    pub total: usize,
    /// Jobs actually simulated (cache misses).
    pub executed: usize,
    /// Jobs answered from the cache.
    pub cache_hits: usize,
    /// Jobs that failed (simulator error, panic, or timeout).
    pub failed: usize,
    /// Machine cycles simulated by the executed jobs.
    pub simulated_cycles: u64,
    /// Wall-clock time for the whole batch.
    pub wall: Duration,
}

impl std::fmt::Display for BatchReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} jobs: {} simulated, {} cached, {} failed; {} cycles in {:.2}s",
            self.total,
            self.executed,
            self.cache_hits,
            self.failed,
            self.simulated_cycles,
            self.wall.as_secs_f64(),
        )
    }
}
