//! Artifact-store contract tests: LRU eviction under a byte budget,
//! hit/miss/store/eviction counters, and concurrent writers sharing
//! one store without torn entries.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

use hirata_lab::{DiskCache, JobOutput};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

struct Scratch(PathBuf);

impl Scratch {
    fn new() -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "hirata-cache-test-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn output(cycles: u64) -> JobOutput {
    JobOutput {
        stats: hirata_sim::RunStats { cycles, instructions: cycles / 2, ..Default::default() },
        ..Default::default()
    }
}

/// Entries of a given shape are all the same size; measure one.
fn entry_size() -> u64 {
    let scratch = Scratch::new();
    let cache = DiskCache::open(&scratch.0).expect("opens");
    cache.store("aa", &output(1)).expect("stores");
    cache.stats().bytes
}

#[test]
fn byte_budget_evicts_least_recently_used() {
    let size = entry_size();
    let scratch = Scratch::new();
    let cache = DiskCache::open(&scratch.0).expect("opens").with_byte_budget(size * 2 + size / 2);

    cache.store("aa", &output(1)).expect("stores");
    cache.store("bb", &output(2)).expect("stores");
    assert!(cache.contains("aa") && cache.contains("bb"), "both fit the budget");

    // Touch `aa` so `bb` becomes the least recently used entry...
    assert_eq!(cache.load("aa").expect("hit").stats.cycles, 1);
    // ...and the third store must evict `bb`, not `aa`.
    cache.store("cc", &output(3)).expect("stores");
    assert!(cache.contains("aa"), "recently used entry was evicted");
    assert!(!cache.contains("bb"), "LRU entry survived over budget");
    assert!(cache.contains("cc"), "fresh store evicted itself");

    let stats = cache.stats();
    assert_eq!(stats.evictions, 1);
    assert_eq!(stats.entries, 2);
    assert_eq!(stats.bytes, size * 2);
    assert!(stats.bytes <= cache.byte_budget().expect("budget set"));
}

#[test]
fn an_entry_larger_than_the_budget_evicts_everything_including_itself() {
    let size = entry_size();
    let scratch = Scratch::new();
    let cache = DiskCache::open(&scratch.0).expect("opens").with_byte_budget(size / 2);
    cache.store("aa", &output(1)).expect("store succeeds; entry just cannot stay");
    assert!(!cache.contains("aa"));
    let stats = cache.stats();
    assert_eq!((stats.entries, stats.bytes, stats.evictions), (0, 0, 1));
}

#[test]
fn counters_track_hits_misses_and_stores() {
    let scratch = Scratch::new();
    let cache = DiskCache::open(&scratch.0).expect("opens");

    assert!(cache.load("aa").is_none());
    assert!(cache.load("bb").is_none());
    cache.store("aa", &output(7)).expect("stores");
    assert!(cache.load("aa").is_some());
    assert!(cache.load("aa").is_some());
    // `peek` and `contains` are deliberately uncounted.
    assert!(cache.peek("aa").is_some());
    assert!(cache.contains("aa"));

    let stats = cache.stats();
    assert_eq!(stats.hits, 2);
    assert_eq!(stats.misses, 2);
    assert_eq!(stats.stores, 1);
    assert_eq!(stats.evictions, 0);
    assert_eq!(stats.entries, 1);
}

#[test]
fn reopening_seeds_the_index_from_disk() {
    let scratch = Scratch::new();
    {
        let cache = DiskCache::open(&scratch.0).expect("opens");
        cache.store("aa", &output(1)).expect("stores");
        cache.store("bb", &output(2)).expect("stores");
    }
    let cache = DiskCache::open(&scratch.0).expect("reopens");
    let stats = cache.stats();
    assert_eq!(stats.entries, 2);
    assert!(stats.bytes > 0);
    assert_eq!(cache.load("aa").expect("survives reopen").stats.cycles, 1);
    assert_eq!(cache.load("bb").expect("survives reopen").stats.cycles, 2);
}

#[test]
fn concurrent_writers_share_one_store_without_torn_entries() {
    const WRITERS: usize = 8;
    const KEYS_PER_WRITER: usize = 16;

    let scratch = Scratch::new();
    let cache = DiskCache::open(&scratch.0).expect("opens");

    thread::scope(|scope| {
        for writer in 0..WRITERS {
            let cache = cache.clone(); // clones share the same store
            scope.spawn(move || {
                for k in 0..KEYS_PER_WRITER {
                    // Even-numbered keys are contended by every
                    // writer (same content per key, so any winner is
                    // correct); odd ones are private.
                    let key =
                        if k % 2 == 0 { format!("{k:02x}") } else { format!("{writer:x}{k:02x}") };
                    let cycles = u64::from_str_radix(&key, 16).expect("hex key");
                    cache.store(&key, &output(cycles)).expect("store");
                    let loaded = cache.load(&key).expect("readable right after store");
                    assert_eq!(loaded.stats.cycles, cycles, "torn or mixed entry");
                }
            });
        }
    });

    let stats = cache.stats();
    assert_eq!(stats.stores, (WRITERS * KEYS_PER_WRITER) as u64);
    // 8 shared keys + 8 private keys per writer.
    assert_eq!(stats.entries, 8 + (WRITERS * KEYS_PER_WRITER / 2) as u64);
    assert_eq!(stats.hits, (WRITERS * KEYS_PER_WRITER) as u64);
    assert_eq!(stats.misses, 0);

    // Every entry parses cleanly after the dust settles.
    for k in (0..KEYS_PER_WRITER).step_by(2) {
        let key = format!("{k:02x}");
        let cycles = u64::from_str_radix(&key, 16).expect("hex key");
        assert_eq!(cache.load(&key).expect("present").stats.cycles, cycles);
    }
}

#[test]
fn eviction_under_concurrent_load_converges_to_budget() {
    let size = entry_size();
    let scratch = Scratch::new();
    let budget = size * 4;
    let cache = DiskCache::open(&scratch.0).expect("opens").with_byte_budget(budget);

    thread::scope(|scope| {
        for writer in 0..4 {
            let cache = cache.clone();
            scope.spawn(move || {
                for k in 0..32 {
                    let key = format!("{writer:x}{k:02x}");
                    cache.store(&key, &output(k)).expect("store");
                }
            });
        }
    });

    let stats = cache.stats();
    assert!(stats.bytes <= budget, "store left the cache over budget: {stats:?}");
    assert!(stats.entries <= 4);
    assert!(stats.evictions >= 124, "expected most stores evicted: {stats:?}");
}
