//! Engine-level tests: cache correctness, schema invalidation, and
//! failure isolation (panic / timeout) in real batches.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use hirata_lab::{DiskCache, Job, JobError, JobOutput, Lab, MemModelSpec};
use hirata_sched::Strategy;
use hirata_sim::{Config, MachineError, RunStats, StallBreakdown};
use hirata_workloads::livermore;

use proptest::prelude::*;

fn temp_cache(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hirata-lab-engine-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small batch of genuinely different simulations: Livermore
/// kernel 1 swept over slot counts.
fn kernel_batch() -> Vec<Job> {
    let program = Arc::new(livermore::kernel1_program(24, Strategy::ListA));
    [1usize, 2, 4, 8]
        .into_iter()
        .map(|slots| {
            Job::new(format!("k1-s{slots}"), Config::multithreaded(slots), Arc::clone(&program))
        })
        .collect()
}

#[test]
fn parallel_results_match_serial_and_cache_is_bit_identical() {
    let dir = temp_cache("parity");

    // Serial, cold cache.
    let serial = Lab::new().with_workers(1).with_cache_dir(&dir).run_batch(kernel_batch());
    assert_eq!(serial.report.executed, 4);
    assert_eq!(serial.report.cache_hits, 0);
    assert_eq!(serial.report.failed, 0);
    assert!(serial.report.simulated_cycles > 0);

    // Parallel, fresh cache directory: identical results.
    let parallel = Lab::new()
        .with_workers(8)
        .with_cache_dir(temp_cache("parity-par"))
        .run_batch(kernel_batch());
    for (a, b) in serial.results.iter().zip(&parallel.results) {
        assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
    }

    // Warm cache: zero simulations, bit-identical outputs.
    let warm = Lab::new().with_workers(8).with_cache_dir(&dir).run_batch(kernel_batch());
    assert_eq!(warm.report.executed, 0);
    assert_eq!(warm.report.cache_hits, 4);
    assert_eq!(warm.report.simulated_cycles, 0);
    for (a, b) in serial.results.iter().zip(&warm.results) {
        assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
    }
}

#[test]
fn schema_tag_bump_invalidates_old_entries() {
    let dir = temp_cache("schema");
    let jobs = kernel_batch();

    // Write entries under an old schema tag, at the keys the old
    // schema would have used.
    let old = DiskCache::open_with_tag(&dir, "hirata-lab-cache-v0").expect("open");
    for job in &jobs {
        let out = hirata_lab::execute(job).expect("runs");
        old.store(&job.content_hash_with_tag("hirata-lab-cache-v0"), &out).expect("store");
    }

    // A current-schema engine sees only misses: both the key (hash
    // covers the tag) and the header line changed.
    let batch = Lab::new().with_workers(2).with_cache_dir(&dir).run_batch(jobs);
    assert_eq!(batch.report.cache_hits, 0);
    assert_eq!(batch.report.executed, 4);
}

#[test]
fn panicking_job_reports_error_while_siblings_complete() {
    let jobs = kernel_batch();
    let batch = Lab::new().with_workers(2).without_cache().run_batch_with(jobs, |job| {
        if job.name == "k1-s4" {
            panic!("injected crash in {}", job.name);
        }
        hirata_lab::execute(job)
    });
    assert_eq!(batch.report.failed, 1);
    assert_eq!(batch.report.executed, 4);
    for (i, result) in batch.results.iter().enumerate() {
        if i == 2 {
            match result {
                Err(JobError::Panicked(msg)) => assert!(msg.contains("injected crash")),
                other => panic!("expected panic error, got {other:?}"),
            }
        } else {
            assert!(result.is_ok(), "sibling {i} should complete: {result:?}");
        }
    }
}

#[test]
fn timed_out_job_reports_error_while_siblings_complete() {
    let timeout = Duration::from_millis(50);
    let jobs: Vec<Job> = kernel_batch().into_iter().map(|j| j.with_timeout(timeout)).collect();
    let batch = Lab::new().with_workers(2).without_cache().run_batch_with(jobs, |job| {
        if job.name == "k1-s2" {
            std::thread::sleep(Duration::from_millis(400));
        }
        hirata_lab::execute(job)
    });
    assert_eq!(batch.report.failed, 1);
    assert_eq!(batch.results.len(), 4);
    assert_eq!(batch.results[1], Err(JobError::Timeout(timeout)));
    for (i, result) in batch.results.iter().enumerate() {
        if i != 1 {
            assert!(result.is_ok(), "sibling {i} should complete: {result:?}");
        }
    }
}

#[test]
fn simulator_errors_surface_as_job_errors() {
    // An empty program is a machine check, not a panic, and must not
    // poison the batch.
    let mut jobs = kernel_batch();
    jobs.push(Job::new("empty", Config::base_risc(), Arc::new(hirata_isa::Program::default())));
    let batch = Lab::new().with_workers(2).without_cache().run_batch(jobs);
    assert_eq!(batch.report.failed, 1);
    assert_eq!(batch.results[4], Err(JobError::Sim(MachineError::EmptyProgram)),);
    assert!(batch.results[..4].iter().all(|r| r.is_ok()));
}

#[test]
fn finite_cache_spec_produces_mem_stats() {
    let program = Arc::new(livermore::kernel1_program(24, Strategy::ListA));
    let job =
        Job::new("finite", Config::multithreaded(2), program).with_mem(MemModelSpec::Finite {
            lines: 8,
            line_words: 4,
            hit_latency: 2,
            miss_latency: 20,
        });
    let batch = Lab::new().with_workers(1).without_cache().run_batch(vec![job]);
    let out = batch.results[0].as_ref().expect("runs");
    assert!(out.mem.accesses > 0);
    assert!(out.mem.misses > 0, "a tiny cache must miss: {:?}", out.mem);
}

/// Builds a `JobOutput` from flat generated values.
fn output_from(
    scalars: (u64, u64, u64, u64, u64),
    per_slot: Vec<u64>,
    arrays: (Vec<u64>, Vec<u64>, Vec<u64>, Vec<u64>),
    windows: Vec<Vec<u64>>,
    mem: (u64, u64, u64, u64),
) -> JobOutput {
    let mut stats = RunStats {
        cycles: scalars.0,
        instructions: scalars.1,
        context_switches: scalars.2,
        threads_killed: scalars.3,
        rotations: scalars.4,
        per_slot_issued: per_slot,
        ..RunStats::default()
    };
    stats.fu_invocations = arrays.0.try_into().unwrap();
    stats.fu_busy = arrays.1.try_into().unwrap();
    stats.fu_instances = arrays.2.try_into().unwrap();
    stats.stalls = StallBreakdown::from_counts(arrays.3.try_into().unwrap());
    stats.stall_windows = windows.into_iter().map(|w| w.try_into().unwrap()).collect();
    let mem = hirata_mem::MemStats { accesses: mem.0, hits: mem.1, misses: mem.2, absences: mem.3 };
    JobOutput { stats, mem }
}

proptest! {
    /// A cache hit is bit-identical to the stored computation for any
    /// representable statistics, including extreme counter values.
    #[test]
    fn cache_roundtrip_is_bit_identical(
        scalars in (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
        per_slot in proptest::collection::vec(0u64..u64::MAX, 0..9),
        arrays in (
            proptest::collection::vec(0u64..u64::MAX, 7..8),
            proptest::collection::vec(0u64..u64::MAX, 7..8),
            proptest::collection::vec(0u64..u64::MAX, 7..8),
            proptest::collection::vec(0u64..u64::MAX, 8..9),
        ),
        windows in proptest::collection::vec(proptest::collection::vec(0u64..u64::MAX, 8..9), 0..4),
        mem in (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
        key_seed in 0u64..u64::MAX,
    ) {
        let out = output_from(scalars, per_slot, arrays, windows, mem);
        let cache = DiskCache::open(temp_cache("prop")).expect("open");
        let key = format!("{key_seed:032x}");
        cache.store(&key, &out).expect("store");
        prop_assert_eq!(cache.load(&key), Some(out));
    }
}
