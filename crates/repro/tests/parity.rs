//! The engine's paper-facing contract, checked end to end through the
//! `repro` binary: stdout is byte-identical whatever the worker count
//! and whether results are simulated or cached, and a warm-cache run
//! performs zero simulations.

use std::path::PathBuf;
use std::process::{Command, Output};

fn temp_cache(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-parity-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn repro(cache: &PathBuf, args: &[&str]) -> Output {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .env("HIRATA_LAB_CACHE", cache)
        .output()
        .expect("repro binary runs");
    assert!(out.status.success(), "repro {args:?} failed: {:?}", out);
    out
}

#[test]
fn all_is_byte_identical_across_worker_counts_and_cache_states() {
    let cache_serial = temp_cache("serial");
    let cache_parallel = temp_cache("parallel");

    let serial = repro(&cache_serial, &["--quick", "all", "--jobs", "1"]);
    let parallel = repro(&cache_parallel, &["--quick", "all", "--jobs", "8"]);
    assert!(!serial.stdout.is_empty(), "the full run must print tables");
    assert_eq!(
        serial.stdout, parallel.stdout,
        "stdout must be byte-identical at --jobs 1 and --jobs 8"
    );

    // Warm cache: same bytes again, and every batch report on stderr
    // must show zero simulations.
    let warm = repro(&cache_parallel, &["--quick", "all", "--jobs", "8"]);
    assert_eq!(
        parallel.stdout, warm.stdout,
        "stdout must be byte-identical between cold and warm cache"
    );
    let stderr = String::from_utf8_lossy(&warm.stderr);
    let reports: Vec<&str> =
        stderr.lines().filter(|l| l.starts_with("[lab] ") && l.contains(" jobs: ")).collect();
    assert!(!reports.is_empty(), "warm run must print batch reports: {stderr}");
    for line in &reports {
        assert!(line.contains(" 0 simulated, "), "warm-cache batch simulated jobs: {line}");
    }

    let _ = std::fs::remove_dir_all(&cache_serial);
    let _ = std::fs::remove_dir_all(&cache_parallel);
}

#[test]
fn no_cache_flag_forces_simulation_every_run() {
    let cache = temp_cache("nocache");
    let first = repro(&cache, &["--quick", "table4", "--no-cache"]);
    let second = repro(&cache, &["--quick", "table4", "--no-cache"]);
    assert_eq!(first.stdout, second.stdout);
    let stderr = String::from_utf8_lossy(&second.stderr);
    assert!(stderr.contains(" 0 cached, "), "--no-cache run must not hit the cache: {stderr}");
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn unknown_experiment_and_bad_jobs_value_exit_nonzero() {
    let cache = temp_cache("errors");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["no-such-table"])
        .env("HIRATA_LAB_CACHE", &cache)
        .output()
        .expect("repro binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment"));

    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["table2", "--jobs", "zero"])
        .env("HIRATA_LAB_CACHE", &cache)
        .output()
        .expect("repro binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid --jobs value"));
    let _ = std::fs::remove_dir_all(&cache);
}
