//! Trace-artifact determinism, checked end to end through the `repro`
//! binary: the Chrome trace JSON a job emits is byte-identical
//! whatever the worker count, and a warm-cache rerun — which only
//! re-simulates jobs whose artifact is missing — reproduces the same
//! bytes for every artifact it regenerates.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-trace-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn repro(cache: &Path, args: &[&str]) {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .env("HIRATA_LAB_CACHE", cache)
        .output()
        .expect("repro binary runs");
    assert!(out.status.success(), "repro {args:?} failed: {out:?}");
}

/// Reads every trace artifact in `dir` as `name -> bytes`.
fn artifacts(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    std::fs::read_dir(dir)
        .expect("trace dir exists")
        .map(|e| {
            let path = e.expect("dir entry").path();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            (name, std::fs::read(&path).expect("artifact is readable"))
        })
        .collect()
}

#[test]
fn trace_artifacts_are_byte_identical_across_worker_counts_and_cache_states() {
    let cache = temp_dir("cache");
    let traces_serial = temp_dir("serial");
    let traces_parallel = temp_dir("parallel");

    // Cold cache, one worker; populates the cache and the artifacts.
    repro(
        &cache,
        &["--quick", "table5", "--jobs", "1", "--trace-dir", traces_serial.to_str().unwrap()],
    );
    // Four workers, cache bypassed: a genuinely cold parallel run.
    repro(
        &cache,
        &[
            "--quick",
            "table5",
            "--no-cache",
            "--jobs",
            "4",
            "--trace-dir",
            traces_parallel.to_str().unwrap(),
        ],
    );

    let serial = artifacts(&traces_serial);
    let parallel = artifacts(&traces_parallel);
    assert!(!serial.is_empty(), "the sweep must emit trace artifacts");
    assert_eq!(serial, parallel, "trace JSON must be byte-identical at --jobs 1 and --jobs 4");
    for (name, bytes) in &serial {
        let text = std::str::from_utf8(bytes).expect("trace JSON is UTF-8");
        assert!(text.starts_with("{\"traceEvents\":["), "{name} is not a Chrome trace");
        assert!(text.trim_end().ends_with('}'), "{name} is truncated");
    }

    // Warm cache, fresh trace dir: every result is cached but no
    // artifact exists, so every job re-simulates to regenerate its
    // trace — and must land on the very same bytes.
    let traces_warm = temp_dir("warm");
    repro(
        &cache,
        &["--quick", "table5", "--jobs", "4", "--trace-dir", traces_warm.to_str().unwrap()],
    );
    assert_eq!(
        serial,
        artifacts(&traces_warm),
        "warm-cache regeneration must be byte-identical to the cold run"
    );

    for dir in [&cache, &traces_serial, &traces_parallel, &traces_warm] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn trace_dir_flag_requires_a_value() {
    let cache = temp_dir("flag-errors");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["table5", "--trace-dir"])
        .env("HIRATA_LAB_CACHE", &cache)
        .output()
        .expect("repro binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--trace-dir requires a directory"));
    let _ = std::fs::remove_dir_all(&cache);
}
