//! Trace-artifact determinism, checked end to end through the `repro`
//! binary: the Chrome trace JSON a job emits is byte-identical
//! whatever the worker count, and a warm-cache rerun — which only
//! re-simulates jobs whose artifact is missing — reproduces the same
//! bytes for every artifact it regenerates.
//!
//! The same contract holds one level down for the event-wheel
//! fast-forward: every trace sink (Chrome, Text, Ring) must render
//! byte-identical output with the wheel on and off — including the
//! stall events the wheel *synthesizes* for the cycles it never
//! actually steps.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

use hirata_sim::{format_event, ChromeSink, Config, Machine, RingSink, TextSink};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-trace-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn repro(cache: &Path, args: &[&str]) {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .env("HIRATA_LAB_CACHE", cache)
        .output()
        .expect("repro binary runs");
    assert!(out.status.success(), "repro {args:?} failed: {out:?}");
}

/// Reads every trace artifact in `dir` as `name -> bytes`.
fn artifacts(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    std::fs::read_dir(dir)
        .expect("trace dir exists")
        .map(|e| {
            let path = e.expect("dir entry").path();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            (name, std::fs::read(&path).expect("artifact is readable"))
        })
        .collect()
}

#[test]
fn trace_artifacts_are_byte_identical_across_worker_counts_and_cache_states() {
    let cache = temp_dir("cache");
    let traces_serial = temp_dir("serial");
    let traces_parallel = temp_dir("parallel");

    // Cold cache, one worker; populates the cache and the artifacts.
    repro(
        &cache,
        &["--quick", "table5", "--jobs", "1", "--trace-dir", traces_serial.to_str().unwrap()],
    );
    // Four workers, cache bypassed: a genuinely cold parallel run.
    repro(
        &cache,
        &[
            "--quick",
            "table5",
            "--no-cache",
            "--jobs",
            "4",
            "--trace-dir",
            traces_parallel.to_str().unwrap(),
        ],
    );

    let serial = artifacts(&traces_serial);
    let parallel = artifacts(&traces_parallel);
    assert!(!serial.is_empty(), "the sweep must emit trace artifacts");
    assert_eq!(serial, parallel, "trace JSON must be byte-identical at --jobs 1 and --jobs 4");
    for (name, bytes) in &serial {
        let text = std::str::from_utf8(bytes).expect("trace JSON is UTF-8");
        assert!(text.starts_with("{\"traceEvents\":["), "{name} is not a Chrome trace");
        assert!(text.trim_end().ends_with('}'), "{name} is truncated");
    }

    // Warm cache, fresh trace dir: every result is cached but no
    // artifact exists, so every job re-simulates to regenerate its
    // trace — and must land on the very same bytes.
    let traces_warm = temp_dir("warm");
    repro(
        &cache,
        &["--quick", "table5", "--jobs", "4", "--trace-dir", traces_warm.to_str().unwrap()],
    );
    assert_eq!(
        serial,
        artifacts(&traces_warm),
        "warm-cache regeneration must be byte-identical to the cold run"
    );

    for dir in [&cache, &traces_serial, &traces_parallel, &traces_warm] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// Renders one run of `program` through every sink at once and
/// returns the three artifacts (Chrome JSON, text log, formatted ring
/// tail). One machine per sink — sinks are exclusive — all sharing
/// the same config.
fn render_all_sinks(
    program: &hirata_isa::Program,
    slots: usize,
    fast_forward: bool,
) -> (String, String, String) {
    let config = Config::multithreaded(slots).with_fast_forward(fast_forward);
    let fu = config.fu.clone();

    let chrome = ChromeSink::new();
    let mut m = Machine::new(config.clone(), program).expect("machine builds");
    m.attach_trace_sink(Box::new(chrome.clone()));
    m.run().expect("program runs");
    let chrome_json = chrome.render(slots, &fu);

    let text = TextSink::new();
    let mut m = Machine::new(config.clone(), program).expect("machine builds");
    m.attach_trace_sink(Box::new(text.clone()));
    m.run().expect("program runs");

    let ring = RingSink::new(256);
    let mut m = Machine::new(config, program).expect("machine builds");
    m.attach_trace_sink(Box::new(ring.clone()));
    m.run().expect("program runs");
    let tail: Vec<String> = ring.events().iter().map(format_event).collect();

    (chrome_json, text.text(), tail.join("\n"))
}

#[test]
fn every_sink_is_byte_identical_with_the_wheel_on_and_off() {
    // Stall-heavy programs so the wheel actually jumps and most stall
    // events in the stream are synthesized rather than stepped: a
    // float-divide chain with a counted loop (Data + BranchShadow
    // wakes at one slot), and the fig6 eager list loop (queue-ring,
    // chgpri, kills) at two and four slots.
    let div_loop = "
        lif f1, #5.0
        lif f2, #3.0
        fdiv f1, f1, f2
        fdiv f1, f1, f2
        li r4, #6
    loop:
        sub r4, r4, #1
        bne r4, #0, loop
        sf f1, 300(r0)
        halt
    ";
    let fig6 =
        hirata_workloads::linked_list::eager_program(hirata_workloads::linked_list::ListShape {
            nodes: 20,
            break_at: Some(13),
        });
    let div_prog = hirata_asm::assemble(div_loop).expect("div loop assembles");

    let cases: Vec<(&str, &hirata_isa::Program, usize)> =
        vec![("div-loop", &div_prog, 1), ("fig6", &fig6, 2), ("fig6", &fig6, 4)];
    for (name, program, slots) in cases {
        let on = render_all_sinks(program, slots, true);
        let off = render_all_sinks(program, slots, false);
        assert!(
            on.1.contains("stall"),
            "{name}/s{slots}: expected stall events in the text log:\n{}",
            on.1
        );
        assert_eq!(on.0, off.0, "{name}/s{slots}: Chrome JSON differs with the wheel on");
        assert_eq!(on.1, off.1, "{name}/s{slots}: text log differs with the wheel on");
        assert_eq!(on.2, off.2, "{name}/s{slots}: ring tail differs with the wheel on");
    }
}

#[test]
fn trace_dir_flag_requires_a_value() {
    let cache = temp_dir("flag-errors");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["table5", "--trace-dir"])
        .env("HIRATA_LAB_CACHE", &cache)
        .output()
        .expect("repro binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--trace-dir requires a directory"));
    let _ = std::fs::remove_dir_all(&cache);
}
