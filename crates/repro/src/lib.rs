//! Experiment harness: every table and figure-level claim of Hirata
//! et al. (ISCA 1992), §3, as a callable experiment returning
//! structured results. The `repro` binary renders them as
//! paper-versus-measured tables; the bench crate wraps them in
//! Criterion benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod session;
pub mod tables;

pub use experiments::*;
pub use session::*;
