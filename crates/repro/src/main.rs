//! `repro` — regenerates every table and figure-level claim of Hirata
//! et al. (ISCA 1992), §3.
//!
//! ```text
//! repro [table2|table2-private|table3|table4|table5|rotation|
//!        utilization|concurrent|finite-cache|all] [--quick]
//! ```

use hirata_repro::{tables, *};
use hirata_workloads::linked_list::ListShape;
use hirata_workloads::raytrace::RayTraceParams;

struct Sizes {
    ray: RayTraceParams,
    kernel1_n: usize,
    list: ListShape,
}

impl Sizes {
    fn full() -> Self {
        Sizes {
            ray: RayTraceParams::default(),
            kernel1_n: 512,
            list: ListShape { nodes: 200, break_at: Some(199) },
        }
    }

    fn quick() -> Self {
        Sizes {
            ray: RayTraceParams { width: 8, height: 8, spheres: 4, seed: 42, shadows: true },
            kernel1_n: 64,
            list: ListShape { nodes: 40, break_at: Some(39) },
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let sizes = if quick { Sizes::quick() } else { Sizes::full() };
    let which = args.iter().find(|a| !a.starts_with("--")).map(String::as_str).unwrap_or("all");

    let known = [
        "table2",
        "table2-private",
        "table3",
        "table4",
        "table5",
        "rotation",
        "utilization",
        "concurrent",
        "finite-cache",
        "ablations",
        "kernels",
        "trace-driven",
        "all",
    ];
    if !known.contains(&which) {
        eprintln!("unknown experiment `{which}`; choose one of: {}", known.join(", "));
        std::process::exit(2);
    }
    let want = |name: &str| which == name || which == "all";

    if want("table2") {
        let (base, rows) = table2(&sizes.ray, false);
        println!("{}", tables::render_table2(base, &rows, false));
    }
    if want("table2-private") {
        let (base, rows) = table2(&sizes.ray, true);
        println!("{}", tables::render_table2(base, &rows, true));
    }
    if want("table3") {
        let (base, cells) = table3(&sizes.ray);
        println!("{}", tables::render_table3(base, &cells));
    }
    if want("table4") {
        println!("{}", tables::render_table4(&table4(sizes.kernel1_n)));
    }
    if want("table5") {
        let t = table5(sizes.list, &[2, 3, 4, 6, 8]);
        println!("{}", tables::render_table5(&t));
    }
    if want("rotation") {
        println!("{}", tables::render_rotation(&rotation_sweep(&sizes.ray)));
    }
    if want("utilization") {
        let stats = utilization(&sizes.ray, 8);
        println!("{}", tables::render_utilization(8, &stats));
    }
    if want("concurrent") {
        let threads = 4;
        println!("{}", tables::render_concurrent(threads, &concurrent(threads, 200)));
    }
    if want("finite-cache") {
        println!("{}", tables::render_finite_cache(&finite_cache(&sizes.ray)));
    }
    if want("ablations") {
        println!("{}", tables::render_ablations(&ablations(&sizes.ray)));
    }
    if want("kernels") {
        println!("{}", tables::render_kernel_sweep(&kernel_sweep(&sizes.ray)));
    }
    if want("trace-driven") {
        println!("{}", tables::render_trace_driven(&trace_driven(&sizes.ray)));
    }
}
