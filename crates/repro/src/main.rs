//! `repro` — regenerates every table and figure-level claim of Hirata
//! et al. (ISCA 1992), §3, through the parallel execution engine.
//!
//! ```text
//! repro [table2|table2-private|table3|table4|table5|rotation|
//!        utilization|concurrent|finite-cache|ablations|kernels|
//!        trace-driven|all] [--quick] [--jobs N] [--no-cache]
//!       [--trace-dir DIR]
//! ```
//!
//! `--jobs N` sets the worker count (default: one per CPU);
//! `--no-cache` forces every simulation to run. `--trace-dir DIR`
//! writes a Chrome `trace_event` JSON artifact per executed job under
//! `DIR`, keyed by job content hash (cached results re-simulate when
//! their artifact is missing, so the set comes out complete). Table
//! bytes on stdout — and trace artifact bytes — are identical whatever
//! the worker count and cache state; engine progress goes to stderr.

use hirata_lab::Lab;
use hirata_repro::{render_experiment, Session, Sizes, EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let no_cache = args.iter().any(|a| a == "--no-cache");
    let jobs = match parse_jobs(&args) {
        Ok(jobs) => jobs,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let trace_dir = match parse_trace_dir(&args) {
        Ok(dir) => dir,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let sizes = if quick { Sizes::quick() } else { Sizes::full() };

    let which = positional_experiment(&args).unwrap_or("all");
    if which != "all" && !EXPERIMENTS.contains(&which) {
        eprintln!("unknown experiment `{which}`; choose one of: {}, all", EXPERIMENTS.join(", "));
        std::process::exit(2);
    }

    let mut lab = Lab::new();
    if let Some(jobs) = jobs {
        lab = lab.with_workers(jobs);
    }
    if no_cache {
        lab = lab.without_cache();
    }
    if let Some(dir) = trace_dir {
        lab = lab.with_trace_dir(dir);
    }
    let session = Session::new(lab);

    for name in EXPERIMENTS {
        if which == name || which == "all" {
            let table =
                render_experiment(&session, &sizes, name).expect("EXPERIMENTS names are known");
            println!("{table}");
        }
    }
}

/// Extracts the experiment name: the first positional argument that
/// is not the value of a `--flag VALUE` pair.
fn positional_experiment(args: &[String]) -> Option<&str> {
    let mut skip_next = false;
    for arg in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if arg == "--jobs" || arg == "--trace-dir" {
            skip_next = true;
            continue;
        }
        if !arg.starts_with("--") {
            return Some(arg);
        }
    }
    None
}

/// Parses `--trace-dir DIR` (or `--trace-dir=DIR`). `Ok(None)` when
/// absent.
fn parse_trace_dir(args: &[String]) -> Result<Option<std::path::PathBuf>, String> {
    for (i, arg) in args.iter().enumerate() {
        let value = if arg == "--trace-dir" {
            args.get(i + 1).map(String::as_str)
        } else if let Some(v) = arg.strip_prefix("--trace-dir=") {
            Some(v)
        } else {
            continue;
        };
        let Some(value) = value else {
            return Err("--trace-dir requires a directory".to_owned());
        };
        return Ok(Some(std::path::PathBuf::from(value)));
    }
    Ok(None)
}

/// Parses `--jobs N` (or `--jobs=N`). `Ok(None)` when absent.
fn parse_jobs(args: &[String]) -> Result<Option<usize>, String> {
    for (i, arg) in args.iter().enumerate() {
        let value = if arg == "--jobs" {
            args.get(i + 1).map(String::as_str)
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            Some(v)
        } else {
            continue;
        };
        let Some(value) = value else {
            return Err("--jobs requires a value".to_owned());
        };
        return match value.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => Err(format!("invalid --jobs value `{value}`: expected a positive integer")),
        };
    }
    Ok(None)
}
