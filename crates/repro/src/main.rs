//! `repro` — regenerates every table and figure-level claim of Hirata
//! et al. (ISCA 1992), §3, through the parallel execution engine.
//!
//! ```text
//! repro [table2|table2-private|table3|table4|table5|rotation|
//!        utilization|concurrent|finite-cache|ablations|kernels|
//!        trace-driven|all] [--quick] [--jobs N] [--no-cache]
//! ```
//!
//! `--jobs N` sets the worker count (default: one per CPU);
//! `--no-cache` forces every simulation to run. Table bytes on stdout
//! are identical whatever the worker count and cache state; engine
//! progress goes to stderr.

use hirata_lab::Lab;
use hirata_repro::{render_experiment, Session, Sizes, EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let no_cache = args.iter().any(|a| a == "--no-cache");
    let jobs = match parse_jobs(&args) {
        Ok(jobs) => jobs,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let sizes = if quick { Sizes::quick() } else { Sizes::full() };

    let which = positional_experiment(&args).unwrap_or("all");
    if which != "all" && !EXPERIMENTS.contains(&which) {
        eprintln!("unknown experiment `{which}`; choose one of: {}, all", EXPERIMENTS.join(", "));
        std::process::exit(2);
    }

    let mut lab = Lab::new();
    if let Some(jobs) = jobs {
        lab = lab.with_workers(jobs);
    }
    if no_cache {
        lab = lab.without_cache();
    }
    let session = Session::new(lab);

    for name in EXPERIMENTS {
        if which == name || which == "all" {
            let table =
                render_experiment(&session, &sizes, name).expect("EXPERIMENTS names are known");
            println!("{table}");
        }
    }
}

/// Extracts the experiment name: the first positional argument that
/// is not the value of `--jobs`.
fn positional_experiment(args: &[String]) -> Option<&str> {
    let mut skip_next = false;
    for arg in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if arg == "--jobs" {
            skip_next = true;
            continue;
        }
        if !arg.starts_with("--") {
            return Some(arg);
        }
    }
    None
}

/// Parses `--jobs N` (or `--jobs=N`). `Ok(None)` when absent.
fn parse_jobs(args: &[String]) -> Result<Option<usize>, String> {
    for (i, arg) in args.iter().enumerate() {
        let value = if arg == "--jobs" {
            args.get(i + 1).map(String::as_str)
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            Some(v)
        } else {
            continue;
        };
        let Some(value) = value else {
            return Err("--jobs requires a value".to_owned());
        };
        return match value.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => Err(format!("invalid --jobs value `{value}`: expected a positive integer")),
        };
    }
    Ok(None)
}
