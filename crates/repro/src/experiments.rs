//! The §3 experiments.

use hirata_isa::{FuConfig, Program, RotationMode};
use hirata_mem::{DsmMemory, FiniteCache};
use hirata_sched::Strategy;
use hirata_sim::{Config, Machine, RunStats};
use hirata_workloads::linked_list::{self, ListShape};
use hirata_workloads::livermore;
use hirata_workloads::radiosity::{radiosity_program, RadiosityParams};
use hirata_workloads::sort::sort_program;
use hirata_workloads::raytrace::{raytrace_program, RayTraceParams};
use hirata_workloads::synthetic::{dsm_chase_program, DsmChaseParams, REMOTE_BASE};

/// Runs `program` on `config` to completion and returns the stats.
///
/// # Panics
///
/// Panics on any machine error — experiment programs are trusted.
pub fn run(config: Config, program: &Program) -> RunStats {
    let mut m = Machine::new(config, program).expect("experiment machine builds");
    m.run().expect("experiment program runs")
}

/// Cycles of the sequential baseline (§3.1): the program on the base
/// RISC processor of Figure 3(b).
pub fn baseline_cycles(program: &Program) -> u64 {
    run(Config::base_risc(), program).cycles
}

// ---------------------------------------------------------------------
// Table 2 — speed-up by parallel multithreading
// ---------------------------------------------------------------------

/// One row of Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// Number of thread slots.
    pub slots: usize,
    /// Speed-up with one load/store unit, without standby stations.
    pub one_ls_no_standby: f64,
    /// Speed-up with one load/store unit, with standby stations.
    pub one_ls_standby: f64,
    /// Speed-up with two load/store units, without standby stations.
    pub two_ls_no_standby: f64,
    /// Speed-up with two load/store units, with standby stations.
    pub two_ls_standby: f64,
}

/// The paper's Table 2 values, for side-by-side printing.
pub const PAPER_TABLE2: [Table2Row; 3] = [
    Table2Row { slots: 2, one_ls_no_standby: 1.79, one_ls_standby: 1.83, two_ls_no_standby: 2.01, two_ls_standby: 2.02 },
    Table2Row { slots: 4, one_ls_no_standby: 2.84, one_ls_standby: 2.89, two_ls_no_standby: 3.68, two_ls_standby: 3.72 },
    Table2Row { slots: 8, one_ls_no_standby: 3.22, one_ls_standby: 3.22, two_ls_no_standby: 5.68, two_ls_standby: 5.79 },
];

/// Runs the Table 2 experiment: speed-up of 2/4/8-slot multithreaded
/// processors over the sequential baseline on the ray tracer, with
/// one or two load/store units, with and without standby stations.
/// `private_fetch` reproduces the §3.2 private-instruction-cache
/// ablation.
pub fn table2(params: &RayTraceParams, private_fetch: bool) -> (u64, Vec<Table2Row>) {
    let program = raytrace_program(params);
    let base = baseline_cycles(&program);
    let speedup = |slots: usize, fu: FuConfig, standby: bool| {
        let config = Config::multithreaded(slots)
            .with_fu(fu)
            .with_standby(standby)
            .with_private_fetch(private_fetch);
        base as f64 / run(config, &program).cycles as f64
    };
    let rows = [2usize, 4, 8]
        .into_iter()
        .map(|slots| Table2Row {
            slots,
            one_ls_no_standby: speedup(slots, FuConfig::paper_one_ls(), false),
            one_ls_standby: speedup(slots, FuConfig::paper_one_ls(), true),
            two_ls_no_standby: speedup(slots, FuConfig::paper_two_ls(), false),
            two_ls_standby: speedup(slots, FuConfig::paper_two_ls(), true),
        })
        .collect();
    (base, rows)
}

// ---------------------------------------------------------------------
// §3.2 prose — rotation interval sweep and unit utilization
// ---------------------------------------------------------------------

/// Cycle counts of the 4-slot machine across rotation intervals
/// `2^0 .. 2^8` (§3.2: "rotation interval did not have much
/// influence").
pub fn rotation_sweep(params: &RayTraceParams) -> Vec<(u32, u64)> {
    let program = raytrace_program(params);
    (0..=8u32)
        .map(|n| {
            let interval = 1u32 << n;
            let config = Config::multithreaded(4)
                .with_fu(FuConfig::paper_two_ls())
                .with_rotation(RotationMode::Implicit { interval });
            (interval, run(config, &program).cycles)
        })
        .collect()
}

/// Per-unit utilization of the `slots`-slot, one-load/store-unit
/// machine on the ray tracer (§3.2 explains Table 2's saturation by
/// the load/store unit reaching 99% at eight slots).
pub fn utilization(params: &RayTraceParams, slots: usize) -> RunStats {
    let program = raytrace_program(params);
    run(Config::multithreaded(slots), &program)
}

// ---------------------------------------------------------------------
// Table 3 — multithreading versus superscalar width
// ---------------------------------------------------------------------

/// One Table 3 cell: a `(D,S)`-processor and its speed-up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Cell {
    /// Issue width per thread slot.
    pub width: usize,
    /// Thread slots.
    pub slots: usize,
    /// Speed-up over the sequential baseline.
    pub speedup: f64,
}

/// The paper's Table 3 values (`(D,S)` keyed by `D*S`): the legible
/// entries of the scan.
pub const PAPER_TABLE3: [(usize, usize, f64); 9] = [
    (1, 2, 2.02),
    (2, 1, 1.31),
    (1, 4, 3.72),
    (2, 2, 2.43),
    (4, 1, 1.52),
    (1, 8, 5.79),
    (2, 4, 4.37),
    (4, 2, 2.79),
    (8, 1, 1.75), // partially illegible in the scan; approximate
];

/// Runs Table 3: every `(D,S)` with `D x S ∈ {2, 4, 8}` on the
/// eight-functional-unit machine, equal fetch bandwidth per total
/// issue width.
pub fn table3(params: &RayTraceParams) -> (u64, Vec<Table3Cell>) {
    let program = raytrace_program(params);
    let base = baseline_cycles(&program);
    let mut cells = Vec::new();
    for total in [2usize, 4, 8] {
        let mut width = 1;
        while width <= total {
            let slots = total / width;
            let config = Config::hybrid(width, slots);
            let speedup = base as f64 / run(config, &program).cycles as f64;
            cells.push(Table3Cell { width, slots, speedup });
            width *= 2;
        }
    }
    (base, cells)
}

// ---------------------------------------------------------------------
// Table 4 — static code scheduling on Livermore Kernel 1
// ---------------------------------------------------------------------

/// One row of Table 4: average cycles per iteration under each
/// §2.3.2 strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table4Row {
    /// Thread slots.
    pub slots: usize,
    /// Cycles per iteration, unscheduled code.
    pub non_optimized: f64,
    /// Cycles per iteration, strategy A (list scheduling).
    pub strategy_a: f64,
    /// Cycles per iteration, strategy B (reservation + standby table).
    pub strategy_b: f64,
}

/// The legible paper Table 4 anchors: 50 and 42 cycles/iteration at
/// one slot (non-optimized and strategy A) and saturation at 8
/// cycles/iteration — the `(3+1) x 2` memory floor — by eight slots.
pub const PAPER_TABLE4_ANCHORS: [(usize, f64, f64); 2] = [(1, 50.0, 42.0), (8, 8.0, 8.0)];

/// Runs Table 4 on Livermore Kernel 1 with one load/store unit.
pub fn table4(n: usize) -> Vec<Table4Row> {
    [1usize, 2, 3, 4, 5, 6, 7, 8]
        .into_iter()
        .map(|slots| {
            let per_iter = |strategy: Strategy| {
                let program = livermore::kernel1_program(n, strategy);
                run(Config::multithreaded(slots), &program).cycles as f64 / n as f64
            };
            Table4Row {
                slots,
                non_optimized: per_iter(Strategy::None),
                strategy_a: per_iter(Strategy::ListA),
                strategy_b: per_iter(Strategy::ReservationB { threads: slots }),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Table 5 — eager execution of sequential loop iterations
// ---------------------------------------------------------------------

/// Table 5 results: sequential and eager cycles per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5 {
    /// Iterations executed.
    pub iterations: usize,
    /// Sequential (base RISC) cycles per iteration.
    pub sequential: f64,
    /// `(slots, cycles per iteration)` for the eager version.
    pub eager: Vec<(usize, f64)>,
}

/// The paper's Table 5: 56 cycles/iteration sequential; 32.5, 21.67
/// and 17 at two, three and four slots (saturated by the `ptr->next`
/// recurrence; maximum speed-up 56/17 = 3.29).
pub const PAPER_TABLE5: (f64, [(usize, f64); 3]) =
    (56.0, [(2, 32.5), (3, 21.67), (4, 17.0)]);

/// Runs Table 5 on the Figure 6 linked-list loop.
pub fn table5(shape: ListShape, slot_counts: &[usize]) -> Table5 {
    let iterations = shape.iterations();
    let seq = run(Config::base_risc(), &linked_list::sequential_program(shape)).cycles;
    let eager_prog = linked_list::eager_program(shape);
    let eager = slot_counts
        .iter()
        .map(|&slots| {
            let cycles = run(Config::multithreaded(slots), &eager_prog).cycles;
            (slots, cycles as f64 / iterations as f64)
        })
        .collect();
    Table5 { iterations, sequential: seq as f64 / iterations as f64, eager }
}

// ---------------------------------------------------------------------
// Extensions: concurrent multithreading (§2.1.3) and finite caches (§5)
// ---------------------------------------------------------------------

/// Result of the concurrent-multithreading experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ConcurrentResult {
    /// `(resident threads = context frames, total cycles, cycles per
    /// thread)`. With one frame the slot idles through every remote
    /// access; more frames overlap the waits, so cycles per thread
    /// falls.
    pub by_frames: Vec<(usize, u64, f64)>,
    /// Context switches observed at the largest frame count.
    pub switches: u64,
}

/// Runs the §2.1.3 experiment: a one-slot machine with `frames`
/// context frames hosting `frames` resident DSM-striding threads, for
/// `frames` in `1..=max_threads`. Throughput (cycles per thread)
/// improves with frames because data-absence traps switch in another
/// resident thread instead of idling.
pub fn concurrent(max_threads: usize, remote_latency: u64) -> ConcurrentResult {
    let params = DsmChaseParams::default();
    let program = dsm_chase_program(max_threads, &params);
    let mut by_frames = Vec::new();
    let mut switches = 0;
    for frames in 1..=max_threads {
        let mut config = Config::multithreaded(1).with_context_frames(frames);
        config.mem_words = 1 << 16;
        let mut m = Machine::with_mem_model(
            config,
            &program,
            Box::new(DsmMemory::new(REMOTE_BASE, 2, remote_latency)),
        )
        .expect("dsm machine builds");
        for _ in 1..frames {
            m.add_thread(0).expect("one context frame per resident thread");
        }
        let stats = m.run().expect("dsm run completes");
        switches = stats.context_switches;
        by_frames.push((frames, stats.cycles, stats.cycles as f64 / frames as f64));
    }
    ConcurrentResult { by_frames, switches }
}

/// Finite-cache extension (§5 future work): the ray tracer under an
/// ideal cache versus direct-mapped finite caches of falling size.
/// Returns `(label, cycles, miss ratio)` per configuration.
pub fn finite_cache(params: &RayTraceParams) -> Vec<(String, u64, f64)> {
    let program = raytrace_program(params);
    let mut out = Vec::new();
    let ideal = run(Config::multithreaded(4), &program);
    out.push(("ideal".to_owned(), ideal.cycles, 0.0));
    for (lines, line_words) in [(1024usize, 4u64), (256, 4), (64, 4)] {
        let mut m = Machine::with_mem_model(
            Config::multithreaded(4),
            &program,
            Box::new(FiniteCache::new(lines, line_words, 2, 20)),
        )
        .expect("machine builds");
        let stats = m.run().expect("finite cache run completes");
        let miss = m.mem_stats().miss_ratio();
        out.push((format!("{lines}x{line_words}w"), stats.cycles, miss));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RayTraceParams {
        RayTraceParams { width: 8, height: 8, spheres: 3, seed: 5, shadows: false }
    }

    #[test]
    fn table2_shapes_match_the_paper() {
        let (_, rows) = table2(&tiny(), false);
        assert_eq!(rows.len(), 3);
        for w in rows.windows(2) {
            assert!(
                w[1].one_ls_standby >= w[0].one_ls_standby,
                "speed-up grows with slots"
            );
            assert!(
                w[1].two_ls_standby >= w[0].two_ls_standby,
                "speed-up grows with slots"
            );
        }
        for row in &rows {
            // The second load/store unit matters once the first
            // saturates; at low slot counts it is allowed to be a wash.
            assert!(row.two_ls_standby >= row.one_ls_standby * 0.98, "second L/S unit");
            assert!(row.one_ls_standby >= row.one_ls_no_standby * 0.99, "standby helps");
            assert!(row.one_ls_standby > 1.0, "multithreading beats sequential");
        }
        let eight = rows.iter().find(|r| r.slots == 8).unwrap();
        assert!(
            eight.two_ls_standby > eight.one_ls_standby,
            "at 8 slots the second L/S unit must pay off: {eight:?}"
        );
    }

    #[test]
    fn table3_threads_beat_width() {
        let (_, cells) = table3(&tiny());
        let get = |w: usize, s: usize| {
            cells.iter().find(|c| c.width == w && c.slots == s).unwrap().speedup
        };
        assert!(get(1, 4) > get(2, 2), "S wins over D at budget 4");
        assert!(get(2, 2) > get(4, 1), "S wins over D at budget 4");
        assert!(get(1, 8) > get(8, 1), "S wins over D at budget 8");
    }

    #[test]
    fn table4_has_floor_and_strategy_ordering() {
        let rows = table4(128);
        let one = &rows[0];
        assert!(one.strategy_a < one.non_optimized, "A beats non-optimized at 1 slot");
        assert!(one.strategy_b <= one.non_optimized, "B beats non-optimized at 1 slot");
        for row in &rows {
            assert!(row.strategy_b >= 8.0 - 1e-9, "the 8-cycle memory floor holds");
        }
        let eight = rows.iter().find(|r| r.slots == 8).unwrap();
        assert!(eight.strategy_b < 13.0, "8 slots near the floor");
    }

    #[test]
    fn table5_matches_paper_shape() {
        let shape = ListShape { nodes: 48, break_at: Some(47) };
        let t = table5(shape, &[2, 3, 4]);
        assert!(t.sequential > t.eager[0].1, "eager helps at 2 slots");
        assert!(t.eager[0].1 > t.eager[1].1, "3 slots beat 2");
        assert!(t.eager[1].1 >= t.eager[2].1 * 0.95, "4 slots no worse than 3");
    }

    #[test]
    fn concurrent_frames_improve_throughput() {
        let r = concurrent(3, 150);
        let first = r.by_frames[0].2;
        let last = r.by_frames.last().unwrap().2;
        assert!(last < first * 0.8, "cycles/thread must fall with frames: {:?}", r.by_frames);
        assert!(r.switches > 0);
    }

    #[test]
    fn finite_cache_costs_cycles() {
        let rows = finite_cache(&tiny());
        assert!(rows[1].1 >= rows[0].1, "misses cannot speed things up");
        assert!(rows.last().unwrap().2 > 0.0, "small cache must miss");
    }
}

// ---------------------------------------------------------------------
// Ablations: design choices DESIGN.md calls out
// ---------------------------------------------------------------------

/// One ablation row: configuration label and cycles (`None` when the
/// configuration deadlocks and the watchdog fires — itself a finding).
pub type AblationRow = (String, Option<u64>);

/// Runs the ablation suite:
///
/// * standby-station depth 0 (disabled) / 1 (paper) / 2 / 4 on the
///   four-slot ray tracer;
/// * the not-taken-branch refetch policy (paper) versus a fall-through
///   fast path, on the branchy sequential list traversal;
/// * queue-register capacity 1 / 2 / 8 on the eager linked-list loop.
pub fn ablations(params: &RayTraceParams) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    let ray = raytrace_program(params);

    let mut push = |label: String, config: Config, program: &Program| {
        let mut config = config;
        config.max_cycles = 50_000_000;
        let cycles = Machine::new(config, program)
            .expect("ablation machine builds")
            .run()
            .ok()
            .map(|s| s.cycles);
        rows.push((label, cycles));
    };

    push("ray x4, no standby stations".into(), Config::multithreaded(4).with_standby(false), &ray);
    for depth in [1usize, 2, 4] {
        let mut config = Config::multithreaded(4);
        config.standby_depth = depth;
        push(format!("ray x4, standby depth {depth}"), config, &ray);
    }

    let list = ListShape { nodes: 100, break_at: None };
    let seq = linked_list::sequential_program(list);
    push("list x1, refetch fall-through (paper)".into(), Config::base_risc(), &seq);
    let mut fast = Config::base_risc();
    fast.refetch_fallthrough = false;
    push("list x1, fall-through fast path".into(), fast, &seq);

    let eager = linked_list::eager_program(list);
    for cap in [1usize, 2, 8] {
        let mut config = Config::multithreaded(4);
        config.queue_capacity = cap;
        push(format!("eager list x4, queue capacity {cap}"), config, &eager);
    }
    rows
}

// ---------------------------------------------------------------------
// Kernel sweep: the broader evaluation §5 calls for
// ---------------------------------------------------------------------

/// Speed-up of one workload across machine widths.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelScaling {
    /// Workload name.
    pub name: String,
    /// Baseline (base RISC) cycles.
    pub base_cycles: u64,
    /// `(slots, speed-up)` rows.
    pub speedups: Vec<(usize, f64)>,
}

/// Runs the §5 "more programs" sweep: every workload in the suite on
/// 1/2/4/8 slots (one load/store unit), speed-ups over the base RISC.
/// Covers the parallelism spectrum: doall (ray, K1, K7), reduction
/// (K3), doacross (K5), and the eager while loop.
pub fn kernel_sweep(params: &RayTraceParams) -> Vec<KernelScaling> {
    let slots = [1usize, 2, 4, 8];
    let list = ListShape { nodes: 100, break_at: Some(99) };
    let programs: Vec<(String, Program, Config)> = vec![
        ("ray tracing (doall)".into(), raytrace_program(params), Config::base_risc()),
        (
            "LK1 hydro (doall)".into(),
            livermore::kernel1_program(256, Strategy::ListA),
            Config::base_risc(),
        ),
        ("LK3 inner product (reduction)".into(), livermore::kernel3_program(256), Config::base_risc()),
        ("LK5 tridiagonal (doacross)".into(), livermore::kernel5_program(256), Config::base_risc()),
        (
            "LK7 eq. of state (doall)".into(),
            livermore::kernel7_program(192, Strategy::ListA),
            Config::base_risc(),
        ),
        (
            "radiosity (Jacobi + barrier)".into(),
            radiosity_program(&RadiosityParams::default()),
            Config::base_risc(),
        ),
        ("odd-even sort (integer)".into(), sort_program(64, 7), Config::base_risc()),
    ];
    let mut out: Vec<KernelScaling> = programs
        .into_iter()
        .map(|(name, program, base_cfg)| {
            let base = run(base_cfg, &program).cycles;
            let speedups = slots
                .iter()
                .map(|&s| {
                    (s, base as f64 / run(Config::multithreaded(s), &program).cycles as f64)
                })
                .collect();
            KernelScaling { name, base_cycles: base, speedups }
        })
        .collect();
    // The eager while loop has distinct sequential/parallel programs.
    let base = run(Config::base_risc(), &linked_list::sequential_program(list)).cycles;
    let eager = linked_list::eager_program(list);
    out.push(KernelScaling {
        name: "while loop (eager, §2.3.3)".into(),
        base_cycles: base,
        speedups: slots
            .iter()
            .map(|&s| (s, base as f64 / run(Config::multithreaded(s), &eager).cycles as f64))
            .collect(),
    });
    out
}

// ---------------------------------------------------------------------
// Trace-driven versus execution-driven (the paper's §3.1 methodology)
// ---------------------------------------------------------------------

/// One row of the methodology comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceDrivenRow {
    /// Thread slots.
    pub slots: usize,
    /// Execution-driven cycles.
    pub direct: u64,
    /// Trace-driven (replayed) cycles.
    pub traced: u64,
}

/// Compares execution-driven simulation against the paper's
/// trace-driven methodology on the ray tracer: the emulator records
/// each thread's dynamic instruction sequence, the trace replays on
/// the cycle-level machine, and the cycle counts must agree.
pub fn trace_driven(params: &RayTraceParams) -> Vec<TraceDrivenRow> {
    use hirata_sim::{build_trace_program, Emulator};
    let program = raytrace_program(params);
    [1usize, 2, 4, 8]
        .into_iter()
        .map(|slots| {
            let direct = run(Config::multithreaded(slots), &program).cycles;
            let out = Emulator::execute_with_traces(&program, slots, 1 << 20, 500_000_000)
                .expect("emulation succeeds");
            let replay = build_trace_program(&program, &out.traces).expect("replayable");
            let traced = run(Config::multithreaded(slots), &replay).cycles;
            TraceDrivenRow { slots, direct, traced }
        })
        .collect()
}
