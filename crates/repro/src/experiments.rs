//! The §3 experiments.
//!
//! Every experiment is a batch of independent simulations submitted
//! through the [`Session`] execution engine: grid points run in
//! parallel across workers, and repeat runs are answered from the
//! content-addressed result cache. Table output depends only on the
//! returned statistics, so it is byte-identical whatever the worker
//! count and whether results were simulated or cached.

use std::sync::Arc;

use hirata_isa::{FuConfig, Program, RotationMode};
use hirata_lab::{Job, JobError, MemModelSpec};
use hirata_sched::Strategy;
use hirata_sim::{Config, Machine, RunStats};
use hirata_workloads::linked_list::{self, ListShape};
use hirata_workloads::livermore;
use hirata_workloads::radiosity::{radiosity_program, RadiosityParams};
use hirata_workloads::raytrace::{raytrace_program, RayTraceParams};
use hirata_workloads::sort::sort_program;
use hirata_workloads::synthetic::{dsm_chase_program, DsmChaseParams, REMOTE_BASE};

use crate::session::Session;

/// Runs `program` on `config` to completion on the calling thread and
/// returns the stats — the serial reference path the engine's
/// byte-identity contract is checked against, also used by the
/// benches.
///
/// # Panics
///
/// Panics on any machine error — experiment programs are trusted.
pub fn run(config: Config, program: &Program) -> RunStats {
    let mut m = Machine::new(config, program).expect("experiment machine builds");
    m.run().expect("experiment program runs").clone()
}

/// Cycles of the sequential baseline (§3.1): the program on the base
/// RISC processor of Figure 3(b).
pub fn baseline_cycles(session: &Session, program: &Arc<Program>) -> u64 {
    let job = Job::new("baseline", Config::base_risc(), Arc::clone(program));
    session.stats(vec![job])[0].cycles
}

// ---------------------------------------------------------------------
// Table 2 — speed-up by parallel multithreading
// ---------------------------------------------------------------------

/// One row of Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// Number of thread slots.
    pub slots: usize,
    /// Speed-up with one load/store unit, without standby stations.
    pub one_ls_no_standby: f64,
    /// Speed-up with one load/store unit, with standby stations.
    pub one_ls_standby: f64,
    /// Speed-up with two load/store units, without standby stations.
    pub two_ls_no_standby: f64,
    /// Speed-up with two load/store units, with standby stations.
    pub two_ls_standby: f64,
}

/// The paper's Table 2 values, for side-by-side printing.
pub const PAPER_TABLE2: [Table2Row; 3] = [
    Table2Row {
        slots: 2,
        one_ls_no_standby: 1.79,
        one_ls_standby: 1.83,
        two_ls_no_standby: 2.01,
        two_ls_standby: 2.02,
    },
    Table2Row {
        slots: 4,
        one_ls_no_standby: 2.84,
        one_ls_standby: 2.89,
        two_ls_no_standby: 3.68,
        two_ls_standby: 3.72,
    },
    Table2Row {
        slots: 8,
        one_ls_no_standby: 3.22,
        one_ls_standby: 3.22,
        two_ls_no_standby: 5.68,
        two_ls_standby: 5.79,
    },
];

/// Runs the Table 2 experiment: speed-up of 2/4/8-slot multithreaded
/// processors over the sequential baseline on the ray tracer, with
/// one or two load/store units, with and without standby stations.
/// `private_fetch` reproduces the §3.2 private-instruction-cache
/// ablation.
pub fn table2(
    session: &Session,
    params: &RayTraceParams,
    private_fetch: bool,
) -> (u64, Vec<Table2Row>) {
    let program = Arc::new(raytrace_program(params));
    let combos: [(&str, FuConfig, bool); 4] = [
        ("1LS", FuConfig::paper_one_ls(), false),
        ("1LS+sb", FuConfig::paper_one_ls(), true),
        ("2LS", FuConfig::paper_two_ls(), false),
        ("2LS+sb", FuConfig::paper_two_ls(), true),
    ];
    let slots_axis = [2usize, 4, 8];

    let mut jobs = vec![Job::new("table2 baseline", Config::base_risc(), Arc::clone(&program))];
    for slots in slots_axis {
        for (label, fu, standby) in combos.clone() {
            let config = Config::multithreaded(slots)
                .with_fu(fu)
                .with_standby(standby)
                .with_private_fetch(private_fetch);
            jobs.push(Job::new(format!("table2 s{slots} {label}"), config, Arc::clone(&program)));
        }
    }

    let stats = session.stats(jobs);
    let base = stats[0].cycles;
    let speedup = |s: &RunStats| base as f64 / s.cycles as f64;
    let rows = slots_axis
        .iter()
        .zip(stats[1..].chunks_exact(combos.len()))
        .map(|(&slots, grid)| Table2Row {
            slots,
            one_ls_no_standby: speedup(&grid[0]),
            one_ls_standby: speedup(&grid[1]),
            two_ls_no_standby: speedup(&grid[2]),
            two_ls_standby: speedup(&grid[3]),
        })
        .collect();
    (base, rows)
}

// ---------------------------------------------------------------------
// §3.2 prose — rotation interval sweep and unit utilization
// ---------------------------------------------------------------------

/// Cycle counts of the 4-slot machine across rotation intervals
/// `2^0 .. 2^8` (§3.2: "rotation interval did not have much
/// influence").
pub fn rotation_sweep(session: &Session, params: &RayTraceParams) -> Vec<(u32, u64)> {
    let program = Arc::new(raytrace_program(params));
    let intervals: Vec<u32> = (0..=8u32).map(|n| 1u32 << n).collect();
    let jobs = intervals
        .iter()
        .map(|&interval| {
            let config = Config::multithreaded(4)
                .with_fu(FuConfig::paper_two_ls())
                .with_rotation(RotationMode::Implicit { interval });
            Job::new(format!("rotation i{interval}"), config, Arc::clone(&program))
        })
        .collect();
    intervals.into_iter().zip(session.stats(jobs)).map(|(i, s)| (i, s.cycles)).collect()
}

/// Per-unit utilization of the `slots`-slot, one-load/store-unit
/// machine on the ray tracer (§3.2 explains Table 2's saturation by
/// the load/store unit reaching 99% at eight slots).
pub fn utilization(session: &Session, params: &RayTraceParams, slots: usize) -> RunStats {
    let program = Arc::new(raytrace_program(params));
    let job = Job::new(format!("utilization s{slots}"), Config::multithreaded(slots), program);
    session.stats(vec![job]).remove(0)
}

// ---------------------------------------------------------------------
// Table 3 — multithreading versus superscalar width
// ---------------------------------------------------------------------

/// One Table 3 cell: a `(D,S)`-processor and its speed-up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Cell {
    /// Issue width per thread slot.
    pub width: usize,
    /// Thread slots.
    pub slots: usize,
    /// Speed-up over the sequential baseline.
    pub speedup: f64,
}

/// The paper's Table 3 values (`(D,S)` keyed by `D*S`): the legible
/// entries of the scan.
pub const PAPER_TABLE3: [(usize, usize, f64); 9] = [
    (1, 2, 2.02),
    (2, 1, 1.31),
    (1, 4, 3.72),
    (2, 2, 2.43),
    (4, 1, 1.52),
    (1, 8, 5.79),
    (2, 4, 4.37),
    (4, 2, 2.79),
    (8, 1, 1.75), // partially illegible in the scan; approximate
];

/// Runs Table 3: every `(D,S)` with `D x S ∈ {2, 4, 8}` on the
/// eight-functional-unit machine, equal fetch bandwidth per total
/// issue width.
pub fn table3(session: &Session, params: &RayTraceParams) -> (u64, Vec<Table3Cell>) {
    let program = Arc::new(raytrace_program(params));
    let mut shapes = Vec::new();
    for total in [2usize, 4, 8] {
        let mut width = 1;
        while width <= total {
            shapes.push((width, total / width));
            width *= 2;
        }
    }

    let mut jobs = vec![Job::new("table3 baseline", Config::base_risc(), Arc::clone(&program))];
    jobs.extend(shapes.iter().map(|&(width, slots)| {
        Job::new(
            format!("table3 ({width},{slots})"),
            Config::hybrid(width, slots),
            Arc::clone(&program),
        )
    }));

    let stats = session.stats(jobs);
    let base = stats[0].cycles;
    let cells = shapes
        .into_iter()
        .zip(&stats[1..])
        .map(|((width, slots), s)| Table3Cell {
            width,
            slots,
            speedup: base as f64 / s.cycles as f64,
        })
        .collect();
    (base, cells)
}

// ---------------------------------------------------------------------
// Table 4 — static code scheduling on Livermore Kernel 1
// ---------------------------------------------------------------------

/// One row of Table 4: average cycles per iteration under each
/// §2.3.2 strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table4Row {
    /// Thread slots.
    pub slots: usize,
    /// Cycles per iteration, unscheduled code.
    pub non_optimized: f64,
    /// Cycles per iteration, strategy A (list scheduling).
    pub strategy_a: f64,
    /// Cycles per iteration, strategy B (reservation + standby table).
    pub strategy_b: f64,
}

/// The legible paper Table 4 anchors: 50 and 42 cycles/iteration at
/// one slot (non-optimized and strategy A) and saturation at 8
/// cycles/iteration — the `(3+1) x 2` memory floor — by eight slots.
pub const PAPER_TABLE4_ANCHORS: [(usize, f64, f64); 2] = [(1, 50.0, 42.0), (8, 8.0, 8.0)];

/// Runs Table 4 on Livermore Kernel 1 with one load/store unit.
pub fn table4(session: &Session, n: usize) -> Vec<Table4Row> {
    let slots_axis = [1usize, 2, 3, 4, 5, 6, 7, 8];
    // The non-optimized and list-scheduled programs are slot-
    // independent; strategy B schedules for a specific slot count.
    let none = Arc::new(livermore::kernel1_program(n, Strategy::None));
    let lista = Arc::new(livermore::kernel1_program(n, Strategy::ListA));

    let mut jobs = Vec::new();
    for slots in slots_axis {
        let config = Config::multithreaded(slots);
        let resb =
            Arc::new(livermore::kernel1_program(n, Strategy::ReservationB { threads: slots }));
        jobs.push(Job::new(format!("table4 s{slots} none"), config.clone(), Arc::clone(&none)));
        jobs.push(Job::new(format!("table4 s{slots} listA"), config.clone(), Arc::clone(&lista)));
        jobs.push(Job::new(format!("table4 s{slots} resB"), config, resb));
    }

    let stats = session.stats(jobs);
    slots_axis
        .iter()
        .zip(stats.chunks_exact(3))
        .map(|(&slots, grid)| Table4Row {
            slots,
            non_optimized: grid[0].cycles as f64 / n as f64,
            strategy_a: grid[1].cycles as f64 / n as f64,
            strategy_b: grid[2].cycles as f64 / n as f64,
        })
        .collect()
}

// ---------------------------------------------------------------------
// Table 5 — eager execution of sequential loop iterations
// ---------------------------------------------------------------------

/// Table 5 results: sequential and eager cycles per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5 {
    /// Iterations executed.
    pub iterations: usize,
    /// Sequential (base RISC) cycles per iteration.
    pub sequential: f64,
    /// `(slots, cycles per iteration)` for the eager version.
    pub eager: Vec<(usize, f64)>,
}

/// The paper's Table 5: 56 cycles/iteration sequential; 32.5, 21.67
/// and 17 at two, three and four slots (saturated by the `ptr->next`
/// recurrence; maximum speed-up 56/17 = 3.29).
pub const PAPER_TABLE5: (f64, [(usize, f64); 3]) = (56.0, [(2, 32.5), (3, 21.67), (4, 17.0)]);

/// Runs Table 5 on the Figure 6 linked-list loop.
pub fn table5(session: &Session, shape: ListShape, slot_counts: &[usize]) -> Table5 {
    let iterations = shape.iterations();
    let seq_prog = Arc::new(linked_list::sequential_program(shape));
    let eager_prog = Arc::new(linked_list::eager_program(shape));

    let mut jobs = vec![Job::new("table5 sequential", Config::base_risc(), seq_prog)];
    jobs.extend(slot_counts.iter().map(|&slots| {
        Job::new(
            format!("table5 eager s{slots}"),
            Config::multithreaded(slots),
            Arc::clone(&eager_prog),
        )
    }));

    let stats = session.stats(jobs);
    let eager = slot_counts
        .iter()
        .zip(&stats[1..])
        .map(|(&slots, s)| (slots, s.cycles as f64 / iterations as f64))
        .collect();
    Table5 { iterations, sequential: stats[0].cycles as f64 / iterations as f64, eager }
}

// ---------------------------------------------------------------------
// Extensions: concurrent multithreading (§2.1.3) and finite caches (§5)
// ---------------------------------------------------------------------

/// Result of the concurrent-multithreading experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ConcurrentResult {
    /// `(resident threads = context frames, total cycles, cycles per
    /// thread)`. With one frame the slot idles through every remote
    /// access; more frames overlap the waits, so cycles per thread
    /// falls.
    pub by_frames: Vec<(usize, u64, f64)>,
    /// Context switches observed at the largest frame count.
    pub switches: u64,
}

/// Runs the §2.1.3 experiment: a one-slot machine with `frames`
/// context frames hosting `frames` resident DSM-striding threads, for
/// `frames` in `1..=max_threads`. Throughput (cycles per thread)
/// improves with frames because data-absence traps switch in another
/// resident thread instead of idling.
pub fn concurrent(session: &Session, max_threads: usize, remote_latency: u64) -> ConcurrentResult {
    let params = DsmChaseParams::default();
    let program = Arc::new(dsm_chase_program(max_threads, &params));
    let jobs = (1..=max_threads)
        .map(|frames| {
            let mut config = Config::multithreaded(1).with_context_frames(frames);
            config.mem_words = 1 << 16;
            Job::new(format!("concurrent f{frames}"), config, Arc::clone(&program))
                .with_mem(MemModelSpec::Dsm {
                    remote_base: REMOTE_BASE,
                    local_latency: 2,
                    remote_latency,
                })
                .with_extra_threads(vec![0; frames - 1])
        })
        .collect();

    let stats = session.stats(jobs);
    let by_frames = (1..=max_threads)
        .zip(&stats)
        .map(|(frames, s)| (frames, s.cycles, s.cycles as f64 / frames as f64))
        .collect();
    let switches = stats.last().expect("at least one frame count").context_switches;
    ConcurrentResult { by_frames, switches }
}

/// Finite-cache extension (§5 future work): the ray tracer under an
/// ideal cache versus direct-mapped finite caches of falling size.
/// Returns `(label, cycles, miss ratio)` per configuration.
pub fn finite_cache(session: &Session, params: &RayTraceParams) -> Vec<(String, u64, f64)> {
    let program = Arc::new(raytrace_program(params));
    let shapes = [(1024usize, 4u64), (256, 4), (64, 4)];

    let mut jobs =
        vec![Job::new("finite-cache ideal", Config::multithreaded(4), Arc::clone(&program))];
    jobs.extend(shapes.iter().map(|&(lines, line_words)| {
        Job::new(
            format!("finite-cache {lines}x{line_words}w"),
            Config::multithreaded(4),
            Arc::clone(&program),
        )
        .with_mem(MemModelSpec::Finite {
            lines,
            line_words,
            hit_latency: 2,
            miss_latency: 20,
        })
    }));

    let outs = session.outputs(jobs);
    let mut rows = vec![("ideal".to_owned(), outs[0].stats.cycles, 0.0)];
    rows.extend(shapes.iter().zip(&outs[1..]).map(|(&(lines, line_words), out)| {
        (format!("{lines}x{line_words}w"), out.stats.cycles, out.mem.miss_ratio())
    }));
    rows
}

// ---------------------------------------------------------------------
// Ablations: design choices DESIGN.md calls out
// ---------------------------------------------------------------------

/// One ablation row: configuration label and cycles (`None` when the
/// configuration deadlocks and the watchdog fires — itself a finding).
pub type AblationRow = (String, Option<u64>);

/// Runs the ablation suite:
///
/// * standby-station depth 0 (disabled) / 1 (paper) / 2 / 4 on the
///   four-slot ray tracer;
/// * the not-taken-branch refetch policy (paper) versus a fall-through
///   fast path, on the branchy sequential list traversal;
/// * queue-register capacity 1 / 2 / 8 on the eager linked-list loop.
pub fn ablations(session: &Session, params: &RayTraceParams) -> Vec<AblationRow> {
    let ray = Arc::new(raytrace_program(params));
    let list = ListShape { nodes: 100, break_at: None };
    let seq = Arc::new(linked_list::sequential_program(list));
    let eager = Arc::new(linked_list::eager_program(list));

    let mut jobs = Vec::new();
    let mut push = |label: &str, mut config: Config, program: &Arc<Program>| {
        config.max_cycles = 50_000_000;
        jobs.push(Job::new(label, config, Arc::clone(program)));
    };

    push("ray x4, no standby stations", Config::multithreaded(4).with_standby(false), &ray);
    for depth in [1usize, 2, 4] {
        let mut config = Config::multithreaded(4);
        config.standby_depth = depth;
        push(&format!("ray x4, standby depth {depth}"), config, &ray);
    }

    push("list x1, refetch fall-through (paper)", Config::base_risc(), &seq);
    let mut fast = Config::base_risc();
    fast.refetch_fallthrough = false;
    push("list x1, fall-through fast path", fast, &seq);

    for cap in [1usize, 2, 8] {
        let mut config = Config::multithreaded(4);
        config.queue_capacity = cap;
        push(&format!("eager list x4, queue capacity {cap}"), config, &eager);
    }

    let names: Vec<String> = jobs.iter().map(|j| j.name.clone()).collect();
    names
        .into_iter()
        .zip(session.results(jobs))
        .map(|(label, result)| {
            let cycles = match result {
                Ok(out) => Some(out.stats.cycles),
                // A machine check (typically the deadlock watchdog) is
                // the expected failure mode for extreme ablations.
                Err(JobError::Sim(_)) => None,
                Err(err) => panic!("ablation `{label}` failed unexpectedly: {err}"),
            };
            (label, cycles)
        })
        .collect()
}

// ---------------------------------------------------------------------
// Kernel sweep: the broader evaluation §5 calls for
// ---------------------------------------------------------------------

/// Speed-up of one workload across machine widths.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelScaling {
    /// Workload name.
    pub name: String,
    /// Baseline (base RISC) cycles.
    pub base_cycles: u64,
    /// `(slots, speed-up)` rows.
    pub speedups: Vec<(usize, f64)>,
}

/// Runs the §5 "more programs" sweep: every workload in the suite on
/// 1/2/4/8 slots (one load/store unit), speed-ups over the base RISC.
/// Covers the parallelism spectrum: doall (ray, K1, K7), reduction
/// (K3), doacross (K5), and the eager while loop.
pub fn kernel_sweep(session: &Session, params: &RayTraceParams) -> Vec<KernelScaling> {
    let slots_axis = [1usize, 2, 4, 8];
    let list = ListShape { nodes: 100, break_at: Some(99) };
    // `(name, baseline program, multithreaded program)` — identical
    // for every workload except the eager while loop, whose parallel
    // version is a different program.
    let eager = Arc::new(linked_list::eager_program(list));
    let workloads: Vec<(String, Arc<Program>, Arc<Program>)> = {
        let same = |name: &str, p: Program| {
            let p = Arc::new(p);
            (name.to_owned(), Arc::clone(&p), p)
        };
        vec![
            same("ray tracing (doall)", raytrace_program(params)),
            same("LK1 hydro (doall)", livermore::kernel1_program(256, Strategy::ListA)),
            same("LK3 inner product (reduction)", livermore::kernel3_program(256)),
            same("LK5 tridiagonal (doacross)", livermore::kernel5_program(256)),
            same("LK7 eq. of state (doall)", livermore::kernel7_program(192, Strategy::ListA)),
            same("radiosity (Jacobi + barrier)", radiosity_program(&RadiosityParams::default())),
            same("odd-even sort (integer)", sort_program(64, 7)),
            (
                "while loop (eager, §2.3.3)".to_owned(),
                Arc::new(linked_list::sequential_program(list)),
                eager,
            ),
        ]
    };

    let mut jobs = Vec::new();
    for (name, base_prog, multi_prog) in &workloads {
        jobs.push(Job::new(
            format!("kernels {name} base"),
            Config::base_risc(),
            Arc::clone(base_prog),
        ));
        for &slots in &slots_axis {
            jobs.push(Job::new(
                format!("kernels {name} s{slots}"),
                Config::multithreaded(slots),
                Arc::clone(multi_prog),
            ));
        }
    }

    let stats = session.stats(jobs);
    workloads
        .iter()
        .zip(stats.chunks_exact(1 + slots_axis.len()))
        .map(|((name, _, _), grid)| {
            let base = grid[0].cycles;
            KernelScaling {
                name: name.clone(),
                base_cycles: base,
                speedups: slots_axis
                    .iter()
                    .zip(&grid[1..])
                    .map(|(&slots, s)| (slots, base as f64 / s.cycles as f64))
                    .collect(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Trace-driven versus execution-driven (the paper's §3.1 methodology)
// ---------------------------------------------------------------------

/// One row of the methodology comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceDrivenRow {
    /// Thread slots.
    pub slots: usize,
    /// Execution-driven cycles.
    pub direct: u64,
    /// Trace-driven (replayed) cycles.
    pub traced: u64,
}

/// Compares execution-driven simulation against the paper's
/// trace-driven methodology on the ray tracer: the emulator records
/// each thread's dynamic instruction sequence, the trace replays on
/// the cycle-level machine, and the cycle counts must agree.
pub fn trace_driven(session: &Session, params: &RayTraceParams) -> Vec<TraceDrivenRow> {
    use hirata_sim::{build_trace_program, Emulator};
    let program = Arc::new(raytrace_program(params));
    let slots_axis = [1usize, 2, 4, 8];

    // Trace collection is a fast architectural emulation; only the
    // cycle-level runs go through the engine.
    let mut jobs = Vec::new();
    for &slots in &slots_axis {
        let out = Emulator::execute_with_traces(&program, slots, 1 << 20, 500_000_000)
            .expect("emulation succeeds");
        let replay = Arc::new(build_trace_program(&program, &out.traces).expect("replayable"));
        let config = Config::multithreaded(slots);
        jobs.push(Job::new(format!("trace s{slots} direct"), config.clone(), Arc::clone(&program)));
        jobs.push(Job::new(format!("trace s{slots} replay"), config, replay));
    }

    let stats = session.stats(jobs);
    slots_axis
        .iter()
        .zip(stats.chunks_exact(2))
        .map(|(&slots, pair)| TraceDrivenRow {
            slots,
            direct: pair[0].cycles,
            traced: pair[1].cycles,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RayTraceParams {
        RayTraceParams { width: 8, height: 8, spheres: 3, seed: 5, shadows: false }
    }

    #[test]
    fn table2_shapes_match_the_paper() {
        let session = Session::for_tests();
        let (_, rows) = table2(&session, &tiny(), false);
        assert_eq!(rows.len(), 3);
        for w in rows.windows(2) {
            assert!(w[1].one_ls_standby >= w[0].one_ls_standby, "speed-up grows with slots");
            assert!(w[1].two_ls_standby >= w[0].two_ls_standby, "speed-up grows with slots");
        }
        for row in &rows {
            // The second load/store unit matters once the first
            // saturates; at low slot counts it is allowed to be a wash.
            assert!(row.two_ls_standby >= row.one_ls_standby * 0.98, "second L/S unit");
            assert!(row.one_ls_standby >= row.one_ls_no_standby * 0.99, "standby helps");
            assert!(row.one_ls_standby > 1.0, "multithreading beats sequential");
        }
        let eight = rows.iter().find(|r| r.slots == 8).unwrap();
        assert!(
            eight.two_ls_standby > eight.one_ls_standby,
            "at 8 slots the second L/S unit must pay off: {eight:?}"
        );
    }

    #[test]
    fn table2_engine_matches_serial_reference() {
        // The engine path (batched, cached or not) must agree exactly
        // with a direct serial Machine::run.
        let session = Session::for_tests();
        let program = raytrace_program(&tiny());
        let serial = run(Config::multithreaded(4), &program).cycles;
        let (_, rows) = table2(&session, &tiny(), false);
        let base = run(Config::base_risc(), &program).cycles;
        let four = rows.iter().find(|r| r.slots == 4).unwrap();
        assert!((four.one_ls_standby - base as f64 / serial as f64).abs() < 1e-12);
    }

    #[test]
    fn table3_threads_beat_width() {
        let session = Session::for_tests();
        let (_, cells) = table3(&session, &tiny());
        let get = |w: usize, s: usize| {
            cells.iter().find(|c| c.width == w && c.slots == s).unwrap().speedup
        };
        assert!(get(1, 4) > get(2, 2), "S wins over D at budget 4");
        assert!(get(2, 2) > get(4, 1), "S wins over D at budget 4");
        assert!(get(1, 8) > get(8, 1), "S wins over D at budget 8");
    }

    #[test]
    fn table4_has_floor_and_strategy_ordering() {
        let session = Session::for_tests();
        let rows = table4(&session, 128);
        let one = &rows[0];
        assert!(one.strategy_a < one.non_optimized, "A beats non-optimized at 1 slot");
        assert!(one.strategy_b <= one.non_optimized, "B beats non-optimized at 1 slot");
        for row in &rows {
            assert!(row.strategy_b >= 8.0 - 1e-9, "the 8-cycle memory floor holds");
        }
        let eight = rows.iter().find(|r| r.slots == 8).unwrap();
        assert!(eight.strategy_b < 13.0, "8 slots near the floor");
    }

    #[test]
    fn table5_matches_paper_shape() {
        let session = Session::for_tests();
        let shape = ListShape { nodes: 48, break_at: Some(47) };
        let t = table5(&session, shape, &[2, 3, 4]);
        assert!(t.sequential > t.eager[0].1, "eager helps at 2 slots");
        assert!(t.eager[0].1 > t.eager[1].1, "3 slots beat 2");
        assert!(t.eager[1].1 >= t.eager[2].1 * 0.95, "4 slots no worse than 3");
    }

    #[test]
    fn concurrent_frames_improve_throughput() {
        let session = Session::for_tests();
        let r = concurrent(&session, 3, 150);
        let first = r.by_frames[0].2;
        let last = r.by_frames.last().unwrap().2;
        assert!(last < first * 0.8, "cycles/thread must fall with frames: {:?}", r.by_frames);
        assert!(r.switches > 0);
    }

    #[test]
    fn finite_cache_costs_cycles() {
        let session = Session::for_tests();
        let rows = finite_cache(&session, &tiny());
        assert!(rows[1].1 >= rows[0].1, "misses cannot speed things up");
        assert!(rows.last().unwrap().2 > 0.0, "small cache must miss");
    }
}
