//! Text rendering of experiment results, paper versus measured.

use std::fmt::Write as _;

use hirata_isa::FuClass;

use crate::experiments::{
    ConcurrentResult, Table2Row, Table3Cell, Table4Row, Table5, PAPER_TABLE2, PAPER_TABLE3,
    PAPER_TABLE4_ANCHORS, PAPER_TABLE5,
};
use hirata_sim::RunStats;

/// Renders Table 2 with the paper's values interleaved.
pub fn render_table2(base: u64, rows: &[Table2Row], private_fetch: bool) -> String {
    let mut out = String::new();
    let title = if private_fetch {
        "Table 2 (private per-slot instruction caches, §3.2 ablation)"
    } else {
        "Table 2: speed-up by parallel multithreading (ray tracing)"
    };
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "sequential baseline: {base} cycles (base RISC, Figure 3(b))\n");
    let _ = writeln!(
        out,
        "{:>5} | {:>9} {:>9} | {:>9} {:>9} | paper (1 L/S, 2 L/S with standby)",
        "slots", "1LS -sb", "1LS +sb", "2LS -sb", "2LS +sb"
    );
    for row in rows {
        let paper = PAPER_TABLE2.iter().find(|p| p.slots == row.slots);
        let paper_txt = match paper {
            Some(p) => format!("{:.2} / {:.2}", p.one_ls_standby, p.two_ls_standby),
            None => "-".to_owned(),
        };
        let _ = writeln!(
            out,
            "{:>5} | {:>9.2} {:>9.2} | {:>9.2} {:>9.2} | {paper_txt}",
            row.slots,
            row.one_ls_no_standby,
            row.one_ls_standby,
            row.two_ls_no_standby,
            row.two_ls_standby
        );
    }
    out
}

/// Renders Table 3.
pub fn render_table3(base: u64, cells: &[Table3Cell]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 3: multithreading (S) versus superscalar width (D), 8 FUs");
    let _ = writeln!(out, "sequential baseline: {base} cycles\n");
    let _ = writeln!(out, "{:>3} {:>3} {:>6} {:>10} {:>8}", "D", "S", "DxS", "speed-up", "paper");
    for c in cells {
        let paper = PAPER_TABLE3
            .iter()
            .find(|(w, s, _)| *w == c.width && *s == c.slots)
            .map(|(_, _, v)| format!("{v:.2}"))
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "{:>3} {:>3} {:>6} {:>10.2} {:>8}",
            c.width,
            c.slots,
            c.width * c.slots,
            c.speedup,
            paper
        );
    }
    let _ = writeln!(out, "\nexpect: at equal DxS, more thread slots beats more width (§3.3)");
    out
}

/// Renders Table 4.
pub fn render_table4(rows: &[Table4Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 4: static scheduling of Livermore Kernel 1 (cycles/iteration)");
    let _ = writeln!(
        out,
        "paper anchors: {} ; floor = (3 loads + 1 store) x 2-cycle issue = 8\n",
        PAPER_TABLE4_ANCHORS
            .iter()
            .map(|(s, n, a)| format!("{s} slot: {n:.0} non-opt / {a:.0} strategy A"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ =
        writeln!(out, "{:>5} {:>10} {:>11} {:>11}", "slots", "non-opt", "strategy A", "strategy B");
    for r in rows {
        let _ = writeln!(
            out,
            "{:>5} {:>10.2} {:>11.2} {:>11.2}",
            r.slots, r.non_optimized, r.strategy_a, r.strategy_b
        );
    }
    out
}

/// Renders Table 5.
pub fn render_table5(t: &Table5) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 5: eager execution of the Figure 6 while loop");
    let (paper_seq, paper_rows) = PAPER_TABLE5;
    let _ = writeln!(
        out,
        "{} iterations; sequential: {:.2} cycles/iteration (paper: {paper_seq:.0})\n",
        t.iterations, t.sequential
    );
    let _ = writeln!(out, "{:>5} {:>12} {:>10} {:>9}", "slots", "cycles/iter", "speed-up", "paper");
    for &(slots, per_iter) in &t.eager {
        let paper = paper_rows
            .iter()
            .find(|(s, _)| *s == slots)
            .map(|(_, v)| format!("{v:.2}"))
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "{:>5} {:>12.2} {:>10.2} {:>9}",
            slots,
            per_iter,
            t.sequential / per_iter,
            paper
        );
    }
    out
}

/// Renders the rotation-interval sweep (§3.2 prose).
pub fn render_rotation(rows: &[(u32, u64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Rotation-interval sweep, 4 slots, 2 L/S units (§3.2)");
    let _ = writeln!(out, "{:>9} {:>10}", "interval", "cycles");
    for &(interval, cycles) in rows {
        let _ = writeln!(out, "{interval:>9} {cycles:>10}");
    }
    let best = rows.iter().min_by_key(|&&(_, c)| c).expect("non-empty sweep");
    let worst = rows.iter().max_by_key(|&&(_, c)| c).expect("non-empty sweep");
    let _ = writeln!(
        out,
        "\nspread: {:.1}% (paper: interval has little influence; 8-16 slightly best)",
        (worst.1 as f64 / best.1 as f64 - 1.0) * 100.0
    );
    out
}

/// Renders the utilization analysis (§3.2 prose).
pub fn render_utilization(slots: usize, stats: &RunStats) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Functional-unit utilization, {slots} slots, 1 L/S unit (§3.2)\n");
    out.push_str(&stats.utilization_report());
    let (busiest, util) = stats.busiest_unit();
    let _ = writeln!(
        out,
        "\nbusiest: {busiest} at {util:.1}% (paper: load/store reaches 99% at 8 slots,\nexplaining Table 2's saturation at 3.22 with one L/S unit)"
    );
    let _ = writeln!(out, "machine IPC: {:.2}", stats.ipc());
    debug_assert_eq!(busiest, FuClass::LoadStore);
    out
}

/// Renders the concurrent-multithreading extension results.
pub fn render_concurrent(threads: usize, r: &ConcurrentResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Concurrent multithreading (§2.1.3, outlined): up to {threads} resident threads, 1 slot"
    );
    let _ = writeln!(out, "{:>7} {:>10} {:>14}", "frames", "cycles", "cycles/thread");
    for &(frames, cycles, per_thread) in &r.by_frames {
        let _ = writeln!(out, "{frames:>7} {cycles:>10} {per_thread:>14.0}");
    }
    let _ = writeln!(out, "context switches at max frames: {}", r.switches);
    out
}

/// Renders the finite-cache extension results.
pub fn render_finite_cache(rows: &[(String, u64, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Finite data-cache effects (§5 future work), 4 slots");
    let _ = writeln!(out, "{:>10} {:>10} {:>8}", "cache", "cycles", "miss %");
    for (label, cycles, miss) in rows {
        let _ = writeln!(out, "{label:>10} {cycles:>10} {:>8.1}", miss * 100.0);
    }
    out
}

/// Renders the ablation suite.
pub fn render_ablations(rows: &[crate::experiments::AblationRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Ablations of DESIGN.md's called-out choices");
    let _ = writeln!(out, "{:<42} {:>10}", "configuration", "cycles");
    for (label, cycles) in rows {
        match cycles {
            Some(c) => {
                let _ = writeln!(out, "{label:<42} {c:>10}");
            }
            None => {
                let _ = writeln!(out, "{label:<42} {:>10}", "deadlock");
            }
        }
    }
    out
}

/// Renders the kernel sweep.
pub fn render_kernel_sweep(rows: &[crate::experiments::KernelScaling]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Workload sweep (the broader evaluation §5 asks for), 1 L/S unit");
    let _ = writeln!(
        out,
        "{:<32} {:>10} | {:>6} {:>6} {:>6} {:>6}",
        "workload", "base cyc", "x1", "x2", "x4", "x8"
    );
    for k in rows {
        let cells: String = k.speedups.iter().map(|(_, s)| format!(" {s:>6.2}")).collect();
        let _ = writeln!(out, "{:<32} {:>10} |{cells}", k.name, k.base_cycles);
    }
    out
}

/// Renders the trace-driven comparison.
pub fn render_trace_driven(rows: &[crate::experiments::TraceDrivenRow]) -> String {
    let mut out = String::new();
    let _ =
        writeln!(out, "Trace-driven vs execution-driven simulation (the paper's §3.1 methodology)");
    let _ = writeln!(
        out,
        "{:>6} {:>12} {:>12} {:>8}",
        "slots", "exec-driven", "trace-driven", "diff %"
    );
    for r in rows {
        let diff = r.direct.abs_diff(r.traced) as f64 / r.direct as f64 * 100.0;
        let _ = writeln!(out, "{:>6} {:>12} {:>12} {:>8.2}", r.slots, r.direct, r.traced, diff);
    }
    let _ = writeln!(
        out,
        "\nthe replayed dynamic traces cost the same cycles as direct execution,\nvalidating the timing model against the paper's trace-driven setup"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renderers_are_total() {
        let rows = vec![Table2Row {
            slots: 2,
            one_ls_no_standby: 1.5,
            one_ls_standby: 1.6,
            two_ls_no_standby: 1.7,
            two_ls_standby: 1.8,
        }];
        let text = render_table2(1000, &rows, false);
        assert!(text.contains("Table 2"));
        assert!(text.contains("1.83"), "paper value shown");

        let cells = vec![Table3Cell { width: 1, slots: 2, speedup: 2.0 }];
        assert!(render_table3(1000, &cells).contains("2.02"));

        let t4 =
            vec![Table4Row { slots: 1, non_optimized: 50.0, strategy_a: 42.0, strategy_b: 40.0 }];
        assert!(render_table4(&t4).contains("42.00"));

        let t5 = Table5 { iterations: 10, sequential: 56.0, eager: vec![(2, 32.0)] };
        let text = render_table5(&t5);
        assert!(text.contains("32.00"));
        assert!(text.contains("1.75")); // 56/32

        assert!(render_rotation(&[(1, 100), (2, 90)]).contains("spread"));
        assert!(render_concurrent(
            2,
            &ConcurrentResult { by_frames: vec![(1, 10, 10.0)], switches: 3 }
        )
        .contains("switches"));
        assert!(render_finite_cache(&[("ideal".into(), 10, 0.0)]).contains("ideal"));
    }
}
