//! The experiment session: one [`Lab`] engine shared by every
//! experiment, plus workload sizing and the table dispatcher the
//! `repro` binary and the integration tests share.

use hirata_lab::{Job, JobError, JobOutput, JobResult, Lab};
use hirata_sim::RunStats;
use hirata_workloads::linked_list::ListShape;
use hirata_workloads::raytrace::RayTraceParams;

use crate::experiments;
use crate::tables;

/// Workload sizes for a full or quick pass.
pub struct Sizes {
    /// Ray-tracer scene.
    pub ray: RayTraceParams,
    /// Livermore Kernel 1 vector length.
    pub kernel1_n: usize,
    /// Linked-list shape for Table 5.
    pub list: ListShape,
}

impl Sizes {
    /// Paper-scale workloads.
    pub fn full() -> Self {
        Sizes {
            ray: RayTraceParams::default(),
            kernel1_n: 512,
            list: ListShape { nodes: 200, break_at: Some(199) },
        }
    }

    /// Reduced workloads for fast iteration (`--quick`).
    pub fn quick() -> Self {
        Sizes {
            ray: RayTraceParams { width: 8, height: 8, spheres: 4, seed: 42, shadows: true },
            kernel1_n: 64,
            list: ListShape { nodes: 40, break_at: Some(39) },
        }
    }
}

/// An experiment session: a configured execution engine. Every
/// experiment submits its simulations as a batch through the session,
/// so sweeps run in parallel and repeat runs come from the result
/// cache.
pub struct Session {
    lab: Lab,
}

impl Session {
    /// Wraps an engine.
    pub fn new(lab: Lab) -> Self {
        Session { lab }
    }

    /// A session for unit tests: serial, no cache, no progress
    /// chatter.
    pub fn for_tests() -> Self {
        Session::new(Lab::new().with_workers(1).without_cache().quiet())
    }

    /// Runs a batch and returns per-job outputs in submission order.
    ///
    /// # Panics
    ///
    /// Panics on the first failed job — experiment programs are
    /// trusted, so a failure is a harness bug.
    pub fn outputs(&self, jobs: Vec<Job>) -> Vec<JobOutput> {
        let names: Vec<String> = jobs.iter().map(|j| j.name.clone()).collect();
        self.lab
            .run_batch(jobs)
            .results
            .into_iter()
            .zip(names)
            .map(|(result, name)| match result {
                Ok(out) => out,
                Err(err) => panic!("experiment job `{name}` failed: {err}"),
            })
            .collect()
    }

    /// Runs a batch and returns the stats of each job.
    pub fn stats(&self, jobs: Vec<Job>) -> Vec<RunStats> {
        self.outputs(jobs).into_iter().map(|out| out.stats).collect()
    }

    /// Runs a batch and returns raw per-job results (for experiments
    /// where some configurations are expected to fail, such as the
    /// deadlock ablations).
    pub fn results(&self, jobs: Vec<Job>) -> Vec<JobResult> {
        let batch = self.lab.run_batch(jobs);
        for result in &batch.results {
            // Panics and timeouts are harness failures even here;
            // only simulator machine checks are expected outcomes.
            if let Err(err @ (JobError::Panicked(_) | JobError::Timeout(_))) = result {
                panic!("experiment job failed: {err}");
            }
        }
        batch.results
    }
}

impl Default for Session {
    fn default() -> Self {
        Session::new(Lab::new())
    }
}

/// Names of every experiment, in the order `all` runs them.
pub const EXPERIMENTS: [&str; 12] = [
    "table2",
    "table2-private",
    "table3",
    "table4",
    "table5",
    "rotation",
    "utilization",
    "concurrent",
    "finite-cache",
    "ablations",
    "kernels",
    "trace-driven",
];

/// Runs one named experiment and renders its table. Returns `None`
/// for an unknown name.
pub fn render_experiment(session: &Session, sizes: &Sizes, which: &str) -> Option<String> {
    Some(match which {
        "table2" => {
            let (base, rows) = experiments::table2(session, &sizes.ray, false);
            tables::render_table2(base, &rows, false)
        }
        "table2-private" => {
            let (base, rows) = experiments::table2(session, &sizes.ray, true);
            tables::render_table2(base, &rows, true)
        }
        "table3" => {
            let (base, cells) = experiments::table3(session, &sizes.ray);
            tables::render_table3(base, &cells)
        }
        "table4" => tables::render_table4(&experiments::table4(session, sizes.kernel1_n)),
        "table5" => {
            let t = experiments::table5(session, sizes.list, &[2, 3, 4, 6, 8]);
            tables::render_table5(&t)
        }
        "rotation" => tables::render_rotation(&experiments::rotation_sweep(session, &sizes.ray)),
        "utilization" => {
            let stats = experiments::utilization(session, &sizes.ray, 8);
            tables::render_utilization(8, &stats)
        }
        "concurrent" => {
            let threads = 4;
            tables::render_concurrent(threads, &experiments::concurrent(session, threads, 200))
        }
        "finite-cache" => {
            tables::render_finite_cache(&experiments::finite_cache(session, &sizes.ray))
        }
        "ablations" => tables::render_ablations(&experiments::ablations(session, &sizes.ray)),
        "kernels" => tables::render_kernel_sweep(&experiments::kernel_sweep(session, &sizes.ray)),
        "trace-driven" => {
            tables::render_trace_driven(&experiments::trace_driven(session, &sizes.ray))
        }
        _ => return None,
    })
}

/// Runs every experiment and returns exactly the bytes the `repro`
/// binary prints to stdout for `all`: each table followed by a
/// newline, in [`EXPERIMENTS`] order.
pub fn run_all(session: &Session, sizes: &Sizes) -> String {
    EXPERIMENTS
        .iter()
        .map(|name| {
            let table =
                render_experiment(session, sizes, name).expect("EXPERIMENTS names are known");
            format!("{table}\n")
        })
        .collect()
}
