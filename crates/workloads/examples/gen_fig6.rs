//! Regenerates `examples/asm/fig6_while.s` (the canonical eager
//! Figure 6 while-loop) on stdout:
//!
//! ```text
//! cargo run -p hirata-workloads --example gen_fig6 > examples/asm/fig6_while.s
//! ```

fn main() {
    print!("{}", hirata_workloads::linked_list::fig6_example_text());
}
