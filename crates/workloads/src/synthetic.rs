//! Synthetic workloads: a DSM pointer-striding kernel for the
//! concurrent-multithreading extension (§2.1.3) and a seeded
//! instruction-mix generator for ablation benchmarks.

use hirata_isa::Program;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// First remote word address in the DSM layout.
pub const REMOTE_BASE: u64 = 4096;
/// Word address where each thread stores its checksum (indexed by
/// logical processor id).
pub const OUT_BASE: u64 = 700;

/// Parameters of the DSM striding kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DsmChaseParams {
    /// Loop iterations per thread.
    pub iters: usize,
    /// Remote words touched per thread (stride region size).
    pub stride: usize,
    /// Local ALU operations between remote accesses.
    pub alu_ops: usize,
}

impl Default for DsmChaseParams {
    fn default() -> Self {
        DsmChaseParams { iters: 16, stride: 64, alu_ops: 4 }
    }
}

/// The remote data value stored at offset `k` of a thread's region.
fn remote_value(addr: u64) -> i64 {
    (addr % 17) as i64
}

/// Expected checksum of thread `lpid` after [`dsm_chase_program`].
pub fn dsm_chase_reference(lpid: usize, params: &DsmChaseParams) -> i64 {
    let base = REMOTE_BASE + (lpid * params.stride) as u64;
    (0..params.iters as u64).map(|k| remote_value(base + k)).sum()
}

/// Builds the DSM kernel: each thread sums `iters` remote words (each
/// access raising a data-absence trap under a `DsmMemory` model) with
/// `alu_ops` local adds between accesses, then stores its checksum at
/// `OUT_BASE + lpid`. Threads are created with `Machine::add_thread`,
/// so a machine with more context frames than slots overlaps their
/// remote waits.
///
/// # Panics
///
/// Panics if `iters` or `stride` is zero, or `iters > stride`.
pub fn dsm_chase_program(max_threads: usize, params: &DsmChaseParams) -> Program {
    assert!(params.iters > 0 && params.stride > 0, "iters and stride must be positive");
    assert!(params.iters <= params.stride, "threads must stay inside their region");
    let remote_words: String = (0..max_threads * params.stride)
        .map(|k| remote_value(REMOTE_BASE + k as u64).to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let alu_filler: String = (0..params.alu_ops)
        .map(|i| format!("    add  r{}, r{}, #1\n", 20 + (i % 8), 20 + (i % 8)))
        .collect();
    let src = format!(
        "
.data
.org {REMOTE_BASE}
remote: .word {remote_words}
.text
.entry main
main:
    lpid r1
    mul  r2, r1, #{stride}
    li   r3, #{iters}
    li   r4, #0
loop:
    lw   r5, {REMOTE_BASE}(r2)
    add  r4, r4, r5
{alu_filler}    add  r2, r2, #1
    sub  r3, r3, #1
    bne  r3, #0, loop
    sw   r4, {OUT_BASE}(r1)
    halt
",
        stride = params.stride,
        iters = params.iters,
    );
    hirata_asm::assemble(&src).expect("dsm chase assembles")
}

/// Parameters for the seeded straight-line instruction-mix generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixParams {
    /// Instructions per loop body.
    pub body_len: usize,
    /// Loop iterations.
    pub iters: usize,
    /// RNG seed.
    pub seed: u64,
    /// Percentage (0-100) of memory operations.
    pub mem_pct: u8,
    /// Percentage (0-100) of floating-point operations.
    pub fp_pct: u8,
}

impl Default for MixParams {
    fn default() -> Self {
        MixParams { body_len: 32, iters: 64, seed: 1, mem_pct: 25, fp_pct: 35 }
    }
}

/// Generates a loop whose body is a seeded random mix of ALU, shift,
/// multiply, FP, and load/store operations over a fixed register pool
/// (sources always initialized, so any reordering is safe). Useful
/// for utilization ablations and simulator benchmarks.
///
/// # Panics
///
/// Panics if `body_len` or `iters` is zero or percentages exceed 100.
pub fn mix_program(params: &MixParams) -> Program {
    assert!(params.body_len > 0 && params.iters > 0, "mix must be non-empty");
    assert!(
        params.mem_pct as u32 + params.fp_pct as u32 <= 100,
        "mem_pct + fp_pct must not exceed 100"
    );
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut body = String::new();
    for k in 0..params.body_len {
        let roll = rng.gen_range(0..100u8);
        let dst = 10 + (k % 8); // r10..r17 / f10..f17 round-robin temps
        let src_a = rng.gen_range(1..8u8); // seeded pool
        let src_b = rng.gen_range(1..8u8);
        let line = if roll < params.mem_pct {
            if rng.gen_bool(0.7) {
                format!("    lw   r{dst}, {}(r9)\n", rng.gen_range(0..64))
            } else {
                format!("    sw   r{src_a}, {}(r9)\n", 64 + rng.gen_range(0..64))
            }
        } else if roll < params.mem_pct + params.fp_pct {
            match rng.gen_range(0..4u8) {
                0 => format!("    fadd f{dst}, f{src_a}, f{src_b}\n"),
                1 => format!("    fmul f{dst}, f{src_a}, f{src_b}\n"),
                2 => format!("    fsub f{dst}, f{src_a}, f{src_b}\n"),
                _ => format!("    fabs f{dst}, f{src_a}\n"),
            }
        } else {
            match rng.gen_range(0..4u8) {
                0 => format!("    add  r{dst}, r{src_a}, r{src_b}\n"),
                1 => format!("    xor  r{dst}, r{src_a}, r{src_b}\n"),
                2 => format!("    sll  r{dst}, r{src_a}, #{}\n", rng.gen_range(1..5)),
                _ => format!("    mul  r{dst}, r{src_a}, r{src_b}\n"),
            }
        };
        body.push_str(&line);
    }
    let pool_init: String =
        (1..8).map(|r| format!("    li   r{r}, #{r}\n    lif  f{r}, #{r}.5\n")).collect();
    let src = format!(
        "
.text
.entry main
main:
    fastfork
    lpid r1
    nlp  r2
    li   r9, #2000
{pool_init}    mv   r3, r1
loop:
    slt  r4, r3, #{iters}
    beq  r4, #0, done
{body}    add  r3, r3, r2
    j    loop
done:
    halt
",
        iters = params.iters,
    );
    hirata_asm::assemble(&src).expect("mix program assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirata_mem::DsmMemory;
    use hirata_sim::{Config, Machine};

    #[test]
    fn dsm_chase_checksums_match_reference() {
        let params = DsmChaseParams::default();
        let prog = dsm_chase_program(3, &params);
        let mut config = Config::multithreaded(1).with_context_frames(3);
        config.mem_words = 1 << 16;
        let mut m =
            Machine::with_mem_model(config, &prog, Box::new(DsmMemory::new(REMOTE_BASE, 2, 100)))
                .unwrap();
        m.add_thread(0).unwrap();
        m.add_thread(0).unwrap();
        m.run().unwrap();
        for lp in 0..3 {
            assert_eq!(
                m.memory().read_i64(OUT_BASE + lp as u64).unwrap(),
                dsm_chase_reference(lp, &params),
                "thread {lp}"
            );
        }
        assert!(m.stats().context_switches > 0);
    }

    #[test]
    fn mix_program_is_deterministic() {
        let params = MixParams::default();
        let a = mix_program(&params);
        let b = mix_program(&params);
        assert_eq!(a.insts, b.insts);
        let c = mix_program(&MixParams { seed: 2, ..params });
        assert_ne!(a.insts, c.insts);
    }

    #[test]
    fn mix_program_runs_on_all_machine_shapes() {
        let prog = mix_program(&MixParams { body_len: 16, iters: 8, ..MixParams::default() });
        for config in [Config::base_risc(), Config::multithreaded(4), Config::hybrid(2, 2)] {
            let mut m = Machine::new(config, &prog).unwrap();
            m.run().unwrap();
            assert!(m.stats().instructions > 0);
        }
    }

    #[test]
    #[should_panic(expected = "stay inside")]
    fn dsm_region_overflow_rejected() {
        dsm_chase_program(1, &DsmChaseParams { iters: 100, stride: 10, alu_ops: 0 });
    }
}
