//! A radiosity-style workload — the paper's *other* motivating
//! graphics algorithm (§1: "ray-tracing and radiosity are very famous
//! algorithms for generating realistic images").
//!
//! Classic gathering radiosity solves `B = E + ρ F B` by Jacobi
//! iteration: each patch gathers radiosity from every other patch
//! through a form-factor matrix. Per patch per iteration that is a
//! dense dot product — a long stream of loads and FP multiply-adds,
//! a very different mix from the branchy ray tracer (few branches,
//! near-perfect doall parallelism across patches).
//!
//! Patches are strided across logical processors; iterations are
//! separated by a **two-lap token barrier over the queue-register
//! ring** (lap one proves every processor finished writing, lap two
//! releases them), so iteration `t+1` never reads a patch value
//! before every processor has finished iteration `t`. Double
//! buffering removes same-iteration races.

use hirata_isa::Program;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Word address of the form-factor matrix (row-major, `n x n`).
pub const FF_BASE: u64 = 20_000;
/// Word address of buffer A (iteration input).
pub const BUF_A: u64 = 1_000;
/// Word address of buffer B (iteration output).
pub const BUF_B: u64 = 2_000;
/// Word address of the emission vector.
pub const EMIT_BASE: u64 = 3_000;

/// Radiosity problem description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RadiosityParams {
    /// Number of patches (`n x n` form factors).
    pub patches: usize,
    /// Jacobi iterations.
    pub iterations: usize,
    /// Scene seed.
    pub seed: u64,
}

impl Default for RadiosityParams {
    fn default() -> Self {
        RadiosityParams { patches: 24, iterations: 3, seed: 7 }
    }
}

/// Reflectivity used for every patch.
const RHO: f64 = 0.6;

/// Deterministic scene: `(emission, form_factors)`. Form-factor rows
/// are normalised to sum below one, so the iteration converges.
pub fn radiosity_scene(p: &RadiosityParams) -> (Vec<f64>, Vec<f64>) {
    let n = p.patches;
    let mut rng = SmallRng::seed_from_u64(p.seed);
    let emit: Vec<f64> =
        (0..n).map(|i| if i % 5 == 0 { rng.gen_range(0.5..1.0) } else { 0.0 }).collect();
    let mut ff = vec![0.0f64; n * n];
    for i in 0..n {
        let mut row: Vec<f64> =
            (0..n).map(|j| if i == j { 0.0 } else { rng.gen_range(0.0..1.0f64) }).collect();
        let sum: f64 = row.iter().sum();
        for v in &mut row {
            *v /= sum * 1.25; // rows sum to 0.8
        }
        ff[i * n..(i + 1) * n].copy_from_slice(&row);
    }
    (emit, ff)
}

/// Reference Jacobi solve with the machine's exact operation order.
/// Returns the final radiosity vector (the contents of the buffer the
/// last iteration wrote into).
pub fn radiosity_reference(p: &RadiosityParams) -> Vec<f64> {
    let n = p.patches;
    let (emit, ff) = radiosity_scene(p);
    let mut cur = emit.clone(); // buffer A starts as E
    let mut next = vec![0.0f64; n];
    for _ in 0..p.iterations {
        for i in 0..n {
            let mut gather = 0.0f64;
            for j in 0..n {
                gather += ff[i * n + j] * cur[j];
            }
            next[i] = emit[i] + RHO * gather;
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// Which buffer ([`BUF_A`] or [`BUF_B`]) holds the result after
/// `iterations` steps.
pub fn radiosity_result_base(p: &RadiosityParams) -> u64 {
    if p.iterations.is_multiple_of(2) {
        BUF_A
    } else {
        BUF_B
    }
}

/// Builds the radiosity program.
///
/// # Panics
///
/// Panics if the patch count or iteration count is zero, or the matrix
/// would not fit the fixed layout.
pub fn radiosity_program(p: &RadiosityParams) -> Program {
    let n = p.patches;
    assert!(n > 0 && p.iterations > 0, "patches and iterations must be positive");
    assert!(n <= 64, "the fixed layout supports up to 64 patches");
    let (emit, ff) = radiosity_scene(p);
    let fmt = |v: &[f64]| v.iter().map(|f| format!("{f:?}")).collect::<Vec<_>>().join(", ");
    // Buffer A starts as a copy of E.
    let src = format!(
        "
.data
.org {BUF_A}
bufa: .float {emit_words}
.org {EMIT_BASE}
emit: .float {emit_words}
.org {FF_BASE}
ff:   .float {ff_words}
.text
.entry main
main:
    qmap r10, r11          ; the ring carries the barrier token
    lif  f20, #{RHO:?}
    fastfork
    lpid r1
    nlp  r2
    li   r20, #{BUF_A}     ; src buffer
    li   r21, #{BUF_B}     ; dst buffer
    li   r22, #{iters}     ; remaining iterations
iter:
    mv   r3, r1            ; patch i = lpid
patch:
    slt  r4, r3, #{n}
    beq  r4, #0, patch_done
    ; row pointer = FF + i*n
    mul  r5, r3, #{n}
    li   r6, #{FF_BASE}
    add  r5, r5, r6
    lif  f1, #0.0          ; gather
    li   r7, #0            ; j
row:
    slt  r4, r7, #{n}
    beq  r4, #0, row_done
    lf   f2, 0(r5)         ; F[i][j]
    add  r8, r20, r7
    lf   f3, 0(r8)         ; B_cur[j]
    fmul f2, f2, f3
    fadd f1, f1, f2
    add  r5, r5, #1
    add  r7, r7, #1
    j    row
row_done:
    fmul f1, f20, f1       ; rho * gather
    lf   f4, {EMIT_BASE}(r3)
    fadd f1, f4, f1        ; E[i] + rho*gather
    add  r9, r21, r3
    sf   f1, 0(r9)         ; B_next[i]
    add  r3, r3, r2
    j    patch
patch_done:
    ; ---- two-lap ring barrier ----
    drain                  ; fence: B_next writes must be performed
    bne  r1, #0, bar_follow
    li   r11, #1           ; LP0 starts lap one...
    mv   r12, r10          ; ...which returns once everyone finished
    li   r11, #2           ; lap two releases the others
    mv   r12, r10          ; absorb the returning release token
    j    bar_done
bar_follow:
    mv   r12, r10          ; lap one: wait for the predecessor...
    mv   r11, r12          ; ...then vouch for ourselves
    mv   r12, r10          ; lap two: wait for the release...
    mv   r11, r12          ; ...and pass it on
bar_done:
    mv   r13, r20          ; swap buffers
    mv   r20, r21
    mv   r21, r13
    sub  r22, r22, #1
    bne  r22, #0, iter
    halt
",
        emit_words = fmt(&emit),
        ff_words = fmt(&ff),
        iters = p.iterations,
    );
    hirata_asm::assemble(&src).expect("radiosity assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirata_sim::{Config, Machine};

    fn result(m: &Machine, p: &RadiosityParams) -> Vec<f64> {
        let base = radiosity_result_base(p);
        (0..p.patches).map(|i| m.memory().read_f64(base + i as u64).unwrap()).collect()
    }

    #[test]
    fn matches_reference_on_base_risc() {
        let p = RadiosityParams { patches: 8, iterations: 2, seed: 3 };
        let mut m = Machine::new(Config::base_risc(), &radiosity_program(&p)).unwrap();
        m.run().unwrap();
        assert_eq!(result(&m, &p), radiosity_reference(&p));
    }

    #[test]
    fn parallel_widths_agree_bit_for_bit() {
        let p = RadiosityParams { patches: 10, iterations: 3, seed: 9 };
        let expected = radiosity_reference(&p);
        for slots in [2usize, 4, 8] {
            let mut m = Machine::new(Config::multithreaded(slots), &radiosity_program(&p)).unwrap();
            m.run().unwrap();
            assert_eq!(result(&m, &p), expected, "{slots} slots");
        }
    }

    #[test]
    fn radiosity_is_non_trivial() {
        let p = RadiosityParams::default();
        let b = radiosity_reference(&p);
        assert!(b.iter().any(|&v| v > 0.0));
        // Reflection spreads light to non-emitting patches.
        let (emit, _) = radiosity_scene(&p);
        assert!(b.iter().zip(&emit).any(|(&b, &e)| e == 0.0 && b > 0.01));
    }

    #[test]
    fn gather_loops_scale_with_slots() {
        let p = RadiosityParams { patches: 16, iterations: 2, seed: 1 };
        let prog = radiosity_program(&p);
        let cycles = |slots: usize| {
            let mut m = Machine::new(Config::multithreaded(slots), &prog).unwrap();
            m.run().unwrap().cycles
        };
        let (one, four) = (cycles(1), cycles(4));
        assert!((four as f64) < 0.45 * one as f64, "radiosity is doall: {one} vs {four}");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_patches_rejected() {
        radiosity_program(&RadiosityParams { patches: 0, iterations: 1, seed: 0 });
    }
}
