//! Parallel odd-even transposition sort — an integer-dominated
//! workload (compares, swaps, address arithmetic; almost no floating
//! point), complementing the FP-heavy kernels in the suite.
//!
//! `n` elements are sorted in `n` phases; phase `p` compares-and-swaps
//! the disjoint pairs `(i, i+1)` with `i ≡ p (mod 2)`, so threads can
//! divide the pairs of one phase freely. Phases are separated by the
//! same two-lap queue-ring barrier the radiosity solver uses, with a
//! `drain` fence so every swap is visible before the next phase reads.

use hirata_isa::Program;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Word address of the array being sorted.
pub const SORT_BASE: u64 = 1000;
/// Largest supported element count.
pub const SORT_MAX_N: usize = 4000;

/// Deterministic input data.
pub fn sort_input(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1000..1000)).collect()
}

/// Reference output.
pub fn sort_reference(n: usize, seed: u64) -> Vec<i64> {
    let mut v = sort_input(n, seed);
    v.sort_unstable();
    v
}

/// Builds the sorting program.
///
/// # Panics
///
/// Panics if `n < 2` or `n` exceeds [`SORT_MAX_N`].
pub fn sort_program(n: usize, seed: u64) -> Program {
    assert!((2..=SORT_MAX_N).contains(&n), "n must be in 2..={SORT_MAX_N}");
    let data = sort_input(n, seed).iter().map(i64::to_string).collect::<Vec<_>>().join(", ");
    let src = format!(
        "
.equ N, {n}
.data
.org {SORT_BASE}
arr: .word {data}
.text
.entry main
main:
    qmap r10, r11          ; barrier token ring
    fastfork
    lpid r1
    nlp  r2
    li   r20, #0           ; phase
phase:
    ; pairs start at i = phase parity + 2*lpid, step 2*nlp
    rem  r3, r20, #2
    mul  r4, r1, #2
    add  r3, r3, r4        ; i
    mul  r5, r2, #2        ; stride
pair:
    add  r6, r3, #1
    slt  r7, r6, #N
    beq  r7, #0, pairs_done
    lw   r8, arr(r3)
    lw   r9, arr(r6)
    sle  r7, r8, r9
    bne  r7, #0, no_swap
    sw   r9, arr(r3)
    sw   r8, arr(r6)
no_swap:
    add  r3, r3, r5
    j    pair
pairs_done:
    drain                  ; swaps must be visible before the barrier
    ; ---- two-lap ring barrier ----
    bne  r1, #0, bar_follow
    li   r11, #1
    mv   r12, r10
    li   r11, #2
    mv   r12, r10
    j    bar_done
bar_follow:
    mv   r12, r10
    mv   r11, r12
    mv   r12, r10
    mv   r11, r12
bar_done:
    add  r20, r20, #1
    slt  r7, r20, #N
    bne  r7, #0, phase
    halt
"
    );
    hirata_asm::assemble(&src).expect("sort assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirata_sim::{Config, Machine};

    fn sorted(m: &Machine, n: usize) -> Vec<i64> {
        (0..n).map(|i| m.memory().read_i64(SORT_BASE + i as u64).unwrap()).collect()
    }

    #[test]
    fn sorts_on_the_baseline() {
        let (n, seed) = (17, 5);
        let mut m = Machine::new(Config::base_risc(), &sort_program(n, seed)).unwrap();
        m.run().unwrap();
        assert_eq!(sorted(&m, n), sort_reference(n, seed));
    }

    #[test]
    fn sorts_identically_on_every_width() {
        let (n, seed) = (25, 11);
        let expected = sort_reference(n, seed);
        for slots in [1usize, 2, 3, 4, 8] {
            let mut m = Machine::new(Config::multithreaded(slots), &sort_program(n, seed)).unwrap();
            m.run().unwrap();
            assert_eq!(sorted(&m, n), expected, "{slots} slots");
        }
    }

    #[test]
    fn integer_units_dominate() {
        use hirata_isa::FuClass;
        let mut m = Machine::new(Config::multithreaded(4), &sort_program(32, 3)).unwrap();
        m.run().unwrap();
        let stats = m.stats();
        assert!(
            stats.fu_invocations[FuClass::IntAlu.index()]
                > stats.fu_invocations[FuClass::FpAdd.index()] * 10,
            "sort should be ALU-heavy"
        );
    }

    #[test]
    fn parallel_sorting_scales() {
        let (n, seed) = (48, 9);
        let prog = sort_program(n, seed);
        let cycles = |slots: usize| {
            let mut m = Machine::new(Config::multithreaded(slots), &prog).unwrap();
            m.run().unwrap().cycles
        };
        let (one, four) = (cycles(1), cycles(4));
        assert!((four as f64) < 0.6 * one as f64, "phases should parallelise: {one} vs {four}");
    }

    #[test]
    #[should_panic(expected = "n must be in")]
    fn tiny_arrays_rejected() {
        sort_program(1, 0);
    }
}
