//! The §3.2 application: a small ray tracer, parallelised per pixel.
//!
//! The paper's evaluation traces a C ray tracer; what the experiments
//! actually depend on is the *dynamic instruction mix* — streams of
//! loads walking the scene, floating-point arithmetic for the
//! intersection tests, and data-dependent branches that defeat static
//! prediction. This kernel reproduces that mix with a real (small)
//! ray tracer in the reproduced ISA: per pixel it builds a primary
//! ray, intersects it against every sphere (4 loads + ~12 FP ops + 2
//! data-dependent branches per sphere), shades the nearest hit, and
//! optionally casts a shadow feeler toward a light.
//!
//! Square roots are avoided (the ISA has none, as was common in 1992
//! embedded FP units): hits are detected by the discriminant sign,
//! depth-ordered by squared center distance, and shaded by
//! `disc / b²` — every pixel's value is still a pure function of real
//! ray-sphere geometry. [`reference_image`] recomputes the identical
//! arithmetic in Rust, operation for operation, so tests compare the
//! simulator's final image bit-for-bit.

use hirata_isa::Program;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Word address of the scene (4 words per sphere: cx, cy, cz, r²).
pub const SCENE_BASE: u64 = 1000;
/// Word address of the rendered image (one word per pixel).
pub const IMAGE_BASE: u64 = 10_000;
/// Word address of the per-thread spill frames (16 words per logical
/// processor). The paper's machine has no overlapped register windows
/// (§3.1) and its workload was compiled C, so the per-sphere
/// intersection "call" spills the ray state to a stack frame and
/// reloads it each iteration — that memory traffic is what makes the
/// load/store unit the busiest one in §3.2.
pub const STACK_BASE: u64 = 60_000;

/// Ray-tracer parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RayTraceParams {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Number of spheres in the scene.
    pub spheres: usize,
    /// Scene-generation seed.
    pub seed: u64,
    /// Cast a shadow feeler from each hit toward the light.
    pub shadows: bool,
}

impl Default for RayTraceParams {
    /// A 16x16 image of an 8-sphere scene with shadows — small enough
    /// for tests, large enough to exercise every path.
    fn default() -> Self {
        RayTraceParams { width: 16, height: 16, spheres: 8, seed: 42, shadows: true }
    }
}

impl RayTraceParams {
    /// Total pixels.
    pub fn pixels(&self) -> usize {
        self.width * self.height
    }
}

/// One scene sphere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sphere {
    /// Center.
    pub center: [f64; 3],
    /// Radius squared.
    pub r2: f64,
}

/// The light direction used for shadow feelers (unit length).
fn light_dir() -> [f64; 3] {
    let l: [f64; 3] = [0.5, 0.8, 0.3];
    let n = (l[0] * l[0] + l[1] * l[1] + l[2] * l[2]).sqrt();
    [l[0] / n, l[1] / n, l[2] / n]
}

/// Deterministically generates the scene for `params`. Spheres sit in
/// front of the camera (negative z) and never contain the origin.
pub fn scene(params: &RayTraceParams) -> Vec<Sphere> {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    (0..params.spheres)
        .map(|_| {
            let r = rng.gen_range(0.5..1.5f64);
            Sphere {
                center: [
                    rng.gen_range(-3.0..3.0),
                    rng.gen_range(-3.0..3.0),
                    rng.gen_range(-10.0..-4.0f64),
                ],
                r2: r * r,
            }
        })
        .collect()
}

/// Computes the image exactly as the assembly program does — the same
/// floating-point operations in the same order, so results match the
/// simulator bit for bit.
pub fn reference_image(params: &RayTraceParams) -> Vec<i64> {
    let spheres = scene(params);
    let [lx, ly, lz] = light_dir();
    let w2 = (params.width / 2) as i64;
    let h2 = (params.height / 2) as i64;
    let inv = 2.0 / params.width as f64;
    let mut image = vec![0i64; params.pixels()];
    for p in 0..params.pixels() as i64 {
        let j = p / params.width as i64;
        let i = p % params.width as i64;
        let dx = ((i - w2) as f64) * inv;
        let dy = ((j - h2) as f64) * inv;
        // dz = -1
        let a = (dx * dx + dy * dy) + 1.0;
        let mut best = 0i64; // sphere index + 1, 0 = miss
        let mut best_c2 = 1.0e30f64;
        let mut best_shade = 0.0f64;
        let mut best_center = [0.0f64; 3];
        for (s, sp) in spheres.iter().enumerate() {
            let [cx, cy, cz] = sp.center;
            let b = (dx * cx + dy * cy) - cz;
            let c2 = ((cx * cx + cy * cy) + cz * cz) - sp.r2;
            let disc = b * b - a * c2;
            if disc < 0.0 {
                continue;
            }
            if b <= 0.0 {
                continue;
            }
            // NaN-free data: plain >= reads best here, but keep the
            // comparison in the same sense as the assembly (fcmplt).
            let nearer = c2 < best_c2;
            if !nearer {
                continue;
            }
            best_c2 = c2;
            best = s as i64 + 1;
            best_shade = disc / (b * b);
            best_center = sp.center;
        }
        if best == 0 {
            image[p as usize] = 0;
            continue;
        }
        let mut shadowed = false;
        if params.shadows {
            for (s, sp) in spheres.iter().enumerate() {
                if s as i64 + 1 == best {
                    continue;
                }
                let ox = sp.center[0] - best_center[0];
                let oy = sp.center[1] - best_center[1];
                let oz = sp.center[2] - best_center[2];
                let b2 = (lx * ox + ly * oy) + lz * oz;
                let c22 = ((ox * ox + oy * oy) + oz * oz) - sp.r2;
                let disc2 = b2 * b2 - c22;
                if disc2 < 0.0 {
                    continue;
                }
                if b2 <= 0.0 {
                    continue;
                }
                shadowed = true;
                break;
            }
        }
        let shade_i = (best_shade * 31.0) as i64;
        let mut val = best * 32 + shade_i;
        if shadowed {
            val >>= 1;
        }
        image[p as usize] = val;
    }
    image
}

/// Builds the ray-tracing program. Pixels are strided across logical
/// processors (`p = lpid; p += nlp`), the paper's per-pixel
/// parallelisation; on a one-slot machine the single thread renders
/// everything, which is the sequential version of §3.1.
///
/// # Panics
///
/// Panics if a dimension or the sphere count is zero, or if the image
/// would overrun the data layout.
pub fn raytrace_program(params: &RayTraceParams) -> Program {
    assert!(params.width > 0 && params.height > 0, "image must be non-empty");
    assert!(params.spheres > 0, "scene must contain spheres");
    assert!(
        SCENE_BASE + 4 * params.spheres as u64 <= IMAGE_BASE,
        "too many spheres for the data layout"
    );
    let spheres = scene(params);
    let [lx, ly, lz] = light_dir();
    let w2 = params.width / 2;
    let h2 = params.height / 2;
    let inv = 2.0 / params.width as f64;
    let npix = params.pixels();
    let ns = params.spheres;
    let scene_words: String = spheres
        .iter()
        .map(|s| {
            format!(".float {:?}, {:?}, {:?}, {:?}\n", s.center[0], s.center[1], s.center[2], s.r2)
        })
        .collect();

    let shadow_section = if params.shadows {
        format!(
            "
    ; ---- shadow feeler from the hit sphere's center toward the light
    lif  f27, #{lx:?}
    lif  f28, #{ly:?}
    lif  f29, #{lz:?}
    sf   f27, 6(r25)            ; the shadow call spills L too
    sf   f28, 7(r25)
    sf   f29, 8(r25)
    li   r16, #{SCENE_BASE}
    li   r17, #0
    li   r18, #0
shd_loop:
    slt  r12, r17, #{ns}
    beq  r12, #0, shd_done
    add  r19, r17, #1
    beq  r19, r9, shd_next      ; skip the sphere we hit
    lf   f27, 6(r25)            ; reload L
    lf   f28, 7(r25)
    lf   f29, 8(r25)
    lf   f4, 0(r16)
    lf   f5, 1(r16)
    lf   f6, 2(r16)
    lf   f7, 3(r16)
    fsub f4, f4, f24            ; oc = center - hit center
    fsub f5, f5, f25
    fsub f6, f6, f26
    fmul f8, f27, f4            ; b2 = L . oc
    fmul f9, f28, f5
    fadd f8, f8, f9
    fmul f9, f29, f6
    fadd f8, f8, f9
    fmul f9, f4, f4             ; c22 = oc . oc - r2
    fmul f10, f5, f5
    fadd f9, f9, f10
    fmul f10, f6, f6
    fadd f9, f9, f10
    fsub f9, f9, f7
    fmul f10, f8, f8            ; disc2 = b2^2 - c22
    fsub f10, f10, f9
    fcmplt r12, f10, f30
    bne  r12, #0, shd_next
    fcmple r12, f8, f30
    bne  r12, #0, shd_next
    li   r18, #1
    j    shd_done
shd_next:
    add  r16, r16, #4
    add  r17, r17, #1
    j    shd_loop
shd_done:
"
        )
    } else {
        "    li   r18, #0\n".to_owned()
    };

    let src = format!(
        "
.data
.org {SCENE_BASE}
scene:
{scene_words}
.text
.entry main
main:
    fastfork
    lpid r1
    nlp  r2
    li   r24, #{STACK_BASE}
    mul  r25, r1, #16
    add  r25, r25, r24          ; per-thread spill frame
    mv   r3, r1                 ; p = lpid
pixel_loop:
    slt  r4, r3, #{npix}
    beq  r4, #0, all_done
    ; ---- primary ray through pixel (i, j)
    li   r5, #{width}
    div  r6, r3, r5             ; j
    rem  r7, r3, r5             ; i
    sub  r8, r7, #{w2}
    cvtif f0, r8
    lif  f20, #{inv:?}
    fmul f0, f0, f20            ; dx
    sub  r8, r6, #{h2}
    cvtif f1, r8
    fmul f1, f1, f20            ; dy  (dz = -1)
    fmul f3, f0, f0
    fmul f4, f1, f1
    fadd f3, f3, f4
    lif  f4, #1.0
    fadd f3, f3, f4             ; a = dx^2 + dy^2 + 1
    lif  f30, #0.0
    sf   f0, 0(r25)             ; spill the ray across the intersect
    sf   f1, 1(r25)             ; calls, as the compiled code does
    sf   f3, 2(r25)
    li   r9, #0                 ; best sphere (id + 1)
    lif  f16, #1e30             ; best squared center distance
    sf   f16, 3(r25)
    lif  f17, #0.0              ; best shade
    li   r10, #{SCENE_BASE}
    li   r11, #0
sph_loop:
    slt  r12, r11, #{ns}
    beq  r12, #0, sph_done
    lf   f0, 0(r25)             ; reload the spilled ray state
    lf   f1, 1(r25)
    lf   f3, 2(r25)
    lf   f4, 0(r10)             ; cx
    lf   f5, 1(r10)             ; cy
    lf   f6, 2(r10)             ; cz
    lf   f7, 3(r10)             ; r^2
    fmul f8, f0, f4             ; b = dx*cx + dy*cy - cz
    fmul f9, f1, f5
    fadd f8, f8, f9
    fsub f8, f8, f6
    sf   f8, 4(r25)             ; spill b (register-starved FP file)
    fmul f9, f4, f4             ; c2 = |C|^2 - r^2
    fmul f10, f5, f5
    fadd f9, f9, f10
    fmul f10, f6, f6
    fadd f9, f9, f10
    fsub f9, f9, f7
    sf   f9, 5(r25)             ; spill c2
    lf   f8, 4(r25)             ; reload b
    fmul f10, f8, f8            ; b^2
    lf   f9, 5(r25)             ; reload c2
    fmul f11, f3, f9
    fsub f11, f10, f11          ; disc = b^2 - a*c2
    fcmplt r12, f11, f30
    bne  r12, #0, sph_next      ; disc < 0: miss
    fcmple r12, f8, f30
    bne  r12, #0, sph_next      ; b <= 0: behind the camera
    lf   f16, 3(r25)            ; reload the best squared distance
    fcmplt r12, f9, f16
    beq  r12, #0, sph_next      ; not nearer than the best hit
    sf   f9, 3(r25)
    add  r9, r11, #1
    fdiv f17, f11, f10          ; shade = disc / b^2
    fmov f24, f4                ; remember the hit center
    fmov f25, f5
    fmov f26, f6
sph_next:
    add  r10, r10, #4
    add  r11, r11, #1
    j    sph_loop
sph_done:
    beq  r9, #0, store_bg
{shadow_section}
    lif  f12, #31.0
    fmul f13, f17, f12
    cvtfi r13, f13
    mul  r14, r9, #32
    add  r14, r14, r13
    beq  r18, #0, unshadowed
    sra  r14, r14, #1
unshadowed:
    li   r15, #{IMAGE_BASE}
    add  r15, r15, r3
    sw   r14, 0(r15)
    j    pixel_next
store_bg:
    li   r15, #{IMAGE_BASE}
    add  r15, r15, r3
    sw   r0, 0(r15)
pixel_next:
    add  r3, r3, r2             ; p += nlp
    j    pixel_loop
all_done:
    halt
",
        width = params.width,
    );
    hirata_asm::assemble(&src).expect("ray tracer assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirata_isa::FuConfig;
    use hirata_sim::{Config, Machine};

    fn image_from(m: &Machine, params: &RayTraceParams) -> Vec<i64> {
        (0..params.pixels()).map(|p| m.memory().read_i64(IMAGE_BASE + p as u64).unwrap()).collect()
    }

    #[test]
    fn scene_is_deterministic_and_sane() {
        let params = RayTraceParams::default();
        let a = scene(&params);
        let b = scene(&params);
        assert_eq!(a, b);
        for s in &a {
            let d2 =
                s.center[0] * s.center[0] + s.center[1] * s.center[1] + s.center[2] * s.center[2];
            assert!(d2 > s.r2, "camera must be outside every sphere");
            assert!(s.center[2] < 0.0, "spheres sit in front of the camera");
        }
    }

    #[test]
    fn reference_image_has_hits_shadows_and_background() {
        let params = RayTraceParams { width: 24, height: 24, ..RayTraceParams::default() };
        let img = reference_image(&params);
        assert!(img.contains(&0), "some background expected");
        assert!(img.iter().any(|&v| v > 0), "some hits expected");
        let no_shadow = reference_image(&RayTraceParams { shadows: false, ..params });
        assert_ne!(img, no_shadow, "shadows must change the image");
    }

    #[test]
    fn simulated_image_matches_reference_exactly() {
        let params = RayTraceParams { width: 8, height: 8, spheres: 4, seed: 7, shadows: true };
        let prog = raytrace_program(&params);
        let mut m = Machine::new(Config::base_risc(), &prog).unwrap();
        m.run().unwrap();
        assert_eq!(image_from(&m, &params), reference_image(&params));
    }

    #[test]
    fn parallel_rendering_matches_on_every_width() {
        let params = RayTraceParams { width: 8, height: 8, spheres: 3, seed: 3, shadows: false };
        let prog = raytrace_program(&params);
        let expected = reference_image(&params);
        for slots in [2usize, 4, 8] {
            let config = Config::multithreaded(slots).with_fu(FuConfig::paper_two_ls());
            let mut m = Machine::new(config, &prog).unwrap();
            m.run().unwrap();
            assert_eq!(image_from(&m, &params), expected, "{slots} slots");
        }
    }

    #[test]
    fn more_threads_render_faster() {
        let params = RayTraceParams { width: 8, height: 8, spheres: 4, seed: 9, shadows: true };
        let prog = raytrace_program(&params);
        let mut last = u64::MAX;
        for slots in [1usize, 2, 4] {
            let mut m = Machine::new(Config::multithreaded(slots), &prog).unwrap();
            m.run().unwrap();
            let cycles = m.stats().cycles;
            assert!(cycles < last, "{slots} slots: {cycles} !< {last}");
            last = cycles;
        }
    }
}
