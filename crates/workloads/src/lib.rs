//! Workload programs for the Hirata 1992 reproduction, written in the
//! reproduced ISA, plus bit-exact pure-Rust reference implementations
//! used to validate the simulator's architectural results.
//!
//! * [`raytrace`] — the §3.2 application: a small ray tracer
//!   parallelised per pixel (Table 2, Table 3, and the §3.2 prose
//!   experiments);
//! * [`livermore`] — Livermore Kernel 1 (§3.4, Table 4), with the
//!   §2.3.2 static scheduling strategies applied to its body;
//! * [`linked_list`] — the Figure 6 `while` loop over a linked list,
//!   sequential and in the §2.3.3 eager-execution form (Table 5,
//!   Figure 7);
//! * [`radiosity`] — the paper's other motivating graphics algorithm
//!   (§1): Jacobi gathering radiosity with a queue-ring barrier;
//! * [`sort`] — parallel odd-even transposition sort, the suite's
//!   integer-dominated workload;
//! * [`synthetic`] — parameterised instruction mixes and DSM pointer
//!   chases for the concurrent-multithreading extension (§2.1.3).
//!
//! Every generator returns a validated [`hirata_isa::Program`]; every
//! module exposes a `reference` function computing the same results in
//! Rust so tests can compare final memory images exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod linked_list;
pub mod livermore;
pub mod radiosity;
pub mod raytrace;
pub mod sort;
pub mod synthetic;
