//! Livermore Kernel 3 — inner product:
//!
//! ```fortran
//! Q = 0.0
//! DO 3 K = 1, N
//! 3   Q = Q + Z(K)*X(K)
//! ```
//!
//! The parallel version demonstrates §2.3.1's register-transfer-level
//! communication: each logical processor accumulates a strided partial
//! sum, then the partials are **reduced through the queue-register
//! ring** — logical processor 0 seeds its partial into the ring, every
//! successor adds its own and forwards, and the total arrives back at
//! processor 0, which stores it. No memory-based synchronisation is
//! needed at all.

use hirata_isa::Program;

/// Word address of the `X` input array.
pub const K3_X_BASE: u64 = 1000;
/// Word address of the `Z` input array.
pub const K3_Z_BASE: u64 = 2500;
/// Word address where the final inner product is stored.
pub const K3_RESULT: u64 = 600;
/// Largest supported `n`.
pub const K3_MAX_N: usize = 1400;

/// Input arrays `(x, z)`, deterministic and smooth.
pub fn kernel3_inputs(n: usize) -> (Vec<f64>, Vec<f64>) {
    let x: Vec<f64> = (0..n).map(|i| 0.5 + (i % 7) as f64 * 0.125).collect();
    let z: Vec<f64> = (0..n).map(|i| 1.0 - (i % 5) as f64 * 0.0625).collect();
    (x, z)
}

/// Reference inner product for `slots` logical processors: the exact
/// floating-point association the machine uses — per-thread strided
/// partials in index order, then ring order `((p0+p1)+p2)+...`.
pub fn kernel3_reference(n: usize, slots: usize) -> f64 {
    let (x, z) = kernel3_inputs(n);
    let partial = |lp: usize| -> f64 {
        let mut acc = 0.0f64;
        let mut k = lp;
        while k < n {
            acc += z[k] * x[k];
            k += slots;
        }
        acc
    };
    let mut total = partial(0);
    for lp in 1..slots {
        total += partial(lp);
    }
    total
}

/// Builds the Kernel 3 program. Works on any machine width: the ring
/// reduction is written in terms of `lpid`/`nlp`.
///
/// # Panics
///
/// Panics if `n` is zero or exceeds [`K3_MAX_N`].
pub fn kernel3_program(n: usize) -> Program {
    assert!(n > 0 && n <= K3_MAX_N, "n must be in 1..={K3_MAX_N}");
    let (x, z) = kernel3_inputs(n);
    let fmt = |v: &[f64]| v.iter().map(|f| format!("{f:?}")).collect::<Vec<_>>().join(", ");
    let src = format!(
        "
.data
.org {K3_X_BASE}
xarr: .float {x}
.org {K3_Z_BASE}
zarr: .float {z}
.text
.entry main
main:
    setrot explicit
    qmap f10, f11          ; the ring carries floating partials
    fastfork
    lpid r1
    nlp  r2
    lif  f1, #0.0          ; acc
    mv   r4, r1            ; k = lpid
loop:
    slt  r5, r4, #{n}
    beq  r5, #0, reduce
    lf   f2, {K3_Z_BASE}(r4)
    lf   f3, {K3_X_BASE}(r4)
    fmul f2, f2, f3
    fadd f1, f1, f2        ; acc += z[k]*x[k]
    add  r4, r4, r2
    j    loop
reduce:
    ; Ring reduction: LP0 seeds, others add and forward, LP0 collects.
    bne  r1, #0, middle
    fmov f11, f1           ; LP0 sends its partial into the ring
    chgpri                 ; pass the turn along the ring
    fmov f4, f10           ; ...and receives the grand total
    sf   f4, {K3_RESULT}(r0)
    halt
middle:
    fadd f11, f10, f1      ; add my partial to the incoming prefix
    chgpri
    halt
",
        x = fmt(&x),
        z = fmt(&z),
    );
    hirata_asm::assemble(&src).expect("kernel 3 assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirata_sim::{Config, Machine};

    #[test]
    fn inner_product_matches_reference_on_every_width() {
        let n = 50;
        for slots in [1usize, 2, 3, 4, 8] {
            let mut m = Machine::new(Config::multithreaded(slots), &kernel3_program(n)).unwrap();
            m.run().unwrap();
            assert_eq!(
                m.memory().read_f64(K3_RESULT).unwrap(),
                kernel3_reference(n, slots),
                "{slots} slots"
            );
        }
    }

    #[test]
    fn single_slot_ring_self_delivers() {
        // With one slot the ring loops back to the same processor.
        let n = 7;
        let mut m = Machine::new(Config::multithreaded(1), &kernel3_program(n)).unwrap();
        m.run().unwrap();
        assert_eq!(m.memory().read_f64(K3_RESULT).unwrap(), kernel3_reference(n, 1));
    }

    #[test]
    fn reduction_scales() {
        let n = 256;
        let prog = kernel3_program(n);
        let cycles = |slots: usize| {
            let mut m = Machine::new(Config::multithreaded(slots), &prog).unwrap();
            m.run().unwrap().cycles
        };
        let (one, four) = (cycles(1), cycles(4));
        assert!(four * 2 < one, "4 slots should be >2x faster: {one} vs {four}");
    }

    #[test]
    #[should_panic(expected = "n must be in")]
    fn oversized_n_rejected() {
        kernel3_program(K3_MAX_N + 1);
    }
}
