//! Livermore kernels in the reproduced ISA.
//!
//! * [Kernel 1](kernel1_program) — hydro fragment (§3.4, Table 4): the
//!   paper's static-scheduling testbed; a *doall* loop with the
//!   8-cycle-per-iteration memory floor.
//! * [Kernel 3](kernel3_program) — inner product: a reduction carried
//!   *through the queue-register ring* (partial sums flow from logical
//!   processor to logical processor at register-transfer level,
//!   §2.3.1).
//! * [Kernel 5](kernel5_program) — tridiagonal elimination: a genuine
//!   *doacross* loop with iteration difference one; `x[i-1]` reaches
//!   the next iteration's logical processor through the ring exactly
//!   as Figure 5 describes.
//! * [Kernel 7](kernel7_program) — equation of state: a wide doall
//!   loop, FP- and load-heavy, run under implicit rotation.
//!
//! Every kernel has a bit-exact Rust reference; the simulator's final
//! memory image must match it word for word (same operation order, so
//! even floating-point results are identical).

mod k1;
mod k3;
mod k5;
mod k7;

pub use k1::*;
pub use k3::*;
pub use k5::*;
pub use k7::*;
