//! Livermore Kernel 7 — equation of state fragment:
//!
//! ```fortran
//! DO 7 K = 1, N
//! 7   X(K) = U(K) + R*(Z(K) + R*Y(K)) +
//!      T*(U(K+3) + R*(U(K+2) + R*U(K+1)) +
//!         T*(U(K+6) + Q*(U(K+5) + Q*U(K+4))))
//! ```
//!
//! A wide doall loop — nine loads, one store and fourteen FP
//! operations per iteration — run under implicit priority rotation
//! (no compiler control needed; contrast with Kernel 1's
//! explicit-rotation regime). Like Kernel 1 it supports the §2.3.2
//! scheduling strategies on its body.

use hirata_isa::{FReg, FpBinOp, GReg, Inst, Program, Reg};
use hirata_sched::{apply_strategy, Strategy};

/// Word address of `X` (output).
pub const K7_X_BASE: i64 = 1000;
/// Word address of `Y`.
pub const K7_Y_BASE: i64 = 2500;
/// Word address of `Z`.
pub const K7_Z_BASE: i64 = 4000;
/// Word address of `U` (length `n + 6`).
pub const K7_U_BASE: i64 = 5500;
/// Scalar `R`.
pub const K7_R: f64 = 0.375;
/// Scalar `T`.
pub const K7_T: f64 = 0.25;
/// Scalar `Q`.
pub const K7_Q: f64 = 0.125;
/// Largest supported `n`.
pub const K7_MAX_N: usize = 1400;

fn fr(n: u8) -> FReg {
    FReg(n)
}

fn bin(op: FpBinOp, fd: u8, fs: u8, ft: u8) -> Inst {
    Inst::FpBin { op, fd: fr(fd), fs: fr(fs), ft: fr(ft) }
}

fn load(fd: u8, off: i64) -> Inst {
    Inst::Load { dst: Reg::F(fr(fd)), base: GReg(4), off }
}

/// The kernel body in naive (source) order. The iteration index `k`
/// (in words) lives in `r4`; `f20..f22` hold `R`, `T`, `Q`.
pub fn kernel7_body() -> Vec<Inst> {
    use FpBinOp::{FAdd, FMul};
    vec![
        // a = u[k] + r*(z[k] + r*y[k])
        load(1, K7_Y_BASE),
        bin(FMul, 2, 20, 1), // r*y
        load(3, K7_Z_BASE),
        bin(FAdd, 2, 3, 2),  // z + r*y
        bin(FMul, 2, 20, 2), // r*(...)
        load(4, K7_U_BASE),
        bin(FAdd, 2, 4, 2), // a
        // b = u[k+3] + r*(u[k+2] + r*u[k+1])
        load(5, K7_U_BASE + 1),
        bin(FMul, 6, 20, 5),
        load(7, K7_U_BASE + 2),
        bin(FAdd, 6, 7, 6),
        bin(FMul, 6, 20, 6),
        load(8, K7_U_BASE + 3),
        bin(FAdd, 6, 8, 6), // b
        // c = u[k+6] + q*(u[k+5] + q*u[k+4])
        load(9, K7_U_BASE + 4),
        bin(FMul, 10, 22, 9),
        load(11, K7_U_BASE + 5),
        bin(FAdd, 10, 11, 10),
        bin(FMul, 10, 22, 10),
        load(12, K7_U_BASE + 6),
        bin(FAdd, 10, 12, 10), // c
        // x = a + t*(b + t*c)
        bin(FMul, 10, 21, 10), // t*c
        bin(FAdd, 6, 6, 10),   // b + t*c
        bin(FMul, 6, 21, 6),   // t*(...)
        bin(FAdd, 2, 2, 6),    // x
        Inst::Store { src: Reg::F(fr(2)), base: GReg(4), off: K7_X_BASE, gated: false },
    ]
}

/// Inputs `(y, z, u)`; `u` has `n + 6` elements.
pub fn kernel7_inputs(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let y: Vec<f64> = (0..n).map(|i| 0.25 + (i % 11) as f64 * 0.03125).collect();
    let z: Vec<f64> = (0..n).map(|i| 1.5 - (i % 6) as f64 * 0.0625).collect();
    let u: Vec<f64> = (0..n + 6).map(|i| 0.75 + (i % 13) as f64 * 0.015625).collect();
    (y, z, u)
}

/// Reference output, same operation order as [`kernel7_body`].
pub fn kernel7_reference(n: usize) -> Vec<f64> {
    let (y, z, u) = kernel7_inputs(n);
    (0..n)
        .map(|k| {
            let a = u[k] + K7_R * (z[k] + K7_R * y[k]);
            let b = u[k + 3] + K7_R * (u[k + 2] + K7_R * u[k + 1]);
            let c = u[k + 6] + K7_Q * (u[k + 5] + K7_Q * u[k + 4]);
            a + K7_T * (b + K7_T * c)
        })
        .collect()
}

/// Builds the Kernel 7 program with the body reordered by `strategy`.
///
/// # Panics
///
/// Panics if `n` is zero or exceeds [`K7_MAX_N`].
pub fn kernel7_program(n: usize, strategy: Strategy) -> Program {
    assert!(n > 0 && n <= K7_MAX_N, "n must be in 1..={K7_MAX_N}");
    let body = apply_strategy(&kernel7_body(), strategy);
    let body_text: String = body.iter().map(|i| format!("    {i}\n")).collect();
    let (y, z, u) = kernel7_inputs(n);
    let fmt = |v: &[f64]| v.iter().map(|f| format!("{f:?}")).collect::<Vec<_>>().join(", ");
    let src = format!(
        "
.data
.org 500
consts: .float {r:?}, {t:?}, {q:?}
.org {K7_Y_BASE}
yarr: .float {y}
.org {K7_Z_BASE}
zarr: .float {z}
.org {K7_U_BASE}
uarr: .float {u}
.text
.entry main
main:
    lf   f20, 500(r0)
    lf   f21, 501(r0)
    lf   f22, 502(r0)
    fastfork
    lpid r1
    nlp  r2
    mv   r4, r1
loop:
    slt  r5, r4, #{n}
    beq  r5, #0, done
{body_text}    add  r4, r4, r2
    j    loop
done:
    halt
",
        r = K7_R,
        t = K7_T,
        q = K7_Q,
        y = fmt(&y),
        z = fmt(&z),
        u = fmt(&u),
    );
    hirata_asm::assemble(&src).expect("kernel 7 assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirata_sim::{Config, Machine};

    fn x_array(m: &Machine, n: usize) -> Vec<f64> {
        (0..n).map(|k| m.memory().read_f64(K7_X_BASE as u64 + k as u64).unwrap()).collect()
    }

    #[test]
    fn body_mix_matches_the_kernel() {
        let body = kernel7_body();
        assert_eq!(body.iter().filter(|i| matches!(i, Inst::Load { .. })).count(), 9);
        assert_eq!(body.iter().filter(|i| matches!(i, Inst::Store { .. })).count(), 1);
        assert_eq!(body.iter().filter(|i| matches!(i, Inst::FpBin { .. })).count(), 16);
    }

    #[test]
    fn matches_reference_across_strategies_and_widths() {
        let n = 25;
        let expected = kernel7_reference(n);
        for strategy in [Strategy::None, Strategy::ListA, Strategy::ReservationB { threads: 4 }] {
            for slots in [1usize, 4] {
                let mut m =
                    Machine::new(Config::multithreaded(slots), &kernel7_program(n, strategy))
                        .unwrap();
                m.run().unwrap();
                assert_eq!(x_array(&m, n), expected, "{strategy:?}, {slots} slots");
            }
        }
    }

    #[test]
    fn ten_memory_ops_set_a_twenty_cycle_floor() {
        // 9 loads + 1 store at 2-cycle issue latency on one L/S unit:
        // at least 20 cycles per iteration no matter how many slots.
        let n = 128;
        let prog = kernel7_program(n, Strategy::ListA);
        let mut m = Machine::new(Config::multithreaded(8), &prog).unwrap();
        m.run().unwrap();
        let per_iter = m.stats().cycles as f64 / n as f64;
        assert!(per_iter >= 20.0, "memory floor: {per_iter}");
        assert!(per_iter < 27.0, "8 slots should approach the floor: {per_iter}");
    }

    #[test]
    fn scheduling_helps_the_single_thread() {
        let n = 64;
        let cycles = |s: Strategy| {
            let mut m = Machine::new(Config::multithreaded(1), &kernel7_program(n, s)).unwrap();
            m.run().unwrap().cycles
        };
        assert!(cycles(Strategy::ListA) < cycles(Strategy::None));
    }
}
