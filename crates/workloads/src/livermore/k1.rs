//! Livermore Kernel 1 (§3.4, Table 4):
//!
//! ```fortran
//! DO 1 K = 1, N
//! 1   X(K) = Q + Y(K)*(R*Z(K+10) + T*Z(K+11))
//! ```
//!
//! The kernel body is expressed as a straight-line [`Inst`] block so
//! the §2.3.2 schedulers can reorder it; the surrounding driver forks
//! one thread per slot, strides iterations by `nlp`, and acknowledges
//! each iteration with `chgpri` in explicit-rotation mode — the
//! compiler-controlled loop regime strategy B is designed for.
//!
//! The object code contains three loads and one store per iteration,
//! so on one load/store unit with a two-cycle issue latency at least
//! `(3+1) x 2 = 8` cycles are needed per iteration — the saturation
//! floor the paper derives for Table 4.

use hirata_isa::{FReg, GReg, Inst, Program, Reg};
use hirata_sched::{apply_strategy, Strategy};

/// Word address of `X` in data memory.
pub const X_BASE: i64 = 1000;
/// Word address of `Y` in data memory.
pub const Y_BASE: i64 = 2000;
/// Word address of `Z` in data memory.
pub const Z_BASE: i64 = 3000;

/// The kernel's scalar constants.
pub const Q: f64 = 0.5;
/// Multiplier applied to `Z(K+10)`.
pub const R: f64 = 1.25;
/// Multiplier applied to `Z(K+11)`.
pub const T: f64 = -0.75;

/// Largest supported `n` (keeps the arrays disjoint).
pub const MAX_N: usize = 900;

fn fr(n: u8) -> FReg {
    FReg(n)
}

/// The loop body as written by a naive compiler: each operand loaded
/// immediately before use (Table 4's "non-optimized" code). The
/// iteration index `k` (in words) lives in `r4`; `f20..f22` hold
/// `R`, `T`, `Q`.
pub fn kernel1_body() -> Vec<Inst> {
    let k = GReg(4);
    vec![
        Inst::Load { dst: Reg::F(fr(1)), base: k, off: Z_BASE + 10 },
        Inst::FpBin { op: hirata_isa::FpBinOp::FMul, fd: fr(4), fs: fr(20), ft: fr(1) },
        Inst::Load { dst: Reg::F(fr(2)), base: k, off: Z_BASE + 11 },
        Inst::FpBin { op: hirata_isa::FpBinOp::FMul, fd: fr(5), fs: fr(21), ft: fr(2) },
        Inst::FpBin { op: hirata_isa::FpBinOp::FAdd, fd: fr(4), fs: fr(4), ft: fr(5) },
        Inst::Load { dst: Reg::F(fr(3)), base: k, off: Y_BASE },
        Inst::FpBin { op: hirata_isa::FpBinOp::FMul, fd: fr(4), fs: fr(3), ft: fr(4) },
        Inst::FpBin { op: hirata_isa::FpBinOp::FAdd, fd: fr(4), fs: fr(22), ft: fr(4) },
        Inst::Store { src: Reg::F(fr(4)), base: k, off: X_BASE, gated: false },
    ]
}

/// The input arrays: `(y, z)` with `z` long enough for the `K+11`
/// accesses. Deterministic, smooth data.
pub fn kernel1_inputs(n: usize) -> (Vec<f64>, Vec<f64>) {
    let y: Vec<f64> = (0..n).map(|i| 0.01 * i as f64 - 2.0).collect();
    let z: Vec<f64> = (0..n + 11).map(|i| 1.0 / (1.0 + i as f64)).collect();
    (y, z)
}

/// Reference result: the `X` array a correct execution must produce.
pub fn kernel1_reference(n: usize) -> Vec<f64> {
    let (y, z) = kernel1_inputs(n);
    (0..n).map(|k| Q + y[k] * (R * z[k + 10] + T * z[k + 11])).collect()
}

/// Builds the complete Kernel 1 program for `n` iterations with the
/// body reordered by `strategy`.
///
/// # Panics
///
/// Panics if `n` is zero or exceeds [`MAX_N`] (the fixed data layout),
/// or on an internal assembly error (a bug, not an input condition).
pub fn kernel1_program(n: usize, strategy: Strategy) -> Program {
    assert!(n > 0 && n <= MAX_N, "n must be in 1..={MAX_N}");
    let body = apply_strategy(&kernel1_body(), strategy);
    let body_text: String = body.iter().map(|i| format!("    {i}\n")).collect();
    let (y, z) = kernel1_inputs(n);
    let fmt = |v: &[f64]| v.iter().map(|x| format!("{x:?}")).collect::<Vec<_>>().join(", ");
    let src = format!(
        "
.data
.org 500
consts: .float {R:?}, {T:?}, {Q:?}
.org {Y_BASE}
yarr: .float {y}
.org {Z_BASE}
zarr: .float {z}
.text
.entry main
main:
    lf   f20, 500(r0)
    lf   f21, 501(r0)
    lf   f22, 502(r0)
    setrot explicit
    fastfork
    lpid r1
    nlp  r2
    mv   r4, r1
loop:
    slt  r5, r4, #{n}
    beq  r5, #0, done
{body_text}    chgpri
    add  r4, r4, r2
    j    loop
done:
    halt
",
        y = fmt(&y),
        z = fmt(&z),
    );
    hirata_asm::assemble(&src).expect("kernel 1 program assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirata_sim::{Config, Machine};

    fn x_array(m: &Machine, n: usize) -> Vec<f64> {
        (0..n).map(|k| m.memory().read_f64(X_BASE as u64 + k as u64).unwrap()).collect()
    }

    #[test]
    fn body_has_the_papers_memory_op_count() {
        let body = kernel1_body();
        let mems = body.iter().filter(|i| i.is_mem()).count();
        assert_eq!(mems, 4, "three loads and one store (§3.4)");
        assert_eq!(body.len(), 9);
    }

    #[test]
    fn matches_reference_on_base_risc() {
        let n = 40;
        let prog = kernel1_program(n, Strategy::None);
        let mut m = Machine::new(Config::base_risc(), &prog).unwrap();
        m.run().unwrap();
        assert_eq!(x_array(&m, n), kernel1_reference(n));
    }

    #[test]
    fn every_strategy_and_width_gives_identical_results() {
        let n = 23; // deliberately not a multiple of the slot counts
        let reference = kernel1_reference(n);
        for strategy in [Strategy::None, Strategy::ListA, Strategy::ReservationB { threads: 4 }] {
            let prog = kernel1_program(n, strategy);
            for slots in [1usize, 2, 4, 8] {
                let mut m = Machine::new(Config::multithreaded(slots), &prog).unwrap();
                m.run().unwrap();
                assert_eq!(x_array(&m, n), reference, "strategy {strategy:?}, {slots} slots");
            }
        }
    }

    #[test]
    fn strategy_a_shortens_single_thread_iterations() {
        let n = 64;
        let naive = {
            let mut m = Machine::new(Config::multithreaded(1), &kernel1_program(n, Strategy::None))
                .unwrap();
            m.run().unwrap();
            m.stats().cycles
        };
        let list = {
            let mut m =
                Machine::new(Config::multithreaded(1), &kernel1_program(n, Strategy::ListA))
                    .unwrap();
            m.run().unwrap();
            m.stats().cycles
        };
        assert!(list < naive, "strategy A must beat non-optimized code: {list} vs {naive}");
    }

    #[test]
    fn eight_slot_throughput_approaches_the_eight_cycle_floor() {
        let n = 256;
        let prog = kernel1_program(n, Strategy::ReservationB { threads: 8 });
        let mut m = Machine::new(Config::multithreaded(8), &prog).unwrap();
        m.run().unwrap();
        let per_iter = m.stats().cycles as f64 / n as f64;
        assert!(per_iter >= 8.0, "the 4-memory-op floor is 8 cycles/iteration: {per_iter}");
        assert!(per_iter < 13.0, "8 slots should come close to the floor: {per_iter}");
    }

    #[test]
    #[should_panic(expected = "n must be in")]
    fn zero_iterations_rejected() {
        kernel1_program(0, Strategy::None);
    }
}
