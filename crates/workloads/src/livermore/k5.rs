//! Livermore Kernel 5 — tridiagonal elimination, below diagonal:
//!
//! ```fortran
//! DO 5 I = 2, N
//! 5   X(I) = Z(I) * (Y(I) - X(I-1))
//! ```
//!
//! A genuine *doacross* loop with iteration difference one — the case
//! §2.3.1 designs the queue registers for (Figure 5): iteration `i`
//! runs on logical processor `(i-1) mod S` and the freshly computed
//! `x[i]` travels to the successor through the ring, never through
//! memory. Vectorising compilers cannot touch this loop; the
//! multithreaded machine pipelines it across logical processors.

use hirata_isa::Program;

/// Word address of `X` (`x[0]` is the seed value).
pub const K5_X_BASE: u64 = 1000;
/// Word address of `Y`.
pub const K5_Y_BASE: u64 = 2500;
/// Word address of `Z`.
pub const K5_Z_BASE: u64 = 4000;
/// Largest supported `n`.
pub const K5_MAX_N: usize = 1400;

/// Inputs: `(x0, y, z)` with `y`/`z` indexed `0..=n`.
pub fn kernel5_inputs(n: usize) -> (f64, Vec<f64>, Vec<f64>) {
    let y: Vec<f64> = (0..=n).map(|i| 1.0 + (i % 9) as f64 * 0.125).collect();
    let z: Vec<f64> = (0..=n).map(|i| 0.5 + (i % 4) as f64 * 0.0625).collect();
    (0.25, y, z)
}

/// Reference recurrence: the `x[1..=n]` a correct execution stores.
pub fn kernel5_reference(n: usize) -> Vec<f64> {
    let (x0, y, z) = kernel5_inputs(n);
    let mut x = vec![0.0f64; n + 1];
    x[0] = x0;
    for i in 1..=n {
        x[i] = z[i] * (y[i] - x[i - 1]);
    }
    x
}

/// Builds the Kernel 5 doacross program: iteration `i` on logical
/// processor `(i-1) mod S`, the recurrence value flowing through the
/// queue-register ring.
///
/// # Panics
///
/// Panics if `n` is zero or exceeds [`K5_MAX_N`].
pub fn kernel5_program(n: usize) -> Program {
    assert!(n > 0 && n <= K5_MAX_N, "n must be in 1..={K5_MAX_N}");
    let (x0, y, z) = kernel5_inputs(n);
    let fmt = |v: &[f64]| v.iter().map(|f| format!("{f:?}")).collect::<Vec<_>>().join(", ");
    let src = format!(
        "
.data
.org {K5_X_BASE}
xarr: .float {x0:?}
.org {K5_Y_BASE}
yarr: .float {y}
.org {K5_Z_BASE}
zarr: .float {z}
.text
.entry main
main:
    qmap f10, f11
    fastfork
    lpid r1
    nlp  r2
    ; The LAST logical processor seeds the ring with x[0]: its write
    ; link is LP0's read link, and LP0 executes iteration 1.
    sub  r7, r2, #1
    bne  r1, r7, noseed
    lf   f9, {K5_X_BASE}(r0)
    fmov f11, f9
noseed:
    ; iterations handled by this LP: ceil((n - lpid) / nlp)
    li   r3, #{n}
    sub  r4, r3, r1
    add  r4, r4, r2
    sub  r4, r4, #1
    div  r5, r4, r2
    beq  r5, #0, done      ; no work for this LP (n < S)
    add  r6, r1, #1        ; i = lpid + 1
body:
    lf   f2, {K5_Z_BASE}(r6)   ; prefetch z[i], y[i] before x[i-1]
    lf   f3, {K5_Y_BASE}(r6)   ; arrives — iterations start eagerly
    fsub f3, f3, f10       ; dequeue x[i-1] straight into the subtract
    fmul f2, f2, f3        ; x[i] = z[i] * (y[i] - x[i-1])
    fmov f11, f2           ; forward x[i] first: the successor is waiting
    sf   f2, {K5_X_BASE}(r6)
    sub  r5, r5, #1
    beq  r5, #0, done
    add  r6, r6, r2
    j    body
done:
    halt
",
        y = fmt(&y),
        z = fmt(&z),
    );
    hirata_asm::assemble(&src).expect("kernel 5 assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirata_sim::{Config, Machine};

    fn x_array(m: &Machine, n: usize) -> Vec<f64> {
        (0..=n).map(|i| m.memory().read_f64(K5_X_BASE + i as u64).unwrap()).collect()
    }

    #[test]
    fn recurrence_matches_reference_on_every_width() {
        let n = 33;
        let expected = kernel5_reference(n);
        for slots in [1usize, 2, 3, 4, 8] {
            let mut m = Machine::new(Config::multithreaded(slots), &kernel5_program(n)).unwrap();
            m.run().unwrap();
            assert_eq!(x_array(&m, n), expected, "{slots} slots");
        }
    }

    #[test]
    fn more_slots_than_iterations() {
        let n = 3;
        let mut m = Machine::new(Config::multithreaded(8), &kernel5_program(n)).unwrap();
        m.run().unwrap();
        assert_eq!(x_array(&m, n), kernel5_reference(n));
    }

    #[test]
    fn doacross_pipelining_beats_one_slot() {
        // The recurrence serialises the multiplies, but loads, stores
        // and loop overhead of different iterations overlap across
        // logical processors.
        let n = 200;
        let prog = kernel5_program(n);
        let cycles = |slots: usize| {
            let mut m = Machine::new(Config::multithreaded(slots), &prog).unwrap();
            m.run().unwrap().cycles
        };
        let (one, four) = (cycles(1), cycles(4));
        assert!((four as f64) < 0.8 * one as f64, "doacross should pipeline: {one} vs {four}");
    }

    #[test]
    fn baseline_risc_runs_it_too() {
        let n = 12;
        let mut m = Machine::new(Config::base_risc(), &kernel5_program(n)).unwrap();
        m.run().unwrap();
        assert_eq!(x_array(&m, n), kernel5_reference(n));
    }
}
