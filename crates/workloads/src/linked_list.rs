//! The Figure 6 pointer-chasing `while` loop and its §2.3.3 eager
//! parallel execution (Table 5, Figure 7).
//!
//! ```c
//! ptr = header;
//! while (ptr != NULL) {
//!     tmp = a * (ptr->point->x) + b * (ptr->point->y) + c;
//!     if (tmp < 0) break;
//!     ptr = ptr->next;
//! }
//! ```
//!
//! In the eager form each logical processor executes one iteration,
//! receives `ptr` through its incoming queue register, forwards
//! `ptr->next` to its successor *before* evaluating the loop
//! condition (iterations start that might never execute sequentially,
//! hence "eager"), acknowledges the iteration with `chgpri`, and on
//! exit kills the speculative successors with `killothers` — valid
//! only at the highest priority, which is exactly what preserves the
//! sequential semantics.

use hirata_isa::Program;

/// Word address of the `a`, `b`, `c` constants.
const CONST_BASE: u64 = 500;
/// Word address of the global `tmp` result slot.
pub const RESULT_ADDR: u64 = 600;
/// Word address of the header pointer.
const HEAD_ADDR: u64 = 601;
/// Word address where the sequential version stores its iteration
/// count.
pub const COUNT_ADDR: u64 = 602;
/// Word address of the first list node.
const NODE_BASE: u64 = 1000;
/// Word address of the first point record.
const POINT_BASE: u64 = 5000;

/// Loop coefficients (`a`, `b`, `c` in Figure 6).
const A: f64 = 0.75;
const B: f64 = 0.5;
const C: f64 = 0.1;

/// Shape of the traversal: list length and the node (if any) whose
/// `tmp` goes negative, triggering the `break`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListShape {
    /// Number of nodes in the list.
    pub nodes: usize,
    /// Node index whose `tmp` is negative (`None` traverses to NULL).
    pub break_at: Option<usize>,
}

impl ListShape {
    /// Number of loop iterations the sequential program executes.
    pub fn iterations(&self) -> usize {
        match self.break_at {
            Some(k) => k + 1,
            None => self.nodes,
        }
    }
}

/// Point data so that `tmp >= 1` everywhere except the breaking node,
/// where `tmp = -1`.
fn points(shape: ListShape) -> Vec<(f64, f64)> {
    (0..shape.nodes)
        .map(|i| {
            let want = if shape.break_at == Some(i) { -1.0 } else { 1.0 };
            let y = 0.1 * i as f64;
            let x = (want - C - B * y) / A;
            (x, y)
        })
        .collect()
}

/// Reference execution: `(iterations, tmp-if-break)`.
pub fn reference(shape: ListShape) -> (usize, Option<f64>) {
    let pts = points(shape);
    for (i, &(x, y)) in pts.iter().enumerate() {
        let tmp = A * x + B * y + C;
        if tmp < 0.0 {
            return (i + 1, Some(tmp));
        }
    }
    (shape.nodes, None)
}

fn data_section(shape: ListShape) -> String {
    use std::fmt::Write as _;
    let pts = points(shape);
    let mut out = String::new();
    let _ = writeln!(out, ".data");
    let _ = writeln!(out, ".org {CONST_BASE}");
    let _ = writeln!(out, "consts: .float {A:?}, {B:?}, {C:?}");
    let _ = writeln!(out, ".org {HEAD_ADDR}");
    let _ = writeln!(out, "head: .word {NODE_BASE}");
    let _ = writeln!(out, ".org {NODE_BASE}");
    for i in 0..shape.nodes {
        let point = POINT_BASE + 2 * i as u64;
        let next = if i + 1 == shape.nodes { 0 } else { NODE_BASE + 2 * (i as u64 + 1) };
        let _ = writeln!(out, ".word {point}, {next}");
    }
    let _ = writeln!(out, ".org {POINT_BASE}");
    for (x, y) in pts {
        let _ = writeln!(out, ".float {x:?}, {y:?}");
    }
    out
}

/// Assembly source of the sequential Figure 6 program (see
/// [`sequential_program`]). Exposed so the canonical example file
/// under `examples/asm/` can be regenerated verbatim.
///
/// # Panics
///
/// Panics if the shape is empty or internally inconsistent.
pub fn sequential_source(shape: ListShape) -> String {
    validate(shape);
    format!(
        "
{data}
.text
.entry main
main:
    lf   f20, {CONST_BASE}(r0)
    lf   f21, {b_addr}(r0)
    lf   f22, {c_addr}(r0)
    lif  f30, #0.0
    lw   r1, {HEAD_ADDR}(r0)
    li   r5, #0
loop:
    beq  r1, #0, exit
    lw   r2, 0(r1)       ; ptr->point
    lf   f1, 0(r2)       ; x
    lf   f2, 1(r2)       ; y
    fmul f3, f20, f1
    fmul f4, f21, f2
    fadd f3, f3, f4
    fadd f3, f3, f22     ; tmp
    add  r5, r5, #1
    fcmplt r3, f3, f30
    bne  r3, #0, brk
    lw   r1, 1(r1)       ; ptr = ptr->next
    j    loop
brk:
    sf   f3, {RESULT_ADDR}(r0)
exit:
    sw   r5, {COUNT_ADDR}(r0)
    halt
",
        data = data_section(shape),
        b_addr = CONST_BASE + 1,
        c_addr = CONST_BASE + 2,
    )
}

/// The sequential Figure 6 program (run on the base RISC for the
/// Table 5 baseline). Stores the iteration count at [`COUNT_ADDR`] and
/// the breaking `tmp` (if any) at [`RESULT_ADDR`].
///
/// # Panics
///
/// Panics if the shape is empty or internally inconsistent.
pub fn sequential_program(shape: ListShape) -> Program {
    hirata_asm::assemble(&sequential_source(shape)).expect("sequential list program assembles")
}

/// Assembly source of the eager-execution program (see
/// [`eager_program`]). `examples/asm/fig6_while.s` is this text for
/// the canonical 20-node shape breaking at node 13.
///
/// # Panics
///
/// Panics if the shape is empty or internally inconsistent.
pub fn eager_source(shape: ListShape) -> String {
    validate(shape);
    format!(
        "
{data}
.text
.entry main
main:
    lf   f20, {CONST_BASE}(r0)
    lf   f21, {b_addr}(r0)
    lf   f22, {c_addr}(r0)
    lif  f30, #0.0
    setrot explicit
    qmap r10, r11
    fastfork
    lpid r1
    bne  r1, #0, recv
    lw   r20, {HEAD_ADDR}(r0)   ; logical processor 0 takes the header
    j    loop
recv:
    mv   r20, r10               ; others receive ptr from the ring
loop:
    beq  r20, #0, offend        ; ptr == NULL
    lw   r11, 1(r20)            ; forward ptr->next to the successor
    lw   r2, 0(r20)             ; (multiple versions of ptr, Figure 7)
    lf   f1, 0(r2)
    lf   f2, 1(r2)
    fmul f3, f20, f1
    fmul f4, f21, f2
    fadd f3, f3, f4
    fadd f3, f3, f22            ; tmp
    fcmplt r3, f3, f30
    bne  r3, #0, brk
    chgpri                      ; acknowledge this iteration
    mv   r20, r10               ; receive the next assigned iteration
    j    loop
brk:
    killothers                  ; waits for the highest priority
    sf   f3, {RESULT_ADDR}(r0)
    halt
offend:
    killothers
    halt
",
        data = data_section(shape),
        b_addr = CONST_BASE + 1,
        c_addr = CONST_BASE + 2,
    )
}

/// The eager-execution program (§2.3.3, Figure 7): run on a
/// multithreaded machine in explicit-rotation mode. The breaking
/// thread stores `tmp` at [`RESULT_ADDR`] after killing the others.
///
/// # Panics
///
/// Panics if the shape is empty or internally inconsistent.
pub fn eager_program(shape: ListShape) -> Program {
    hirata_asm::assemble(&eager_source(shape)).expect("eager list program assembles")
}

/// List shape of the checked-in `examples/asm/fig6_while.s`: 20 nodes
/// with `tmp` going negative at node 13, the same traversal the
/// workload tests use.
pub const FIG6_EXAMPLE_SHAPE: ListShape = ListShape { nodes: 20, break_at: Some(13) };

/// Exact text of `examples/asm/fig6_while.s`: a usage header plus
/// [`eager_source`] for [`FIG6_EXAMPLE_SHAPE`]. The example file is
/// checked in (so `hirata` can run it without building this crate)
/// and a test asserts it matches this function; regenerate with
/// `cargo run -p hirata-workloads --example gen_fig6`.
pub fn fig6_example_text() -> String {
    format!(
        "; Figure 6 eager while-loop (Hirata et al. 1992, \u{a7}2.3.3): each\n\
         ; logical processor runs one iteration of a pointer-chasing loop,\n\
         ; forwarding ptr->next through the queue ring before the loop\n\
         ; condition resolves. 20 nodes; tmp goes negative at node 13.\n\
         ;   hirata run   examples/asm/fig6_while.s --slots 4\n\
         ;   hirata trace examples/asm/fig6_while.s --slots 4 --format chrome\n\
         ; Regenerate: cargo run -p hirata-workloads --example gen_fig6\n\
         {}",
        eager_source(FIG6_EXAMPLE_SHAPE)
    )
}

fn validate(shape: ListShape) {
    assert!(shape.nodes > 0, "the list needs at least one node");
    assert!((NODE_BASE + 2 * shape.nodes as u64) <= POINT_BASE, "list too long for the layout");
    if let Some(k) = shape.break_at {
        assert!(k < shape.nodes, "break_at must name a list node");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirata_sim::{Config, Machine};

    fn run_seq(shape: ListShape) -> Machine {
        let mut m = Machine::new(Config::base_risc(), &sequential_program(shape)).unwrap();
        m.run().unwrap();
        m
    }

    fn run_eager(shape: ListShape, slots: usize) -> Machine {
        let mut m = Machine::new(Config::multithreaded(slots), &eager_program(shape)).unwrap();
        m.run().unwrap();
        m
    }

    #[test]
    fn sequential_counts_iterations_and_breaks() {
        let shape = ListShape { nodes: 10, break_at: Some(6) };
        let m = run_seq(shape);
        let (iters, tmp) = reference(shape);
        assert_eq!(iters, 7);
        assert_eq!(m.memory().read_i64(COUNT_ADDR).unwrap(), 7);
        assert_eq!(m.memory().read_f64(RESULT_ADDR).unwrap(), tmp.unwrap());
    }

    #[test]
    fn sequential_traverses_to_null_without_break() {
        let shape = ListShape { nodes: 12, break_at: None };
        let m = run_seq(shape);
        assert_eq!(m.memory().read_i64(COUNT_ADDR).unwrap(), 12);
        assert_eq!(m.memory().read_f64(RESULT_ADDR).unwrap(), 0.0);
    }

    #[test]
    fn eager_matches_sequential_break_semantics() {
        let shape = ListShape { nodes: 20, break_at: Some(13) };
        let (_, tmp) = reference(shape);
        for slots in [1usize, 2, 3, 4] {
            let m = run_eager(shape, slots);
            assert_eq!(m.memory().read_f64(RESULT_ADDR).unwrap(), tmp.unwrap(), "{slots} slots");
        }
    }

    #[test]
    fn eager_handles_null_termination() {
        let shape = ListShape { nodes: 9, break_at: None };
        for slots in [2usize, 4] {
            let m = run_eager(shape, slots);
            // No break: nothing stored, everyone killed or halted.
            assert_eq!(m.memory().read_f64(RESULT_ADDR).unwrap(), 0.0);
            assert!(m.stats().threads_killed >= 1, "{slots} slots");
        }
    }

    #[test]
    fn eager_break_kills_speculative_successors() {
        let shape = ListShape { nodes: 30, break_at: Some(5) };
        let m = run_eager(shape, 4);
        assert_eq!(m.stats().threads_killed, 3);
        let (_, tmp) = reference(shape);
        assert_eq!(m.memory().read_f64(RESULT_ADDR).unwrap(), tmp.unwrap());
    }

    #[test]
    fn eager_speeds_up_the_sequential_loop() {
        // The headline Table 5 effect: 2..4 slots cut cycles per
        // iteration; the inter-iteration pointer chase bounds it.
        let shape = ListShape { nodes: 60, break_at: Some(59) };
        let seq = run_seq(shape).stats().cycles;
        let two = run_eager(shape, 2).stats().cycles;
        let four = run_eager(shape, 4).stats().cycles;
        assert!(two < seq, "2 slots must beat sequential: {two} vs {seq}");
        assert!(four < two, "4 slots must beat 2: {four} vs {two}");
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_list_rejected() {
        sequential_program(ListShape { nodes: 0, break_at: None });
    }

    #[test]
    fn checked_in_fig6_example_is_current() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/asm/fig6_while.s");
        let on_disk = std::fs::read_to_string(path).expect("examples/asm/fig6_while.s exists");
        assert_eq!(
            on_disk,
            fig6_example_text(),
            "regenerate with: cargo run -p hirata-workloads --example gen_fig6 \
             > examples/asm/fig6_while.s"
        );
    }
}
