//! Recursive-descent parser for the kernel language.

use std::fmt;

use crate::ast::{BinOp, Expr, Stmt};
use crate::codegen;
use crate::Kernel;

/// Compilation error with the 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError {
    line: usize,
    message: String,
}

impl CompileError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        CompileError { line, message: message.into() }
    }

    /// The 1-based source line.
    pub fn line(&self) -> usize {
        self.line
    }

    /// The diagnostic text.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(f64),
    Int(i64),
    Punct(char),
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    line: usize,
}

fn lex(src: &str) -> Result<Vec<Token>, CompileError> {
    let mut out = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let line = idx + 1;
        let text = raw.split("//").next().unwrap_or("");
        let mut chars = text.char_indices().peekable();
        while let Some(&(start, c)) = chars.peek() {
            if c.is_whitespace() {
                chars.next();
                continue;
            }
            if c.is_ascii_alphabetic() || c == '_' {
                let mut end = start;
                while let Some(&(j, d)) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        end = j + d.len_utf8();
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token { tok: Tok::Ident(text[start..end].to_owned()), line });
            } else if c.is_ascii_digit()
                || (c == '.' && matches!(chars.clone().nth(1), Some((_, d)) if d.is_ascii_digit()))
            {
                let mut end = start;
                let mut is_float = false;
                while let Some(&(j, d)) = chars.peek() {
                    if d.is_ascii_digit() {
                        end = j + 1;
                        chars.next();
                    } else if d == '.' || d == 'e' || d == 'E' {
                        is_float = true;
                        end = j + 1;
                        chars.next();
                        // allow exponent sign
                        if d == 'e' || d == 'E' {
                            if let Some(&(j2, s)) = chars.peek() {
                                if s == '+' || s == '-' {
                                    end = j2 + 1;
                                    chars.next();
                                }
                            }
                        }
                    } else {
                        break;
                    }
                }
                let body = &text[start..end];
                let tok =
                    if is_float {
                        Tok::Num(body.parse().map_err(|_| {
                            CompileError::new(line, format!("invalid number `{body}`"))
                        })?)
                    } else {
                        Tok::Int(body.parse().map_err(|_| {
                            CompileError::new(line, format!("invalid integer `{body}`"))
                        })?)
                    };
                out.push(Token { tok, line });
            } else if "=;{}()[]+-*/,".contains(c) {
                chars.next();
                out.push(Token { tok: Tok::Punct(c), line });
            } else {
                return Err(CompileError::new(line, format!("unexpected character `{c}`")));
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    ivar: Option<String>,
}

impl Parser {
    fn line(&self) -> usize {
        self.toks.get(self.pos).or_else(|| self.toks.last()).map_or(1, |t| t.line)
    }

    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(self.line(), msg)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_punct(&mut self, c: char) -> Result<(), CompileError> {
        match self.next() {
            Some(Tok::Punct(p)) if p == c => Ok(()),
            other => Err(self.err(format!("expected `{c}`, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, CompileError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected a name, found {other:?}"))),
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Punct(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// `ivar` or `ivar + int` or `ivar - int` inside brackets.
    fn index(&mut self) -> Result<i64, CompileError> {
        let name = self.expect_ident()?;
        let ivar = self.ivar.as_deref().unwrap_or("k");
        if name != ivar {
            return Err(self.err(format!(
                "arrays are indexed by the induction variable `{ivar}`, found `{name}`"
            )));
        }
        let mut off = 0i64;
        if self.eat_punct('+') {
            match self.next() {
                Some(Tok::Int(v)) => off = v,
                other => return Err(self.err(format!("expected an offset, found {other:?}"))),
            }
        } else if self.eat_punct('-') {
            match self.next() {
                Some(Tok::Int(v)) => off = -v,
                other => return Err(self.err(format!("expected an offset, found {other:?}"))),
            }
        }
        Ok(off)
    }

    fn factor(&mut self) -> Result<Expr, CompileError> {
        match self.next() {
            Some(Tok::Num(v)) => Ok(Expr::Num(v)),
            Some(Tok::Int(v)) => Ok(Expr::Num(v as f64)),
            Some(Tok::Punct('-')) => Ok(Expr::Neg(Box::new(self.factor()?))),
            Some(Tok::Punct('(')) => {
                let e = self.expr()?;
                self.expect_punct(')')?;
                Ok(e)
            }
            Some(Tok::Ident(name)) if name == "abs" => {
                self.expect_punct('(')?;
                let e = self.expr()?;
                self.expect_punct(')')?;
                Ok(Expr::Abs(Box::new(e)))
            }
            Some(Tok::Ident(name)) => {
                if self.eat_punct('[') {
                    let offset = self.index()?;
                    self.expect_punct(']')?;
                    Ok(Expr::Elem { array: name, offset })
                } else {
                    Ok(Expr::Name(name))
                }
            }
            other => Err(self.err(format!("expected an expression, found {other:?}"))),
        }
    }

    fn term(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.factor()?;
        loop {
            let op = if self.eat_punct('*') {
                BinOp::Mul
            } else if self.eat_punct('/') {
                BinOp::Div
            } else {
                return Ok(e);
            };
            let rhs = self.factor()?;
            e = Expr::Bin { op, lhs: Box::new(e), rhs: Box::new(rhs) };
        }
    }

    fn expr(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.term()?;
        loop {
            let op = if self.eat_punct('+') {
                BinOp::Add
            } else if self.eat_punct('-') {
                BinOp::Sub
            } else {
                return Ok(e);
            };
            let rhs = self.term()?;
            e = Expr::Bin { op, lhs: Box::new(e), rhs: Box::new(rhs) };
        }
    }
}

/// Parses and code-generates a kernel.
pub(crate) fn parse(src: &str) -> Result<Kernel, CompileError> {
    let mut p = Parser { toks: lex(src)?, pos: 0, ivar: None };
    let mut consts: Vec<(String, f64)> = Vec::new();
    let mut arrays: Vec<(String, u64)> = Vec::new();
    let mut kernel: Option<(String, String, Vec<Stmt>)> = None;

    while let Some(tok) = p.peek().cloned() {
        match tok {
            Tok::Ident(kw) if kw == "const" => {
                p.next();
                let name = p.expect_ident()?;
                p.expect_punct('=')?;
                let value = match p.next() {
                    Some(Tok::Num(v)) => v,
                    Some(Tok::Int(v)) => v as f64,
                    Some(Tok::Punct('-')) => match p.next() {
                        Some(Tok::Num(v)) => -v,
                        Some(Tok::Int(v)) => -(v as f64),
                        other => return Err(p.err(format!("expected a number, found {other:?}"))),
                    },
                    other => return Err(p.err(format!("expected a number, found {other:?}"))),
                };
                p.expect_punct(';')?;
                if consts.iter().any(|(n, _)| *n == name) {
                    return Err(p.err(format!("duplicate const `{name}`")));
                }
                consts.push((name, value));
            }
            Tok::Ident(kw) if kw == "array" => {
                p.next();
                let name = p.expect_ident()?;
                let at = p.expect_ident()?;
                if at != "at" {
                    return Err(p.err("expected `at <address>`"));
                }
                let base = match p.next() {
                    Some(Tok::Int(v)) if v >= 0 => v as u64,
                    other => return Err(p.err(format!("expected an address, found {other:?}"))),
                };
                p.expect_punct(';')?;
                if arrays.iter().any(|(n, _)| *n == name) {
                    return Err(p.err(format!("duplicate array `{name}`")));
                }
                arrays.push((name, base));
            }
            Tok::Ident(kw) if kw == "kernel" => {
                p.next();
                if kernel.is_some() {
                    return Err(p.err("only one kernel per source"));
                }
                let name = p.expect_ident()?;
                p.expect_punct('(')?;
                let ivar = p.expect_ident()?;
                p.expect_punct(')')?;
                p.expect_punct('{')?;
                p.ivar = Some(ivar.clone());
                let mut stmts = Vec::new();
                while !p.eat_punct('}') {
                    match p.next() {
                        Some(Tok::Ident(kw)) if kw == "let" => {
                            let tname = p.expect_ident()?;
                            p.expect_punct('=')?;
                            let value = p.expr()?;
                            p.expect_punct(';')?;
                            stmts.push(Stmt::Let { name: tname, value });
                        }
                        Some(Tok::Ident(arr)) => {
                            p.expect_punct('[')?;
                            let offset = p.index()?;
                            p.expect_punct(']')?;
                            p.expect_punct('=')?;
                            let value = p.expr()?;
                            p.expect_punct(';')?;
                            stmts.push(Stmt::Store { array: arr, offset, value });
                        }
                        other => {
                            return Err(p.err(format!("expected a statement, found {other:?}")))
                        }
                    }
                }
                kernel = Some((name, ivar, stmts));
            }
            other => return Err(p.err(format!("expected a declaration, found {other:?}"))),
        }
    }

    let (name, ivar, stmts) =
        kernel.ok_or_else(|| CompileError::new(1, "source contains no kernel"))?;
    if stmts.is_empty() {
        return Err(CompileError::new(1, "kernel body is empty"));
    }
    let body = codegen::generate(&consts, &arrays, &stmts)
        .map_err(|e| CompileError::new(1, e.to_string()))?;
    Ok(Kernel { name, ivar, consts, arrays, stmts, body })
}
