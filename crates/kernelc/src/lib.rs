//! A small *doall-kernel* compiler for the Hirata 1992 processor.
//!
//! The paper leans on "the compiler" throughout §2.3 — it schedules
//! loop bodies, inserts `chgpri`, and parallelises loops by assigning
//! iterations to logical processors. This crate provides that front
//! end for the doall case: a tiny kernel language compiles to the
//! reproduced ISA, the §2.3.2 schedulers reorder the body, and the
//! emitted program strides iterations across every logical processor
//! exactly like the hand-written workloads.
//!
//! # Language
//!
//! ```text
//! // Livermore Kernel 1 in the kernel language:
//! const q = 0.5; const r = 1.25; const t = -0.75;
//! array x at 1000; array y at 2000; array z at 3000;
//! kernel hydro(k) {
//!     x[k] = q + y[k] * (r * z[k + 10] + t * z[k + 11]);
//! }
//! ```
//!
//! * `const name = <float>;` — scalar constants (preloaded once);
//! * `array name at <addr>;` — a f64 array at a fixed word address;
//! * `kernel name(<ivar>) { <stmt>* }` — one statement per line:
//!   `let tmp = expr;` or `arr[idx] = expr;`, where expressions use
//!   `+ - * /`, parentheses, `abs(e)`, `-e`, constants, temporaries,
//!   float literals, and array elements `arr[k]` / `arr[k + 3]` /
//!   `arr[k - 1]` indexed by the induction variable.
//!
//! # Examples
//!
//! ```
//! use hirata_kernelc::compile;
//!
//! let kernel = compile("
//!     const a = 2.5;
//!     array x at 1000; array y at 2000;
//!     kernel saxpy(i) { y[i] = a * x[i] + y[i]; }
//! ")?;
//! assert_eq!(kernel.name(), "saxpy");
//! # Ok::<(), hirata_kernelc::CompileError>(())
//! ```
//!
//! [`Kernel::program`] wraps the compiled body in the strided doall
//! driver; [`Kernel::reference`] evaluates the same kernel in Rust
//! with the identical operation order, so simulator results can be
//! compared bit for bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod codegen;
mod parser;

pub use ast::{BinOp, Expr, Stmt};
pub use codegen::CodegenError;
pub use parser::CompileError;

use std::collections::BTreeMap;

use hirata_isa::{Inst, Program};
use hirata_sched::{apply_strategy, Strategy};

/// A compiled kernel: declarations plus the straight-line loop body.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    pub(crate) name: String,
    pub(crate) ivar: String,
    pub(crate) consts: Vec<(String, f64)>,
    pub(crate) arrays: Vec<(String, u64)>,
    pub(crate) stmts: Vec<Stmt>,
    pub(crate) body: Vec<Inst>,
}

/// Compiles kernel-language source.
///
/// # Errors
///
/// Returns [`CompileError`] for syntax errors, unknown names, too many
/// live temporaries (the machine has a finite FP register file), or
/// duplicate declarations.
pub fn compile(src: &str) -> Result<Kernel, CompileError> {
    parser::parse(src)
}

impl Kernel {
    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The induction variable's name.
    pub fn induction_var(&self) -> &str {
        &self.ivar
    }

    /// The compiled loop body (before static scheduling).
    pub fn body(&self) -> &[Inst] {
        &self.body
    }

    /// Declared arrays as `(name, base address)` pairs.
    pub fn arrays(&self) -> &[(String, u64)] {
        &self.arrays
    }

    /// The word addresses `[lo, hi)` the kernel may touch for `n`
    /// iterations (used to size inputs).
    pub fn footprint(&self, name: &str, n: usize) -> Option<(i64, i64)> {
        self.arrays.iter().find(|(a, _)| a == name)?;
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for stmt in &self.stmts {
            stmt.for_each_elem(&mut |arr, off| {
                if arr == name {
                    lo = lo.min(off);
                    hi = hi.max(off + n as i64 - 1);
                }
            });
        }
        if lo == i64::MAX {
            None
        } else {
            Some((lo, hi + 1))
        }
    }

    /// Builds the runnable doall program: iterations `0..n` strided
    /// across every logical processor, the body reordered by
    /// `strategy`, with `inputs` as the arrays' initial contents
    /// (missing arrays start zeroed).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn program(
        &self,
        n: usize,
        inputs: &BTreeMap<String, Vec<f64>>,
        strategy: Strategy,
    ) -> Program {
        assert!(n > 0, "kernels need at least one iteration");
        let body = apply_strategy(&self.body, strategy);
        let body_text: String = body.iter().map(|i| format!("    {i}\n")).collect();
        let mut data = String::new();
        // Constants live at 500.. in declaration order.
        if !self.consts.is_empty() {
            let words =
                self.consts.iter().map(|(_, v)| format!("{v:?}")).collect::<Vec<_>>().join(", ");
            data.push_str(&format!(".org 500\nconsts: .float {words}\n"));
        }
        for (name, base) in &self.arrays {
            if let Some(values) = inputs.get(name) {
                if !values.is_empty() {
                    let words =
                        values.iter().map(|v| format!("{v:?}")).collect::<Vec<_>>().join(", ");
                    data.push_str(&format!(".org {base}\n{name}_data: .float {words}\n"));
                }
            }
        }
        let const_loads: String = (0..self.consts.len())
            .map(|i| format!("    lf   f{}, {}(r0)\n", 20 + i, 500 + i))
            .collect();
        let src = format!(
            "
.data
{data}
.text
.entry main
main:
{const_loads}    fastfork
    lpid r1
    nlp  r2
    mv   r4, r1
loop:
    slt  r5, r4, #{n}
    beq  r5, #0, done
{body_text}    add  r4, r4, r2
    j    loop
done:
    halt
"
        );
        hirata_asm::assemble(&src).expect("compiled kernel assembles")
    }

    /// Evaluates the kernel in Rust with the same operation order the
    /// generated code uses, returning the final contents of every
    /// declared array over its `n`-iteration footprint (keyed by array
    /// name, indexed from the lowest address touched... from offset 0
    /// of the array base, with the same length as the input or the
    /// footprint, whichever is larger).
    pub fn reference(
        &self,
        n: usize,
        inputs: &BTreeMap<String, Vec<f64>>,
    ) -> BTreeMap<String, Vec<f64>> {
        let consts: BTreeMap<&str, f64> =
            self.consts.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        let mut arrays: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for (name, _) in &self.arrays {
            let needed = self.footprint(name, n).map_or(0, |(_, hi)| hi.max(0) as usize);
            let mut v = inputs.get(name).cloned().unwrap_or_default();
            if v.len() < needed {
                v.resize(needed, 0.0);
            }
            arrays.insert(name.clone(), v);
        }
        for k in 0..n as i64 {
            let mut temps: BTreeMap<&str, f64> = BTreeMap::new();
            for stmt in &self.stmts {
                let value = stmt.rhs().eval(&consts, &temps, &arrays, k);
                match stmt {
                    Stmt::Let { name, .. } => {
                        temps.insert(name, value);
                    }
                    Stmt::Store { array, offset, .. } => {
                        let idx = (k + offset) as usize;
                        arrays.get_mut(array).expect("declared array")[idx] = value;
                    }
                }
            }
        }
        arrays
    }
}
