//! Kernel-language AST and its reference evaluator.

use std::collections::BTreeMap;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

/// An expression over f64 values.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Float literal.
    Num(f64),
    /// A `const` or a `let` temporary (resolved during codegen).
    Name(String),
    /// Array element `arr[k + offset]`.
    Elem {
        /// Array name.
        array: String,
        /// Constant offset added to the induction variable.
        offset: i64,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Negation `-e`.
    Neg(Box<Expr>),
    /// Absolute value `abs(e)`.
    Abs(Box<Expr>),
}

impl Expr {
    /// Evaluates with the same left-to-right, bottom-up order the code
    /// generator emits, so results match the machine bit for bit.
    pub(crate) fn eval(
        &self,
        consts: &BTreeMap<&str, f64>,
        temps: &BTreeMap<&str, f64>,
        arrays: &BTreeMap<String, Vec<f64>>,
        k: i64,
    ) -> f64 {
        match self {
            Expr::Num(v) => *v,
            Expr::Name(n) => temps
                .get(n.as_str())
                .or_else(|| consts.get(n.as_str()))
                .copied()
                .expect("names resolved at compile time"),
            Expr::Elem { array, offset } => {
                arrays.get(array).expect("declared array")[(k + offset) as usize]
            }
            Expr::Bin { op, lhs, rhs } => {
                let a = lhs.eval(consts, temps, arrays, k);
                let b = rhs.eval(consts, temps, arrays, k);
                match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                }
            }
            Expr::Neg(e) => -e.eval(consts, temps, arrays, k),
            Expr::Abs(e) => e.eval(consts, temps, arrays, k).abs(),
        }
    }

    /// Visits every array element reference.
    pub(crate) fn for_each_elem(&self, f: &mut impl FnMut(&str, i64)) {
        match self {
            Expr::Elem { array, offset } => f(array, *offset),
            Expr::Bin { lhs, rhs, .. } => {
                lhs.for_each_elem(f);
                rhs.for_each_elem(f);
            }
            Expr::Neg(e) | Expr::Abs(e) => e.for_each_elem(f),
            Expr::Num(_) | Expr::Name(_) => {}
        }
    }
}

/// A kernel-body statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let name = expr;`
    Let {
        /// Temporary name.
        name: String,
        /// Value.
        value: Expr,
    },
    /// `array[k + offset] = expr;`
    Store {
        /// Destination array.
        array: String,
        /// Offset from the induction variable.
        offset: i64,
        /// Value.
        value: Expr,
    },
}

impl Stmt {
    /// The statement's right-hand side.
    pub(crate) fn rhs(&self) -> &Expr {
        match self {
            Stmt::Let { value, .. } | Stmt::Store { value, .. } => value,
        }
    }

    /// Visits every array element reference (including the store
    /// destination).
    pub(crate) fn for_each_elem(&self, f: &mut impl FnMut(&str, i64)) {
        self.rhs().for_each_elem(f);
        if let Stmt::Store { array, offset, .. } = self {
            f(array, *offset);
        }
    }
}
