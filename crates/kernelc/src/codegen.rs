//! Code generation: kernel statements to straight-line [`Inst`]
//! blocks.
//!
//! Register convention (matching the hand-written workloads):
//!
//! * `r4` — the induction variable `k` (word index), maintained by the
//!   driver loop;
//! * `f20..` — one register per `const`, preloaded by the driver;
//! * `f1..f19` — expression and `let` temporaries, allocated here.
//!
//! Expressions evaluate left-to-right, bottom-up — the same order
//! [`crate::Kernel::reference`] uses, so simulated results match the
//! Rust reference exactly.

use std::fmt;

use hirata_isa::{FReg, FpBinOp, FpUnOp, GReg, Inst, Reg};

use crate::ast::{BinOp, Expr, Stmt};

/// Code-generation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CodegenError {
    /// The expression needs more live temporaries than the FP register
    /// pool provides.
    TooManyTemporaries,
    /// Too many `const` declarations for the `f20..f31` bank.
    TooManyConsts,
    /// An undeclared name was referenced.
    Unknown {
        /// The name.
        name: String,
    },
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::TooManyTemporaries => {
                f.write_str("expression needs more than 19 live FP temporaries")
            }
            CodegenError::TooManyConsts => f.write_str("more than 12 consts"),
            CodegenError::Unknown { name } => write!(f, "unknown name `{name}`"),
        }
    }
}

impl std::error::Error for CodegenError {}

/// An expression result: either a register we own (and must free) or
/// one borrowed from a const / let binding.
#[derive(Debug, Clone, Copy)]
enum Val {
    Owned(u8),
    Borrowed(u8),
}

impl Val {
    fn reg(self) -> u8 {
        match self {
            Val::Owned(r) | Val::Borrowed(r) => r,
        }
    }
}

struct Ctx<'a> {
    consts: &'a [(String, f64)],
    arrays: &'a [(String, u64)],
    lets: Vec<(String, u8)>,
    free: Vec<u8>, // FP registers f1..f19, top of Vec = next
    out: Vec<Inst>,
}

impl Ctx<'_> {
    fn alloc(&mut self) -> Result<u8, CodegenError> {
        self.free.pop().ok_or(CodegenError::TooManyTemporaries)
    }

    fn release(&mut self, v: Val) {
        if let Val::Owned(r) = v {
            self.free.push(r);
        }
    }

    fn array_base(&self, name: &str) -> Result<u64, CodegenError> {
        self.arrays
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| *b)
            .ok_or_else(|| CodegenError::Unknown { name: name.to_owned() })
    }

    fn expr(&mut self, e: &Expr) -> Result<Val, CodegenError> {
        match e {
            Expr::Num(v) => {
                let r = self.alloc()?;
                self.out.push(Inst::LiF { fd: FReg(r), imm: *v });
                Ok(Val::Owned(r))
            }
            Expr::Name(name) => {
                // Rebinding shadows: the most recent binding wins.
                if let Some((_, r)) = self.lets.iter().rev().find(|(n, _)| n == name) {
                    return Ok(Val::Borrowed(*r));
                }
                if let Some(i) = self.consts.iter().position(|(n, _)| n == name) {
                    return Ok(Val::Borrowed(20 + i as u8));
                }
                Err(CodegenError::Unknown { name: name.clone() })
            }
            Expr::Elem { array, offset } => {
                let base = self.array_base(array)?;
                let r = self.alloc()?;
                self.out.push(Inst::Load {
                    dst: Reg::F(FReg(r)),
                    base: GReg(4),
                    off: base as i64 + offset,
                });
                Ok(Val::Owned(r))
            }
            Expr::Bin { op, lhs, rhs } => {
                let a = self.expr(lhs)?;
                let b = self.expr(rhs)?;
                // Reuse an owned operand as the destination; otherwise
                // allocate.
                let dst = match (a, b) {
                    (Val::Owned(r), _) => r,
                    (_, Val::Owned(r)) => r,
                    _ => self.alloc()?,
                };
                let op = match op {
                    BinOp::Add => FpBinOp::FAdd,
                    BinOp::Sub => FpBinOp::FSub,
                    BinOp::Mul => FpBinOp::FMul,
                    BinOp::Div => FpBinOp::FDiv,
                };
                self.out.push(Inst::FpBin {
                    op,
                    fd: FReg(dst),
                    fs: FReg(a.reg()),
                    ft: FReg(b.reg()),
                });
                // Free the owned operand we did NOT reuse.
                match (a, b) {
                    (Val::Owned(r), other) if r == dst => self.release(other),
                    (other, Val::Owned(r)) if r == dst => self.release(other),
                    (a, b) => {
                        self.release(a);
                        self.release(b);
                    }
                }
                Ok(Val::Owned(dst))
            }
            Expr::Neg(inner) | Expr::Abs(inner) => {
                let v = self.expr(inner)?;
                let dst = match v {
                    Val::Owned(r) => r,
                    Val::Borrowed(_) => self.alloc()?,
                };
                let op = if matches!(e, Expr::Neg(_)) { FpUnOp::FNeg } else { FpUnOp::FAbs };
                self.out.push(Inst::FpUn { op, fd: FReg(dst), fs: FReg(v.reg()) });
                Ok(Val::Owned(dst))
            }
        }
    }
}

/// Generates the loop body for `stmts`.
pub(crate) fn generate(
    consts: &[(String, f64)],
    arrays: &[(String, u64)],
    stmts: &[Stmt],
) -> Result<Vec<Inst>, CodegenError> {
    if consts.len() > 12 {
        return Err(CodegenError::TooManyConsts);
    }
    let mut ctx =
        Ctx { consts, arrays, lets: Vec::new(), free: (1..=19).rev().collect(), out: Vec::new() };
    for stmt in stmts {
        match stmt {
            Stmt::Let { name, value } => {
                let v = ctx.expr(value)?;
                // Pin the value in a dedicated register for the rest
                // of the iteration (rebinding a name frees the old
                // register only at iteration end, which is safe).
                let reg = match v {
                    Val::Owned(r) => r,
                    Val::Borrowed(src) => {
                        let r = ctx.alloc()?;
                        ctx.out.push(Inst::FpUn { op: FpUnOp::FMov, fd: FReg(r), fs: FReg(src) });
                        r
                    }
                };
                ctx.lets.push((name.clone(), reg));
            }
            Stmt::Store { array, offset, value } => {
                let base = ctx.array_base(array)?;
                let v = ctx.expr(value)?;
                ctx.out.push(Inst::Store {
                    src: Reg::F(FReg(v.reg())),
                    base: GReg(4),
                    off: base as i64 + offset,
                    gated: false,
                });
                ctx.release(v);
            }
        }
    }
    Ok(ctx.out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn consts() -> Vec<(String, f64)> {
        vec![("a".into(), 2.0)]
    }

    fn arrays() -> Vec<(String, u64)> {
        vec![("x".into(), 1000), ("y".into(), 2000)]
    }

    #[test]
    fn simple_store_codegen() {
        // x[k] = a * y[k]
        let stmts = vec![Stmt::Store {
            array: "x".into(),
            offset: 0,
            value: Expr::Bin {
                op: BinOp::Mul,
                lhs: Box::new(Expr::Name("a".into())),
                rhs: Box::new(Expr::Elem { array: "y".into(), offset: 0 }),
            },
        }];
        let body = generate(&consts(), &arrays(), &stmts).unwrap();
        assert_eq!(body.len(), 3); // load, fmul, store
        assert!(matches!(body[0], Inst::Load { off: 2000, .. }));
        assert!(matches!(body[2], Inst::Store { off: 1000, .. }));
    }

    #[test]
    fn registers_are_recycled() {
        // A long sum chain must not exhaust the pool.
        let mut value = Expr::Elem { array: "y".into(), offset: 0 };
        for off in 1..60 {
            value = Expr::Bin {
                op: BinOp::Add,
                lhs: Box::new(value),
                rhs: Box::new(Expr::Elem { array: "y".into(), offset: off }),
            };
        }
        let stmts = vec![Stmt::Store { array: "x".into(), offset: 0, value }];
        let body = generate(&consts(), &arrays(), &stmts).unwrap();
        assert_eq!(body.len(), 60 + 59 + 1);
    }

    #[test]
    fn unknown_names_error() {
        let stmts =
            vec![Stmt::Store { array: "x".into(), offset: 0, value: Expr::Name("mystery".into()) }];
        assert_eq!(
            generate(&consts(), &arrays(), &stmts),
            Err(CodegenError::Unknown { name: "mystery".into() })
        );
    }

    #[test]
    fn deep_right_recursion_exhausts_the_pool() {
        // Fully right-nested additions keep every left operand live.
        let mut value = Expr::Elem { array: "y".into(), offset: 0 };
        for off in 1..40 {
            value = Expr::Bin {
                op: BinOp::Add,
                lhs: Box::new(Expr::Elem { array: "y".into(), offset: off }),
                rhs: Box::new(value),
            };
        }
        let stmts = vec![Stmt::Store { array: "x".into(), offset: 0, value }];
        assert_eq!(generate(&consts(), &arrays(), &stmts), Err(CodegenError::TooManyTemporaries));
    }
}
