//! Property test: every well-formed random kernel computes the same
//! values on the cycle-level machine as the reference evaluator, at
//! every machine width and scheduling strategy.

use std::collections::BTreeMap;

use hirata_kernelc::{compile, BinOp, Expr};
use hirata_sched::Strategy as SchedStrategy;
use hirata_sim::{Config, Machine};
use proptest::prelude::*;

/// Renders an [`Expr`] back to kernel-language source (round-trips
/// through the parser).
fn render(e: &Expr) -> String {
    match e {
        Expr::Num(v) => format!("{v:?}"),
        Expr::Name(n) => n.clone(),
        Expr::Elem { array, offset } => match offset.cmp(&0) {
            std::cmp::Ordering::Equal => format!("{array}[k]"),
            std::cmp::Ordering::Greater => format!("{array}[k + {offset}]"),
            std::cmp::Ordering::Less => format!("{array}[k - {}]", -offset),
        },
        Expr::Bin { op, lhs, rhs } => {
            let op = match op {
                BinOp::Add => '+',
                BinOp::Sub => '-',
                BinOp::Mul => '*',
                BinOp::Div => '/',
            };
            format!("({} {op} {})", render(lhs), render(rhs))
        }
        Expr::Neg(e) => format!("(-{})", render(e)),
        Expr::Abs(e) => format!("abs({})", render(e)),
    }
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-4i64..4).prop_map(|v| Expr::Num(v as f64 * 0.5 + 0.25)),
        Just(Expr::Name("c0".to_owned())),
        Just(Expr::Name("c1".to_owned())),
        (0i64..4).prop_map(|offset| Expr::Elem { array: "a".to_owned(), offset }),
        (0i64..4).prop_map(|offset| Expr::Elem { array: "b".to_owned(), offset }),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (
                prop::sample::select(vec![BinOp::Add, BinOp::Sub, BinOp::Mul]),
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, lhs, rhs)| Expr::Bin {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs)
                }),
            inner.clone().prop_map(|e| Expr::Neg(Box::new(e))),
            inner.prop_map(|e| Expr::Abs(Box::new(e))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn compiled_kernels_match_the_reference(expr in arb_expr(), n in 1usize..12) {
        let src = format!(
            "const c0 = 0.75; const c1 = -1.5;
             array out at 1000; array a at 2000; array b at 3000;
             kernel gen(k) {{ out[k] = {}; }}",
            render(&expr)
        );
        let kernel = compile(&src).expect("generated kernel compiles");
        let mut ins = BTreeMap::new();
        ins.insert("a".to_owned(), (0..n + 4).map(|i| 0.5 + i as f64 * 0.125).collect());
        ins.insert("b".to_owned(), (0..n + 4).map(|i| 2.0 - i as f64 * 0.25).collect());
        let want = &kernel.reference(n, &ins)["out"];
        for (slots, strategy) in
            [(1usize, SchedStrategy::None), (3, SchedStrategy::ListA), (4, SchedStrategy::ReservationB { threads: 4 })]
        {
            let program = kernel.program(n, &ins, strategy);
            let mut m = Machine::new(Config::multithreaded(slots), &program).unwrap();
            m.run().unwrap();
            let got: Vec<f64> =
                (0..n).map(|i| m.memory().read_f64(1000 + i as u64).unwrap()).collect();
            prop_assert_eq!(&got, want, "{} slots, {:?}", slots, strategy);
        }
    }
}
