//! End-to-end compiler tests: kernel-language source through codegen,
//! scheduling, and the cycle-level machine, compared against both the
//! compiler's own reference evaluator and the hand-written workloads.

use std::collections::BTreeMap;

use hirata_kernelc::compile;
use hirata_sched::Strategy;
use hirata_sim::{Config, Machine};

fn inputs(pairs: &[(&str, Vec<f64>)]) -> BTreeMap<String, Vec<f64>> {
    pairs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
}

fn run_and_read(
    kernel: &hirata_kernelc::Kernel,
    n: usize,
    ins: &BTreeMap<String, Vec<f64>>,
    strategy: Strategy,
    slots: usize,
    array: &str,
    len: usize,
) -> Vec<f64> {
    let program = kernel.program(n, ins, strategy);
    let mut m = Machine::new(Config::multithreaded(slots), &program).unwrap();
    m.run().unwrap();
    let base = kernel.arrays().iter().find(|(name, _)| name == array).map(|(_, b)| *b).unwrap();
    (0..len).map(|i| m.memory().read_f64(base + i as u64).unwrap()).collect()
}

#[test]
fn saxpy_compiles_and_matches_reference() {
    let kernel = compile(
        "const a = 2.5; array x at 1000; array y at 2000;
         kernel saxpy(i) { y[i] = a * x[i] + y[i]; }",
    )
    .unwrap();
    let n = 32;
    let ins = inputs(&[
        ("x", (0..n).map(|i| i as f64 * 0.25).collect()),
        ("y", (0..n).map(|i| 1.0 - i as f64 * 0.125).collect()),
    ]);
    let want = &kernel.reference(n, &ins)["y"];
    for slots in [1usize, 4] {
        for strategy in [Strategy::None, Strategy::ListA] {
            let got = run_and_read(&kernel, n, &ins, strategy, slots, "y", n);
            assert_eq!(&got, want, "{slots} slots, {strategy:?}");
        }
    }
}

#[test]
fn compiled_livermore_1_matches_the_hand_written_kernel() {
    use hirata_workloads::livermore::{kernel1_inputs, kernel1_reference};
    let kernel = compile(
        "const q = 0.5; const r = 1.25; const t = -0.75;
         array x at 1000; array y at 2000; array z at 3000;
         kernel hydro(k) {
             x[k] = q + y[k] * (r * z[k + 10] + t * z[k + 11]);
         }",
    )
    .unwrap();
    let n = 48;
    let (y, z) = kernel1_inputs(n);
    let ins = inputs(&[("y", y), ("z", z)]);
    let got = run_and_read(&kernel, n, &ins, Strategy::ReservationB { threads: 4 }, 4, "x", n);
    assert_eq!(got, kernel1_reference(n), "compiled LK1 == hand-written LK1");
}

#[test]
fn temporaries_and_unary_ops() {
    let kernel = compile(
        "const c = 0.1; array x at 1000; array y at 2000;
         kernel f(k) {
             let d = abs(y[k] - y[k + 1]);
             let s = -d * c;
             x[k] = s + d / (y[k] + 3.0);
         }",
    )
    .unwrap();
    let n = 20;
    let ins = inputs(&[("y", (0..=n).map(|i| ((i * 37) % 11) as f64 - 5.0).collect())]);
    let want = &kernel.reference(n, &ins)["x"];
    let got = run_and_read(&kernel, n, &ins, Strategy::ListA, 2, "x", n);
    assert_eq!(&got, want);
}

#[test]
fn footprint_covers_offsets() {
    let kernel = compile(
        "array x at 1000; array z at 3000;
         kernel g(k) { x[k] = z[k + 10] - z[k - 2]; }",
    )
    .unwrap();
    assert_eq!(kernel.footprint("z", 5), Some((-2, 15)));
    assert_eq!(kernel.footprint("x", 5), Some((0, 5)));
    assert_eq!(kernel.footprint("nope", 5), None);
}

#[test]
fn compile_errors_are_located() {
    for (src, needle) in [
        ("kernel f(k) { x[k] = 1.0; }", "unknown name"),
        ("array x at 1000;", "no kernel"),
        ("array x at 1000; kernel f(k) { }", "empty"),
        ("array x at 1000; kernel f(k) { x[j] = 1.0; }", "induction variable"),
        ("const a = 1.0; const a = 2.0; array x at 9; kernel f(k) { x[k] = a; }", "duplicate"),
        ("kernel f(k) { x[k] = @; }", "unexpected character"),
        ("array x at 1000; kernel f(k) { x[k] = ; }", "expected an expression"),
    ] {
        let err = compile(src).unwrap_err();
        assert!(err.to_string().contains(needle), "{src:?} -> {err} (wanted {needle:?})");
    }
}

#[test]
fn scheduling_improves_compiled_code_too() {
    let kernel = compile(
        "const r = 1.25; array x at 1000; array y at 2000; array z at 3000;
         kernel f(k) { x[k] = y[k] * (z[k] + r) + z[k + 1] * y[k + 1]; }",
    )
    .unwrap();
    let n = 64;
    let ins = BTreeMap::new();
    let cycles = |strategy: Strategy| {
        let program = kernel.program(n, &ins, strategy);
        let mut m = Machine::new(Config::multithreaded(1), &program).unwrap();
        m.run().unwrap().cycles
    };
    assert!(cycles(Strategy::ListA) < cycles(Strategy::None));
}
