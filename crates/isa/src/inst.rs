//! Instruction forms, operand accessors, latency and functional-unit
//! classification, and the canonical assembly text rendering.
//!
//! The set follows the paper's assumptions (§2.1.1): RISC, load/store,
//! branches executed inside the decode unit, and the special
//! multithreading operations of §2.2–2.3. Instruction *timing* comes
//! from Table 1 via [`Inst::latency`].

use std::fmt;

use crate::fu::{FuClass, Latency};
use crate::reg::{FReg, GReg, Reg};

/// Integer operations executed by the ALU, barrel shifter, or integer
/// multiplier, depending on the opcode (see [`IntOp::fu_class`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Set-if-less-than (signed): `rd = (rs < src2) as i64`.
    Slt,
    /// Set-if-less-or-equal (signed).
    Sle,
    /// Set-if-equal.
    Seq,
    /// Set-if-not-equal.
    Sne,
    /// Shift left logical.
    Sll,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
    /// Multiplication (integer multiplier unit).
    Mul,
    /// Division (integer multiplier unit). Division by zero yields 0.
    Div,
    /// Remainder (integer multiplier unit). Remainder by zero yields 0.
    Rem,
}

impl IntOp {
    /// The functional-unit class executing this operation.
    pub fn fu_class(self) -> FuClass {
        match self {
            IntOp::Sll | IntOp::Srl | IntOp::Sra => FuClass::Shifter,
            IntOp::Mul | IntOp::Div | IntOp::Rem => FuClass::IntMul,
            _ => FuClass::IntAlu,
        }
    }

    /// Mnemonic used by the assembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            IntOp::Add => "add",
            IntOp::Sub => "sub",
            IntOp::And => "and",
            IntOp::Or => "or",
            IntOp::Xor => "xor",
            IntOp::Slt => "slt",
            IntOp::Sle => "sle",
            IntOp::Seq => "seq",
            IntOp::Sne => "sne",
            IntOp::Sll => "sll",
            IntOp::Srl => "srl",
            IntOp::Sra => "sra",
            IntOp::Mul => "mul",
            IntOp::Div => "div",
            IntOp::Rem => "rem",
        }
    }

    /// All integer opcodes.
    pub const ALL: [IntOp; 15] = [
        IntOp::Add,
        IntOp::Sub,
        IntOp::And,
        IntOp::Or,
        IntOp::Xor,
        IntOp::Slt,
        IntOp::Sle,
        IntOp::Seq,
        IntOp::Sne,
        IntOp::Sll,
        IntOp::Srl,
        IntOp::Sra,
        IntOp::Mul,
        IntOp::Div,
        IntOp::Rem,
    ];
}

/// Floating-point two-source operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpBinOp {
    /// Addition (FP adder).
    FAdd,
    /// Subtraction (FP adder).
    FSub,
    /// Multiplication (FP multiplier).
    FMul,
    /// Division (FP divider). Division by zero follows IEEE-754.
    FDiv,
}

impl FpBinOp {
    /// The functional-unit class executing this operation.
    pub fn fu_class(self) -> FuClass {
        match self {
            FpBinOp::FAdd | FpBinOp::FSub => FuClass::FpAdd,
            FpBinOp::FMul => FuClass::FpMul,
            FpBinOp::FDiv => FuClass::FpDiv,
        }
    }

    /// Mnemonic used by the assembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpBinOp::FAdd => "fadd",
            FpBinOp::FSub => "fsub",
            FpBinOp::FMul => "fmul",
            FpBinOp::FDiv => "fdiv",
        }
    }

    /// All FP binary opcodes.
    pub const ALL: [FpBinOp; 4] = [FpBinOp::FAdd, FpBinOp::FSub, FpBinOp::FMul, FpBinOp::FDiv];
}

/// Floating-point single-source operations (FP adder, Table 1's
/// "absolute/negate" row with result latency 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpUnOp {
    /// Absolute value.
    FAbs,
    /// Negation.
    FNeg,
    /// Register-to-register move.
    FMov,
}

impl FpUnOp {
    /// Mnemonic used by the assembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpUnOp::FAbs => "fabs",
            FpUnOp::FNeg => "fneg",
            FpUnOp::FMov => "fmov",
        }
    }

    /// All FP unary opcodes.
    pub const ALL: [FpUnOp; 3] = [FpUnOp::FAbs, FpUnOp::FNeg, FpUnOp::FMov];
}

/// Branch conditions. Branches compare a general register against a
/// register-or-immediate and are resolved inside the decode unit
/// (§2.1.2); they occupy no functional unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if less than (signed).
    Lt,
    /// Branch if less or equal (signed).
    Le,
    /// Branch if greater than (signed).
    Gt,
    /// Branch if greater or equal (signed).
    Ge,
}

impl BranchCond {
    /// Evaluates the condition on concrete operand values.
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            BranchCond::Eq => lhs == rhs,
            BranchCond::Ne => lhs != rhs,
            BranchCond::Lt => lhs < rhs,
            BranchCond::Le => lhs <= rhs,
            BranchCond::Gt => lhs > rhs,
            BranchCond::Ge => lhs >= rhs,
        }
    }

    /// Mnemonic used by the assembler (`beq`, `bne`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Le => "ble",
            BranchCond::Gt => "bgt",
            BranchCond::Ge => "bge",
        }
    }

    /// All branch conditions.
    pub const ALL: [BranchCond; 6] = [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Le,
        BranchCond::Gt,
        BranchCond::Ge,
    ];
}

/// Second source operand of integer and branch instructions: either a
/// general register or a small immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GSrc {
    /// Register operand.
    Reg(GReg),
    /// Immediate operand.
    Imm(i64),
}

impl GSrc {
    /// The register read by this operand, if any.
    pub fn reg(self) -> Option<GReg> {
        match self {
            GSrc::Reg(r) => Some(r),
            GSrc::Imm(_) => None,
        }
    }
}

impl fmt::Display for GSrc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GSrc::Reg(r) => r.fmt(f),
            GSrc::Imm(i) => write!(f, "#{i}"),
        }
    }
}

impl From<GReg> for GSrc {
    fn from(r: GReg) -> Self {
        GSrc::Reg(r)
    }
}

impl From<i64> for GSrc {
    fn from(i: i64) -> Self {
        GSrc::Imm(i)
    }
}

/// Priority-rotation mode of the instruction schedule units (§2.2),
/// switched through the privileged `setrot` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RotationMode {
    /// Rotate every `interval` cycles (Figure 4).
    Implicit {
        /// Rotation interval in cycles; the paper sweeps 2^0..2^8 and
        /// uses 8 for the Table 2 experiments.
        interval: u32,
    },
    /// Rotate only when the highest-priority logical processor executes
    /// a `chgpri` instruction; data-absence context switches are
    /// suppressed in this mode (§2.3.1).
    Explicit,
}

impl fmt::Display for RotationMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RotationMode::Implicit { interval } => write!(f, "implicit #{interval}"),
            RotationMode::Explicit => f.write_str("explicit"),
        }
    }
}

/// One machine instruction.
///
/// The variants map one-to-one onto the assembler's mnemonics; see the
/// crate-level docs of `hirata-asm` for the textual grammar. Branch and
/// jump targets are absolute instruction addresses (indices into
/// [`crate::Program::insts`]), already resolved from labels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Inst {
    /// Integer register-register(-immediate) operation.
    IntOp {
        /// Opcode.
        op: IntOp,
        /// Destination register.
        rd: GReg,
        /// First source register.
        rs: GReg,
        /// Second source (register or immediate).
        src2: GSrc,
    },
    /// Load immediate into a general register (integer ALU).
    Li {
        /// Destination register.
        rd: GReg,
        /// Immediate value.
        imm: i64,
    },
    /// Load floating immediate into an FP register (FP adder).
    LiF {
        /// Destination register.
        fd: FReg,
        /// Immediate value.
        imm: f64,
    },
    /// Floating-point two-source operation.
    FpBin {
        /// Opcode.
        op: FpBinOp,
        /// Destination register.
        fd: FReg,
        /// First source register.
        fs: FReg,
        /// Second source register.
        ft: FReg,
    },
    /// Floating-point single-source operation.
    FpUn {
        /// Opcode.
        op: FpUnOp,
        /// Destination register.
        fd: FReg,
        /// Source register.
        fs: FReg,
    },
    /// Floating-point compare writing 0/1 into a general register
    /// (FP adder; result feeds decode-unit branches).
    FpCmp {
        /// Condition evaluated between `fs` and `ft`.
        cond: BranchCond,
        /// Destination (general) register receiving 0 or 1.
        rd: GReg,
        /// Left operand.
        fs: FReg,
        /// Right operand.
        ft: FReg,
    },
    /// Convert integer (general register) to floating point (FP adder).
    CvtIF {
        /// Destination register.
        fd: FReg,
        /// Source register.
        rs: GReg,
    },
    /// Convert floating point to integer, truncating (FP adder).
    CvtFI {
        /// Destination register.
        rd: GReg,
        /// Source register.
        fs: FReg,
    },
    /// Load a word from memory into a general or FP register.
    Load {
        /// Destination register (selects `lw` vs `lf`).
        dst: Reg,
        /// Base address register.
        base: GReg,
        /// Word offset added to the base.
        off: i64,
    },
    /// Store a general or FP register to memory.
    ///
    /// With `gated` set this is the §2.3.3 special store performed only
    /// by the thread with the highest priority (`swp`/`sfp`), used to
    /// keep globally visible writes in source order during eager loop
    /// execution.
    Store {
        /// Source register (selects `sw` vs `sf`).
        src: Reg,
        /// Base address register.
        base: GReg,
        /// Word offset added to the base.
        off: i64,
        /// Whether the store is priority-gated.
        gated: bool,
    },
    /// Conditional branch (resolved in the decode unit).
    Branch {
        /// Condition.
        cond: BranchCond,
        /// Left operand register.
        rs: GReg,
        /// Right operand (register or immediate).
        src2: GSrc,
        /// Absolute target instruction address.
        target: u32,
    },
    /// Unconditional jump.
    Jump {
        /// Absolute target instruction address.
        target: u32,
    },
    /// Indirect jump through a register.
    JumpReg {
        /// Register holding the target instruction address.
        rs: GReg,
    },
    /// Terminate the executing thread.
    Halt,
    /// No operation.
    Nop,
    /// Spawn one thread per thread slot at the next instruction
    /// address, assigning each logical processor its identifier
    /// (§2.3.1). The forking thread becomes logical processor 0.
    FastFork,
    /// Explicit priority rotation (§2.2); interlocks until the issuing
    /// logical processor holds the highest priority.
    ChgPri,
    /// Kill all other running threads (§2.3.3); interlocks until the
    /// issuing logical processor holds the highest priority.
    KillOthers,
    /// Privileged: switch the schedule units' rotation mode (§2.2).
    SetRotation {
        /// New rotation mode.
        mode: RotationMode,
    },
    /// Map the incoming and outgoing queue registers onto two
    /// architectural registers (§2.3.1). Reads of `read` dequeue from
    /// the previous logical processor; writes to `write` enqueue to the
    /// next. Full/empty bits act as scoreboard bits.
    QMap {
        /// Register through which the incoming queue is read.
        read: Reg,
        /// Register through which the outgoing queue is written.
        write: Reg,
    },
    /// Remove the queue-register mapping.
    QUnmap,
    /// Read the logical-processor identifier set by `fastfork` into a
    /// general register.
    Lpid {
        /// Destination register.
        rd: GReg,
    },
    /// Read the number of logical processors (thread slots) into a
    /// general register, so one binary can stride work across any
    /// machine width.
    Nlp {
        /// Destination register.
        rd: GReg,
    },
    /// Drain: interlock until every instruction this logical processor
    /// has issued has been performed (standby stations empty). One of
    /// the §2.3.3 "instructions ... provided to ensure consistency
    /// between contexts of threads"; used as a store fence before
    /// inter-thread synchronisation through queue registers or memory.
    Drain,
}

impl Inst {
    /// The functional-unit class this instruction executes on, or
    /// `None` for instructions executed entirely inside the decode
    /// unit (branches, jumps, thread control, `nop`).
    pub fn fu_class(&self) -> Option<FuClass> {
        match self {
            Inst::IntOp { op, .. } => Some(op.fu_class()),
            Inst::Li { .. } | Inst::Lpid { .. } | Inst::Nlp { .. } => Some(FuClass::IntAlu),
            Inst::FpBin { op, .. } => Some(op.fu_class()),
            Inst::FpUn { .. }
            | Inst::FpCmp { .. }
            | Inst::CvtIF { .. }
            | Inst::CvtFI { .. }
            | Inst::LiF { .. } => Some(FuClass::FpAdd),
            Inst::Load { .. } | Inst::Store { .. } => Some(FuClass::LoadStore),
            Inst::Branch { .. }
            | Inst::Jump { .. }
            | Inst::JumpReg { .. }
            | Inst::Halt
            | Inst::Nop
            | Inst::FastFork
            | Inst::ChgPri
            | Inst::KillOthers
            | Inst::SetRotation { .. }
            | Inst::QMap { .. }
            | Inst::QUnmap
            | Inst::Drain => None,
        }
    }

    /// Issue/result latency per Table 1. Decode-executed instructions
    /// report `Latency::new(1, 0)`.
    pub fn latency(&self) -> Latency {
        match self {
            Inst::IntOp { op, .. } => match op.fu_class() {
                FuClass::IntMul => Latency::new(1, 6),
                _ => Latency::new(1, 2),
            },
            Inst::Li { .. } | Inst::Lpid { .. } | Inst::Nlp { .. } => Latency::new(1, 2),
            Inst::FpBin { op, .. } => match op {
                FpBinOp::FAdd | FpBinOp::FSub => Latency::new(1, 4),
                FpBinOp::FMul => Latency::new(1, 6),
                FpBinOp::FDiv => Latency::new(1, 20),
            },
            Inst::FpCmp { .. } | Inst::CvtIF { .. } | Inst::CvtFI { .. } => Latency::new(1, 4),
            Inst::FpUn { .. } | Inst::LiF { .. } => Latency::new(1, 2),
            Inst::Load { .. } => Latency::new(2, 4),
            Inst::Store { .. } => Latency::new(2, 0),
            _ => Latency::new(1, 0),
        }
    }

    /// Issue latency (cycles the functional unit is held).
    pub fn issue_latency(&self) -> u32 {
        self.latency().issue
    }

    /// Result latency (EX stages until the destination is readable).
    pub fn result_latency(&self) -> u32 {
        self.latency().result
    }

    /// Destination register written by this instruction, if any.
    pub fn dest(&self) -> Option<Reg> {
        match *self {
            Inst::IntOp { rd, .. }
            | Inst::Li { rd, .. }
            | Inst::FpCmp { rd, .. }
            | Inst::CvtFI { rd, .. }
            | Inst::Lpid { rd }
            | Inst::Nlp { rd } => Some(Reg::G(rd)),
            Inst::LiF { fd, .. }
            | Inst::FpBin { fd, .. }
            | Inst::FpUn { fd, .. }
            | Inst::CvtIF { fd, .. } => Some(Reg::F(fd)),
            Inst::Load { dst, .. } => Some(dst),
            _ => None,
        }
    }

    /// Source registers read by this instruction (at most two).
    pub fn srcs(&self) -> [Option<Reg>; 2] {
        match *self {
            Inst::IntOp { rs, src2, .. } => [Some(Reg::G(rs)), src2.reg().map(Reg::G)],
            Inst::FpBin { fs, ft, .. } | Inst::FpCmp { fs, ft, .. } => {
                [Some(Reg::F(fs)), Some(Reg::F(ft))]
            }
            Inst::FpUn { fs, .. } | Inst::CvtFI { fs, .. } => [Some(Reg::F(fs)), None],
            Inst::CvtIF { rs, .. } => [Some(Reg::G(rs)), None],
            Inst::Load { base, .. } => [Some(Reg::G(base)), None],
            Inst::Store { src, base, .. } => [Some(src), Some(Reg::G(base))],
            Inst::Branch { rs, src2, .. } => [Some(Reg::G(rs)), src2.reg().map(Reg::G)],
            Inst::JumpReg { rs } => [Some(Reg::G(rs)), None],
            _ => [None, None],
        }
    }

    /// True for instructions that redirect control flow (and therefore
    /// trigger the branch handling of §2.1.2: fetch request at the end
    /// of D1 and a branch shadow until the redirect completes).
    pub fn is_control(&self) -> bool {
        matches!(self, Inst::Branch { .. } | Inst::Jump { .. } | Inst::JumpReg { .. })
    }

    /// True for the §2.2/§2.3.3 instructions that interlock until the
    /// issuing logical processor holds the highest priority.
    pub fn needs_highest_priority(&self) -> bool {
        matches!(self, Inst::ChgPri | Inst::KillOthers)
            || matches!(self, Inst::Store { gated: true, .. })
    }

    /// True for memory operations (load/store unit).
    pub fn is_mem(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::Store { .. })
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::IntOp { op, rd, rs, src2 } => {
                write!(f, "{} {rd}, {rs}, {src2}", op.mnemonic())
            }
            Inst::Li { rd, imm } => write!(f, "li {rd}, #{imm}"),
            Inst::LiF { fd, imm } => write!(f, "lif {fd}, #{imm:?}"),
            Inst::FpBin { op, fd, fs, ft } => {
                write!(f, "{} {fd}, {fs}, {ft}", op.mnemonic())
            }
            Inst::FpUn { op, fd, fs } => write!(f, "{} {fd}, {fs}", op.mnemonic()),
            Inst::FpCmp { cond, rd, fs, ft } => {
                write!(f, "fcmp{} {rd}, {fs}, {ft}", cond.suffix())
            }
            Inst::CvtIF { fd, rs } => write!(f, "cvtif {fd}, {rs}"),
            Inst::CvtFI { rd, fs } => write!(f, "cvtfi {rd}, {fs}"),
            Inst::Load { dst, base, off } => match dst {
                Reg::G(r) => write!(f, "lw {r}, {off}({base})"),
                Reg::F(r) => write!(f, "lf {r}, {off}({base})"),
            },
            Inst::Store { src, base, off, gated } => {
                let m = match (src, gated) {
                    (Reg::G(_), false) => "sw",
                    (Reg::G(_), true) => "swp",
                    (Reg::F(_), false) => "sf",
                    (Reg::F(_), true) => "sfp",
                };
                write!(f, "{m} {src}, {off}({base})")
            }
            Inst::Branch { cond, rs, src2, target } => {
                write!(f, "{} {rs}, {src2}, @{target}", cond.mnemonic())
            }
            Inst::Jump { target } => write!(f, "j @{target}"),
            Inst::JumpReg { rs } => write!(f, "jr {rs}"),
            Inst::Halt => f.write_str("halt"),
            Inst::Nop => f.write_str("nop"),
            Inst::FastFork => f.write_str("fastfork"),
            Inst::ChgPri => f.write_str("chgpri"),
            Inst::KillOthers => f.write_str("killothers"),
            Inst::SetRotation { mode } => write!(f, "setrot {mode}"),
            Inst::QMap { read, write } => write!(f, "qmap {read}, {write}"),
            Inst::QUnmap => f.write_str("qunmap"),
            Inst::Lpid { rd } => write!(f, "lpid {rd}"),
            Inst::Nlp { rd } => write!(f, "nlp {rd}"),
            Inst::Drain => f.write_str("drain"),
        }
    }
}

impl BranchCond {
    /// Two-letter condition suffix used by `fcmp` mnemonics.
    pub fn suffix(self) -> &'static str {
        match self {
            BranchCond::Eq => "eq",
            BranchCond::Ne => "ne",
            BranchCond::Lt => "lt",
            BranchCond::Le => "le",
            BranchCond::Gt => "gt",
            BranchCond::Ge => "ge",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_fu_inst() -> Inst {
        Inst::IntOp { op: IntOp::Add, rd: GReg(1), rs: GReg(2), src2: GSrc::Imm(3) }
    }

    #[test]
    fn table1_latencies() {
        let alu = sample_fu_inst();
        assert_eq!(alu.latency(), Latency::new(1, 2));

        let shift = Inst::IntOp { op: IntOp::Sll, rd: GReg(1), rs: GReg(2), src2: GSrc::Imm(3) };
        assert_eq!(shift.latency(), Latency::new(1, 2));
        assert_eq!(shift.fu_class(), Some(FuClass::Shifter));

        let mul =
            Inst::IntOp { op: IntOp::Mul, rd: GReg(1), rs: GReg(2), src2: GSrc::Reg(GReg(3)) };
        assert_eq!(mul.latency(), Latency::new(1, 6));
        assert_eq!(mul.fu_class(), Some(FuClass::IntMul));

        let fadd = Inst::FpBin { op: FpBinOp::FAdd, fd: FReg(1), fs: FReg(2), ft: FReg(3) };
        assert_eq!(fadd.latency(), Latency::new(1, 4));

        let fneg = Inst::FpUn { op: FpUnOp::FNeg, fd: FReg(1), fs: FReg(2) };
        assert_eq!(fneg.latency(), Latency::new(1, 2));

        let load = Inst::Load { dst: Reg::G(GReg(1)), base: GReg(2), off: 0 };
        assert_eq!(load.latency(), Latency::new(2, 4));

        let store = Inst::Store { src: Reg::G(GReg(1)), base: GReg(2), off: 0, gated: false };
        assert_eq!(store.latency(), Latency::new(2, 0));
    }

    #[test]
    fn decode_unit_instructions_use_no_fu() {
        let decode_only = [
            Inst::Branch { cond: BranchCond::Eq, rs: GReg(1), src2: GSrc::Imm(0), target: 0 },
            Inst::Jump { target: 0 },
            Inst::JumpReg { rs: GReg(31) },
            Inst::Halt,
            Inst::Nop,
            Inst::FastFork,
            Inst::ChgPri,
            Inst::KillOthers,
            Inst::SetRotation { mode: RotationMode::Explicit },
            Inst::QMap { read: Reg::G(GReg(4)), write: Reg::G(GReg(5)) },
            Inst::QUnmap,
            Inst::Drain,
        ];
        for inst in decode_only {
            assert_eq!(inst.fu_class(), None, "{inst}");
            assert_eq!(inst.result_latency(), 0, "{inst}");
        }
    }

    #[test]
    fn operand_accessors() {
        let store = Inst::Store { src: Reg::F(FReg(3)), base: GReg(7), off: 4, gated: false };
        assert_eq!(store.dest(), None);
        assert_eq!(store.srcs(), [Some(Reg::F(FReg(3))), Some(Reg::G(GReg(7)))]);

        let load = Inst::Load { dst: Reg::F(FReg(2)), base: GReg(9), off: -1 };
        assert_eq!(load.dest(), Some(Reg::F(FReg(2))));
        assert_eq!(load.srcs(), [Some(Reg::G(GReg(9))), None]);

        let branch =
            Inst::Branch { cond: BranchCond::Lt, rs: GReg(1), src2: GSrc::Reg(GReg(2)), target: 9 };
        assert_eq!(branch.dest(), None);
        assert_eq!(branch.srcs(), [Some(Reg::G(GReg(1))), Some(Reg::G(GReg(2)))]);

        let imm = sample_fu_inst();
        assert_eq!(imm.srcs(), [Some(Reg::G(GReg(2))), None]);
    }

    #[test]
    fn priority_interlocked_instructions() {
        assert!(Inst::ChgPri.needs_highest_priority());
        assert!(Inst::KillOthers.needs_highest_priority());
        assert!(Inst::Store { src: Reg::G(GReg(1)), base: GReg(0), off: 0, gated: true }
            .needs_highest_priority());
        assert!(!Inst::Store { src: Reg::G(GReg(1)), base: GReg(0), off: 0, gated: false }
            .needs_highest_priority());
        assert!(!sample_fu_inst().needs_highest_priority());
    }

    #[test]
    fn branch_condition_eval() {
        assert!(BranchCond::Eq.eval(4, 4));
        assert!(!BranchCond::Eq.eval(4, 5));
        assert!(BranchCond::Ne.eval(4, 5));
        assert!(BranchCond::Lt.eval(-2, 1));
        assert!(BranchCond::Le.eval(1, 1));
        assert!(BranchCond::Gt.eval(2, 1));
        assert!(BranchCond::Ge.eval(1, 1));
        assert!(!BranchCond::Ge.eval(0, 1));
    }

    #[test]
    fn display_forms() {
        assert_eq!(sample_fu_inst().to_string(), "add r1, r2, #3");
        assert_eq!(
            Inst::Load { dst: Reg::F(FReg(3)), base: GReg(2), off: 8 }.to_string(),
            "lf f3, 8(r2)"
        );
        assert_eq!(
            Inst::Store { src: Reg::G(GReg(3)), base: GReg(2), off: 0, gated: true }.to_string(),
            "swp r3, 0(r2)"
        );
        assert_eq!(
            Inst::Branch { cond: BranchCond::Ne, rs: GReg(1), src2: GSrc::Imm(0), target: 12 }
                .to_string(),
            "bne r1, #0, @12"
        );
        assert_eq!(
            Inst::SetRotation { mode: RotationMode::Implicit { interval: 8 } }.to_string(),
            "setrot implicit #8"
        );
        assert_eq!(
            Inst::FpCmp { cond: BranchCond::Lt, rd: GReg(1), fs: FReg(2), ft: FReg(3) }.to_string(),
            "fcmplt r1, f2, f3"
        );
    }

    #[test]
    fn control_classification() {
        assert!(Inst::Jump { target: 0 }.is_control());
        assert!(!Inst::Halt.is_control());
        assert!(!Inst::ChgPri.is_control());
    }
}
