//! The [`Program`] container: instructions, an initial data image, and
//! a label map.
//!
//! Instruction memory and data memory are separate address spaces, as
//! in the paper's Harvard-style split of instruction and data caches
//! (Figure 2). Instruction addresses are indices into
//! [`Program::insts`]; data addresses are word indices into the data
//! memory of the simulated machine.

use std::collections::BTreeMap;
use std::fmt;

use crate::inst::Inst;

/// A contiguous run of initialized data words.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DataSegment {
    /// First word address covered by `words`.
    pub base: u64,
    /// Raw 64-bit memory words (integer values as two's complement
    /// `i64` bits, floats as `f64` bits).
    pub words: Vec<u64>,
}

impl DataSegment {
    /// One past the last initialized address.
    pub fn end(&self) -> u64 {
        self.base + self.words.len() as u64
    }
}

/// An executable program: instructions plus initialized data.
///
/// # Examples
///
/// ```
/// use hirata_isa::{GReg, Inst, Program};
///
/// let prog = Program::from_insts(vec![
///     Inst::Li { rd: GReg(1), imm: 42 },
///     Inst::Halt,
/// ]);
/// assert_eq!(prog.len(), 2);
/// prog.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Instruction memory.
    pub insts: Vec<Inst>,
    /// Initialized data segments (non-overlapping, sorted by base).
    pub data: Vec<DataSegment>,
    /// Entry point (instruction address of the first instruction the
    /// initial thread executes).
    pub entry: u32,
    /// Label name → instruction address, retained for diagnostics and
    /// disassembly.
    pub labels: BTreeMap<String, u32>,
}

/// Error found by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A branch or jump targets an address outside the program.
    TargetOutOfRange {
        /// Address of the offending instruction.
        at: u32,
        /// The out-of-range target.
        target: u32,
    },
    /// The entry point is outside the program.
    EntryOutOfRange {
        /// The out-of-range entry address.
        entry: u32,
    },
    /// Two initialized data segments overlap.
    OverlappingData {
        /// Base address of the second of the overlapping segments.
        base: u64,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::TargetOutOfRange { at, target } => {
                write!(f, "instruction @{at} targets out-of-range address @{target}")
            }
            ProgramError::EntryOutOfRange { entry } => {
                write!(f, "entry point @{entry} is outside the program")
            }
            ProgramError::OverlappingData { base } => {
                write!(f, "data segment at word {base} overlaps an earlier segment")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

impl Program {
    /// Builds a program from bare instructions with entry point 0 and
    /// no data.
    pub fn from_insts(insts: Vec<Inst>) -> Self {
        Program { insts, ..Program::default() }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Looks up a label's address.
    pub fn label(&self, name: &str) -> Option<u32> {
        self.labels.get(name).copied()
    }

    /// Checks structural invariants: entry point and all control-flow
    /// targets in range, data segments non-overlapping.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProgramError`] encountered.
    pub fn validate(&self) -> Result<(), ProgramError> {
        let n = self.insts.len() as u32;
        if self.entry >= n && !(self.entry == 0 && n == 0) {
            return Err(ProgramError::EntryOutOfRange { entry: self.entry });
        }
        for (at, inst) in self.insts.iter().enumerate() {
            let target = match *inst {
                Inst::Branch { target, .. } | Inst::Jump { target } => Some(target),
                _ => None,
            };
            if let Some(target) = target {
                if target >= n {
                    return Err(ProgramError::TargetOutOfRange { at: at as u32, target });
                }
            }
        }
        let mut segs: Vec<&DataSegment> = self.data.iter().collect();
        segs.sort_by_key(|s| s.base);
        for pair in segs.windows(2) {
            if pair[1].base < pair[0].end() {
                return Err(ProgramError::OverlappingData { base: pair[1].base });
            }
        }
        Ok(())
    }

    /// Renders a disassembly listing with addresses and label comments.
    ///
    /// # Examples
    ///
    /// ```
    /// use hirata_isa::{GReg, Inst, Program};
    /// let prog = Program::from_insts(vec![Inst::Li { rd: GReg(1), imm: 7 }, Inst::Halt]);
    /// let listing = prog.listing();
    /// assert!(listing.contains("li r1, #7"));
    /// ```
    pub fn listing(&self) -> String {
        use fmt::Write as _;
        let mut rev: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
        for (name, &addr) in &self.labels {
            rev.entry(addr).or_default().push(name);
        }
        let mut out = String::new();
        for (addr, inst) in self.insts.iter().enumerate() {
            if let Some(names) = rev.get(&(addr as u32)) {
                for name in names {
                    let _ = writeln!(out, "{name}:");
                }
            }
            let _ = writeln!(out, "  @{addr:<5} {inst}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BranchCond, GSrc};
    use crate::reg::GReg;

    #[test]
    fn validate_accepts_well_formed() {
        let prog = Program::from_insts(vec![
            Inst::Li { rd: GReg(1), imm: 1 },
            Inst::Branch { cond: BranchCond::Ne, rs: GReg(1), src2: GSrc::Imm(0), target: 0 },
            Inst::Halt,
        ]);
        assert_eq!(prog.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_target() {
        let prog = Program::from_insts(vec![Inst::Jump { target: 5 }]);
        assert_eq!(prog.validate(), Err(ProgramError::TargetOutOfRange { at: 0, target: 5 }));
    }

    #[test]
    fn validate_rejects_bad_entry() {
        let mut prog = Program::from_insts(vec![Inst::Halt]);
        prog.entry = 3;
        assert_eq!(prog.validate(), Err(ProgramError::EntryOutOfRange { entry: 3 }));
    }

    #[test]
    fn validate_rejects_overlapping_data() {
        let mut prog = Program::from_insts(vec![Inst::Halt]);
        prog.data.push(DataSegment { base: 0, words: vec![1, 2, 3] });
        prog.data.push(DataSegment { base: 2, words: vec![4] });
        assert_eq!(prog.validate(), Err(ProgramError::OverlappingData { base: 2 }));
    }

    #[test]
    fn adjacent_data_segments_are_fine() {
        let mut prog = Program::from_insts(vec![Inst::Halt]);
        prog.data.push(DataSegment { base: 0, words: vec![1, 2] });
        prog.data.push(DataSegment { base: 2, words: vec![3] });
        assert_eq!(prog.validate(), Ok(()));
    }

    #[test]
    fn listing_includes_labels() {
        let mut prog = Program::from_insts(vec![Inst::Nop, Inst::Halt]);
        prog.labels.insert("loop".into(), 1);
        let listing = prog.listing();
        assert!(listing.contains("loop:"));
        assert!(listing.contains("@0"));
        assert!(listing.contains("halt"));
    }

    #[test]
    fn empty_program_is_valid() {
        assert_eq!(Program::default().validate(), Ok(()));
    }
}
