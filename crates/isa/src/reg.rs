//! Architectural register names.
//!
//! Each register bank (one per context frame, §2.1.1) holds 32
//! general-purpose registers `r0..r31` and 32 floating-point registers
//! `f0..f31`. `r0` is hardwired to zero in the usual RISC fashion:
//! reads return 0 and writes are discarded by the simulator.

use std::fmt;
use std::str::FromStr;

/// Number of general-purpose registers in a bank.
pub const NUM_GREGS: usize = 32;
/// Number of floating-point registers in a bank.
pub const NUM_FREGS: usize = 32;

/// A general-purpose (integer) register, `r0`–`r31`.
///
/// `r0` reads as zero and ignores writes.
///
/// # Examples
///
/// ```
/// use hirata_isa::GReg;
/// assert_eq!(GReg(7).to_string(), "r7");
/// assert_eq!("r7".parse::<GReg>().unwrap(), GReg(7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GReg(pub u8);

/// A floating-point register, `f0`–`f31`.
///
/// # Examples
///
/// ```
/// use hirata_isa::FReg;
/// assert_eq!(FReg(12).to_string(), "f12");
/// assert_eq!("f12".parse::<FReg>().unwrap(), FReg(12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(pub u8);

/// Either kind of architectural register.
///
/// Loads, stores and queue-register mappings may name either file, so
/// operand lists are expressed in terms of `Reg`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Reg {
    /// A general-purpose register.
    G(GReg),
    /// A floating-point register.
    F(FReg),
}

impl GReg {
    /// The hardwired-zero register `r0`.
    pub const ZERO: GReg = GReg(0);

    /// Returns true if this register is valid (index below [`NUM_GREGS`]).
    pub fn is_valid(self) -> bool {
        (self.0 as usize) < NUM_GREGS
    }
}

impl FReg {
    /// Returns true if this register is valid (index below [`NUM_FREGS`]).
    pub fn is_valid(self) -> bool {
        (self.0 as usize) < NUM_FREGS
    }
}

impl Reg {
    /// Returns true if the register index is in range for its file.
    pub fn is_valid(self) -> bool {
        match self {
            Reg::G(r) => r.is_valid(),
            Reg::F(r) => r.is_valid(),
        }
    }

    /// Dense index over both files: `r0..r31` map to `0..32`,
    /// `f0..f31` map to `32..64`. Useful for scoreboard bit vectors.
    pub fn dense_index(self) -> usize {
        match self {
            Reg::G(GReg(n)) => n as usize,
            Reg::F(FReg(n)) => NUM_GREGS + n as usize,
        }
    }
}

impl From<GReg> for Reg {
    fn from(r: GReg) -> Self {
        Reg::G(r)
    }
}

impl From<FReg> for Reg {
    fn from(r: FReg) -> Self {
        Reg::F(r)
    }
}

impl fmt::Display for GReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::G(r) => r.fmt(f),
            Reg::F(r) => r.fmt(f),
        }
    }
}

/// Error returned when parsing a register name fails.
///
/// # Examples
///
/// ```
/// use hirata_isa::GReg;
/// assert!("r99".parse::<GReg>().is_err());
/// assert!("x3".parse::<GReg>().is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError {
    text: String,
}

impl ParseRegError {
    fn new(text: &str) -> Self {
        ParseRegError { text: text.to_owned() }
    }
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid register name `{}`", self.text)
    }
}

impl std::error::Error for ParseRegError {}

fn parse_index(text: &str, prefix: char, limit: usize) -> Result<u8, ParseRegError> {
    let rest = text.strip_prefix(prefix).ok_or_else(|| ParseRegError::new(text))?;
    // Reject forms like "r03" so that each register has one spelling.
    if rest.len() > 1 && rest.starts_with('0') {
        return Err(ParseRegError::new(text));
    }
    let n: usize = rest.parse().map_err(|_| ParseRegError::new(text))?;
    if n >= limit {
        return Err(ParseRegError::new(text));
    }
    Ok(n as u8)
}

impl FromStr for GReg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse_index(s, 'r', NUM_GREGS).map(GReg)
    }
}

impl FromStr for FReg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse_index(s, 'f', NUM_FREGS).map(FReg)
    }
}

impl FromStr for Reg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.starts_with('r') {
            s.parse::<GReg>().map(Reg::G)
        } else if s.starts_with('f') {
            s.parse::<FReg>().map(Reg::F)
        } else {
            Err(ParseRegError::new(s))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_gregs() {
        for n in 0..NUM_GREGS as u8 {
            let r = GReg(n);
            assert_eq!(r.to_string().parse::<GReg>().unwrap(), r);
        }
    }

    #[test]
    fn display_round_trips_fregs() {
        for n in 0..NUM_FREGS as u8 {
            let r = FReg(n);
            assert_eq!(r.to_string().parse::<FReg>().unwrap(), r);
        }
    }

    #[test]
    fn reg_parses_either_file() {
        assert_eq!("r5".parse::<Reg>().unwrap(), Reg::G(GReg(5)));
        assert_eq!("f31".parse::<Reg>().unwrap(), Reg::F(FReg(31)));
    }

    #[test]
    fn out_of_range_rejected() {
        assert!("r32".parse::<GReg>().is_err());
        assert!("f32".parse::<FReg>().is_err());
        assert!("f-1".parse::<FReg>().is_err());
    }

    #[test]
    fn leading_zero_rejected() {
        assert!("r01".parse::<GReg>().is_err());
        assert!("r0".parse::<GReg>().is_ok());
    }

    #[test]
    fn junk_rejected() {
        for bad in ["", "r", "f", "q1", "r1x", "R1"] {
            assert!(bad.parse::<Reg>().is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn dense_index_is_injective() {
        let mut seen = std::collections::HashSet::new();
        for n in 0..NUM_GREGS as u8 {
            assert!(seen.insert(Reg::G(GReg(n)).dense_index()));
        }
        for n in 0..NUM_FREGS as u8 {
            assert!(seen.insert(Reg::F(FReg(n)).dense_index()));
        }
        assert_eq!(seen.len(), NUM_GREGS + NUM_FREGS);
    }

    #[test]
    fn error_message_mentions_input() {
        let err = "r99".parse::<GReg>().unwrap_err();
        assert!(err.to_string().contains("r99"));
    }
}
