//! Instruction set architecture for the Hirata et al. (ISCA 1992)
//! multithreaded elementary processor.
//!
//! The paper assumes a "RISC type" load/store instruction set (§2.1.1)
//! executed by seven heterogeneous functional units (Table 1), plus a
//! small family of special instructions that drive the multithreading
//! machinery of §2.2–2.3:
//!
//! * [`Inst::FastFork`] — spawn one thread per thread slot (§2.3.1),
//! * [`Inst::ChgPri`] — explicit priority rotation (§2.2),
//! * [`Inst::KillOthers`] — loop-exit thread kill (§2.3.3),
//! * priority-gated stores ([`Inst::Store`] with `gated`) (§2.3.3),
//! * queue-register mapping ([`Inst::QMap`]/[`Inst::QUnmap`]) (§2.3.1).
//!
//! This crate is purely the *architecture*: register names, instruction
//! forms, functional-unit classes and latencies, and the [`Program`]
//! container. The cycle-level behaviour lives in `hirata-sim`, the
//! textual syntax in `hirata-asm`.
//!
//! # Examples
//!
//! ```
//! use hirata_isa::{Inst, IntOp, GReg, GSrc, FuClass};
//!
//! let add = Inst::IntOp { op: IntOp::Add, rd: GReg(3), rs: GReg(1), src2: GSrc::Reg(GReg(2)) };
//! assert_eq!(add.fu_class(), Some(FuClass::IntAlu));
//! assert_eq!(add.result_latency(), 2);
//! assert_eq!(add.to_string(), "add r3, r1, r2");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod encoding;
mod fu;
mod inst;
mod program;
mod reg;

pub use encoding::{decode_program, encode, encode_program, DecodeError, EncodeError};
pub use fu::{FuClass, FuConfig, Latency, FU_CLASS_COUNT};
pub use inst::{BranchCond, FpBinOp, FpUnOp, GSrc, Inst, IntOp, RotationMode};
pub use program::{DataSegment, Program, ProgramError};
pub use reg::{FReg, GReg, ParseRegError, Reg, NUM_FREGS, NUM_GREGS};
