//! Binary instruction encoding.
//!
//! Instruction memory words are 64 bits wide (like data words). Most
//! instructions encode in one word; `lif` needs two (the second word
//! carries the raw IEEE-754 immediate, so round-trips are exact).
//!
//! One-word layout (fields unused by a format are zero):
//!
//! ```text
//!  63..56  opcode
//!  55..48  rd / fd / dst register index (bit 7 set = FP file)
//!  47..40  rs / fs / src register index (bit 7 set = FP file)
//!  39..32  rt / ft / base register index (bit 7 set = FP file)
//!  31      second-source-is-immediate flag
//!  30..0   sign-magnitude immediate / absolute target (bit 30 = sign)
//! ```
//!
//! The 31-bit immediate field covers every offset, literal and target
//! the assembler accepts for one-word forms; anything larger is an
//! [`EncodeError`].

use std::fmt;

use crate::inst::{BranchCond, FpBinOp, FpUnOp, GSrc, Inst, IntOp, RotationMode};
use crate::reg::{FReg, GReg, Reg};

/// Error produced by [`encode`].
#[derive(Debug, Clone, PartialEq)]
pub enum EncodeError {
    /// An immediate, offset, or rotation interval exceeds the 30-bit
    /// magnitude the word format carries.
    ImmediateOutOfRange {
        /// The instruction that failed to encode.
        inst: Inst,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmediateOutOfRange { inst } => {
                write!(f, "immediate out of encodable range in `{inst}`")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Error produced by [`decode_program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown opcode byte.
    BadOpcode {
        /// The offending opcode value.
        opcode: u8,
        /// Word index in the input.
        at: usize,
    },
    /// A register field held an out-of-range index.
    BadRegister {
        /// Word index in the input.
        at: usize,
    },
    /// A two-word instruction was cut off at the end of the input.
    Truncated,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode { opcode, at } => {
                write!(f, "unknown opcode {opcode:#04x} at word {at}")
            }
            DecodeError::BadRegister { at } => write!(f, "invalid register field at word {at}"),
            DecodeError::Truncated => write!(f, "truncated two-word instruction"),
        }
    }
}

impl std::error::Error for DecodeError {}

// Opcode space. Grouped: integer ops mirror IntOp order, etc.
const OP_INT_BASE: u8 = 0x00; // 15 IntOps: 0x00..=0x0e
const OP_LI: u8 = 0x10;
const OP_LIF: u8 = 0x11; // two words
const OP_FPBIN_BASE: u8 = 0x14; // 4 FpBinOps: 0x14..=0x17
const OP_FPUN_BASE: u8 = 0x18; // 3 FpUnOps: 0x18..=0x1a
const OP_FPCMP_BASE: u8 = 0x1c; // 6 conds: 0x1c..=0x21
const OP_CVTIF: u8 = 0x22;
const OP_CVTFI: u8 = 0x23;
const OP_LOAD: u8 = 0x28;
const OP_STORE: u8 = 0x29;
const OP_STORE_GATED: u8 = 0x2a;
const OP_BRANCH_BASE: u8 = 0x30; // 6 conds: 0x30..=0x35
const OP_JUMP: u8 = 0x38;
const OP_JUMP_REG: u8 = 0x39;
const OP_HALT: u8 = 0x3a;
const OP_NOP: u8 = 0x3b;
const OP_FASTFORK: u8 = 0x40;
const OP_CHGPRI: u8 = 0x41;
const OP_KILLOTHERS: u8 = 0x42;
const OP_SETROT_IMPLICIT: u8 = 0x43;
const OP_SETROT_EXPLICIT: u8 = 0x44;
const OP_QMAP: u8 = 0x45;
const OP_QUNMAP: u8 = 0x46;
const OP_LPID: u8 = 0x47;
const OP_NLP: u8 = 0x48;
const OP_DRAIN: u8 = 0x49;

const FP_BIT: u64 = 0x80;
const IMM_FLAG: u64 = 1 << 31;
const IMM_SIGN: u64 = 1 << 30;
const IMM_MAG: u64 = IMM_SIGN - 1;

fn reg_field(r: Reg) -> u64 {
    match r {
        Reg::G(GReg(n)) => n as u64,
        Reg::F(FReg(n)) => FP_BIT | n as u64,
    }
}

fn imm_field(v: i64) -> Option<u64> {
    let mag = v.unsigned_abs();
    if mag > IMM_MAG {
        return None;
    }
    Some(if v < 0 { IMM_SIGN | mag } else { mag })
}

fn word(op: u8, d: u64, s: u64, t: u64, imm: u64) -> u64 {
    ((op as u64) << 56) | (d << 48) | (s << 40) | (t << 32) | imm
}

/// Encodes one instruction into one or two 64-bit words appended to
/// `out`.
///
/// # Errors
///
/// [`EncodeError::ImmediateOutOfRange`] if a literal exceeds the
/// 30-bit magnitude field.
pub fn encode(inst: &Inst, out: &mut Vec<u64>) -> Result<(), EncodeError> {
    let err = || EncodeError::ImmediateOutOfRange { inst: *inst };
    let gsrc = |src2: GSrc| -> Result<(u64, u64), EncodeError> {
        match src2 {
            GSrc::Reg(r) => Ok((reg_field(Reg::G(r)), 0)),
            GSrc::Imm(v) => Ok((0, IMM_FLAG | imm_field(v).ok_or_else(err)?)),
        }
    };
    let w = match *inst {
        Inst::IntOp { op, rd, rs, src2 } => {
            let opc =
                OP_INT_BASE + IntOp::ALL.iter().position(|o| *o == op).expect("known op") as u8;
            let (t, imm) = gsrc(src2)?;
            word(opc, reg_field(Reg::G(rd)), reg_field(Reg::G(rs)), t, imm)
        }
        Inst::Li { rd, imm } => {
            word(OP_LI, reg_field(Reg::G(rd)), 0, 0, imm_field(imm).ok_or_else(err)?)
        }
        Inst::LiF { fd, imm } => {
            out.push(word(OP_LIF, reg_field(Reg::F(fd)), 0, 0, 0));
            out.push(imm.to_bits());
            return Ok(());
        }
        Inst::FpBin { op, fd, fs, ft } => {
            let opc =
                OP_FPBIN_BASE + FpBinOp::ALL.iter().position(|o| *o == op).expect("known op") as u8;
            word(opc, reg_field(Reg::F(fd)), reg_field(Reg::F(fs)), reg_field(Reg::F(ft)), 0)
        }
        Inst::FpUn { op, fd, fs } => {
            let opc =
                OP_FPUN_BASE + FpUnOp::ALL.iter().position(|o| *o == op).expect("known op") as u8;
            word(opc, reg_field(Reg::F(fd)), reg_field(Reg::F(fs)), 0, 0)
        }
        Inst::FpCmp { cond, rd, fs, ft } => {
            let opc = OP_FPCMP_BASE
                + BranchCond::ALL.iter().position(|c| *c == cond).expect("known cond") as u8;
            word(opc, reg_field(Reg::G(rd)), reg_field(Reg::F(fs)), reg_field(Reg::F(ft)), 0)
        }
        Inst::CvtIF { fd, rs } => {
            word(OP_CVTIF, reg_field(Reg::F(fd)), reg_field(Reg::G(rs)), 0, 0)
        }
        Inst::CvtFI { rd, fs } => {
            word(OP_CVTFI, reg_field(Reg::G(rd)), reg_field(Reg::F(fs)), 0, 0)
        }
        Inst::Load { dst, base, off } => word(
            OP_LOAD,
            reg_field(dst),
            0,
            reg_field(Reg::G(base)),
            imm_field(off).ok_or_else(err)?,
        ),
        Inst::Store { src, base, off, gated } => word(
            if gated { OP_STORE_GATED } else { OP_STORE },
            0,
            reg_field(src),
            reg_field(Reg::G(base)),
            imm_field(off).ok_or_else(err)?,
        ),
        Inst::Branch { cond, rs, src2, target } => {
            let opc = OP_BRANCH_BASE
                + BranchCond::ALL.iter().position(|c| *c == cond).expect("known cond") as u8;
            let (t, imm_bits) = gsrc(src2)?;
            // Register-comparand branches carry the target in the
            // immediate field; immediate-comparand branches need both
            // a literal and a target, so they take a second word
            // (d = 1 marks the two-word form).
            if imm_bits == 0 {
                word(opc, 0, reg_field(Reg::G(rs)), t, imm_field(target as i64).ok_or_else(err)?)
            } else {
                out.push(word(opc, 1, reg_field(Reg::G(rs)), 0, imm_bits));
                out.push(target as u64);
                return Ok(());
            }
        }
        Inst::Jump { target } => word(OP_JUMP, 0, 0, 0, imm_field(target as i64).ok_or_else(err)?),
        Inst::JumpReg { rs } => word(OP_JUMP_REG, 0, reg_field(Reg::G(rs)), 0, 0),
        Inst::Halt => word(OP_HALT, 0, 0, 0, 0),
        Inst::Nop => word(OP_NOP, 0, 0, 0, 0),
        Inst::FastFork => word(OP_FASTFORK, 0, 0, 0, 0),
        Inst::ChgPri => word(OP_CHGPRI, 0, 0, 0, 0),
        Inst::KillOthers => word(OP_KILLOTHERS, 0, 0, 0, 0),
        Inst::SetRotation { mode } => match mode {
            RotationMode::Implicit { interval } => {
                word(OP_SETROT_IMPLICIT, 0, 0, 0, imm_field(interval as i64).ok_or_else(err)?)
            }
            RotationMode::Explicit => word(OP_SETROT_EXPLICIT, 0, 0, 0, 0),
        },
        Inst::QMap { read, write } => word(OP_QMAP, reg_field(read), reg_field(write), 0, 0),
        Inst::QUnmap => word(OP_QUNMAP, 0, 0, 0, 0),
        Inst::Lpid { rd } => word(OP_LPID, reg_field(Reg::G(rd)), 0, 0, 0),
        Inst::Nlp { rd } => word(OP_NLP, reg_field(Reg::G(rd)), 0, 0, 0),
        Inst::Drain => word(OP_DRAIN, 0, 0, 0, 0),
    };
    out.push(w);
    Ok(())
}

/// Encodes a whole instruction sequence.
///
/// # Errors
///
/// Propagates the first [`EncodeError`].
pub fn encode_program(insts: &[Inst]) -> Result<Vec<u64>, EncodeError> {
    let mut out = Vec::with_capacity(insts.len());
    for inst in insts {
        encode(inst, &mut out)?;
    }
    Ok(out)
}

struct Fields {
    op: u8,
    d: u64,
    s: u64,
    t: u64,
    imm_flag: bool,
    imm: i64,
    raw_imm: u64,
}

fn split(w: u64) -> Fields {
    let raw_imm = w & ((1 << 31) - 1);
    let mag = (raw_imm & IMM_MAG) as i64;
    Fields {
        op: (w >> 56) as u8,
        d: (w >> 48) & 0xff,
        s: (w >> 40) & 0xff,
        t: (w >> 32) & 0xff,
        imm_flag: w & IMM_FLAG != 0,
        imm: if raw_imm & IMM_SIGN != 0 { -mag } else { mag },
        raw_imm,
    }
}

fn reg_of(field: u64, at: usize) -> Result<Reg, DecodeError> {
    let idx = (field & 0x7f) as u8;
    let reg = if field & FP_BIT != 0 { Reg::F(FReg(idx)) } else { Reg::G(GReg(idx)) };
    if reg.is_valid() {
        Ok(reg)
    } else {
        Err(DecodeError::BadRegister { at })
    }
}

fn greg_of(field: u64, at: usize) -> Result<GReg, DecodeError> {
    match reg_of(field, at)? {
        Reg::G(r) => Ok(r),
        Reg::F(_) => Err(DecodeError::BadRegister { at }),
    }
}

fn freg_of(field: u64, at: usize) -> Result<FReg, DecodeError> {
    match reg_of(field, at)? {
        Reg::F(r) => Ok(r),
        Reg::G(_) => Err(DecodeError::BadRegister { at }),
    }
}

/// Decodes a word stream produced by [`encode_program`].
///
/// # Errors
///
/// Returns a [`DecodeError`] for unknown opcodes, malformed register
/// fields, or a truncated two-word instruction.
pub fn decode_program(words: &[u64]) -> Result<Vec<Inst>, DecodeError> {
    let mut out = Vec::with_capacity(words.len());
    let mut i = 0usize;
    while i < words.len() {
        let at = i;
        let f = split(words[i]);
        i += 1;
        let mut second = || -> Result<u64, DecodeError> {
            let w = *words.get(i).ok_or(DecodeError::Truncated)?;
            i += 1;
            Ok(w)
        };
        let inst = match f.op {
            op if (OP_INT_BASE..OP_INT_BASE + 15).contains(&op) => {
                let int_op = IntOp::ALL[(op - OP_INT_BASE) as usize];
                let src2 = if f.imm_flag { GSrc::Imm(f.imm) } else { GSrc::Reg(greg_of(f.t, at)?) };
                Inst::IntOp { op: int_op, rd: greg_of(f.d, at)?, rs: greg_of(f.s, at)?, src2 }
            }
            OP_LI => Inst::Li { rd: greg_of(f.d, at)?, imm: f.imm },
            OP_LIF => Inst::LiF { fd: freg_of(f.d, at)?, imm: f64::from_bits(second()?) },
            op if (OP_FPBIN_BASE..OP_FPBIN_BASE + 4).contains(&op) => Inst::FpBin {
                op: FpBinOp::ALL[(op - OP_FPBIN_BASE) as usize],
                fd: freg_of(f.d, at)?,
                fs: freg_of(f.s, at)?,
                ft: freg_of(f.t, at)?,
            },
            op if (OP_FPUN_BASE..OP_FPUN_BASE + 3).contains(&op) => Inst::FpUn {
                op: FpUnOp::ALL[(op - OP_FPUN_BASE) as usize],
                fd: freg_of(f.d, at)?,
                fs: freg_of(f.s, at)?,
            },
            op if (OP_FPCMP_BASE..OP_FPCMP_BASE + 6).contains(&op) => Inst::FpCmp {
                cond: BranchCond::ALL[(op - OP_FPCMP_BASE) as usize],
                rd: greg_of(f.d, at)?,
                fs: freg_of(f.s, at)?,
                ft: freg_of(f.t, at)?,
            },
            OP_CVTIF => Inst::CvtIF { fd: freg_of(f.d, at)?, rs: greg_of(f.s, at)? },
            OP_CVTFI => Inst::CvtFI { rd: greg_of(f.d, at)?, fs: freg_of(f.s, at)? },
            OP_LOAD => Inst::Load { dst: reg_of(f.d, at)?, base: greg_of(f.t, at)?, off: f.imm },
            OP_STORE | OP_STORE_GATED => Inst::Store {
                src: reg_of(f.s, at)?,
                base: greg_of(f.t, at)?,
                off: f.imm,
                gated: f.op == OP_STORE_GATED,
            },
            op if (OP_BRANCH_BASE..OP_BRANCH_BASE + 6).contains(&op) => {
                let cond = BranchCond::ALL[(op - OP_BRANCH_BASE) as usize];
                let rs = greg_of(f.s, at)?;
                if f.d == 1 {
                    // two-word immediate-comparand form
                    let mag = (f.raw_imm & IMM_MAG) as i64;
                    let val = if f.raw_imm & IMM_SIGN != 0 { -mag } else { mag };
                    Inst::Branch { cond, rs, src2: GSrc::Imm(val), target: second()? as u32 }
                } else {
                    Inst::Branch {
                        cond,
                        rs,
                        src2: GSrc::Reg(greg_of(f.t, at)?),
                        target: f.imm as u32,
                    }
                }
            }
            OP_JUMP => Inst::Jump { target: f.imm as u32 },
            OP_JUMP_REG => Inst::JumpReg { rs: greg_of(f.s, at)? },
            OP_HALT => Inst::Halt,
            OP_NOP => Inst::Nop,
            OP_FASTFORK => Inst::FastFork,
            OP_CHGPRI => Inst::ChgPri,
            OP_KILLOTHERS => Inst::KillOthers,
            OP_SETROT_IMPLICIT => {
                Inst::SetRotation { mode: RotationMode::Implicit { interval: f.imm as u32 } }
            }
            OP_SETROT_EXPLICIT => Inst::SetRotation { mode: RotationMode::Explicit },
            OP_QMAP => Inst::QMap { read: reg_of(f.d, at)?, write: reg_of(f.s, at)? },
            OP_QUNMAP => Inst::QUnmap,
            OP_LPID => Inst::Lpid { rd: greg_of(f.d, at)? },
            OP_NLP => Inst::Nlp { rd: greg_of(f.d, at)? },
            OP_DRAIN => Inst::Drain,
            opcode => return Err(DecodeError::BadOpcode { opcode, at }),
        };
        out.push(inst);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(inst: Inst) {
        let mut words = Vec::new();
        encode(&inst, &mut words).expect("encodes");
        let back = decode_program(&words).expect("decodes");
        assert_eq!(back, vec![inst]);
    }

    #[test]
    fn every_simple_form_round_trips() {
        rt(Inst::IntOp { op: IntOp::Add, rd: GReg(1), rs: GReg(2), src2: GSrc::Reg(GReg(3)) });
        rt(Inst::IntOp { op: IntOp::Sra, rd: GReg(31), rs: GReg(0), src2: GSrc::Imm(-12345) });
        rt(Inst::Li { rd: GReg(9), imm: -(1 << 29) });
        rt(Inst::LiF { fd: FReg(3), imm: 1.0e30 });
        rt(Inst::LiF { fd: FReg(3), imm: -0.0 });
        rt(Inst::FpBin { op: FpBinOp::FDiv, fd: FReg(1), fs: FReg(2), ft: FReg(3) });
        rt(Inst::FpUn { op: FpUnOp::FMov, fd: FReg(31), fs: FReg(0) });
        rt(Inst::FpCmp { cond: BranchCond::Le, rd: GReg(4), fs: FReg(5), ft: FReg(6) });
        rt(Inst::CvtIF { fd: FReg(1), rs: GReg(2) });
        rt(Inst::CvtFI { rd: GReg(1), fs: FReg(2) });
        rt(Inst::Load { dst: Reg::F(FReg(7)), base: GReg(8), off: -4096 });
        rt(Inst::Store { src: Reg::G(GReg(7)), base: GReg(8), off: 20_000, gated: true });
        rt(Inst::Branch {
            cond: BranchCond::Ne,
            rs: GReg(1),
            src2: GSrc::Reg(GReg(2)),
            target: 1234,
        });
        rt(Inst::Branch { cond: BranchCond::Lt, rs: GReg(1), src2: GSrc::Imm(-7), target: 99 });
        rt(Inst::Jump { target: 0 });
        rt(Inst::JumpReg { rs: GReg(31) });
        rt(Inst::Halt);
        rt(Inst::Nop);
        rt(Inst::FastFork);
        rt(Inst::ChgPri);
        rt(Inst::KillOthers);
        rt(Inst::SetRotation { mode: RotationMode::Implicit { interval: 256 } });
        rt(Inst::SetRotation { mode: RotationMode::Explicit });
        rt(Inst::QMap { read: Reg::F(FReg(10)), write: Reg::G(GReg(11)) });
        rt(Inst::QUnmap);
        rt(Inst::Lpid { rd: GReg(1) });
        rt(Inst::Nlp { rd: GReg(2) });
        rt(Inst::Drain);
    }

    #[test]
    fn nan_float_immediates_round_trip_bitwise() {
        let imm = f64::from_bits(0x7ff8_0000_dead_beef);
        let mut words = Vec::new();
        encode(&Inst::LiF { fd: FReg(1), imm }, &mut words).unwrap();
        match decode_program(&words).unwrap()[0] {
            Inst::LiF { imm: back, .. } => assert_eq!(back.to_bits(), imm.to_bits()),
            ref other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn out_of_range_immediates_rejected() {
        let mut words = Vec::new();
        let big = Inst::Li { rd: GReg(1), imm: 1 << 40 };
        assert!(matches!(encode(&big, &mut words), Err(EncodeError::ImmediateOutOfRange { .. })));
    }

    #[test]
    fn bad_opcode_and_truncation_detected() {
        assert!(matches!(
            decode_program(&[0xff_u64 << 56]),
            Err(DecodeError::BadOpcode { opcode: 0xff, at: 0 })
        ));
        let mut words = Vec::new();
        encode(&Inst::LiF { fd: FReg(1), imm: 2.5 }, &mut words).unwrap();
        words.pop();
        assert_eq!(decode_program(&words), Err(DecodeError::Truncated));
    }

    #[test]
    fn register_file_mismatch_detected() {
        // Hand-craft an integer add whose rd field claims the FP file.
        let w = ((OP_INT_BASE as u64) << 56) | (0x81u64 << 48);
        assert!(matches!(decode_program(&[w]), Err(DecodeError::BadRegister { at: 0 })));
    }

    #[test]
    fn program_level_round_trip() {
        let insts = vec![
            Inst::FastFork,
            Inst::Lpid { rd: GReg(1) },
            Inst::LiF { fd: FReg(2), imm: 0.1 },
            Inst::Branch { cond: BranchCond::Eq, rs: GReg(1), src2: GSrc::Imm(0), target: 5 },
            Inst::Store { src: Reg::F(FReg(2)), base: GReg(1), off: 100, gated: false },
            Inst::Halt,
        ];
        let words = encode_program(&insts).unwrap();
        assert_eq!(words.len(), insts.len() + 2); // lif + imm-branch pay one extra word each
        assert_eq!(decode_program(&words).unwrap(), insts);
    }
}
