//! Functional-unit classes and the latency table (paper Table 1).
//!
//! The processor of Figure 2 shares a pool of functional units between
//! all thread slots. The paper evaluates two pools: seven heterogeneous
//! units, and the same plus a second load/store unit (§3.1). Each unit
//! class has an *issue latency* (cycles before the unit accepts another
//! instruction) and each operation a *result latency* (number of EX
//! stages before the result is written back), per Table 1.

use std::fmt;

/// Number of distinct functional-unit classes.
pub const FU_CLASS_COUNT: usize = 7;

/// The class of functional unit an instruction executes on.
///
/// One physical unit of each class exists in the paper's seven-unit
/// configuration; [`FuConfig`] controls how many units of each class a
/// simulated processor has.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FuClass {
    /// Integer ALU: add/subtract, logical, compare.
    IntAlu,
    /// Barrel shifter.
    Shifter,
    /// Integer multiplier (multiply and divide).
    IntMul,
    /// Floating-point adder (add/sub/compare/absolute/negate/convert).
    FpAdd,
    /// Floating-point multiplier.
    FpMul,
    /// Floating-point divider.
    FpDiv,
    /// Load/store unit (data-cache port).
    LoadStore,
}

impl FuClass {
    /// All classes, in a fixed canonical order.
    pub const ALL: [FuClass; FU_CLASS_COUNT] = [
        FuClass::IntAlu,
        FuClass::Shifter,
        FuClass::IntMul,
        FuClass::FpAdd,
        FuClass::FpMul,
        FuClass::FpDiv,
        FuClass::LoadStore,
    ];

    /// Dense index of the class, for table lookups.
    pub fn index(self) -> usize {
        match self {
            FuClass::IntAlu => 0,
            FuClass::Shifter => 1,
            FuClass::IntMul => 2,
            FuClass::FpAdd => 3,
            FuClass::FpMul => 4,
            FuClass::FpDiv => 5,
            FuClass::LoadStore => 6,
        }
    }

    /// Short human-readable name used in statistics tables.
    pub fn name(self) -> &'static str {
        match self {
            FuClass::IntAlu => "int-alu",
            FuClass::Shifter => "shifter",
            FuClass::IntMul => "int-mul",
            FuClass::FpAdd => "fp-add",
            FuClass::FpMul => "fp-mul",
            FuClass::FpDiv => "fp-div",
            FuClass::LoadStore => "load-store",
        }
    }
}

impl fmt::Display for FuClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Issue/result latency pair for one operation (Table 1).
///
/// *Issue latency* is the number of cycles before another instruction
/// of the same type may be issued to the same unit; *result latency* is
/// the number of EX stages (cycles until the result may be consumed,
/// see §2.1.2: a dependent instruction can enter its S stage
/// `result + 1` cycles after the producer's).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Latency {
    /// Cycles the functional unit stays busy accepting this op.
    pub issue: u32,
    /// Number of EX stages until the result is available.
    pub result: u32,
}

impl Latency {
    /// Convenience constructor.
    ///
    /// # Panics
    ///
    /// Panics if `issue` is zero (every operation occupies its unit for
    /// at least one cycle).
    pub const fn new(issue: u32, result: u32) -> Self {
        assert!(issue >= 1, "issue latency must be at least one cycle");
        Latency { issue, result }
    }
}

/// How many functional units of each class a processor has.
///
/// The paper's two evaluated configurations are provided as
/// constructors; arbitrary pools can be built for ablations.
///
/// # Examples
///
/// ```
/// use hirata_isa::{FuClass, FuConfig};
///
/// let one = FuConfig::paper_one_ls();
/// assert_eq!(one.count(FuClass::LoadStore), 1);
/// assert_eq!(one.total_units(), 7);
///
/// let two = FuConfig::paper_two_ls();
/// assert_eq!(two.count(FuClass::LoadStore), 2);
/// assert_eq!(two.total_units(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FuConfig {
    counts: [u8; FU_CLASS_COUNT],
}

impl FuConfig {
    /// The paper's seven-heterogeneous-unit pool (one unit per class).
    pub fn paper_one_ls() -> Self {
        FuConfig { counts: [1; FU_CLASS_COUNT] }
    }

    /// The paper's eight-unit pool: one unit per class plus a second
    /// load/store unit (the abstract's "nine-functional-unit processor",
    /// which also counts the branch unit in the decode stage).
    pub fn paper_two_ls() -> Self {
        let mut cfg = Self::paper_one_ls();
        cfg.counts[FuClass::LoadStore.index()] = 2;
        cfg
    }

    /// A custom pool. `counts` maps [`FuClass::ALL`] order to unit counts.
    ///
    /// # Panics
    ///
    /// Panics if every count is zero.
    pub fn custom(counts: [u8; FU_CLASS_COUNT]) -> Self {
        assert!(counts.iter().any(|&c| c > 0), "a processor needs at least one functional unit");
        FuConfig { counts }
    }

    /// Number of units of the given class.
    pub fn count(&self, class: FuClass) -> usize {
        self.counts[class.index()] as usize
    }

    /// Sets the number of units of a class, returning `self` for chaining.
    pub fn with_count(mut self, class: FuClass, count: u8) -> Self {
        self.counts[class.index()] = count;
        self
    }

    /// Total number of functional units in the pool.
    pub fn total_units(&self) -> usize {
        self.counts.iter().map(|&c| c as usize).sum()
    }
}

impl Default for FuConfig {
    /// Defaults to the paper's seven-unit configuration.
    fn default() -> Self {
        Self::paper_one_ls()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_covers_every_class_once() {
        let mut seen = [false; FU_CLASS_COUNT];
        for class in FuClass::ALL {
            assert!(!seen[class.index()]);
            seen[class.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn paper_configs_match_section_3_1() {
        assert_eq!(FuConfig::paper_one_ls().total_units(), 7);
        assert_eq!(FuConfig::paper_two_ls().total_units(), 8);
        assert_eq!(FuConfig::default(), FuConfig::paper_one_ls());
    }

    #[test]
    fn with_count_overrides() {
        let cfg = FuConfig::paper_one_ls().with_count(FuClass::IntAlu, 3);
        assert_eq!(cfg.count(FuClass::IntAlu), 3);
        assert_eq!(cfg.total_units(), 9);
    }

    #[test]
    #[should_panic(expected = "at least one functional unit")]
    fn empty_pool_rejected() {
        FuConfig::custom([0; FU_CLASS_COUNT]);
    }

    #[test]
    fn display_names_are_distinct() {
        let names: std::collections::HashSet<_> =
            FuClass::ALL.iter().map(|c| c.to_string()).collect();
        assert_eq!(names.len(), FU_CLASS_COUNT);
    }
}
