//! The flat word-addressed backing store.

use std::fmt;

/// Error raised by out-of-range memory accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemError {
    addr: u64,
    size: u64,
    write: bool,
}

impl MemError {
    /// The faulting word address.
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// Whether the faulting access was a write.
    pub fn is_write(&self) -> bool {
        self.write
    }
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} of word {} is outside memory of {} words",
            if self.write { "write" } else { "read" },
            self.addr,
            self.size
        )
    }
}

impl std::error::Error for MemError {}

/// Words per lazily-allocated memory chunk (32 KiB of data).
const CHUNK_WORDS: usize = 1 << 12;

/// Word-addressed data memory.
///
/// Addresses are word indices (the ISA has no sub-word accesses). The
/// store is bounds-checked: simulated programs that run off the end of
/// memory surface a [`MemError`] rather than silently wrapping, which
/// the simulator reports as a machine check.
///
/// Storage is chunked and lazy: a chunk is materialized on first
/// write, and unwritten chunks read as zero. Constructing a machine
/// with the default 8 MiB memory therefore costs a few hundred
/// nanoseconds instead of zeroing eight megabytes, which matters when
/// experiments sweep thousands of short-lived machines.
#[derive(Debug, Clone)]
pub struct Memory {
    size: u64,
    chunks: Vec<Option<Box<[u64]>>>,
}

impl PartialEq for Memory {
    /// Logical equality: an unmaterialized chunk equals an all-zero one.
    fn eq(&self, other: &Self) -> bool {
        self.size == other.size
            && self.chunks.iter().zip(&other.chunks).all(|(a, b)| match (a, b) {
                (None, None) => true,
                (Some(a), Some(b)) => a == b,
                (Some(c), None) | (None, Some(c)) => c.iter().all(|&w| w == 0),
            })
    }
}

impl Memory {
    /// Allocates a zeroed memory of `size` words.
    pub fn new(size: usize) -> Self {
        Memory { size: size as u64, chunks: vec![None; size.div_ceil(CHUNK_WORDS)] }
    }

    /// Memory size in words.
    pub fn size(&self) -> u64 {
        self.size
    }

    fn check(&self, addr: u64, write: bool) -> Result<usize, MemError> {
        if addr < self.size() {
            Ok(addr as usize)
        } else {
            Err(MemError { addr, size: self.size(), write })
        }
    }

    /// Reads the raw 64-bit word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if `addr` is out of range.
    pub fn read(&self, addr: u64) -> Result<u64, MemError> {
        let i = self.check(addr, false)?;
        Ok(match &self.chunks[i / CHUNK_WORDS] {
            Some(chunk) => chunk[i % CHUNK_WORDS],
            None => 0,
        })
    }

    /// Writes the raw 64-bit word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if `addr` is out of range.
    pub fn write(&mut self, addr: u64, value: u64) -> Result<(), MemError> {
        let i = self.check(addr, true)?;
        let chunk = self.chunks[i / CHUNK_WORDS]
            .get_or_insert_with(|| vec![0; CHUNK_WORDS].into_boxed_slice());
        chunk[i % CHUNK_WORDS] = value;
        Ok(())
    }

    /// Reads the word at `addr` as a two's complement integer.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if `addr` is out of range.
    pub fn read_i64(&self, addr: u64) -> Result<i64, MemError> {
        self.read(addr).map(|w| w as i64)
    }

    /// Writes an integer word.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if `addr` is out of range.
    pub fn write_i64(&mut self, addr: u64, value: i64) -> Result<(), MemError> {
        self.write(addr, value as u64)
    }

    /// Reads the word at `addr` as an `f64` bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if `addr` is out of range.
    pub fn read_f64(&self, addr: u64) -> Result<f64, MemError> {
        self.read(addr).map(f64::from_bits)
    }

    /// Writes a floating-point word.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if `addr` is out of range.
    pub fn write_f64(&mut self, addr: u64, value: f64) -> Result<(), MemError> {
        self.write(addr, value.to_bits())
    }

    /// Copies a block of raw words starting at `base` (used to load a
    /// program's initialized data segments).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the block does not fit.
    pub fn load_block(&mut self, base: u64, words: &[u64]) -> Result<(), MemError> {
        if words.is_empty() {
            return Ok(());
        }
        let last = base + words.len() as u64 - 1;
        self.check(base, true)?;
        self.check(last, true)?;
        for (i, &w) in (base as usize..).zip(words) {
            let chunk = self.chunks[i / CHUNK_WORDS]
                .get_or_insert_with(|| vec![0; CHUNK_WORDS].into_boxed_slice());
            chunk[i % CHUNK_WORDS] = w;
        }
        Ok(())
    }

    /// A materialized copy of the raw words, for test assertions on
    /// final memory images.
    pub fn words(&self) -> Vec<u64> {
        let mut out = vec![0; self.size as usize];
        for (c, chunk) in self.chunks.iter().enumerate() {
            if let Some(chunk) = chunk {
                let base = c * CHUNK_WORDS;
                let end = (base + CHUNK_WORDS).min(out.len());
                out[base..end].copy_from_slice(&chunk[..end - base]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut mem = Memory::new(64);
        mem.write(3, 0xdead_beef).unwrap();
        assert_eq!(mem.read(3).unwrap(), 0xdead_beef);
        assert_eq!(mem.read(4).unwrap(), 0);
    }

    #[test]
    fn typed_views_round_trip() {
        let mut mem = Memory::new(8);
        mem.write_i64(0, -42).unwrap();
        assert_eq!(mem.read_i64(0).unwrap(), -42);
        mem.write_f64(1, -0.5).unwrap();
        assert_eq!(mem.read_f64(1).unwrap(), -0.5);
    }

    #[test]
    fn out_of_range_reads_and_writes_error() {
        let mut mem = Memory::new(4);
        let err = mem.read(4).unwrap_err();
        assert_eq!(err.addr(), 4);
        assert!(!err.is_write());
        let err = mem.write(100, 1).unwrap_err();
        assert!(err.is_write());
        assert!(err.to_string().contains("word 100"));
    }

    #[test]
    fn load_block_places_words() {
        let mut mem = Memory::new(8);
        mem.load_block(2, &[1, 2, 3]).unwrap();
        assert_eq!(mem.words()[1..6], [0, 1, 2, 3, 0]);
    }

    #[test]
    fn load_block_rejects_overflow() {
        let mut mem = Memory::new(4);
        assert!(mem.load_block(3, &[1, 2]).is_err());
        assert!(mem.load_block(0, &[]).is_ok());
    }
}
