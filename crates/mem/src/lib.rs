//! Memory subsystem models for the Hirata 1992 reproduction.
//!
//! The paper's evaluation assumes all cache accesses hit with a
//! two-cycle access time (§3.1), so the primary model here is
//! [`IdealCache`]. Two extensions the paper announces but does not
//! evaluate are also provided:
//!
//! * [`FiniteCache`] — a direct-mapped data cache with a miss penalty,
//!   for the "finite cache effects" future work of §5;
//! * [`DsmMemory`] — a distributed-shared-memory latency model whose
//!   remote accesses raise the *data absence trap* of §2.1.3, driving
//!   the concurrent-multithreading (context switching) machinery.
//!
//! [`Memory`] is the flat word-addressed backing store shared by all
//! models. Words are 64-bit raw values; integer contents are two's
//! complement `i64` bits and floating contents are `f64` bits.
//!
//! # Examples
//!
//! ```
//! use hirata_mem::{Memory, IdealCache, DataMemModel, Access};
//!
//! let mut mem = Memory::new(1024);
//! mem.write_i64(16, -5)?;
//! assert_eq!(mem.read_i64(16)?, -5);
//!
//! let mut cache = IdealCache::default();
//! assert_eq!(cache.access(16, false, 0), Access::Hit { latency: 2 });
//! # Ok::<(), hirata_mem::MemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backing;
mod models;

pub use backing::{MemError, Memory};
pub use models::{Access, DataMemModel, DsmMemory, FiniteCache, IdealCache, MemStats};
