//! Data-memory timing models.
//!
//! The simulator consults a [`DataMemModel`] once per load/store to
//! learn how the access behaves in time; the architectural data
//! transfer itself always goes through [`crate::Memory`].

/// Outcome of a timed data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The access completes after `latency` cycles (a cache hit, or a
    /// miss that merely stalls).
    Hit {
        /// Access time in cycles.
        latency: u32,
    },
    /// The data is absent locally (remote DSM access): the paper's
    /// *data absence trap* (§2.1.3). The thread should be switched out
    /// and resumed once `ready_after` cycles have elapsed.
    Absent {
        /// Cycles until the remote access completes.
        ready_after: u64,
    },
}

/// Counters kept by every model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit (including slow local misses).
    pub hits: u64,
    /// Finite-cache misses.
    pub misses: u64,
    /// Accesses that raised a data-absence trap.
    pub absences: u64,
}

impl MemStats {
    /// Miss ratio over all accesses, 0.0 when there were none.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A data-memory timing model.
///
/// This trait is sealed in spirit — the simulator works with any
/// implementation, but the three models here cover the paper plus its
/// announced extensions.
pub trait DataMemModel {
    /// Classifies the access to word `addr` at time `now`.
    fn access(&mut self, addr: u64, write: bool, now: u64) -> Access;

    /// Statistics accumulated so far.
    fn stats(&self) -> MemStats;

    /// Applies `count` store accesses in bulk, returning `true` only
    /// if doing so is *exactly* equivalent to `count` individual
    /// [`DataMemModel::access`] calls — same statistics and same
    /// subsequent timing behaviour regardless of the addresses and
    /// times involved. Models whose outcome depends on the address or
    /// access history must keep the default (`false`), which makes the
    /// simulator's loop-warp engine fall back to plain stepping.
    fn bulk_store_hits(&mut self, count: u64) -> bool {
        let _ = count;
        false
    }
}

/// The paper's §3.1 assumption: every access hits in the data cache in
/// a fixed number of cycles (two, matching the 2-cycle cache of
/// §2.1.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdealCache {
    latency: u32,
    stats: MemStats,
}

impl IdealCache {
    /// Creates an always-hit model with the given access latency.
    pub fn new(latency: u32) -> Self {
        IdealCache { latency, stats: MemStats::default() }
    }
}

impl Default for IdealCache {
    /// The paper's two-cycle data cache.
    fn default() -> Self {
        IdealCache::new(2)
    }
}

impl DataMemModel for IdealCache {
    fn access(&mut self, _addr: u64, _write: bool, _now: u64) -> Access {
        self.stats.accesses += 1;
        self.stats.hits += 1;
        Access::Hit { latency: self.latency }
    }

    fn stats(&self) -> MemStats {
        self.stats
    }

    fn bulk_store_hits(&mut self, count: u64) -> bool {
        // Every access hits in the same fixed time whatever the
        // address, so a batch of stores is a pure counter bump.
        self.stats.accesses += count;
        self.stats.hits += count;
        true
    }
}

/// Direct-mapped finite data cache (the §5 "finite cache effects"
/// extension). Write-allocate; misses stall the load/store unit for
/// `miss_latency` cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiniteCache {
    line_words: u64,
    tags: Vec<Option<u64>>,
    hit_latency: u32,
    miss_latency: u32,
    stats: MemStats,
}

impl FiniteCache {
    /// Creates a direct-mapped cache.
    ///
    /// # Panics
    ///
    /// Panics if `lines` or `line_words` is zero, or if either is not a
    /// power of two (index/offset extraction requires it).
    pub fn new(lines: usize, line_words: u64, hit_latency: u32, miss_latency: u32) -> Self {
        assert!(lines > 0 && lines.is_power_of_two(), "lines must be a power of two");
        assert!(
            line_words > 0 && line_words.is_power_of_two(),
            "line_words must be a power of two"
        );
        FiniteCache {
            line_words,
            tags: vec![None; lines],
            hit_latency,
            miss_latency,
            stats: MemStats::default(),
        }
    }

    fn index_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.line_words;
        ((line as usize) & (self.tags.len() - 1), line)
    }

    /// True if `addr` is currently resident.
    pub fn contains(&self, addr: u64) -> bool {
        let (index, tag) = self.index_and_tag(addr);
        self.tags[index] == Some(tag)
    }
}

impl DataMemModel for FiniteCache {
    fn access(&mut self, addr: u64, _write: bool, _now: u64) -> Access {
        self.stats.accesses += 1;
        let (index, tag) = self.index_and_tag(addr);
        if self.tags[index] == Some(tag) {
            self.stats.hits += 1;
            Access::Hit { latency: self.hit_latency }
        } else {
            self.stats.misses += 1;
            self.tags[index] = Some(tag);
            Access::Hit { latency: self.miss_latency }
        }
    }

    fn stats(&self) -> MemStats {
        self.stats
    }
}

/// Distributed-shared-memory model for concurrent multithreading
/// (§2.1.3): word addresses at or above `remote_base` live on a remote
/// node and raise a data-absence trap with a long completion time;
/// local addresses hit in `local_latency` cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DsmMemory {
    remote_base: u64,
    local_latency: u32,
    remote_latency: u64,
    stats: MemStats,
}

impl DsmMemory {
    /// Creates a DSM model. Accesses to `addr >= remote_base` are
    /// remote and complete `remote_latency` cycles after they start.
    pub fn new(remote_base: u64, local_latency: u32, remote_latency: u64) -> Self {
        DsmMemory { remote_base, local_latency, remote_latency, stats: MemStats::default() }
    }

    /// The first remote word address.
    pub fn remote_base(&self) -> u64 {
        self.remote_base
    }
}

impl DataMemModel for DsmMemory {
    fn access(&mut self, addr: u64, _write: bool, _now: u64) -> Access {
        self.stats.accesses += 1;
        if addr >= self.remote_base {
            self.stats.absences += 1;
            Access::Absent { ready_after: self.remote_latency }
        } else {
            self.stats.hits += 1;
            Access::Hit { latency: self.local_latency }
        }
    }

    fn stats(&self) -> MemStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_cache_always_hits_in_two_cycles() {
        let mut c = IdealCache::default();
        for addr in [0u64, 7, 1 << 40] {
            assert_eq!(c.access(addr, false, 0), Access::Hit { latency: 2 });
        }
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().hits, 3);
        assert_eq!(c.stats().miss_ratio(), 0.0);
    }

    #[test]
    fn finite_cache_miss_then_hit() {
        let mut c = FiniteCache::new(4, 4, 2, 20);
        assert_eq!(c.access(0, false, 0), Access::Hit { latency: 20 });
        assert_eq!(c.access(1, false, 1), Access::Hit { latency: 2 }); // same line
        assert_eq!(c.access(4, false, 2), Access::Hit { latency: 20 }); // next line
        assert!(c.contains(0));
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn finite_cache_conflict_evicts() {
        // 2 lines x 1 word: addresses 0 and 2 conflict on index 0.
        let mut c = FiniteCache::new(2, 1, 1, 10);
        c.access(0, false, 0);
        c.access(2, false, 1);
        assert!(!c.contains(0));
        assert_eq!(c.access(0, false, 2), Access::Hit { latency: 10 });
        assert_eq!(c.stats().misses, 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn finite_cache_rejects_non_power_of_two() {
        FiniteCache::new(3, 4, 1, 10);
    }

    #[test]
    fn dsm_splits_local_and_remote() {
        let mut m = DsmMemory::new(1000, 2, 80);
        assert_eq!(m.access(999, false, 0), Access::Hit { latency: 2 });
        assert_eq!(m.access(1000, true, 0), Access::Absent { ready_after: 80 });
        assert_eq!(m.stats().absences, 1);
        assert_eq!(m.stats().hits, 1);
        assert_eq!(m.remote_base(), 1000);
    }

    #[test]
    fn miss_ratio_empty_is_zero() {
        assert_eq!(MemStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn bulk_store_hits_matches_sequential_accesses() {
        let mut bulk = IdealCache::default();
        let mut seq = IdealCache::default();
        assert!(bulk.bulk_store_hits(17));
        for i in 0..17u64 {
            seq.access(i * 3, true, i);
        }
        assert_eq!(bulk.stats(), seq.stats());

        // Stateful models must refuse the bulk path.
        assert!(!FiniteCache::new(4, 4, 2, 20).bulk_store_hits(1));
        assert!(!DsmMemory::new(1000, 2, 80).bulk_store_hits(1));
    }
}
