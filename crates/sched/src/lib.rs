//! Static code scheduling for the Hirata 1992 processor (§2.3.2).
//!
//! The paper contrasts two compile-time strategies for loop bodies:
//!
//! * **Strategy A** — plain list scheduling: reorder the block to
//!   minimise the single thread's critical path, ignoring resource
//!   conflicts entirely. With parallel multithreading, a high issue
//!   rate per thread floods the functional units with candidates and
//!   the dynamic schedule units sort out the conflicts.
//! * **Strategy B** — list scheduling driven by a *resource
//!   reservation table* (as in software pipelining) **plus** a
//!   *standby table* whose entries correspond to the machine's standby
//!   stations: where a software pipeliner would emit a NOP because
//!   every dependence-free instruction has a resource conflict,
//!   strategy B issues one anyway into a free standby slot and marks
//!   the table. The reservation table then also tells the compiler
//!   when that parked instruction actually executes.
//!
//! Both operate on straight-line blocks ([`hirata_isa::Inst`] slices
//! without control flow); [`DepGraph`] captures the register and
//! memory dependences that any reordering must preserve.
//!
//! # Examples
//!
//! ```
//! use hirata_isa::{GReg, GSrc, Inst, IntOp, Reg};
//! use hirata_sched::{list_schedule, AliasModel};
//!
//! // load; dependent add; independent load — strategy A hoists the
//! // second load into the load-use shadow.
//! let block = vec![
//!     Inst::Load { dst: Reg::G(GReg(1)), base: GReg(10), off: 0 },
//!     Inst::IntOp { op: IntOp::Add, rd: GReg(2), rs: GReg(1), src2: GSrc::Imm(1) },
//!     Inst::Load { dst: Reg::G(GReg(3)), base: GReg(10), off: 1 },
//! ];
//! let scheduled = list_schedule(&block, AliasModel::BaseOffset);
//! assert_eq!(scheduled[1], block[2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod depgraph;
mod list;
mod reservation;
mod unroll;

pub use depgraph::{AliasModel, DepGraph};
pub use list::{list_schedule, schedule_length};
pub use reservation::{reservation_schedule, ReservationConfig};
pub use unroll::unroll_body;

/// Which §2.3.2 strategy to apply to a loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Leave the block as written (Table 4's "non-optimized").
    None,
    /// Simple list scheduling (Table 4's strategy A).
    ListA,
    /// Reservation-table + standby-table scheduling for a machine with
    /// the given number of thread slots (Table 4's strategy B).
    ReservationB {
        /// Thread slots sharing the functional units.
        threads: usize,
    },
}

/// Applies a [`Strategy`] to a straight-line block.
///
/// # Examples
///
/// ```
/// use hirata_isa::{GReg, Inst, Reg};
/// use hirata_sched::{apply_strategy, Strategy};
///
/// let block = vec![Inst::Load { dst: Reg::G(GReg(1)), base: GReg(2), off: 0 }];
/// assert_eq!(apply_strategy(&block, Strategy::None), block);
/// ```
pub fn apply_strategy(block: &[hirata_isa::Inst], strategy: Strategy) -> Vec<hirata_isa::Inst> {
    match strategy {
        Strategy::None => block.to_vec(),
        Strategy::ListA => list_schedule(block, AliasModel::BaseOffset),
        Strategy::ReservationB { threads } => reservation_schedule(
            block,
            AliasModel::BaseOffset,
            &ReservationConfig::for_threads(threads),
        ),
    }
}
