//! Strategy B: list scheduling with a resource reservation table and a
//! standby table (§2.3.2).
//!
//! The reservation table plays the software-pipelining role: it tracks
//! when each functional unit is busy, under the pressure of `threads`
//! thread slots executing the same loop body in near lockstep (the
//! explicit-rotation mode makes the interleaving predictable, which is
//! exactly why the paper adds that mode). An operation placed at issue
//! slot `t` therefore reserves its unit for `threads x issue-latency`
//! cycles — every sibling thread executes the same operation around
//! the same slot.
//!
//! Where a software pipeliner would emit a NOP because every
//! dependence-free instruction has a resource conflict, strategy B
//! consults the *standby table*: if the entry corresponding to the
//! target unit's standby station is free, the instruction issues
//! anyway and parks there; the reservation table then tells the
//! compiler when it actually begins execution, so downstream
//! dependences use the real start time.

use hirata_isa::{FuConfig, Inst, FU_CLASS_COUNT};

use crate::depgraph::{AliasModel, DepGraph};

/// Machine description used by the reservation scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReservationConfig {
    /// Thread slots sharing the functional units (the `S` the code is
    /// compiled for).
    pub threads: usize,
    /// Functional-unit pool.
    pub fu: FuConfig,
    /// Whether the standby table is used (disable to obtain the plain
    /// software-pipelining behaviour the paper compares against).
    pub standby_table: bool,
}

impl ReservationConfig {
    /// The paper's Table 4 machine: `threads` slots, one load/store
    /// unit, standby stations present.
    pub fn for_threads(threads: usize) -> Self {
        ReservationConfig {
            threads: threads.max(1),
            fu: FuConfig::paper_one_ls(),
            standby_table: true,
        }
    }
}

/// Reorders `block` with the strategy-B scheduler.
///
/// # Examples
///
/// ```
/// use hirata_isa::{GReg, Inst, Reg};
/// use hirata_sched::{reservation_schedule, AliasModel, ReservationConfig};
///
/// let block = vec![
///     Inst::Load { dst: Reg::G(GReg(1)), base: GReg(9), off: 0 },
///     Inst::Load { dst: Reg::G(GReg(2)), base: GReg(9), off: 1 },
/// ];
/// let cfg = ReservationConfig::for_threads(4);
/// let out = reservation_schedule(&block, AliasModel::BaseOffset, &cfg);
/// assert_eq!(out.len(), 2);
/// ```
pub fn reservation_schedule(
    block: &[Inst],
    alias: AliasModel,
    config: &ReservationConfig,
) -> Vec<Inst> {
    schedule(block, alias, config).0
}

/// Strategy-B schedule plus its estimated makespan (used by tests and
/// the experiment harness to reason about schedules without running
/// the machine).
pub(crate) fn schedule(
    block: &[Inst],
    alias: AliasModel,
    config: &ReservationConfig,
) -> (Vec<Inst>, u64) {
    let g = DepGraph::build(block, alias);
    let n = block.len();
    let s = config.threads.max(1) as u64;
    let mut remaining: Vec<usize> = (0..n).map(|i| g.pred_count(i)).collect();
    let mut earliest = vec![0u64; n];
    let mut ready: Vec<usize> = (0..n).filter(|&i| remaining[i] == 0).collect();
    // Reservation table: next-free time per unit instance, per class.
    let mut unit_free: Vec<Vec<u64>> = (0..FU_CLASS_COUNT)
        .map(|ci| vec![0u64; config.fu.count(hirata_isa::FuClass::ALL[ci]).max(1)])
        .collect();
    // Standby table: when each class's standby station drains.
    let mut standby_free = [0u64; FU_CLASS_COUNT];
    let mut order = Vec::with_capacity(n);
    let mut makespan = 0u64;
    let mut t = 0u64;

    while order.len() < n {
        let candidates: Vec<usize> = ready.iter().copied().filter(|&i| earliest[i] <= t).collect();
        if candidates.is_empty() {
            t = ready.iter().map(|&i| earliest[i]).min().unwrap_or(t + 1).max(t + 1);
            continue;
        }
        // First preference: a candidate whose unit is free right now.
        let direct = candidates
            .iter()
            .copied()
            .filter(|&i| unit_start(&unit_free, &block[i], t) == t)
            .max_by(|&a, &b| g.height(a).cmp(&g.height(b)).then(b.cmp(&a)));
        // Second: park one in a free standby station (the strategy-B
        // twist over software pipelining).
        let parked = if direct.is_none() && config.standby_table {
            candidates
                .iter()
                .copied()
                .filter(|&i| block[i].fu_class().is_some_and(|c| standby_free[c.index()] <= t))
                .max_by(|&a, &b| g.height(a).cmp(&g.height(b)).then(b.cmp(&a)))
        } else {
            None
        };
        let Some(i) = direct.or(parked) else {
            // Software pipelining would emit a NOP here.
            t += 1;
            continue;
        };
        ready.retain(|&x| x != i);
        let exec_start = unit_start(&unit_free, &block[i], t);
        if let Some(class) = block[i].fu_class() {
            let ci = class.index();
            let slot = unit_free[ci]
                .iter_mut()
                .min()
                .expect("every class has at least one modelled instance");
            // All sibling threads run this op around the same slot.
            *slot = (*slot).max(exec_start) + s * block[i].issue_latency() as u64;
            if exec_start > t {
                standby_free[ci] = exec_start;
            }
        }
        order.push(i);
        makespan = makespan.max(exec_start + block[i].result_latency() as u64);
        for &(j, lat) in g.succs(i) {
            // Dependences count from the real execution start.
            let sep = if lat > 1 { exec_start + lat as u64 } else { t + lat as u64 };
            earliest[j] = earliest[j].max(sep);
            remaining[j] -= 1;
            if remaining[j] == 0 {
                ready.push(j);
            }
        }
        t += 1;
    }
    debug_assert!(g.respects(&order));
    (order.into_iter().map(|i| block[i]).collect(), makespan)
}

/// Earliest execution start for `inst` at issue slot `t` given the
/// reservation table (equal to `t` when a unit is free).
fn unit_start(unit_free: &[Vec<u64>], inst: &Inst, t: u64) -> u64 {
    match inst.fu_class() {
        None => t,
        Some(class) => unit_free[class.index()]
            .iter()
            .map(|&free| free.max(t))
            .min()
            .expect("at least one instance"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirata_isa::{GReg, GSrc, IntOp, Reg};

    fn load(rd: u8, base: u8, off: i64) -> Inst {
        Inst::Load { dst: Reg::G(GReg(rd)), base: GReg(base), off }
    }

    fn add(rd: u8, rs: u8, rt: u8) -> Inst {
        Inst::IntOp { op: IntOp::Add, rd: GReg(rd), rs: GReg(rs), src2: GSrc::Reg(GReg(rt)) }
    }

    fn shift(rd: u8, rs: u8) -> Inst {
        Inst::IntOp { op: IntOp::Sll, rd: GReg(rd), rs: GReg(rs), src2: GSrc::Imm(1) }
    }

    #[test]
    fn is_a_dependence_respecting_permutation() {
        let block = vec![load(1, 10, 0), add(2, 1, 1), load(3, 10, 1), shift(4, 3)];
        let cfg = ReservationConfig::for_threads(4);
        let out = reservation_schedule(&block, AliasModel::BaseOffset, &cfg);
        assert_eq!(out.len(), block.len());
        let g = DepGraph::build(&block, AliasModel::BaseOffset);
        let order: Vec<usize> =
            out.iter().map(|inst| block.iter().position(|b| b == inst).unwrap()).collect();
        assert!(g.respects(&order));
    }

    #[test]
    fn spaces_memory_ops_under_thread_pressure() {
        // Four independent loads, four threads, one load/store unit:
        // the reservation table spreads them; ALU work interleaves.
        let block = vec![
            load(1, 10, 0),
            load(2, 10, 1),
            add(5, 6, 6),
            add(7, 6, 6),
            load(3, 10, 2),
            load(4, 10, 3),
        ];
        let cfg = ReservationConfig::for_threads(4);
        let out = reservation_schedule(&block, AliasModel::BaseOffset, &cfg);
        // The first two positions cannot both be loads: after the
        // first load the unit is reserved for 4x2 cycles, so ALU work
        // must fill in.
        let first_two_loads =
            matches!(out[0], Inst::Load { .. }) && matches!(out[1], Inst::Load { .. });
        assert!(!first_two_loads, "strategy B must interleave: {out:?}");
    }

    #[test]
    fn standby_table_lets_one_conflicting_issue_through() {
        // Two loads only: with the standby table the second issues
        // immediately into the station; without it, it waits.
        let block = vec![load(1, 10, 0), load(2, 10, 1)];
        let with = ReservationConfig::for_threads(2);
        let without = ReservationConfig { standby_table: false, ..with.clone() };
        let (_, m_with) = schedule(&block, AliasModel::BaseOffset, &with);
        let (_, m_without) = schedule(&block, AliasModel::BaseOffset, &without);
        assert!(m_with <= m_without);
    }

    #[test]
    fn single_thread_config_degenerates_gracefully() {
        let block = vec![load(1, 10, 0), add(2, 1, 1)];
        let cfg = ReservationConfig::for_threads(1);
        let out = reservation_schedule(&block, AliasModel::BaseOffset, &cfg);
        assert_eq!(out, block);
    }

    #[test]
    fn empty_block() {
        let cfg = ReservationConfig::for_threads(4);
        assert!(reservation_schedule(&[], AliasModel::BaseOffset, &cfg).is_empty());
    }
}
