//! Loop unrolling support (§2.3.1 mentions unrolling as the standard
//! technique for reducing a doacross loop's iteration difference to
//! one so data flows through a single queue-register hop).

use hirata_isa::{GReg, GSrc, Inst, Reg};

/// Applies a register substitution to one instruction.
fn rename_inst(inst: &Inst, f: &impl Fn(Reg) -> Reg) -> Inst {
    let g = |r: GReg| match f(Reg::G(r)) {
        Reg::G(n) => n,
        Reg::F(_) => panic!("register renaming changed a register's file"),
    };
    let fr = |r: hirata_isa::FReg| match f(Reg::F(r)) {
        Reg::F(n) => n,
        Reg::G(_) => panic!("register renaming changed a register's file"),
    };
    let gs = |s: GSrc| match s {
        GSrc::Reg(r) => GSrc::Reg(g(r)),
        imm => imm,
    };
    match *inst {
        Inst::IntOp { op, rd, rs, src2 } => {
            Inst::IntOp { op, rd: g(rd), rs: g(rs), src2: gs(src2) }
        }
        Inst::Li { rd, imm } => Inst::Li { rd: g(rd), imm },
        Inst::LiF { fd, imm } => Inst::LiF { fd: fr(fd), imm },
        Inst::FpBin { op, fd, fs, ft } => Inst::FpBin { op, fd: fr(fd), fs: fr(fs), ft: fr(ft) },
        Inst::FpUn { op, fd, fs } => Inst::FpUn { op, fd: fr(fd), fs: fr(fs) },
        Inst::FpCmp { cond, rd, fs, ft } => Inst::FpCmp { cond, rd: g(rd), fs: fr(fs), ft: fr(ft) },
        Inst::CvtIF { fd, rs } => Inst::CvtIF { fd: fr(fd), rs: g(rs) },
        Inst::CvtFI { rd, fs } => Inst::CvtFI { rd: g(rd), fs: fr(fs) },
        Inst::Load { dst, base, off } => Inst::Load { dst: f(dst), base: g(base), off },
        Inst::Store { src, base, off, gated } => {
            Inst::Store { src: f(src), base: g(base), off, gated }
        }
        Inst::Branch { cond, rs, src2, target } => {
            Inst::Branch { cond, rs: g(rs), src2: gs(src2), target }
        }
        Inst::JumpReg { rs } => Inst::JumpReg { rs: g(rs) },
        Inst::Lpid { rd } => Inst::Lpid { rd: g(rd) },
        Inst::Nlp { rd } => Inst::Nlp { rd: g(rd) },
        other => other,
    }
}

/// Unrolls a straight-line loop body `factor` times.
///
/// For each copy `k` (0-based), `rename(k, reg)` maps every register
/// operand (use renaming to give each copy private temporaries) and
/// `adjust_off(k, off)` maps every load/store offset (use it to step
/// the induction variable at compile time).
///
/// # Examples
///
/// ```
/// use hirata_isa::{GReg, Inst, Reg};
/// use hirata_sched::unroll_body;
///
/// let body = vec![Inst::Load { dst: Reg::G(GReg(1)), base: GReg(9), off: 0 }];
/// let out = unroll_body(&body, 3, |k, r| match r {
///     Reg::G(GReg(1)) => Reg::G(GReg(1 + k as u8)),
///     other => other,
/// }, |k, off| off + k as i64);
/// assert_eq!(out.len(), 3);
/// assert_eq!(out[2], Inst::Load { dst: Reg::G(GReg(3)), base: GReg(9), off: 2 });
/// ```
pub fn unroll_body(
    body: &[Inst],
    factor: usize,
    rename: impl Fn(usize, Reg) -> Reg,
    adjust_off: impl Fn(usize, i64) -> i64,
) -> Vec<Inst> {
    let mut out = Vec::with_capacity(body.len() * factor);
    for k in 0..factor {
        for inst in body {
            let renamed = rename_inst(inst, &|r| rename(k, r));
            let stepped = match renamed {
                Inst::Load { dst, base, off } => Inst::Load { dst, base, off: adjust_off(k, off) },
                Inst::Store { src, base, off, gated } => {
                    Inst::Store { src, base, off: adjust_off(k, off), gated }
                }
                other => other,
            };
            out.push(stepped);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirata_isa::{GSrc, IntOp};

    #[test]
    fn identity_unroll_repeats_body() {
        let body = vec![
            Inst::IntOp { op: IntOp::Add, rd: GReg(1), rs: GReg(2), src2: GSrc::Imm(1) },
            Inst::Nop,
        ];
        let out = unroll_body(&body, 2, |_, r| r, |_, off| off);
        assert_eq!(out.len(), 4);
        assert_eq!(&out[..2], &body[..]);
        assert_eq!(&out[2..], &body[..]);
    }

    #[test]
    fn renaming_applies_per_copy() {
        let body = vec![Inst::IntOp {
            op: IntOp::Add,
            rd: GReg(1),
            rs: GReg(1),
            src2: GSrc::Reg(GReg(2)),
        }];
        let out = unroll_body(
            &body,
            2,
            |k, r| match r {
                Reg::G(GReg(1)) => Reg::G(GReg(10 + k as u8)),
                other => other,
            },
            |_, off| off,
        );
        assert_eq!(
            out[1],
            Inst::IntOp { op: IntOp::Add, rd: GReg(11), rs: GReg(11), src2: GSrc::Reg(GReg(2)) }
        );
    }

    #[test]
    fn offsets_step_per_copy() {
        let body = vec![Inst::Store { src: Reg::G(GReg(1)), base: GReg(2), off: 5, gated: false }];
        let out = unroll_body(&body, 3, |_, r| r, |k, off| off + 10 * k as i64);
        let offs: Vec<i64> = out
            .iter()
            .map(|i| match i {
                Inst::Store { off, .. } => *off,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(offs, vec![5, 15, 25]);
    }

    #[test]
    #[should_panic(expected = "changed a register's file")]
    fn cross_file_rename_panics() {
        let body =
            vec![Inst::IntOp { op: IntOp::Add, rd: GReg(1), rs: GReg(1), src2: GSrc::Imm(0) }];
        unroll_body(&body, 1, |_, _| Reg::F(hirata_isa::FReg(0)), |_, o| o);
    }
}
